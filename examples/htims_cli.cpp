// htims_cli — command-line front end to the simulator.
//
// Runs one acquisition + deconvolution round with parameters from the
// command line, prints the feature list, and optionally persists the
// deconvolved frame in the binary container (readable back with
// pipeline::load_frame).
//
//   $ ./examples/htims_cli --order 8 --oversampling 2 --averages 8
//   $ ./examples/htims_cli --mode sa --averages 16 --save frame.htms
//   $ ./examples/htims_cli --sample digest --count 100
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/library.hpp"
#include "analysis/stage.hpp"
#include "core/htims.hpp"
#include "pipeline/fleet.hpp"
#include "store/frame_store.hpp"
#include "store/replay.hpp"

using namespace htims;

namespace {

void usage() {
    std::cout <<
        "usage: htims_cli [options]\n"
        "  --mode mp|sa          gate program (default mp)\n"
        "  --order N             PRS order 2..20 (default 8)\n"
        "  --oversampling F      fine bins per chip (default 2)\n"
        "  --averages A          periods per frame (default 8)\n"
        "  --backend cpu|fpga    processing backend (default cpu)\n"
        "  --sample mix|digest   calibration mix or synthetic digest\n"
        "  --count N             digest size (default 100)\n"
        "  --seed S              acquisition RNG seed\n"
        "  --faults SPEC         fault plan, e.g. seed=7,cpu.fail=0.01,\n"
        "                        fpga.overrun@3 (see src/fault/fault.hpp)\n"
        "  --overlap             also stream the frame through the hybrid\n"
        "                        pipeline, synchronous vs overlapped decode,\n"
        "                        and report the overlap speedup\n"
        "  --decode-workers N    overlapped-decode worker threads for the\n"
        "                        hybrid runs (default 1; results identical)\n"
        "  --batch N             producer staging batch in records for the\n"
        "                        hybrid runs (default 32; 1 = per-record)\n"
        "  --record PATH         stream the acquired frame through the hybrid\n"
        "                        pipeline and persist the run in an mmap frame\n"
        "                        store (replayable with --replay)\n"
        "  --replay PATH         replay a recorded store through the hybrid\n"
        "                        pipeline instead of streaming the template\n"
        "                        (layout must match --order/--oversampling)\n"
        "  --replay-rate X       playback speed vs the recorded line rate\n"
        "                        (default 0 = as fast as the link accepts)\n"
        "  --fleet SPEC          run the acquired frame as a multi-stream\n"
        "                        fleet over a shared decode pool. SPEC is\n"
        "                        N[:workers[:frames]] (default workers 2,\n"
        "                        frames 4); stream backends alternate\n"
        "                        starting from --backend\n"
        "  --fleet-json PATH     write the fleet report (per-stream and\n"
        "                        aggregate p99 frame latency) as JSON\n"
        "  --analyze[=D]         run the hyperdimensional analysis stage on\n"
        "                        the decoded output: encode spectra as D-bit\n"
        "                        hypervectors (default 4096), identify them\n"
        "                        against a mixture-derived reference library,\n"
        "                        and cluster online; fleet streams (--fleet)\n"
        "                        share the stage\n"
        "  --save PATH           write the deconvolved frame (binary)\n"
        "  --csv                 print the feature table as CSV\n"
        "  --telemetry           print the telemetry report after the run\n"
        "  --telemetry-json PATH write the telemetry run report as JSON\n"
        "  --help                this text\n";
}

}  // namespace

int main(int argc, char** argv) {
    core::SimulatorConfig cfg = core::default_config();
    std::string sample = "mix";
    std::size_t digest_count = 100;
    std::string save_path;
    std::string record_path;
    std::string replay_path;
    std::string fleet_spec;
    std::string fleet_json_path;
    double replay_rate = 0.0;
    std::string telemetry_json_path;
    bool csv = false;
    bool telemetry = false;
    bool overlap = false;
    bool analyze = false;
    std::size_t analyze_dim = 4096;
    std::size_t decode_workers = pipeline::HybridConfig{}.decode_workers;
    std::size_t batch_records = pipeline::HybridConfig{}.batch_records;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help") {
            usage();
            return 0;
        } else if (arg == "--mode") {
            const std::string v = next();
            cfg.acquisition.mode = v == "sa"
                                       ? pipeline::AcquisitionMode::kSignalAveraging
                                       : pipeline::AcquisitionMode::kMultiplexed;
            if (v == "sa") cfg.acquisition.use_trap = false;
        } else if (arg == "--order") {
            cfg.acquisition.sequence_order = std::atoi(next().c_str());
        } else if (arg == "--oversampling") {
            cfg.acquisition.oversampling = std::atoi(next().c_str());
        } else if (arg == "--averages") {
            cfg.acquisition.averages = static_cast<std::size_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--backend") {
            cfg.backend = next() == "fpga" ? pipeline::BackendKind::kFpga
                                           : pipeline::BackendKind::kCpu;
        } else if (arg == "--sample") {
            sample = next();
        } else if (arg == "--count") {
            digest_count = static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--seed") {
            cfg.acquisition.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--faults" || arg.rfind("--faults=", 0) == 0) {
            const std::string spec =
                arg == "--faults" ? next() : arg.substr(std::string("--faults=").size());
            try {
                cfg.fault_plan = fault::FaultPlan::parse(spec);
            } catch (const Error& e) {
                std::cerr << "bad --faults spec: " << e.what() << "\n";
                return 2;
            }
        } else if (arg == "--overlap") {
            overlap = true;
        } else if (arg == "--analyze" || arg.rfind("--analyze=", 0) == 0) {
            analyze = true;
            if (arg != "--analyze")
                analyze_dim = static_cast<std::size_t>(std::atoll(
                    arg.substr(std::string("--analyze=").size()).c_str()));
        } else if (arg == "--decode-workers") {
            decode_workers = static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--batch") {
            batch_records = static_cast<std::size_t>(std::atoll(next().c_str()));
        } else if (arg == "--fleet" || arg.rfind("--fleet=", 0) == 0) {
            fleet_spec = arg == "--fleet"
                             ? next()
                             : arg.substr(std::string("--fleet=").size());
        } else if (arg == "--fleet-json") {
            fleet_json_path = next();
        } else if (arg == "--record") {
            record_path = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--replay-rate") {
            replay_rate = std::atof(next().c_str());
        } else if (arg == "--save") {
            save_path = next();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else if (arg == "--telemetry-json") {
            telemetry_json_path = next();
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    instrument::SampleMixture mixture;
    if (sample == "digest") {
        instrument::PeptideLibraryConfig lib;
        lib.count = digest_count;
        mixture = instrument::make_tryptic_digest(lib);
    } else {
        mixture = instrument::make_calibration_mix();
    }

    try {
        core::Simulator simulator(cfg, mixture);
        const auto run = simulator.run();

        std::cout << "sample: " << mixture.name << "\n"
                  << "frame: " << run.deconvolved.drift_bins() << " x "
                  << run.deconvolved.mz_bins() << ", duty "
                  << format_double(100.0 * run.acquisition.duty_cycle, 1)
                  << "%, utilization "
                  << format_double(100.0 * run.acquisition.utilization(), 1)
                  << "%, decode "
                  << format_double(1e3 * run.decode_seconds, 2) << " ms\n";
        if (run.fpga) {
            std::cout << "fpga: " << run.fpga->total_cycles() << " cycles, "
                      << run.fpga->accumulator_saturations << " saturations\n";
            if (run.fpga->budget_overrun)
                std::cout << "fpga: budget overrun — "
                          << run.fpga->channels_decoded << "/"
                          << run.deconvolved.mz_bins()
                          << " channels decoded (partial frame)\n";
        }
        if (!cfg.fault_plan.empty()) {
            std::cout << "faults: plan \"" << cfg.fault_plan.to_string()
                      << "\" injected " << run.faults.total_injected()
                      << " fault(s);";
            for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
                if (run.faults.events[s] == 0) continue;
                std::cout << " " << fault::site_name(static_cast<fault::Site>(s))
                          << "=" << run.faults.injected[s] << "/"
                          << run.faults.events[s];
            }
            std::cout << "\n";
            if (run.cpu_task_retries > 0)
                std::cout << "faults: " << run.cpu_task_retries
                          << " transient CPU failures retried\n";
        }

        const instrument::TofAnalyzer tof(cfg.tof);
        core::FeatureFindOptions opts;
        opts.min_snr = 5.0;
        const auto features = core::find_features(run.deconvolved, tof, opts);

        Table table("features (top 20 by intensity)");
        table.set_header({"mono_mz", "z", "drift_bin", "isotopes", "intensity"});
        table.set_precision(3);
        for (std::size_t i = 0; i < std::min<std::size_t>(20, features.size()); ++i) {
            const auto& f = features[i];
            table.add_row({f.monoisotopic_mz, static_cast<std::int64_t>(f.charge),
                           static_cast<std::int64_t>(f.drift_bin),
                           static_cast<std::int64_t>(f.isotope_count), f.intensity});
        }
        if (csv)
            table.print_csv(std::cout);
        else
            table.print(std::cout);
        std::cout << features.size() << " features total\n";

        // The analysis stage outlives every pipeline run below — fleet
        // streams hold raw pointers to it via HybridConfig::analysis.
        std::unique_ptr<analysis::AnalysisStage> stage;
        std::unique_ptr<analysis::SpectralLibrary> library;
        if (analyze) {
            analysis::AnalysisConfig acfg;
            acfg.encoder.dim = analyze_dim;
            acfg.encoder.mz_bins = run.deconvolved.mz_bins();
            acfg.encoder.seed = cfg.acquisition.seed;
            stage = std::make_unique<analysis::AnalysisStage>(acfg);
            library = std::make_unique<analysis::SpectralLibrary>(
                stage->encoder(), mixture);
            stage->set_library(library.get());
            const auto verdict = stage->analyze(0, 0, run.deconvolved);
            std::cout << "analysis: D=" << analyze_dim << " (simd "
                      << simd_tier_name(simd_tier()) << "), nearest \""
                      << library->name(verdict.library_entry) << "\" at "
                      << verdict.library_distance << " bits ("
                      << format_double(
                             100.0 * static_cast<double>(verdict.library_distance) /
                                 static_cast<double>(analyze_dim),
                             1)
                      << "% of D)\n";
        }

        if (overlap) {
            // Stream the acquired frame through the hybrid pipeline twice —
            // decode inline on the consumer, then overlapped on a worker —
            // and report the end-to-end speedup from hiding the decode
            // behind ingestion.
            pipeline::HybridConfig hcfg;
            hcfg.backend = cfg.backend;
            hcfg.frames = 4;
            hcfg.averages = cfg.acquisition.averages;
            hcfg.cpu_threads = cfg.cpu_threads;
            hcfg.fpga = cfg.fpga;
            hcfg.batch_records = batch_records;
            const auto period = pipeline::to_period_samples(
                run.acquisition.raw, cfg.acquisition.averages);
            pipeline::HybridPipeline sync_pipe(simulator.engine().sequence(),
                                               simulator.layout(), period, hcfg);
            const auto sync_report = sync_pipe.run();
            hcfg.overlap_decode = true;
            hcfg.decode_workers = decode_workers;
            pipeline::HybridPipeline overlap_pipe(simulator.engine().sequence(),
                                                  simulator.layout(), period, hcfg);
            const auto overlap_report = overlap_pipe.run();
            const double overlap_x =
                sync_report.sample_rate > 0.0
                    ? overlap_report.sample_rate / sync_report.sample_rate
                    : 0.0;
            std::cout << "hybrid stream: sync "
                      << format_double(sync_report.sample_rate / 1e6, 2)
                      << " Msamples/s, overlapped (w" << decode_workers << ") "
                      << format_double(overlap_report.sample_rate / 1e6, 2)
                      << " Msamples/s (overlap_x " << format_double(overlap_x, 2)
                      << ", decode-wait "
                      << format_double(overlap_report.decode_wait_seconds * 1e3, 2)
                      << " ms)\n";
        }

        if (!fleet_spec.empty()) {
            // Run N copies of the acquired stream as an instrument fleet
            // over one shared decode pool. Backends alternate per stream
            // (starting from --backend), so the report shows both decode
            // paths contending for the same workers.
            std::size_t n_streams = 0, workers = 2, frames = 4;
            {
                std::size_t a = 0, b = 0, c = 0;
                const int got = std::sscanf(fleet_spec.c_str(), "%zu:%zu:%zu",
                                            &a, &b, &c);
                if (got < 1 || a == 0) {
                    std::cerr << "bad --fleet spec \"" << fleet_spec
                              << "\" (want N[:workers[:frames]])\n";
                    return 2;
                }
                n_streams = a;
                if (got >= 2 && b > 0) workers = b;
                if (got >= 3 && c > 0) frames = c;
            }
            const auto period = pipeline::to_period_samples(
                run.acquisition.raw, cfg.acquisition.averages);
            std::vector<pipeline::FleetStream> streams;
            streams.reserve(n_streams);
            for (std::size_t si = 0; si < n_streams; ++si) {
                pipeline::HybridConfig hcfg;
                hcfg.backend =
                    (si % 2 == 0) == (cfg.backend == pipeline::BackendKind::kCpu)
                        ? pipeline::BackendKind::kCpu
                        : pipeline::BackendKind::kFpga;
                hcfg.frames = frames;
                hcfg.averages = cfg.acquisition.averages;
                hcfg.cpu_threads = 1;
                hcfg.fpga = cfg.fpga;
                hcfg.batch_records = batch_records;
                hcfg.analysis = stage.get();  // nullptr unless --analyze
                streams.push_back(pipeline::FleetStream{
                    simulator.engine().sequence(), simulator.layout(), hcfg,
                    period, nullptr});
            }
            pipeline::FleetConfig fc;
            fc.decode_workers = workers;
            pipeline::FleetRunner runner(std::move(streams), fc);
            const auto fleet = runner.run();
            std::cout << "fleet: " << n_streams << " stream(s) x " << frames
                      << " frame(s), " << workers << " shared worker(s): "
                      << format_double(fleet.sample_rate / 1e6, 2)
                      << " Msamples/s aggregate, p99 frame latency "
                      << format_double(
                             static_cast<double>(fleet.frame_latency.p99) / 1e6,
                             2)
                      << " ms\n";
            for (std::size_t si = 0; si < fleet.streams.size(); ++si) {
                const auto& s = fleet.streams[si];
                std::cout << "fleet: stream " << si << " ("
                          << (si % 2 == 0 ? (cfg.backend == pipeline::BackendKind::kCpu ? "cpu" : "fpga")
                                          : (cfg.backend == pipeline::BackendKind::kCpu ? "fpga" : "cpu"))
                          << ") " << format_double(s.report.sample_rate / 1e6, 2)
                          << " Msamples/s, p99 "
                          << format_double(
                                 static_cast<double>(s.frame_latency.p99) / 1e6,
                                 2)
                          << " ms\n";
            }
            if (stage) {
                const auto report = stage->report();
                std::cout << "analysis: " << report.frames
                          << " frames analyzed across the fleet, "
                          << report.clusters << " cluster(s), digest "
                          << stage->digest() << "\n";
            }
            if (!fleet_json_path.empty()) {
                std::ofstream out(fleet_json_path);
                if (!out) {
                    std::cerr << "error: cannot write " << fleet_json_path
                              << "\n";
                    return 1;
                }
                out << pipeline::fleet_report_json(fleet) << "\n";
                std::cout << "fleet report written to " << fleet_json_path
                          << "\n";
            }
        }

        if (!record_path.empty() || !replay_path.empty()) {
            // Record: persist the streamed run (the input side of the link)
            // in an mmap store, then decode it live for reference digests.
            // Replay: serve a store back through the same pipeline. The
            // printed per-run digest is identical between a --record run and
            // a --replay of the store it wrote — that is the determinism
            // contract the store exists to keep.
            pipeline::HybridConfig hcfg;
            hcfg.backend = cfg.backend;
            hcfg.averages = cfg.acquisition.averages;
            hcfg.cpu_threads = cfg.cpu_threads;
            hcfg.fpga = cfg.fpga;
            hcfg.batch_records = batch_records;
            hcfg.decode_workers = decode_workers;
            std::vector<std::uint64_t> digests;
            hcfg.frame_sink = [&](std::size_t, const pipeline::Frame& f) {
                digests.push_back(pipeline::frame_digest(f));
            };
            std::uint64_t digest = 14695981039346656037ULL;  // FNV offset
            const auto fold = [&](std::uint64_t d) {
                digest = (digest ^ d) * 1099511628211ULL;
            };

            if (!record_path.empty()) {
                hcfg.frames = 4;
                const auto period = pipeline::to_period_samples(
                    run.acquisition.raw, cfg.acquisition.averages);
                store::StoreMeta meta{simulator.layout(),
                                      cfg.acquisition.averages};
                store::FrameStoreWriter writer(record_path, meta);
                const auto streamed =
                    store::period_to_frame(simulator.layout(), period);
                for (std::uint64_t f = 0; f < hcfg.frames; ++f)
                    writer.append(streamed, f);
                writer.finalize();
                pipeline::HybridPipeline live(simulator.engine().sequence(),
                                              simulator.layout(), period, hcfg);
                const auto live_report = live.run();
                for (const auto d : digests) fold(d);
                std::cout << "store: recorded " << writer.frames()
                          << " frames (" << writer.data_bytes()
                          << " data bytes) to " << record_path << "\n"
                          << "store: live run digest " << digest << " at "
                          << format_double(live_report.sample_rate / 1e6, 2)
                          << " Msamples/s\n";
            } else {
                store::FrameStoreReader reader(replay_path);
                if (!(reader.layout() == simulator.layout())) {
                    std::cerr << "error: store layout "
                              << reader.layout().drift_bins << " x "
                              << reader.layout().mz_bins
                              << " does not match the configured run\n";
                    return 1;
                }
                store::ReplaySource source(reader,
                                           store::ReplayConfig{replay_rate});
                hcfg.frames = source.frames();
                hcfg.averages = reader.averages();
                pipeline::HybridPipeline pipe(simulator.engine().sequence(),
                                              reader.layout(), source, hcfg);
                const auto replay_report = pipe.run();
                for (const auto d : digests) fold(d);
                std::cout << "store: replayed " << source.frames()
                          << " frames from " << replay_path << " ("
                          << (reader.indexed() ? "indexed" : "resync-recovered")
                          << ", " << source.skipped() << " skipped)\n"
                          << "store: replay digest " << digest << " at "
                          << format_double(replay_report.sample_rate / 1e6, 2)
                          << " Msamples/s, rate_x "
                          << format_double(replay_rate, 2) << "\n";
            }
        }

        if (!save_path.empty()) {
            pipeline::save_frame(save_path, run.deconvolved);
            std::cout << "frame written to " << save_path << "\n";
        }

        if (telemetry || !telemetry_json_path.empty()) {
            auto& tel = simulator.telemetry();
            if (!tel.enabled()) {
                std::cout << "telemetry disabled (HTIMS_TELEMETRY=0 or "
                             "compiled out)\n";
            } else {
                const auto snap = tel.snapshot();
                if (telemetry) telemetry::print_report(std::cout, snap);
                if (!telemetry_json_path.empty()) {
                    telemetry::RunMeta meta;
                    meta.bench = "htims_cli";
                    meta.labels.emplace_back("sample", mixture.name);
                    meta.scalars.emplace_back("decode_seconds",
                                              run.decode_seconds);
                    meta.scalars.emplace_back(
                        "duty_cycle", run.acquisition.duty_cycle);
                    telemetry::save_json_report(telemetry_json_path, snap, meta);
                    std::cout << "telemetry report written to "
                              << telemetry_json_path << "\n";
                }
            }
        }
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
