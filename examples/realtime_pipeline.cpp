// realtime_pipeline — the paper's hybrid node in action: a software
// producer streams raw detector records over a bounded link to a
// processing element (the FPGA dataflow model or the multithreaded CPU
// backend), and the run report says whether the chain keeps up with the
// instrument in real time.
//
//   $ ./examples/realtime_pipeline
#include <iostream>

#include "core/htims.hpp"

using namespace htims;

int main() {
    // Acquire one real frame to use as the stream template.
    core::SimulatorConfig config = core::default_config();
    config.tof.bins = 512;
    config.acquisition.averages = 1;
    core::Simulator simulator(config, instrument::make_calibration_mix());
    const auto acquired = simulator.run();
    const auto& layout = simulator.layout();
    const auto period = pipeline::to_period_samples(acquired.acquisition.raw, 1);

    const double instrument_rate = layout.sample_rate();
    std::cout << "instrument: " << layout.drift_bins << " x " << layout.mz_bins
              << " cells/frame, raw rate "
              << format_double(instrument_rate / 1e6, 2) << " Msamples/s\n\n";

    Table table("hybrid streaming run (8 frames, 4 periods each)");
    table.set_header({"backend", "wall_s", "Msamples/s", "realtime_x",
                      "producer_stall_ms", "consumer_idle_ms"});
    table.set_precision(2);

    for (const auto backend :
         {pipeline::BackendKind::kFpga, pipeline::BackendKind::kCpu}) {
        pipeline::HybridConfig hybrid;
        hybrid.backend = backend;
        hybrid.frames = 8;
        hybrid.averages = 4;
        pipeline::HybridPipeline pipe(simulator.engine().sequence(), layout,
                                      period, hybrid);
        const auto report = pipe.run();
        table.add_row(
            {std::string(backend == pipeline::BackendKind::kFpga ? "FPGA model"
                                                                 : "CPU backend"),
             report.wall_seconds, report.sample_rate / 1e6,
             report.realtime_factor(instrument_rate),
             1e3 * report.producer_stall_seconds,
             1e3 * report.consumer_idle_seconds});
        if (backend == pipeline::BackendKind::kFpga) {
            std::cout << "FPGA model: "
                      << report.fpga.total_cycles() << " cycles/frame @ 100 MHz, "
                      << format_double(
                             static_cast<double>(report.fpga.bram_bytes_used) /
                                 1048576.0,
                             2)
                      << " MB BRAM ("
                      << (report.fpga.fits_bram ? "fits" : "DOES NOT FIT")
                      << "), " << report.fpga.accumulator_saturations
                      << " accumulator saturations\n";
        }
    }
    table.print(std::cout);
    std::cout << "\nA realtime factor >= 1 means the processing element keeps\n"
                 "up with the instrument's native data rate.\n";
    return 0;
}
