// proteome_screen — the workload the instrument was built for: a bottom-up
// proteomics screen of a tryptic digest over an LC gradient.
//
// A synthetic 120-peptide digest elutes over a gradient; the simulator
// acquires multiplexed frames at successive LC time points, and each
// frame's deconvolved drift/mz map is searched for the currently eluting
// species. Compare with examples/quickstart.cpp for the single-frame API.
//
//   $ ./examples/proteome_screen
#include <iostream>
#include <set>

#include "core/htims.hpp"

using namespace htims;

int main() {
    // Synthetic digest: 120 peptides, abundances spanning 2.3 decades,
    // eluting between t=60 s and t=540 s.
    instrument::PeptideLibraryConfig lib;
    lib.count = 120;
    lib.abundance_min = 5e3;
    lib.abundance_max = 1e6;
    lib.gradient_start_s = 60.0;
    lib.gradient_end_s = 540.0;
    const auto digest = instrument::make_tryptic_digest(lib);

    core::SimulatorConfig config = core::default_config();
    config.tof.bins = 1024;
    config.acquisition.averages = 4;
    config.lc_mode = true;  // species currents follow their LC peaks

    core::Simulator simulator(config, digest);

    std::set<std::string> detected;
    Table timeline("LC-IMS-TOF screen timeline");
    timeline.set_header({"t_s", "eluting", "frame_new_IDs", "cumulative"});
    AlignedVector<double> profile(simulator.layout().drift_bins);

    for (double t = 45.0; t <= 555.0; t += 30.0) {
        const auto run = simulator.run(t);
        std::size_t eluting = 0, fresh = 0;
        for (const auto& trace : run.acquisition.traces) {
            if (trace.expected_ions < 0.01) continue;
            ++eluting;
            if (detected.count(trace.name)) continue;
            run.deconvolved.drift_profile(trace.mz_bin, profile);
            const auto peaks = core::pick_peaks(profile);
            if (core::detected_near(peaks, trace.drift_bin,
                                    3.0 + 3.0 * trace.drift_sigma_bins, 3.0,
                                    profile.size())) {
                detected.insert(trace.name);
                ++fresh;
            }
        }
        timeline.add_row({t, static_cast<std::int64_t>(eluting),
                          static_cast<std::int64_t>(fresh),
                          static_cast<std::int64_t>(detected.size())});
    }
    timeline.print(std::cout);
    std::cout << "\nscreen complete: " << detected.size() << "/"
              << digest.species.size() << " peptides identified across the "
              << "gradient\n";
    return 0;
}
