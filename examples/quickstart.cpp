// quickstart — the 60-second tour of the htims public API.
//
// Configure the default instrument, load the 9-peptide calibration
// standard, run one multiplexed acquisition with the modified PRS, and
// print what the deconvolved frame shows for each species.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/htims.hpp"

using namespace htims;

int main() {
    // 1. Instrument + gate program. default_config() is a PNNL-style 0.9 m
    //    drift tube at 4 Torr with an oa-TOF, an ion funnel trap, and an
    //    order-8 modified PRS (oversampling 2, pulsed gate).
    core::SimulatorConfig config = core::default_config();
    config.acquisition.averages = 8;

    // 2. Sample: the fixed 9-peptide ESI calibration standard.
    const auto sample = instrument::make_calibration_mix();

    // 3. Run one acquisition + deconvolution round.
    core::Simulator simulator(config, sample);
    const core::RunResult run = simulator.run();

    std::cout << "frame: " << run.deconvolved.drift_bins() << " drift bins x "
              << run.deconvolved.mz_bins() << " m/z bins, period "
              << format_double(1e3 * simulator.engine().period_s(), 2) << " ms\n";
    std::cout << "gate program: " << simulator.engine().sequence().pulse_count()
              << " pulses/period, duty cycle "
              << format_double(100.0 * run.acquisition.duty_cycle, 1)
              << "%, ion utilization "
              << format_double(100.0 * run.acquisition.utilization(), 1) << "%\n";
    std::cout << "decode time: " << format_double(1e3 * run.decode_seconds, 2)
              << " ms (CPU backend)\n\n";

    // 4. Inspect the deconvolved drift profiles at each species' m/z.
    Table table("deconvolved calibration mix");
    table.set_header({"peptide", "m/z", "z", "drift_ms", "SNR", "detected"});
    table.set_precision(2);
    AlignedVector<double> profile(run.deconvolved.drift_bins());
    for (std::size_t i = 0; i < run.acquisition.traces.size(); ++i) {
        const auto& trace = run.acquisition.traces[i];
        const auto& species = sample.species[i];
        run.deconvolved.drift_profile(trace.mz_bin, profile);
        const auto peaks = core::pick_peaks(profile);
        const bool hit = core::detected_near(peaks, trace.drift_bin,
                                             3.0 + 3.0 * trace.drift_sigma_bins,
                                             3.0, profile.size());
        const double drift_ms = 1e3 * static_cast<double>(trace.drift_bin) *
                                simulator.layout().drift_bin_width_s;
        table.add_row({species.name, species.mz,
                       static_cast<std::int64_t>(species.charge), drift_ms,
                       core::species_snr(run.deconvolved, trace),
                       std::string(hit ? "yes" : "no")});
    }
    table.print(std::cout);

    const auto score = run.score(3.0);
    std::cout << "\ndetected " << score.detected << "/" << score.total
              << " species at SNR >= 3\n";
    return 0;
}
