// fault_drill — the degraded-mode acceptance drill behind the `faults`
// stage of scripts/check.sh.
//
// Runs the hybrid streaming pipeline under a canned fault plan (~1% frame
// corruption on the replay link, ~1% forced link overrun, occasional jitter
// and a scheduled transient CPU failure) and asserts, exiting nonzero on
// any violation:
//
//   1. the run completes every configured frame without aborting;
//   2. drops are exactly accounted: records_dropped matches the injected
//      link overruns (DropOldest policy, link deeper than the stream);
//   3. a second run of the same plan reproduces the injection counts and
//      degradation figures bit-for-bit (seed determinism end to end);
//   4. the frame_io corruption loop detects-or-recovers every injected
//      fault: injected corruptions == frames lost, and the intact frames
//      round-trip byte-identically.
#include <cstring>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/htims.hpp"

using namespace htims;

namespace {

int failures = 0;

void expect(bool ok, const std::string& what) {
    if (ok) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cerr << "  FAIL: " << what << "\n";
        ++failures;
    }
}

pipeline::HybridReport run_hybrid(const fault::FaultPlan& plan) {
    const prs::OversampledPrs seq(6, 1, prs::GateMode::kPulsed);
    const pipeline::FrameLayout layout{.drift_bins = seq.length(), .mz_bins = 16,
                                       .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells());
    for (std::size_t i = 0; i < period.size(); ++i)
        period[i] = static_cast<std::uint32_t>(i % 13);

    fault::FaultInjector faults(plan);
    pipeline::HybridConfig cfg;
    cfg.backend = pipeline::BackendKind::kCpu;
    cfg.frames = 6;
    cfg.averages = 4;
    cfg.cpu_threads = 2;
    // Link deeper than the whole stream: every "full link" event is
    // fault-forced, so drops are exactly the injected overruns. DropNewest
    // keeps the drill fully deterministic: the dropped record *is* the
    // forced one, so the degraded-frame set reproduces from the seed.
    // (DropOldest drops whatever is oldest in the queue at credit time —
    // deliberately a function of link state, not only of the seed.)
    cfg.ring_records = 2048;
    cfg.ring_policy = pipeline::RingFullPolicy::kDropNewest;
    cfg.cpu_retry_backoff_s = 0.0;
    cfg.faults = &faults;
    return pipeline::HybridPipeline(seq, layout, period, cfg).run();
}

void drill_hybrid() {
    std::cout << "== hybrid degraded-mode drill ==\n";
    const auto plan = fault::FaultPlan::parse(
        "seed=1337,link.overrun=0.01,link.jitter=0.002,cpu.fail@2");
    const auto first = run_hybrid(plan);
    const auto second = run_hybrid(plan);

    expect(first.frames == 6, "run completed every configured frame");
    const auto overruns = first.faults.injected_at(fault::Site::kLinkOverrun);
    expect(overruns > 0, "the plan injected link overruns (" +
                             std::to_string(overruns) + ")");
    expect(first.records_dropped == overruns,
           "records_dropped (" + std::to_string(first.records_dropped) +
               ") exactly matches injected overruns");
    expect(first.frames_degraded > 0, "degraded frames were flagged");
    expect(first.cpu_task_retries == 1,
           "the scheduled transient CPU failure was retried once");
    expect(first.faults == second.faults,
           "same seed reproduces injection counts exactly");
    expect(first.records_dropped == second.records_dropped &&
               first.frames_degraded == second.frames_degraded,
           "same seed reproduces degradation figures exactly");
}

void drill_frame_io() {
    std::cout << "== frame_io corruption drill ==\n";
    const pipeline::FrameLayout layout{.drift_bins = 16, .mz_bins = 16,
                                       .drift_bin_width_s = 1e-4};
    constexpr int kFrames = 200;
    std::vector<pipeline::Frame> originals;
    std::ostringstream os(std::ios::binary);
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=99,frame_io.corrupt=0.01"));
    for (int k = 0; k < kFrames; ++k) {
        pipeline::Frame f(layout);
        for (std::size_t i = 0; i < f.data().size(); ++i)
            f.data()[i] = static_cast<double>((i * 31 + k * 7) % 997);
        pipeline::write_frame(os, f, &faults);
        originals.push_back(std::move(f));
    }
    const auto injected = faults.injected(fault::Site::kFrameCorrupt);
    expect(injected > 0, "the plan corrupted frames on the link (" +
                             std::to_string(injected) + " of " +
                             std::to_string(kFrames) + ")");

    pipeline::FrameStreamReader reader(os.str());
    std::size_t delivered = 0, matched = 0, next = 0;
    while (auto f = reader.next()) {
        ++delivered;
        // Each delivered frame must be byte-identical to the next intact
        // original (corrupted ones are skipped, order preserved).
        while (next < originals.size()) {
            const auto& want = originals[next];
            ++next;
            if (f->layout() == want.layout() &&
                std::memcmp(f->data().data(), want.data().data(),
                            want.data().size() * sizeof(double)) == 0) {
                ++matched;
                break;
            }
        }
    }
    const auto& stats = reader.stats();
    expect(delivered == matched, "every recovered frame is byte-identical");
    expect(stats.frames_lost == injected,
           "every injected corruption was detected (" +
               std::to_string(stats.frames_lost) + " lost)");
    expect(stats.frames_ok == kFrames - injected,
           "every intact frame was recovered");
    expect(stats.resyncs > 0, "the reader re-locked after losses");
}

}  // namespace

int main() {
    try {
        drill_hybrid();
        drill_frame_io();
    } catch (const Error& e) {
        std::cerr << "FAIL: drill aborted: " << e.what() << "\n";
        return 1;
    }
    if (failures == 0) {
        std::cout << "== fault_drill: all green ==\n";
        return 0;
    }
    std::cerr << "== fault_drill: " << failures << " failure(s) ==\n";
    return 1;
}
