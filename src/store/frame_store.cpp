#include "store/frame_store.hpp"

#include <cstring>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::store {

namespace {

constexpr std::uint32_t kStoreMagic = 0x48545353;   // "HTSS"
constexpr std::uint32_t kFooterMagic = 0x48544958;  // "HTIX"
constexpr std::uint32_t kStoreVersion = 1;

/// Superblock, the first 64 bytes of page 0 (rest of the page is zero).
/// crc is CRC-32 of the struct with the crc field zeroed.
struct Superblock {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t page_bytes;
    std::uint32_t reserved0;
    std::uint64_t drift_bins;
    std::uint64_t mz_bins;
    double drift_bin_width_s;
    std::uint64_t averages;
    std::uint64_t reserved1;
    std::uint32_t reserved2;
    std::uint32_t crc;
};
static_assert(sizeof(Superblock) == 64, "superblock must be 64 bytes");

/// Packed on-disk index record.
struct DiskEntry {
    std::uint64_t offset;
    std::uint64_t bytes;
    std::uint64_t seq;
    std::uint64_t reserved;
};
static_assert(sizeof(DiskEntry) == 32, "index entry must be 32 bytes");

/// Footer, the last 64 bytes of a finalized store. footer_crc is CRC-32 of
/// the struct with the footer_crc field zeroed; index_crc covers the packed
/// entry array.
struct Footer {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t frame_count;
    std::uint64_t index_offset;
    std::uint64_t data_end;
    std::uint32_t index_crc;
    std::uint32_t footer_crc;
    std::uint64_t reserved[3];
};
static_assert(sizeof(Footer) == 64, "footer must be 64 bytes");

std::size_t page_align(std::size_t bytes) {
    return (bytes + kStorePageBytes - 1) / kStorePageBytes * kStorePageBytes;
}

std::uint32_t superblock_crc(Superblock sb) {
    sb.crc = 0;
    return pipeline::crc32(&sb, sizeof(sb));
}

std::uint32_t footer_crc_of(Footer footer) {
    footer.footer_crc = 0;
    return pipeline::crc32(&footer, sizeof(footer));
}

telemetry::Gauge& bytes_mapped_gauge() {
    static auto& gauge =
        telemetry::Registry::global().gauge("store.bytes_mapped");
    return gauge;
}

telemetry::Counter& page_faults_counter() {
    static auto& counter =
        telemetry::Registry::global().counter("store.page_faults_est");
    return counter;
}

telemetry::Counter& frames_lost_counter() {
    static auto& counter =
        telemetry::Registry::global().counter("store.frames_lost");
    return counter;
}

}  // namespace

FrameStoreWriter::FrameStoreWriter(const std::string& path, const StoreMeta& meta,
                                   fault::FaultInjector* faults)
    : meta_(meta), faults_(faults) {
    if (meta.layout.cells() == 0)
        throw ConfigError("frame store needs a non-empty layout");
    if (meta.averages == 0)
        throw ConfigError("frame store needs averages >= 1");
    // One page of superblock plus room for the first frame slot.
    const std::size_t initial = kStorePageBytes +
        page_align(pipeline::frame_container_bytes(meta.layout));
    map_ = MappedFile::create(path, initial);

    Superblock sb{};
    sb.magic = kStoreMagic;
    sb.version = kStoreVersion;
    sb.page_bytes = static_cast<std::uint32_t>(kStorePageBytes);
    sb.drift_bins = meta.layout.drift_bins;
    sb.mz_bins = meta.layout.mz_bins;
    sb.drift_bin_width_s = meta.layout.drift_bin_width_s;
    sb.averages = meta.averages;
    sb.crc = superblock_crc(sb);
    std::memcpy(map_.data(), &sb, sizeof(sb));
    bytes_mapped_gauge().set(static_cast<std::int64_t>(map_.size()));
}

void FrameStoreWriter::append(const pipeline::Frame& frame, std::uint64_t seq) {
    HTIMS_EXPECTS(!finalized_);
    if (!(frame.layout() == meta_.layout))
        throw ConfigError("appended frame does not match the store layout");
    if (!entries_.empty() && seq < entries_.back().seq)
        throw ConfigError("frame store appends must be in seq order");

    const std::size_t bytes = pipeline::frame_container_bytes(frame);
    const std::size_t offset = page_align(static_cast<std::size_t>(data_end_));
    const std::size_t slot = page_align(bytes);
    map_.grow(offset + slot);
    bytes_mapped_gauge().set(static_cast<std::int64_t>(map_.size()));

    // Arena write: serialize header + payload straight into the mapping —
    // the in-place path; no staging buffer exists to copy from.
    std::byte* dst = map_.data() + offset;
    pipeline::serialize_frame(frame, std::span(dst, slot), seq);
    if (slot > bytes) std::memset(dst + bytes, 0, slot - bytes);

    if (faults_ != nullptr) {
        const auto torn = faults_->decide(fault::Site::kStoreTornPage);
        if (torn.fire) {
            // A power cut mid-append: pages from a plan-determined boundary
            // onward never reach disk. Boundary 0 loses the whole frame
            // (resync skips the slot); a later boundary leaves a header
            // whose payload CRC fails — both are counted losses on read.
            const std::uint64_t pages = slot / kStorePageBytes;
            const std::uint64_t boundary = faults_->draw_below(
                fault::Site::kStoreTornPage, torn.event, pages);
            const std::size_t torn_from =
                static_cast<std::size_t>(boundary) * kStorePageBytes;
            std::memset(dst + torn_from, 0, bytes - std::min(bytes, torn_from));
        }
    }

    entries_.push_back(FrameEntry{static_cast<std::uint64_t>(offset),
                                  static_cast<std::uint64_t>(bytes), seq});
    data_end_ = static_cast<std::uint64_t>(offset + bytes);
}

void FrameStoreWriter::finalize() {
    if (finalized_) return;
    finalized_ = true;

    // Data first: every arena page is durable before the index that points
    // at it exists — the ordering that makes a crash leave a recoverable
    // prefix instead of an index referencing unwritten pages.
    map_.sync(0, static_cast<std::size_t>(data_end_));

    const std::size_t index_offset = page_align(static_cast<std::size_t>(data_end_));
    const std::size_t index_bytes = entries_.size() * sizeof(DiskEntry);
    const std::size_t footer_offset = index_offset + index_bytes;
    const std::size_t total = footer_offset + sizeof(Footer);
    map_.grow(total);
    bytes_mapped_gauge().set(static_cast<std::int64_t>(map_.size()));

    std::byte* index_dst = map_.data() + index_offset;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const DiskEntry de{entries_[i].offset, entries_[i].bytes,
                           entries_[i].seq, 0};
        std::memcpy(index_dst + i * sizeof(DiskEntry), &de, sizeof(de));
    }

    if (faults_ != nullptr) {
        const auto torn = faults_->decide(fault::Site::kStoreIndexTorn);
        if (torn.fire) {
            // Finalize dies mid-index: keep a plan-determined prefix of the
            // index region and never write the footer. The reader must fall
            // back to the resync scan.
            const std::uint64_t keep = faults_->draw_below(
                fault::Site::kStoreIndexTorn, torn.event,
                index_bytes + sizeof(Footer));
            map_.close_truncated(index_offset + static_cast<std::size_t>(keep));
            return;
        }
    }

    Footer footer{};
    footer.magic = kFooterMagic;
    footer.version = kStoreVersion;
    footer.frame_count = entries_.size();
    footer.index_offset = index_offset;
    footer.data_end = data_end_;
    footer.index_crc = pipeline::crc32(index_dst, index_bytes);
    footer.footer_crc = footer_crc_of(footer);
    std::memcpy(map_.data() + footer_offset, &footer, sizeof(footer));

    // Index + footer last, synced, then the file cut to exact size.
    map_.sync(index_offset, index_bytes + sizeof(Footer));
    map_.close_truncated(total);
}

FrameStoreReader::FrameStoreReader(const std::string& path) {
    map_ = MappedFile::open_readonly(path);
    const auto bytes = map_.span();
    if (bytes.size() < kStorePageBytes)
        throw Error("frame store '" + path + "' is too small to hold a superblock");

    Superblock sb{};
    std::memcpy(&sb, bytes.data(), sizeof(sb));
    if (sb.magic != kStoreMagic || sb.version != kStoreVersion ||
        sb.page_bytes != kStorePageBytes || superblock_crc(sb) != sb.crc)
        throw Error("frame store '" + path + "' has a damaged superblock");
    meta_.layout = pipeline::FrameLayout{
        .drift_bins = static_cast<std::size_t>(sb.drift_bins),
        .mz_bins = static_cast<std::size_t>(sb.mz_bins),
        .drift_bin_width_s = sb.drift_bin_width_s};
    meta_.averages = sb.averages;
    bytes_mapped_gauge().set(static_cast<std::int64_t>(bytes.size()));

    // Try the O(1) path: a valid footer at EOF whose index checksums.
    if (bytes.size() >= kStorePageBytes + sizeof(Footer)) {
        Footer footer{};
        std::memcpy(&footer, bytes.data() + bytes.size() - sizeof(Footer),
                    sizeof(footer));
        const std::size_t index_bytes = footer.frame_count * sizeof(DiskEntry);
        if (footer.magic == kFooterMagic && footer.version == kStoreVersion &&
            footer_crc_of(footer) == footer.footer_crc &&
            footer.index_offset >= kStorePageBytes &&
            footer.index_offset + index_bytes + sizeof(Footer) == bytes.size() &&
            footer.data_end <= footer.index_offset &&
            pipeline::crc32(bytes.data() + footer.index_offset, index_bytes) ==
                footer.index_crc) {
            bool entries_ok = true;
            entries_.reserve(footer.frame_count);
            for (std::uint64_t i = 0; i < footer.frame_count; ++i) {
                DiskEntry de{};
                std::memcpy(&de,
                            bytes.data() + footer.index_offset +
                                i * sizeof(DiskEntry),
                            sizeof(de));
                if (de.offset < kStorePageBytes || de.bytes == 0 ||
                    de.offset + de.bytes > footer.data_end ||
                    (!entries_.empty() && de.seq < entries_.back().seq)) {
                    entries_ok = false;
                    break;
                }
                entries_.push_back(FrameEntry{de.offset, de.bytes, de.seq});
            }
            if (entries_ok) {
                indexed_ = true;
                return;
            }
            entries_.clear();
        }
    }

    // Degraded path: no trustworthy index. Rebuild it with the v2 resync
    // scan over the arena — zero-copy over the mapping via the span reader.
    pipeline::FrameStreamReader scan(bytes.subspan(kStorePageBytes),
                                     pipeline::RecoveryMode::kResync);
    while (auto frame = scan.next()) {
        const std::uint64_t bytes_used = pipeline::frame_container_bytes(*frame);
        const std::uint64_t end = kStorePageBytes + scan.offset();
        entries_.push_back(
            FrameEntry{end - bytes_used, bytes_used, scan.last_seq()});
    }
    recovery_stats_ = scan.stats();
    if (recovery_stats_.frames_lost > 0)
        frames_lost_counter().add(
            static_cast<std::int64_t>(recovery_stats_.frames_lost));
}

pipeline::Frame FrameStoreReader::frame(std::size_t i) const {
    const FrameEntry& e = entry(i);
    const auto bytes = map_.span();
    if (e.offset >= bytes.size())
        throw Error("frame store: entry " + std::to_string(i) +
                    " lies beyond the mapped file (truncated store)");
    page_faults_counter().add(static_cast<std::int64_t>(
        (e.bytes + kStorePageBytes - 1) / kStorePageBytes));
    std::size_t consumed = 0;
    std::uint64_t seq = 0;
    pipeline::Frame frame = pipeline::parse_frame(
        bytes.subspan(e.offset, std::min<std::size_t>(e.bytes, bytes.size() - e.offset)),
        &consumed, &seq);
    if (consumed != e.bytes || seq != e.seq)
        throw Error("frame store: entry " + std::to_string(i) +
                    " does not match its indexed identity");
    return frame;
}

std::span<const double> FrameStoreReader::payload(std::size_t i) const {
    const FrameEntry& e = entry(i);
    const std::size_t cells = meta_.layout.cells();
    const std::size_t header_bytes =
        pipeline::frame_container_bytes(meta_.layout) - cells * sizeof(double);
    const auto bytes = map_.span();
    if (e.offset + e.bytes > bytes.size() ||
        e.bytes != header_bytes + cells * sizeof(double))
        throw Error("frame store: entry " + std::to_string(i) +
                    " has no complete payload in the mapping");
    return {reinterpret_cast<const double*>(bytes.data() + e.offset +
                                            header_bytes),
            cells};
}

std::optional<std::size_t> FrameStoreReader::find_seq(std::uint64_t seq) const {
    std::size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (entries_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < entries_.size() && entries_[lo].seq == seq) return lo;
    return std::nullopt;
}

std::optional<pipeline::Frame> FrameStoreScan::next() {
    while (next_entry_ < reader_->frames()) {
        const std::size_t i = next_entry_++;
        try {
            pipeline::Frame frame = reader_->frame(i);
            last_seq_ = reader_->entry(i).seq;
            ++stats_.frames_ok;
            return frame;
        } catch (const Error&) {
            ++stats_.frames_lost;
            frames_lost_counter().increment();
        }
    }
    return std::nullopt;
}

}  // namespace htims::store
