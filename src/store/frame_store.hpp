// frame_store.hpp — zero-copy mmap-backed persistent frame store.
//
// The data-service half of the roadmap: where frame_io streams a run
// through buffered writes (with a serialize-then-copy on the faulted path)
// and slurps it back whole, the store arena-allocates each frame inside a
// writable mapping and serializes it *in place* — the bytes the CRC covers
// are the bytes the kernel persists — then serves the run back by parsing
// frames straight out of a read-only mapping.
//
// On-disk layout (all little-endian, page = 4096 bytes):
//
//   page 0          superblock: magic/version, frame layout, averages, CRC
//   page 1..        frame arena: one v2 frame container per slot, each slot
//                   starting on a page boundary, zero-padded to the next
//   index           packed FrameEntry array, page-aligned after the arena
//   last 64 bytes   footer: counts, index offset, index CRC, footer CRC
//
// Two deliberate compatibility properties:
//
//  * The arena is a valid v2 frame *stream*: with the index destroyed
//    (partial finalize, footer corruption) the reader falls back to the
//    same skip-and-resync scan FrameStreamReader runs over any stream, so
//    every intact frame is still served and every loss is counted.
//  * Finalize is atomic-by-ordering: data pages are synced first, the
//    index+footer written and synced last. A crash mid-run (or the
//    store.index_torn fault) leaves a prefix the resync path recovers.
//
// Frames carry an application sequence tag (the live run's frame index) in
// a CRC-covered header word, so a replayed run preserves the seq identity
// of every frame it serves — that is what lets replay digests be matched
// 1:1 against the live run even when write faults lost frames in between.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "pipeline/frame.hpp"
#include "pipeline/frame_io.hpp"
#include "store/mmap_file.hpp"

namespace htims::store {

/// Arena granularity: every frame slot and the index start on a boundary.
inline constexpr std::size_t kStorePageBytes = 4096;

/// Run-level metadata persisted in the superblock.
struct StoreMeta {
    pipeline::FrameLayout layout;
    std::uint64_t averages = 1;  ///< periods accumulated per stored frame
};

/// One frame's index record.
struct FrameEntry {
    std::uint64_t offset = 0;  ///< container start (page-aligned)
    std::uint64_t bytes = 0;   ///< container bytes (header + payload)
    std::uint64_t seq = 0;     ///< application tag (live frame index)
};

/// Appends frames in place into a growing mapping; finalize() writes the
/// index footer last and fsyncs. Destroying the writer without finalize()
/// models a crash mid-run: the file holds a recoverable un-indexed prefix.
class FrameStoreWriter {
public:
    /// Creates (truncates) `path`. `faults` may arm store.torn_page (a
    /// page of an appended frame never hits disk) and store.index_torn
    /// (finalize dies mid-index); null injects nothing.
    FrameStoreWriter(const std::string& path, const StoreMeta& meta,
                     fault::FaultInjector* faults = nullptr);
    ~FrameStoreWriter() = default;

    FrameStoreWriter(const FrameStoreWriter&) = delete;
    FrameStoreWriter& operator=(const FrameStoreWriter&) = delete;

    /// Serialize `frame` into the arena, tagged `seq`. Appends must come in
    /// nondecreasing seq order (binary seek depends on it). Layout must
    /// match the superblock.
    void append(const pipeline::Frame& frame, std::uint64_t seq);

    /// Sync data, write index + footer (in that order), sync, truncate to
    /// exact size, close. Idempotent; append() afterwards is an error.
    void finalize();

    std::size_t frames() const { return entries_.size(); }
    std::uint64_t data_bytes() const { return data_end_; }
    bool finalized() const { return finalized_; }

private:
    MappedFile map_;
    StoreMeta meta_;
    fault::FaultInjector* faults_ = nullptr;
    std::vector<FrameEntry> entries_;
    std::uint64_t data_end_ = kStorePageBytes;  ///< end of last container
    bool finalized_ = false;
};

class FrameStoreReader;

/// Sequential validated pass over a store: every intact frame in order,
/// every damaged one counted as a loss — degraded-mode reading with the
/// same accounting contract as FrameStreamReader.
class FrameStoreScan {
public:
    /// Next intact frame, or nullopt when the store is exhausted.
    std::optional<pipeline::Frame> next();

    /// Seq tag of the last frame next() returned.
    std::uint64_t last_seq() const { return last_seq_; }

    const pipeline::FrameStreamStats& stats() const { return stats_; }

private:
    friend class FrameStoreReader;
    explicit FrameStoreScan(const FrameStoreReader* reader) : reader_(reader) {}

    const FrameStoreReader* reader_;
    std::size_t next_entry_ = 0;
    std::uint64_t last_seq_ = 0;
    pipeline::FrameStreamStats stats_;
};

/// Maps a store read-only and serves frames with O(1) seek by index and
/// O(log n) seek by sequence tag. When the index footer is missing or
/// damaged, construction rebuilds the entry table with a linear resync
/// scan (losses in recovery_stats()). frame() is const and touches only
/// immutable state, so K readers can fan out over one mapping.
class FrameStoreReader {
public:
    explicit FrameStoreReader(const std::string& path);

    const StoreMeta& meta() const { return meta_; }
    const pipeline::FrameLayout& layout() const { return meta_.layout; }
    std::uint64_t averages() const { return meta_.averages; }

    /// True when the index footer validated; false when the entry table
    /// was rebuilt by the resync scan.
    bool indexed() const { return indexed_; }

    std::size_t frames() const { return entries_.size(); }
    const FrameEntry& entry(std::size_t i) const { return entries_.at(i); }

    /// Parse and verify frame i straight out of the mapping. Throws
    /// htims::Error when the slot is damaged (torn page, corruption) —
    /// use scan() for counted skip-over-losses reading.
    pipeline::Frame frame(std::size_t i) const;

    /// Unverified zero-copy payload view of entry i: the row-major float64
    /// cells straight out of the mapping (page-aligned slot + 64-byte
    /// header keeps them 8-byte aligned). No CRC is rechecked — for callers
    /// that validated the entry once via frame() and then serve it hot, the
    /// replay path's warm loop.
    std::span<const double> payload(std::size_t i) const;

    /// Entry index holding sequence tag `seq`, if any (binary search).
    std::optional<std::size_t> find_seq(std::uint64_t seq) const;

    FrameStoreScan scan() const { return FrameStoreScan(this); }

    /// Losses observed while rebuilding the index (empty when indexed()).
    const pipeline::FrameStreamStats& recovery_stats() const {
        return recovery_stats_;
    }

    std::span<const std::byte> mapped() const { return map_.span(); }

    /// Page-cache eviction hint for cold-replay measurement.
    void advise_dont_need() { map_.advise_dont_need(); }

private:
    MappedFile map_;
    StoreMeta meta_;
    bool indexed_ = false;
    std::vector<FrameEntry> entries_;
    pipeline::FrameStreamStats recovery_stats_;
};

}  // namespace htims::store
