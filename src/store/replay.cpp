#include "store/replay.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::store {

namespace {

telemetry::Counter& frames_served_counter() {
    static auto& counter =
        telemetry::Registry::global().counter("replay.frames_served");
    return counter;
}

telemetry::Gauge& rate_gauge() {
    // Gauges are integral; expose the playback speed in milli-x.
    static auto& gauge = telemetry::Registry::global().gauge("replay.rate_x");
    return gauge;
}

}  // namespace

pipeline::Frame period_to_frame(const pipeline::FrameLayout& layout,
                                std::span<const std::uint32_t> samples) {
    if (samples.size() != layout.cells())
        throw ConfigError("period template must have layout.cells() samples");
    pipeline::Frame frame(layout);
    auto cells = frame.data();
    for (std::size_t i = 0; i < samples.size(); ++i)
        cells[i] = static_cast<double>(samples[i]);
    return frame;
}

ReplaySource::ReplaySource(const FrameStoreReader& reader,
                           const ReplayConfig& config)
    : reader_(&reader),
      rate_x_(config.rate_x),
      drift_bins_(reader.layout().drift_bins),
      mz_bins_(reader.layout().mz_bins) {
    if (drift_bins_ == 0 || mz_bins_ == 0)
        throw ConfigError("replay needs a store with a non-empty layout");
    records_per_frame_ =
        reader.averages() * static_cast<std::uint64_t>(drift_bins_);
    // One record per drift bin at the instrument's cadence.
    record_period_ns_ = reader.layout().drift_bin_width_s * 1e9;

    // Validate every slot once; replay then serves only intact frames, in
    // stored order, remembering each one's live frame index.
    intact_.reserve(reader.frames());
    seqs_.reserve(reader.frames());
    for (std::size_t i = 0; i < reader.frames(); ++i) {
        try {
            (void)reader.frame(i);
            intact_.push_back(i);
            seqs_.push_back(reader.entry(i).seq);
        } catch (const Error&) {
            ++skipped_;
        }
    }

    // Conversion already rode along with validation's page walk: when the
    // uint32 image fits the cap, keep it resident so record() is a pure
    // span lookup — the path that matches live-template serving speed.
    const std::size_t image_bytes =
        intact_.size() * reader.layout().cells() * sizeof(std::uint32_t);
    if (image_bytes <= config.resident_cap_bytes) {
        resident_.reserve(intact_.size());
        for (const std::size_t entry_index : intact_)
            resident_.push_back(convert(entry_index));
        frames_served_counter().add(static_cast<std::int64_t>(intact_.size()));
    } else {
        slots_.resize(2);
    }
    rate_gauge().set(static_cast<std::int64_t>(
        std::llround(std::max(0.0, rate_x_) * 1000.0)));
}

std::vector<std::uint32_t> ReplaySource::convert(std::size_t entry_index) const {
    // Stored cells are nonnegative integral doubles (the exact image of the
    // live uint32 stream), so llround is lossless. The payload is read
    // straight from the mapping — CRC-verified once at construction, and
    // the file is immutable from then on.
    const auto cells = reader_->payload(entry_index);
    std::vector<std::uint32_t> samples(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        samples[i] = static_cast<std::uint32_t>(
            std::llround(std::max(0.0, cells[i])));
    return samples;
}

void ReplaySource::set_window(std::size_t records) {
    if (resident()) return;  // the whole run is cached; no window to keep
    // `records` spans may be queued at once; they can straddle at most
    // records / records_per_frame + 2 distinct frames (partial frame at
    // each end). One extra slot keeps the frame being filled safe too.
    const std::size_t span_frames =
        records / static_cast<std::size_t>(records_per_frame_) + 3;
    slots_.assign(std::max<std::size_t>(2, span_frames), Slot{});
}

std::span<const std::uint32_t> ReplaySource::samples_for(
    std::uint64_t frame_index) {
    if (resident()) return resident_[static_cast<std::size_t>(frame_index)];
    Slot& slot = slots_[static_cast<std::size_t>(frame_index) % slots_.size()];
    if (slot.frame != frame_index) {
        slot.samples = convert(intact_[static_cast<std::size_t>(frame_index)]);
        slot.frame = frame_index;
        frames_served_counter().increment();
    }
    return slot.samples;
}

std::span<const std::uint32_t> ReplaySource::record(std::uint64_t seq) {
    HTIMS_DCHECK(seq < total_records(), "replay record index in range");
    const std::uint64_t frame_index = seq / records_per_frame_;
    const auto samples = samples_for(frame_index);
    const std::size_t row = static_cast<std::size_t>(seq % drift_bins_);
    return samples.subspan(row * mz_bins_, mz_bins_);
}

std::span<const std::uint32_t> ReplaySource::record_block(
    std::uint64_t seq, std::size_t max_records) {
    HTIMS_DCHECK(seq < total_records(), "replay record index in range");
    // Rows are contiguous in the cached frame image until the period wraps
    // at the drift axis; the batch producer takes whatever is contiguous.
    const std::uint64_t frame_index = seq / records_per_frame_;
    const auto samples = samples_for(frame_index);
    const std::size_t row = static_cast<std::size_t>(seq % drift_bins_);
    const std::size_t k = std::min(max_records, drift_bins_ - row);
    return samples.subspan(row * mz_bins_, k * mz_bins_);
}

std::uint64_t ReplaySource::release_ns(std::uint64_t seq) const {
    if (rate_x_ <= 0.0 || record_period_ns_ <= 0.0) return 0;
    const double at = static_cast<double>(seq) * record_period_ns_ / rate_x_;
    return static_cast<std::uint64_t>(at);
}

}  // namespace htims::store
