// replay.hpp — serve a recorded run back into the hybrid pipeline.
//
// ReplaySource adapts a FrameStoreReader to the pipeline's RecordSource
// interface: each stored frame (a period template tagged with its live
// frame index) is parsed out of the read-only mapping on demand, converted
// back to the uint32 sample records the link carries, and handed to the
// producer row by row — at the recorded line rate (rate_x = 1), a scaled
// rate, or as fast as the link accepts (rate_x = 0).
//
// The conversion is llround of nonnegative integral doubles, the exact
// inverse of to_period_samples(), so the replayed byte stream is identical
// to the live run's and decoded frame digests match bit for bit. Damaged
// frames (torn pages, truncation) are excluded up front; frame_seq(i) maps
// replayed frame i back to its live frame index so digests can still be
// compared 1:1 when the store lost frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipeline/frame.hpp"
#include "pipeline/hybrid.hpp"
#include "store/frame_store.hpp"

namespace htims::store {

/// Expand a uint32 period-sample template into a double-valued Frame —
/// the conversion a recording caller applies before FrameStoreWriter::
/// append(). Integral values survive the round trip exactly.
pipeline::Frame period_to_frame(const pipeline::FrameLayout& layout,
                                std::span<const std::uint32_t> samples);

struct ReplayConfig {
    /// Playback speed as a multiple of the recorded line rate. 1.0 replays
    /// at the instrument's drift-bin cadence; 0 (or negative) streams at
    /// the maximum rate the link accepts.
    double rate_x = 0.0;

    /// Runs whose converted uint32 image fits this budget are made fully
    /// resident during construction (validation already parses every frame,
    /// so conversion rides along for free) — record() then serves pure span
    /// lookups at template-source speed. Larger runs stream through a
    /// bounded slot ring sized by set_window(), converting frames on first
    /// touch as the window slides.
    std::size_t resident_cap_bytes = std::size_t{256} << 20;
};

/// RecordSource over a frame store. Single-producer use only (the hybrid
/// pipeline's producer thread), like every RecordSource.
class ReplaySource final : public pipeline::RecordSource {
public:
    /// Validates every stored frame once (CRC + parse) and keeps the intact
    /// ones; damaged frames are dropped here and counted in skipped().
    ReplaySource(const FrameStoreReader& reader, const ReplayConfig& config);

    /// Intact frames available for replay.
    std::uint64_t frames() const { return static_cast<std::uint64_t>(intact_.size()); }

    /// Live frame index (store seq tag) of replayed frame i.
    std::uint64_t frame_seq(std::size_t i) const { return seqs_.at(i); }

    /// Stored frames excluded because their slot failed validation.
    std::uint64_t skipped() const { return skipped_; }

    /// Records per replayed frame: averages * drift_bins, matching the
    /// live run's stream shape.
    std::uint64_t records_per_frame() const { return records_per_frame_; }

    /// True when the whole converted run is held in memory (fit under
    /// ReplayConfig::resident_cap_bytes).
    bool resident() const { return !resident_.empty(); }

    std::uint64_t total_records() const override {
        return frames() * records_per_frame_;
    }
    std::span<const std::uint32_t> record(std::uint64_t seq) override;
    std::span<const std::uint32_t> record_block(std::uint64_t seq,
                                                std::size_t max_records) override;
    std::uint64_t release_ns(std::uint64_t seq) const override;
    void set_window(std::size_t records) override;

private:
    /// One cached frame converted to link samples. The slot ring is sized
    /// by set_window() so every record span the pipeline may still hold a
    /// pointer into stays alive until the ring wraps past it.
    struct Slot {
        std::uint64_t frame = ~std::uint64_t{0};
        std::vector<std::uint32_t> samples;
    };

    std::span<const std::uint32_t> samples_for(std::uint64_t frame_index);
    std::vector<std::uint32_t> convert(std::size_t entry_index) const;

    const FrameStoreReader* reader_;
    double rate_x_ = 0.0;
    double record_period_ns_ = 0.0;
    std::uint64_t records_per_frame_ = 0;
    std::size_t drift_bins_ = 0;
    std::size_t mz_bins_ = 0;
    std::vector<std::size_t> intact_;   ///< store entry index per replay frame
    std::vector<std::uint64_t> seqs_;   ///< live frame index per replay frame
    std::uint64_t skipped_ = 0;
    std::vector<std::vector<std::uint32_t>> resident_;  ///< full-run cache
    std::vector<Slot> slots_;           ///< windowed fallback past the cap
};

}  // namespace htims::store
