#include "store/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::store {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw Error("mmap store: " + what + " '" + path + "': " +
                std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      writable_(std::exchange(other.writable_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
        writable_ = std::exchange(other.writable_, false);
    }
    return *this;
}

MappedFile MappedFile::create(const std::string& path, std::size_t initial_bytes) {
    HTIMS_EXPECTS(initial_bytes > 0);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("cannot create", path);
    if (::ftruncate(fd, static_cast<off_t>(initial_bytes)) != 0) {
        ::close(fd);
        fail("cannot size", path);
    }
    void* map = ::mmap(nullptr, initial_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    if (map == MAP_FAILED) {
        ::close(fd);
        fail("cannot map", path);
    }
    return MappedFile(fd, static_cast<std::byte*>(map), initial_bytes, true);
}

MappedFile MappedFile::open_readonly(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail("cannot open", path);
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        fail("cannot stat", path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap(0) is invalid; an empty file is a valid (empty) store view.
        return MappedFile(fd, nullptr, 0, false);
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (map == MAP_FAILED) {
        ::close(fd);
        fail("cannot map", path);
    }
    return MappedFile(fd, static_cast<std::byte*>(map), size, false);
}

void MappedFile::grow(std::size_t min_bytes) {
    HTIMS_EXPECTS(writable_ && valid());
    if (min_bytes <= size_) return;
    // Exponential growth amortizes the remap across appends.
    std::size_t next = size_;
    while (next < min_bytes) next *= 2;
    if (::munmap(data_, size_) != 0) fail("cannot unmap for growth", "");
    data_ = nullptr;
    if (::ftruncate(fd_, static_cast<off_t>(next)) != 0)
        fail("cannot grow", "");
    void* map = ::mmap(nullptr, next, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED) fail("cannot remap", "");
    data_ = static_cast<std::byte*>(map);
    size_ = next;
}

void MappedFile::sync(std::size_t offset, std::size_t bytes) {
    HTIMS_EXPECTS(writable_ && valid());
    HTIMS_EXPECTS(offset + bytes <= size_);
    // msync wants a page-aligned address; widen the range down to one.
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t begin = (offset / page) * page;
    if (::msync(data_ + begin, bytes + (offset - begin), MS_SYNC) != 0)
        fail("cannot msync", "");
}

void MappedFile::close_truncated(std::size_t final_bytes) {
    HTIMS_EXPECTS(writable_ && valid());
    HTIMS_EXPECTS(final_bytes <= size_);
    if (::munmap(data_, size_) != 0) fail("cannot unmap", "");
    data_ = nullptr;
    size_ = 0;
    if (::ftruncate(fd_, static_cast<off_t>(final_bytes)) != 0)
        fail("cannot truncate", "");
    if (::fsync(fd_) != 0) fail("cannot fsync", "");
    ::close(fd_);
    fd_ = -1;
    writable_ = false;
}

void MappedFile::close() {
    if (data_ != nullptr) {
        ::munmap(data_, size_);
        data_ = nullptr;
        size_ = 0;
    }
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    writable_ = false;
}

void MappedFile::advise_dont_need() {
    if (fd_ < 0) return;
    if (data_ != nullptr) ::madvise(data_, size_, MADV_DONTNEED);
    ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

}  // namespace htims::store
