// mmap_file.hpp — RAII memory-mapped file, the storage primitive of the
// frame store.
//
// Two modes: a writable mapping (MAP_SHARED over a file the store grows
// with ftruncate, so bytes written through the mapping are the bytes the
// kernel persists — no write()-side copy) and a read-only mapping (how a
// stored run is served: frames are parsed straight out of the page cache,
// zero-copy until the payload lands in a Frame). Linux/POSIX only, like the
// rest of the repo's runtime.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace htims::store {

/// A memory-mapped file. Move-only; the mapping and descriptor close with
/// the object. Growth remaps, so spans returned by data() are invalidated
/// by grow() — callers (the store writer) re-derive pointers per append.
class MappedFile {
public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile&& other) noexcept;
    MappedFile& operator=(MappedFile&& other) noexcept;
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    /// Create (truncate) `path` and map it writable at `initial_bytes`.
    static MappedFile create(const std::string& path, std::size_t initial_bytes);

    /// Map an existing file read-only at its current size.
    static MappedFile open_readonly(const std::string& path);

    bool valid() const { return data_ != nullptr; }
    std::size_t size() const { return size_; }

    std::byte* data() { return data_; }
    const std::byte* data() const { return data_; }
    std::span<std::byte> span() { return {data_, size_}; }
    std::span<const std::byte> span() const { return {data_, size_}; }

    /// Grow the file (ftruncate) and remap; no-op when min_bytes <= size().
    /// Writable mappings only.
    void grow(std::size_t min_bytes);

    /// Flush [offset, offset + bytes) to stable storage (msync MS_SYNC).
    void sync(std::size_t offset, std::size_t bytes);

    /// Unmap, truncate the file to `final_bytes`, fsync, and close — the
    /// writer's last act, so the on-disk size is exact.
    void close_truncated(std::size_t final_bytes);

    /// Drop the mapping and descriptor (no truncate).
    void close();

    /// Best-effort eviction of the file's pages from the page cache
    /// (posix_fadvise DONTNEED) — how the replay bench approximates a cold
    /// first pass without root. Read-only mappings.
    void advise_dont_need();

private:
    MappedFile(int fd, std::byte* data, std::size_t size, bool writable)
        : fd_(fd), data_(data), size_(size), writable_(writable) {}

    int fd_ = -1;
    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    bool writable_ = false;
};

}  // namespace htims::store
