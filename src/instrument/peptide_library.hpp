// peptide_library.hpp — synthetic analyte generation.
//
// Substitutes for the proprietary ESI samples (tryptic digests, peptide
// standards) the instrument papers used. Two generators:
//
//  * make_calibration_mix(): a fixed 9-peptide standard modelled on the
//    mixtures PNNL used for characterization (bradykinin, angiotensins,
//    fibrinopeptide A, neurotensin, substance P, melittin, ...) with
//    literature-plausible m/z, charge and reduced mobility;
//  * make_tryptic_digest(): a deterministic pseudo-proteome digest with a
//    configurable species count, masses in the tryptic range, charge states
//    2-3, a mobility-mass correlation K0 ∝ z / M^(2/3) (the peptide
//    trendline), log-uniform abundances across several decades, and LC
//    retention times across a gradient. This reproduces the spectral
//    density and dynamic-range characteristics of a real digest, which is
//    all the data-processing chain is sensitive to.
#pragma once

#include <cstdint>

#include "instrument/ion.hpp"

namespace htims::instrument {

/// Parameters of the synthetic digest.
struct PeptideLibraryConfig {
    std::size_t count = 500;
    double mass_min_da = 600.0;
    double mass_max_da = 3000.0;
    double abundance_min = 1e3;   ///< ions/s, low end (log-uniform)
    double abundance_max = 1e6;   ///< ions/s, high end
    double gradient_start_s = 60.0;
    double gradient_end_s = 840.0;
    double lc_sigma_min_s = 4.0;
    double lc_sigma_max_s = 12.0;
    double k0_scatter = 0.05;     ///< relative sigma around the trendline
    std::uint64_t seed = 42;
};

/// Reduced mobility from the peptide trendline K0 = 72 * z / M^(2/3)
/// (cm^2/Vs) — calibrated so a 1500 Da 2+ peptide lands near K0 = 1.1.
double peptide_trendline_k0(double neutral_mass_da, int charge);

/// The fixed 9-peptide calibration standard.
SampleMixture make_calibration_mix();

/// Deterministic synthetic tryptic digest.
SampleMixture make_tryptic_digest(const PeptideLibraryConfig& config);

/// A single custom analyte spiked at a given molar-equivalent intensity,
/// convenient for dynamic-range experiments.
IonSpecies make_spiked_peptide(const std::string& name, double mz, int charge,
                               double intensity);

}  // namespace htims::instrument
