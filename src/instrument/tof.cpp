#include "instrument/tof.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "instrument/constants.hpp"

namespace htims::instrument {

TofAnalyzer::TofAnalyzer(const TofConfig& config) : config_(config) {
    if (config.mz_min <= 0.0 || config.mz_max <= config.mz_min)
        throw ConfigError("TOF m/z axis must satisfy 0 < mz_min < mz_max");
    if (config.bins < 2) throw ConfigError("TOF record needs at least 2 bins");
    if (config.resolving_power <= 0.0) throw ConfigError("resolving power must be positive");
    if (config.flight_path_m <= 0.0 || config.accel_voltage_v <= 0.0)
        throw ConfigError("flight path and acceleration voltage must be positive");
    if (config.max_isotopes < 1) throw ConfigError("max_isotopes must be >= 1");
    bin_width_ = (config.mz_max - config.mz_min) / static_cast<double>(config.bins);
}

double TofAnalyzer::flight_time_s(double mz) const {
    HTIMS_EXPECTS(mz > 0.0);
    // m/z in Th -> mass per charge in kg/C; t = d sqrt(m / (2 q U)).
    const double mass_per_charge = mz * kDaltonKg / kElementaryCharge;
    return config_.flight_path_m * std::sqrt(mass_per_charge / (2.0 * config_.accel_voltage_v));
}

double TofAnalyzer::bin_center(std::size_t bin) const {
    HTIMS_EXPECTS(bin < config_.bins);
    return config_.mz_min + (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::size_t TofAnalyzer::bin_of(double mz) const {
    HTIMS_DCHECK(bin_width_ > 0.0, "validated axis implies a positive bin width");
    if (mz <= config_.mz_min) return 0;
    const auto bin = static_cast<std::size_t>((mz - config_.mz_min) / bin_width_);
    return std::min(bin, config_.bins - 1);
}

double TofAnalyzer::peak_sigma(double mz) const {
    // R = m / FWHM  ->  sigma = m / (R * 2.3548)
    return mz / (config_.resolving_power * kFwhmPerSigma);
}

std::vector<IsotopePeak> TofAnalyzer::isotope_envelope(const IonSpecies& ion) const {
    // Averagine approximation: the expected number of heavy-isotope
    // substitutions grows linearly with mass; lambda ~= M / 1800 reproduces
    // the usual peptide envelopes (monoisotopic dominant below ~1800 Da,
    // A+1 overtaking above).
    const double lambda = std::max(0.0, ion.neutral_mass()) / 1800.0;
    std::vector<IsotopePeak> peaks;
    peaks.reserve(static_cast<std::size_t>(config_.max_isotopes));
    double p = std::exp(-lambda);  // Poisson pmf at k = 0
    double total = 0.0;
    for (int k = 0; k < config_.max_isotopes; ++k) {
        IsotopePeak peak;
        peak.mz = ion.mz + static_cast<double>(k) * kIsotopeSpacingDa /
                               static_cast<double>(ion.charge);
        peak.relative_abundance = p;
        total += p;
        peaks.push_back(peak);
        p *= lambda / static_cast<double>(k + 1);
    }
    if (total > 0.0)
        for (auto& peak : peaks) peak.relative_abundance /= total;
    return peaks;
}

void TofAnalyzer::deposit(const IonSpecies& ion, double ions, double mass_offset_ppm,
                          std::span<double> spectrum) const {
    HTIMS_EXPECTS(spectrum.size() == config_.bins);
    if (ions <= 0.0) return;
    const double offset_factor = 1.0 + mass_offset_ppm * 1e-6;
    for (const auto& peak : isotope_envelope(ion)) {
        const double mz = peak.mz * offset_factor;
        if (mz < config_.mz_min || mz >= config_.mz_max) continue;
        const double sigma = peak_sigma(mz);
        const double amplitude = ions * peak.relative_abundance;
        // Render +-4 sigma of the Gaussian into the binned axis.
        const std::size_t lo = bin_of(mz - 4.0 * sigma);
        const std::size_t hi = bin_of(mz + 4.0 * sigma);
        HTIMS_DCHECK(lo <= hi && hi < config_.bins,
                     "clamped render window stays inside the record");
        const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
        double weight_sum = 0.0;
        for (std::size_t b = lo; b <= hi; ++b) {
            const double d = bin_center(b) - mz;
            weight_sum += std::exp(-d * d * inv_two_sigma2);
        }
        if (weight_sum <= 0.0) {
            spectrum[bin_of(mz)] += amplitude;
            continue;
        }
        for (std::size_t b = lo; b <= hi; ++b) {
            const double d = bin_center(b) - mz;
            spectrum[b] += amplitude * std::exp(-d * d * inv_two_sigma2) / weight_sum;
        }
    }
}

}  // namespace htims::instrument
