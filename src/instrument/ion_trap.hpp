// ion_trap.hpp — electrodynamic ion funnel trap with automated gain control.
//
// In the multiplexed instrument the funnel trap accumulates the continuous
// ESI beam between gate openings and releases it as a packet, which is what
// lifts ion utilization from the <1% of conventional gating to >50%
// (Clowers et al. 2008, Ibrahim et al. 2007). The model captures the three
// behaviours the data-processing chain depends on:
//   * linear accumulation of charges up to a finite capacity (~3e7 e);
//   * proportional losses once the incoming charge exceeds capacity
//     (space-charge spill — the mechanism behind trap saturation);
//   * automated gain control (AGC): the fill time is adapted to the
//     measured source current so each release carries a target fraction of
//     capacity, never more.
#pragma once

#include <span>
#include <vector>

#include "instrument/ion.hpp"

namespace htims::instrument {

/// Static configuration of the ion funnel trap.
struct IonTrapConfig {
    double capacity_charges = 3.0e7;    ///< maximum stored charge (e)
    double transmission = 0.9;          ///< trap→drift-cell transfer efficiency
    double max_fill_time_s = 10e-3;     ///< AGC upper bound on accumulation
    double min_fill_time_s = 50e-6;     ///< AGC lower bound on accumulation
    double agc_target_fraction = 0.8;   ///< AGC fills to this fraction of capacity
};

/// Result of one accumulate-and-release cycle.
struct TrapFill {
    std::vector<double> ions;     ///< expected released ions per species
    double total_charges = 0.0;   ///< total released charge (e)
    double fill_time_s = 0.0;     ///< accumulation time used
    bool saturated = false;       ///< capacity limit engaged
    double survival = 1.0;        ///< fraction kept (saturation x transmission)
};

/// Ion funnel trap model. Thread-safe (const after construction).
class IonFunnelTrap {
public:
    explicit IonFunnelTrap(const IonTrapConfig& config);

    const IonTrapConfig& config() const { return config_; }

    /// Accumulate `fill_time_s` of beam described by per-species currents
    /// (ions/s, aligned with `species`), apply capacity saturation and
    /// transmission, and release.
    TrapFill accumulate(std::span<const double> currents,
                        std::span<const IonSpecies> species, double fill_time_s) const;

    /// AGC decision: fill time that accumulates agc_target_fraction of
    /// capacity at the given total source charge current (e/s), clamped to
    /// the configured bounds.
    double agc_fill_time(double total_charge_current) const;

    /// Ion utilization of an experiment that releases a packet every
    /// `release_period_s` after accumulating for `fill_time_s`: the
    /// fraction of the continuous beam that ends up in packets.
    double utilization(double fill_time_s, double release_period_s) const;

private:
    IonTrapConfig config_;
};

}  // namespace htims::instrument
