#include "instrument/mobility.hpp"

#include <cmath>

#include "common/error.hpp"
#include "instrument/constants.hpp"

namespace htims::instrument {

double DriftResult::resolving_power() const {
    if (sigma_s <= 0.0) return 0.0;
    return drift_time_s / (kFwhmPerSigma * sigma_s);
}

DriftCell::DriftCell(const DriftCellConfig& config) : config_(config) {
    if (config.length_m <= 0.0) throw ConfigError("drift length must be positive");
    if (config.voltage_v <= 0.0) throw ConfigError("drift voltage must be positive");
    if (config.pressure_torr <= 0.0) throw ConfigError("pressure must be positive");
    if (config.temperature_k <= 0.0) throw ConfigError("temperature must be positive");
    if (config.gate_width_s < 0.0) throw ConfigError("gate width must be non-negative");
    if (config.initial_packet_radius_m <= 0.0)
        throw ConfigError("initial packet radius must be positive");
}

double DriftCell::mobility(double reduced_mobility) const {
    HTIMS_EXPECTS(reduced_mobility > 0.0);
    // K0 is quoted in cm^2/(V s) at 760 Torr / 273.15 K; convert to the cell
    // conditions and to SI.
    return reduced_mobility * 1e-4 * (kStandardPressureTorr / config_.pressure_torr) *
           (config_.temperature_k / kStandardTemperatureK);
}

double DriftCell::field() const { return config_.voltage_v / config_.length_m; }

double DriftCell::drift_time(double reduced_mobility) const {
    const double k = mobility(reduced_mobility);
    return config_.length_m * config_.length_m / (k * config_.voltage_v);
}

double DriftCell::diffusion_limited_resolving_power(int charge) const {
    HTIMS_EXPECTS(charge >= 1);
    const double numerator =
        config_.voltage_v * static_cast<double>(charge) * kElementaryCharge;
    const double denominator =
        16.0 * kBoltzmann * config_.temperature_k * std::log(2.0);
    return std::sqrt(numerator / denominator);
}

DriftResult DriftCell::transit(const IonSpecies& ion, double packet_charges) const {
    HTIMS_EXPECTS(packet_charges >= 0.0);
    DriftResult result;
    result.drift_time_s = drift_time(ion.reduced_mobility);
    const double v_drift = config_.length_m / result.drift_time_s;

    // Gate (injection pulse) term: rectangular pulse of width w.
    result.sigma_gate_s = config_.gate_width_s / std::sqrt(12.0);

    // Diffusion term via the diffusion-limited resolving power.
    const double r_d = diffusion_limited_resolving_power(ion.charge);
    result.sigma_diffusion_s = result.drift_time_s / (r_d * kFwhmPerSigma);

    // Coulombic expansion: r(t)^3 = r0^3 + 3 K Q e t / (4 pi eps0).
    if (packet_charges > 0.0) {
        const double k = mobility(ion.reduced_mobility);
        const double r0 = config_.initial_packet_radius_m;
        const double growth = 3.0 * k * packet_charges * kElementaryCharge *
                              result.drift_time_s /
                              (4.0 * 3.14159265358979323846 * kVacuumPermittivity);
        const double r_final = std::cbrt(r0 * r0 * r0 + growth);
        result.sigma_coulomb_s = (r_final - r0) / v_drift;
    }

    result.sigma_s = std::sqrt(result.sigma_gate_s * result.sigma_gate_s +
                               result.sigma_diffusion_s * result.sigma_diffusion_s +
                               result.sigma_coulomb_s * result.sigma_coulomb_s);
    return result;
}

double DriftCell::max_drift_time(double k0_min) const { return drift_time(k0_min); }

}  // namespace htims::instrument
