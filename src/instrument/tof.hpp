// tof.hpp — orthogonal time-of-flight mass analyzer model.
//
// The TOF stage converts each mobility-separated packet into an m/z
// spectrum. The model covers what the data-processing chain actually sees:
// flight-time ↔ m/z mapping, finite mass resolving power (Gaussian peak
// shape), isotope envelopes (averagine-style Poisson approximation), a
// binned m/z axis matching the ADC record length, and a configurable mass
// measurement error.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "instrument/ion.hpp"

namespace htims::instrument {

/// Static configuration of the TOF analyzer and its m/z record.
struct TofConfig {
    double flight_path_m = 1.2;      ///< effective flight distance
    double accel_voltage_v = 8000.0; ///< acceleration potential
    double mz_min = 100.0;           ///< low edge of the recorded m/z axis
    double mz_max = 3200.0;          ///< high edge of the recorded m/z axis
    std::size_t bins = 4096;         ///< m/z channels per TOF record
    double resolving_power = 8000.0; ///< m / delta_m (FWHM) at mid-range
    double mass_error_ppm = 2.0;     ///< systematic-jitter scale (1 sigma)
    int max_isotopes = 6;            ///< isotope peaks modelled per species
};

/// One isotopic peak of a species, positioned on the m/z axis.
struct IsotopePeak {
    double mz = 0.0;
    double relative_abundance = 0.0;  ///< fraction of the species intensity
};

/// TOF analyzer model. Thread-safe (const after construction).
class TofAnalyzer {
public:
    explicit TofAnalyzer(const TofConfig& config);

    const TofConfig& config() const { return config_; }
    std::size_t bins() const { return config_.bins; }

    /// Flight time for a given m/z: t = d * sqrt(m_kg / (2 z e U)); the
    /// model's mapping between the ADC time base and the m/z axis.
    double flight_time_s(double mz) const;

    /// Center m/z of a record bin.
    double bin_center(std::size_t bin) const;

    /// Bin index containing an m/z value (clamped to the axis).
    std::size_t bin_of(double mz) const;

    /// Gaussian peak sigma (in m/z units) at the given m/z, from the
    /// configured resolving power.
    double peak_sigma(double mz) const;

    /// Averagine-style isotope envelope for a species: Poisson-distributed
    /// heavy-isotope substitutions with mean proportional to neutral mass,
    /// peaks spaced by 1.00335/z. Abundances normalized to sum to 1.
    std::vector<IsotopePeak> isotope_envelope(const IonSpecies& ion) const;

    /// Deposit the full isotopic profile of `ion`, carrying total intensity
    /// `ions`, into the m/z record `spectrum` (length bins()). Peaks are
    /// rendered as Gaussians with the analyzer's resolving power; an
    /// optional mass offset (ppm) models calibration drift.
    void deposit(const IonSpecies& ion, double ions, double mass_offset_ppm,
                 std::span<double> spectrum) const;

private:
    TofConfig config_;
    double bin_width_;
};

}  // namespace htims::instrument
