// ion.hpp — the analyte description shared by all instrument models.
#pragma once

#include <string>
#include <vector>

namespace htims::instrument {

/// One ionized analyte species as it enters the mobility cell.
struct IonSpecies {
    std::string name;           ///< label used in reports
    double mz = 0.0;            ///< mass-to-charge ratio, Th (Da/e)
    int charge = 1;             ///< number of elementary charges
    double reduced_mobility = 1.0;  ///< K0, cm^2 V^-1 s^-1 at STP
    double intensity = 1.0;     ///< source ion current for this species, ions/s

    /// Chromatographic elution (ignored unless an LC gradient is simulated).
    double retention_time_s = 0.0;  ///< apex of the LC peak
    double lc_sigma_s = 0.0;        ///< LC peak width (sigma); 0 = always eluting

    /// Neutral (uncharged) monoisotopic mass in Da.
    double neutral_mass() const {
        return (mz - 1.007276466) * static_cast<double>(charge);
    }
};

/// A named mixture of species — the "sample" loaded into the simulator.
struct SampleMixture {
    std::string name;
    std::vector<IonSpecies> species;

    /// Total source current summed over species (ions/s, ignoring LC).
    double total_intensity() const {
        double s = 0.0;
        for (const auto& sp : species) s += sp.intensity;
        return s;
    }
};

}  // namespace htims::instrument
