// mobility.hpp — drift-cell physics: Mason–Schamp drift times, diffusion
// broadening, and Coulombic (space-charge) packet expansion.
//
// The drift cell turns a reduced mobility K0 into an arrival-time
// distribution. Three variance terms are modelled, following standard IMS
// theory plus the space-charge analysis of Tolmachev et al. (2009):
//
//   sigma_total^2 = sigma_gate^2 + sigma_diffusion^2 + sigma_coulomb^2
//
//  * gate: a rectangular injection pulse of width w has variance w^2/12;
//  * diffusion: the diffusion-limited resolving power is
//        R_d = t_d / fwhm = sqrt( L E z e / (16 kB T ln 2) );
//  * Coulomb: a packet of Q elementary charges expands under its own field.
//    For a quasi-spherical cloud of radius r, dr/dt = K Q e / (4 pi eps0 r^2)
//    integrates to r(t)^3 = r0^3 + 3 K Q e t / (4 pi eps0); the axial growth
//    maps to arrival-time variance through the drift velocity. The model
//    reproduces the experimentally observed onset of resolving-power loss
//    above ~1e4 charges per packet.
#pragma once

#include "instrument/ion.hpp"

namespace htims::instrument {

/// Static configuration of the drift cell.
struct DriftCellConfig {
    double length_m = 0.9;          ///< drift region length
    double voltage_v = 4000.0;      ///< total drift voltage
    double pressure_torr = 4.0;     ///< buffer gas pressure
    double temperature_k = 300.0;   ///< buffer gas temperature
    double gate_width_s = 100e-6;   ///< injection pulse width (one fine bin)
    double initial_packet_radius_m = 1.0e-3;  ///< packet radius at the gate
};

/// Arrival-time statistics for one species through the cell.
struct DriftResult {
    double drift_time_s = 0.0;   ///< centroid arrival time
    double sigma_s = 0.0;        ///< total temporal standard deviation
    double sigma_gate_s = 0.0;
    double sigma_diffusion_s = 0.0;
    double sigma_coulomb_s = 0.0;
    /// Single-peak resolving power t / fwhm implied by sigma_s.
    double resolving_power() const;
};

/// Drift-cell model. Stateless apart from its configuration; thread-safe.
class DriftCell {
public:
    explicit DriftCell(const DriftCellConfig& config);

    const DriftCellConfig& config() const { return config_; }

    /// Mobility K (m^2 V^-1 s^-1) at cell conditions from reduced mobility
    /// K0 (cm^2 V^-1 s^-1 at STP).
    double mobility(double reduced_mobility) const;

    /// Electric field E = V / L (V/m).
    double field() const;

    /// Centroid drift time t_d = L^2 / (K V).
    double drift_time(double reduced_mobility) const;

    /// Full arrival statistics for a species carrying `packet_charges`
    /// elementary charges in its injected packet (drives the Coulomb term;
    /// pass 0 to disable space charge).
    DriftResult transit(const IonSpecies& ion, double packet_charges) const;

    /// Diffusion-limited resolving power for charge state z.
    double diffusion_limited_resolving_power(int charge) const;

    /// Longest drift time among mobilities >= k0_min — used to size the
    /// multiplexing bin grid so the slowest ion fits one sequence period.
    double max_drift_time(double k0_min) const;

private:
    DriftCellConfig config_;
};

}  // namespace htims::instrument
