#include "instrument/esi_source.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace htims::instrument {

EsiSource::EsiSource(SampleMixture mixture, bool lc_mode)
    : mixture_(std::move(mixture)), lc_mode_(lc_mode) {
    for (const auto& sp : mixture_.species) {
        if (sp.intensity < 0.0) throw ConfigError("species intensity must be non-negative");
        if (lc_mode_ && sp.lc_sigma_s < 0.0)
            throw ConfigError("LC peak sigma must be non-negative");
    }
}

double EsiSource::current(std::size_t species, double t_s) const {
    HTIMS_EXPECTS(species < mixture_.species.size());
    const auto& sp = mixture_.species[species];
    if (!lc_mode_ || sp.lc_sigma_s <= 0.0) return sp.intensity;
    const double d = (t_s - sp.retention_time_s) / sp.lc_sigma_s;
    return sp.intensity * std::exp(-0.5 * d * d);
}

double EsiSource::total_current(double t_s) const {
    double total = 0.0;
    for (std::size_t i = 0; i < mixture_.species.size(); ++i) total += current(i, t_s);
    return total;
}

void EsiSource::currents(double t_s, std::span<double> out) const {
    HTIMS_EXPECTS(out.size() == mixture_.species.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = current(i, t_s);
}

}  // namespace htims::instrument
