#include "instrument/detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::instrument {

Detector::Detector(const DetectorConfig& config) : config_(config) {
    if (config.gain <= 0.0) throw ConfigError("detector gain must be positive");
    if (config.gain_spread < 0.0) throw ConfigError("gain spread must be non-negative");
    if (config.noise_sigma < 0.0) throw ConfigError("noise sigma must be non-negative");
    if (config.dark_rate < 0.0) throw ConfigError("dark rate must be non-negative");
    if (config.adc_bits < 1 || config.adc_bits > 24)
        throw ConfigError("ADC bits must be in [1, 24]");
    full_scale_ = static_cast<double>((std::uint32_t{1} << config.adc_bits) - 1);
    HTIMS_CHECK(full_scale_ >= 1.0, "ADC full scale covers at least one count");
}

double Detector::analog_sample(double expected_ions, Rng& rng) const {
    HTIMS_EXPECTS(expected_ions >= 0.0);
    const double lambda = expected_ions + config_.dark_rate;
    const std::uint64_t n = rng.poisson(lambda);
    double amplitude = 0.0;
    if (n > 0) {
        if (n <= 32) {
            // Exact: sum independent single-ion pulse heights.
            for (std::uint64_t i = 0; i < n; ++i) {
                const double h =
                    config_.gain * (1.0 + config_.gain_spread * rng.gaussian());
                amplitude += std::max(0.0, h);
            }
        } else {
            // Gaussian approximation of the pulse-height sum.
            const double mean = static_cast<double>(n) * config_.gain;
            const double sigma = config_.gain * config_.gain_spread *
                                 std::sqrt(static_cast<double>(n));
            amplitude = std::max(0.0, rng.gaussian(mean, sigma));
        }
    }
    return amplitude + config_.noise_sigma * rng.gaussian();
}

std::uint32_t Detector::digitize(double analog) const {
    if (analog <= 0.0) return 0;
    double v = std::round(analog);
    if (config_.clip) v = std::min(v, full_scale_);
    return static_cast<std::uint32_t>(v);
}

void Detector::acquire(std::span<const double> expected, std::span<std::uint32_t> out,
                       Rng& rng) const {
    HTIMS_EXPECTS(expected.size() == out.size());
    if (config_.mode == DetectionMode::kTdc) {
        // Discriminator: at most one registered event per bin.
        for (std::size_t i = 0; i < expected.size(); ++i) {
            const double lambda = expected[i] + config_.dark_rate;
            out[i] = rng.bernoulli(1.0 - std::exp(-lambda)) ? 1u : 0u;
        }
        return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i)
        out[i] = digitize(analog_sample(expected[i], rng));
}

void Detector::acquire_accumulated(std::span<const double> expected, std::size_t periods,
                                   std::span<double> out, Rng& rng) const {
    HTIMS_EXPECTS(expected.size() == out.size());
    HTIMS_EXPECTS(periods >= 1);
    if (config_.mode == DetectionMode::kTdc) {
        // Accumulated TDC: each period fires at most once per bin, so the
        // count is Binomial(periods, 1 - exp(-lambda)) — the saturation law
        // that compresses strong signals at high flux.
        for (std::size_t i = 0; i < expected.size(); ++i) {
            const double lambda = expected[i] + config_.dark_rate;
            out[i] = static_cast<double>(
                rng.binomial(periods, 1.0 - std::exp(-lambda)));
        }
        return;
    }
    const double p = static_cast<double>(periods);
    const double noise_sigma = config_.noise_sigma * std::sqrt(p);
    const double cap = config_.clip ? full_scale_ * p : 0.0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const double lambda = p * (expected[i] + config_.dark_rate);
        const std::uint64_t n = rng.poisson(lambda);
        double amplitude = 0.0;
        if (n > 0) {
            if (n <= 32) {
                for (std::uint64_t k = 0; k < n; ++k)
                    amplitude += std::max(
                        0.0, config_.gain * (1.0 + config_.gain_spread * rng.gaussian()));
            } else {
                const double mean = static_cast<double>(n) * config_.gain;
                const double sigma = config_.gain * config_.gain_spread *
                                     std::sqrt(static_cast<double>(n));
                amplitude = std::max(0.0, rng.gaussian(mean, sigma));
            }
        }
        double v = amplitude + noise_sigma * rng.gaussian();
        if (v < 0.0) v = 0.0;
        if (config_.clip && v > cap) v = cap;
        HTIMS_DCHECK(v >= 0.0, "accumulated sample is non-negative");
        out[i] = v;
    }
}

double Detector::expected_response(double expected_ions) const {
    const double lambda = expected_ions + config_.dark_rate;
    if (config_.mode == DetectionMode::kTdc) return 1.0 - std::exp(-lambda);
    return lambda * config_.gain;
}

}  // namespace htims::instrument
