#include "instrument/peptide_library.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "instrument/constants.hpp"

namespace htims::instrument {

double peptide_trendline_k0(double neutral_mass_da, int charge) {
    HTIMS_EXPECTS(neutral_mass_da > 0.0 && charge >= 1);
    return 72.0 * static_cast<double>(charge) / std::pow(neutral_mass_da, 2.0 / 3.0);
}

SampleMixture make_calibration_mix() {
    // Literature-plausible values for a standard ESI peptide mix; the exact
    // digits matter less than the realistic spread of m/z, charge and K0.
    SampleMixture mix;
    mix.name = "9-peptide calibration standard";
    struct Row {
        const char* name;
        double neutral_mass;
        int charge;
        double k0;
        double intensity;
    };
    const Row rows[] = {
        {"bradykinin", 1060.57, 2, 1.23, 5.0e4},
        {"angiotensin I", 1296.69, 2, 1.12, 4.0e4},
        {"angiotensin II", 1046.54, 2, 1.20, 6.0e4},
        {"fibrinopeptide A", 1536.69, 2, 1.05, 3.0e4},
        {"neurotensin", 1672.92, 3, 1.32, 3.5e4},
        {"substance P", 1347.74, 2, 1.10, 4.5e4},
        {"renin substrate", 1758.93, 3, 1.28, 2.5e4},
        {"melittin", 2845.76, 4, 1.35, 2.0e4},
        {"gramicidin S", 1141.45, 2, 1.15, 5.5e4},
    };
    for (const Row& r : rows) {
        IonSpecies sp;
        sp.name = r.name;
        sp.charge = r.charge;
        sp.mz = r.neutral_mass / static_cast<double>(r.charge) + kProtonMassDa;
        sp.reduced_mobility = r.k0;
        sp.intensity = r.intensity;
        mix.species.push_back(sp);
    }
    return mix;
}

SampleMixture make_tryptic_digest(const PeptideLibraryConfig& config) {
    if (config.count == 0) throw ConfigError("digest species count must be positive");
    if (config.mass_min_da <= 0.0 || config.mass_max_da <= config.mass_min_da)
        throw ConfigError("digest mass range invalid");
    if (config.abundance_min <= 0.0 || config.abundance_max < config.abundance_min)
        throw ConfigError("digest abundance range invalid");

    Rng rng(config.seed);
    SampleMixture mix;
    mix.name = "synthetic tryptic digest (" + std::to_string(config.count) + " peptides)";
    mix.species.reserve(config.count);
    const double log_lo = std::log(config.abundance_min);
    const double log_hi = std::log(config.abundance_max);
    for (std::size_t i = 0; i < config.count; ++i) {
        IonSpecies sp;
        sp.name = "pep" + std::to_string(i);
        // Tryptic mass distribution: skewed toward small peptides.
        const double u = rng.uniform();
        const double mass =
            config.mass_min_da + (config.mass_max_da - config.mass_min_da) * u * u;
        // Heavier peptides favour higher charge states.
        sp.charge = (mass > 2400.0 && rng.bernoulli(0.5)) ? 3
                    : (mass > 1400.0 && rng.bernoulli(0.35)) ? 3
                                                             : 2;
        sp.mz = mass / static_cast<double>(sp.charge) + kProtonMassDa;
        const double k0 = peptide_trendline_k0(mass, sp.charge);
        sp.reduced_mobility = k0 * (1.0 + config.k0_scatter * rng.gaussian());
        sp.intensity = std::exp(rng.uniform(log_lo, log_hi));
        sp.retention_time_s = rng.uniform(config.gradient_start_s, config.gradient_end_s);
        sp.lc_sigma_s = rng.uniform(config.lc_sigma_min_s, config.lc_sigma_max_s);
        mix.species.push_back(sp);
    }
    return mix;
}

IonSpecies make_spiked_peptide(const std::string& name, double mz, int charge,
                               double intensity) {
    HTIMS_EXPECTS(mz > 0.0 && charge >= 1 && intensity >= 0.0);
    IonSpecies sp;
    sp.name = name;
    sp.mz = mz;
    sp.charge = charge;
    sp.reduced_mobility =
        peptide_trendline_k0((mz - kProtonMassDa) * static_cast<double>(charge), charge);
    sp.intensity = intensity;
    return sp;
}

}  // namespace htims::instrument
