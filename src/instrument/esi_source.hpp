// esi_source.hpp — electrospray ionization source with optional LC elution.
//
// Supplies per-species ion currents (ions/s) as a function of experiment
// time. Without LC, currents are constant; with LC, each species elutes as
// a Gaussian chromatographic peak around its retention time, which is what
// drives the dynamically varying source function the AGC trap responds to.
#pragma once

#include <span>

#include "instrument/ion.hpp"

namespace htims::instrument {

/// ESI source model. Thread-safe (const after construction).
class EsiSource {
public:
    /// `lc_mode` true enables retention-time gating of species currents.
    explicit EsiSource(SampleMixture mixture, bool lc_mode = false);

    const SampleMixture& mixture() const { return mixture_; }
    bool lc_mode() const { return lc_mode_; }
    std::size_t species_count() const { return mixture_.species.size(); }

    /// Instantaneous current of one species at experiment time t (ions/s).
    double current(std::size_t species, double t_s) const;

    /// Instantaneous total current at experiment time t (ions/s) — the
    /// quantity an AGC controller measures.
    double total_current(double t_s) const;

    /// Fill `out` (size species_count()) with the per-species currents at t.
    void currents(double t_s, std::span<double> out) const;

private:
    SampleMixture mixture_;
    bool lc_mode_;
};

}  // namespace htims::instrument
