// constants.hpp — physical constants and unit helpers for the instrument
// models. SI units are used internally; pressures are carried in Torr and
// temperatures in kelvin because reduced-mobility corrections are
// conventionally written that way in the IMS literature.
#pragma once

namespace htims::instrument {

inline constexpr double kBoltzmann = 1.380649e-23;        ///< J/K
inline constexpr double kElementaryCharge = 1.602176634e-19;  ///< C
inline constexpr double kVacuumPermittivity = 8.8541878128e-12;  ///< F/m
inline constexpr double kStandardPressureTorr = 760.0;
inline constexpr double kStandardTemperatureK = 273.15;
inline constexpr double kAvogadro = 6.02214076e23;        ///< 1/mol
inline constexpr double kProtonMassDa = 1.007276466;      ///< Da
inline constexpr double kDaltonKg = 1.66053906660e-27;    ///< kg
inline constexpr double kIsotopeSpacingDa = 1.0033548;    ///< Da (13C - 12C)

/// Full width at half maximum of a Gaussian with unit sigma.
inline constexpr double kFwhmPerSigma = 2.3548200450309493;

inline constexpr double ms_to_s(double ms) { return ms * 1e-3; }
inline constexpr double us_to_s(double us) { return us * 1e-6; }
inline constexpr double s_to_ms(double s) { return s * 1e3; }
inline constexpr double s_to_us(double s) { return s * 1e6; }

}  // namespace htims::instrument
