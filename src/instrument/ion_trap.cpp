#include "instrument/ion_trap.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::instrument {

IonFunnelTrap::IonFunnelTrap(const IonTrapConfig& config) : config_(config) {
    if (config.capacity_charges <= 0.0) throw ConfigError("trap capacity must be positive");
    if (config.transmission <= 0.0 || config.transmission > 1.0)
        throw ConfigError("trap transmission must be in (0, 1]");
    if (config.min_fill_time_s <= 0.0 || config.max_fill_time_s < config.min_fill_time_s)
        throw ConfigError("trap fill-time bounds invalid");
    if (config.agc_target_fraction <= 0.0 || config.agc_target_fraction > 1.0)
        throw ConfigError("AGC target fraction must be in (0, 1]");
}

TrapFill IonFunnelTrap::accumulate(std::span<const double> currents,
                                   std::span<const IonSpecies> species,
                                   double fill_time_s) const {
    HTIMS_EXPECTS(currents.size() == species.size());
    HTIMS_EXPECTS(fill_time_s >= 0.0);
    TrapFill fill;
    fill.fill_time_s = fill_time_s;
    fill.ions.resize(species.size());

    double incoming_charges = 0.0;
    for (std::size_t i = 0; i < species.size(); ++i) {
        fill.ions[i] = currents[i] * fill_time_s;
        incoming_charges += fill.ions[i] * static_cast<double>(species[i].charge);
    }

    double keep = config_.transmission;
    if (incoming_charges > config_.capacity_charges) {
        // Space-charge spill: excess charge is ejected; modelled as a
        // species-independent proportional loss.
        keep *= config_.capacity_charges / incoming_charges;
        fill.saturated = true;
    }
    fill.survival = keep;

    fill.total_charges = 0.0;
    for (std::size_t i = 0; i < species.size(); ++i) {
        fill.ions[i] *= keep;
        fill.total_charges += fill.ions[i] * static_cast<double>(species[i].charge);
    }
    // Physical invariant the saturation model must preserve: the released
    // packet never exceeds the trap's charge capacity (modulo rounding).
    HTIMS_DCHECK(fill.total_charges <= config_.capacity_charges * (1.0 + 1e-9),
                 "released packet respects trap capacity");
    HTIMS_DCHECK(fill.survival > 0.0 && fill.survival <= 1.0,
                 "survival is a fraction");
    return fill;
}

double IonFunnelTrap::agc_fill_time(double total_charge_current) const {
    HTIMS_EXPECTS(total_charge_current >= 0.0);
    if (total_charge_current <= 0.0) return config_.max_fill_time_s;
    const double target = config_.agc_target_fraction * config_.capacity_charges;
    const double t = target / total_charge_current;
    return std::clamp(t, config_.min_fill_time_s, config_.max_fill_time_s);
}

double IonFunnelTrap::utilization(double fill_time_s, double release_period_s) const {
    HTIMS_EXPECTS(release_period_s > 0.0);
    const double fraction = std::min(fill_time_s, release_period_s) / release_period_s;
    return fraction * config_.transmission;
}

}  // namespace htims::instrument
