// detector.hpp — microchannel-plate detector and ADC front-end model.
//
// Produces what the data-capture pipeline ingests: digitized samples with
// ion-counting (Poisson) statistics, single-ion pulse-height spread from
// the electron multiplier, electronic noise, a chemical/dark background,
// and an 8-bit-style ADC with clipping — the word width the FPGA capture
// stage was built around.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"

namespace htims::instrument {

/// Digitization strategy.
enum class DetectionMode {
    kAdc,  ///< analog-to-digital conversion: pulse heights summed per bin
    kTdc,  ///< time-to-digital counting: a discriminator registers at most
           ///< one event per bin per period (dead time = one bin), the
           ///< historical mode whose saturation at high flux motivated the
           ///< ADC-based acquisition of the multiplexed platform (#22)
};

/// Static configuration of the detection chain.
struct DetectorConfig {
    double gain = 1.0;             ///< mean digitized amplitude per ion (counts)
    double gain_spread = 0.35;     ///< relative sigma of single-ion pulse height
    double noise_sigma = 0.4;      ///< electronic noise per sample (counts, 1 sigma)
    double dark_rate = 0.02;       ///< background ions per sample bin
    int adc_bits = 8;              ///< ADC resolution
    bool clip = true;              ///< saturate at full scale (false = ideal ADC)
    DetectionMode mode = DetectionMode::kAdc;
};

/// Detector + ADC model.
class Detector {
public:
    explicit Detector(const DetectorConfig& config);

    const DetectorConfig& config() const { return config_; }
    double full_scale() const { return full_scale_; }

    /// Analog front-end response to an expected `expected_ions` arrival in
    /// one sample bin: Poisson ion count, multiplier gain statistics,
    /// electronic noise. Can be negative (noise around zero signal).
    double analog_sample(double expected_ions, Rng& rng) const;

    /// Digitize one analog value: round, clamp at zero and (optionally) at
    /// ADC full scale.
    std::uint32_t digitize(double analog) const;

    /// Acquire a full record: for each bin of `expected` (ions per bin),
    /// produce a digitized sample in `out`.
    void acquire(std::span<const double> expected, std::span<std::uint32_t> out,
                 Rng& rng) const;

    /// Acquire `periods` repeats of the same expected record and return the
    /// accumulated counts (the sum a hardware accumulator would hold).
    /// Statistically equivalent to summing `periods` independent
    /// acquisitions — Poisson rates and noise variances add — while costing
    /// one pass; per-sample ADC clipping is approximated by clamping the
    /// accumulated value at periods * full_scale.
    void acquire_accumulated(std::span<const double> expected, std::size_t periods,
                             std::span<double> out, Rng& rng) const;

    /// Expected digitized value for a given expected ion count — the
    /// noise-free transfer curve (used by tests and calibration).
    double expected_response(double expected_ions) const;

private:
    DetectorConfig config_;
    double full_scale_;
};

}  // namespace htims::instrument
