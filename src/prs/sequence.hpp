// sequence.hpp — maximal-length sequences and the simplex (S) matrix.
//
// In Hadamard-transform IMS the ion gate is driven by a pseudo-random binary
// sequence a[0..N-1] (an m-sequence, N = 2^n - 1). An ion packet injected at
// gate-open time i-j with drift time j arrives at the detector at time i, so
// the detector observes the circular convolution y = S x of the drift
// profile with the gate sequence, where S[i][j] = a[(i - j) mod N] (the
// physically causal convolution convention, used consistently throughout
// the library). This module provides the sequence, its state
// trajectory (needed by the O(N log N) decoder), and a dense S-matrix with
// exact O(N^2) encode/decode used as the verification reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "prs/lfsr.hpp"

namespace htims::prs {

/// One period of an m-sequence plus the LFSR state trajectory that generated
/// it. The state trajectory visits every nonzero n-bit value exactly once;
/// `unit_state_time(k)` gives the step index at which the state equals
/// 1 << k — the anchor the fast Walsh–Hadamard decoder uses to map shift
/// indices to linear functionals.
class MSequence {
public:
    /// Generate one full period for the given order with the library's
    /// primitive polynomial. `seed_state` selects the cyclic phase.
    explicit MSequence(int order, std::uint32_t seed_state = 0);

    int order() const { return order_; }
    /// Period N = 2^order - 1.
    std::size_t length() const { return bits_.size(); }

    /// The binary sequence a[t], one period.
    std::span<const std::uint8_t> bits() const { return bits_; }
    std::uint8_t bit(std::size_t t) const { return bits_[t % bits_.size()]; }

    /// LFSR state before emitting bit t; all values nonzero and distinct.
    std::span<const std::uint32_t> states() const { return states_; }

    /// Step index t at which states()[t] == (1u << k), k in [0, order).
    std::size_t unit_state_time(int k) const;

    /// Number of ones in one period (= 2^(order-1) for an m-sequence).
    std::size_t ones() const { return ones_; }

    /// Duty cycle of the gate waveform: ones / N (≈ 0.5).
    double duty_cycle() const;

    /// Periodic autocorrelation at lag k of the ±1-mapped sequence; the
    /// m-sequence signature is N at lag 0 and -1 elsewhere.
    double autocorrelation(std::size_t lag) const;

private:
    int order_;
    std::vector<std::uint8_t> bits_;
    std::vector<std::uint32_t> states_;
    std::vector<std::size_t> unit_times_;
    std::size_t ones_ = 0;
};

/// Dense circulant simplex matrix S[i][j] = a[(i+j) mod N] with exact
/// reference encode/decode. Quadratic in N — intended for verification and
/// for the small orders used in unit tests; production decoding goes through
/// transform::Deconvolver.
class SimplexMatrix {
public:
    explicit SimplexMatrix(const MSequence& seq);

    std::size_t size() const { return n_; }
    double at(std::size_t i, std::size_t j) const { return matrix_[i * n_ + j]; }

    /// y = S x (circular superposition of shifted profiles).
    AlignedVector<double> encode(std::span<const double> x) const;

    /// x = S^{-1} y with the closed-form inverse S^{-1} = 2/(N+1) (2 S^T - J).
    AlignedVector<double> decode(std::span<const double> y) const;

    /// Explicit inverse matrix entry (for property tests).
    double inverse_at(std::size_t i, std::size_t j) const;

private:
    std::size_t n_;
    AlignedVector<double> matrix_;
};

}  // namespace htims::prs
