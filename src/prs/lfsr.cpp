#include "prs/lfsr.hpp"

#include "common/error.hpp"

namespace htims::prs {

namespace {
std::uint32_t order_mask(int order) { return (order == 32) ? ~0u : ((1u << order) - 1); }

std::uint32_t default_seed(std::uint32_t seed, std::uint32_t mask) {
    const std::uint32_t s = seed == 0 ? mask : (seed & mask);
    if (s == 0) throw ConfigError("LFSR state must be nonzero");
    return s;
}
}  // namespace

FibonacciLfsr::FibonacciLfsr(int order, std::uint32_t seed_state)
    : order_(order),
      taps_(fibonacci_tap_mask(order)),
      mask_(order_mask(order)),
      state_(default_seed(seed_state, mask_)) {}

int FibonacciLfsr::step() {
    const int out = static_cast<int>(state_ & 1u);
    // Feedback = parity of the tapped state bits.
    const std::uint32_t tapped = state_ & taps_;
#if defined(__GNUC__) || defined(__clang__)
    const std::uint32_t fb = static_cast<std::uint32_t>(__builtin_popcount(tapped)) & 1u;
#else
    std::uint32_t fb = tapped;
    fb ^= fb >> 16;
    fb ^= fb >> 8;
    fb ^= fb >> 4;
    fb ^= fb >> 2;
    fb ^= fb >> 1;
    fb &= 1u;
#endif
    state_ = (state_ >> 1) | (fb << (order_ - 1));
    return out;
}

std::vector<std::uint8_t> FibonacciLfsr::generate(std::size_t count) {
    std::vector<std::uint8_t> bits(count);
    for (auto& b : bits) b = static_cast<std::uint8_t>(step());
    return bits;
}

GaloisLfsr::GaloisLfsr(int order, std::uint32_t seed_state)
    : order_(order),
      taps_(tap_mask(order)),
      mask_(order_mask(order)),
      state_(default_seed(seed_state, mask_)) {}

int GaloisLfsr::step() {
    const int out = static_cast<int>(state_ & 1u);
    state_ >>= 1;
    if (out) state_ ^= taps_;
    state_ &= mask_;
    return out;
}

std::vector<std::uint8_t> GaloisLfsr::generate(std::size_t count) {
    std::vector<std::uint8_t> bits(count);
    for (auto& b : bits) b = static_cast<std::uint8_t>(step());
    return bits;
}

}  // namespace htims::prs
