#include "prs/sequence.hpp"

#include "common/error.hpp"

namespace htims::prs {

MSequence::MSequence(int order, std::uint32_t seed_state) : order_(order) {
    const auto n = static_cast<std::size_t>(sequence_length(order));
    bits_.resize(n);
    states_.resize(n);
    FibonacciLfsr lfsr(order, seed_state);
    for (std::size_t t = 0; t < n; ++t) {
        states_[t] = lfsr.state();
        bits_[t] = static_cast<std::uint8_t>(lfsr.step());
        ones_ += bits_[t];
    }
    HTIMS_ENSURES(lfsr.state() == states_[0]);  // full period reached

    unit_times_.assign(static_cast<std::size_t>(order), n);
    for (std::size_t t = 0; t < n; ++t) {
        const std::uint32_t s = states_[t];
        if ((s & (s - 1)) == 0) {  // power of two: a unit state
            int k = 0;
            while ((s >> k) != 1u) ++k;
            unit_times_[static_cast<std::size_t>(k)] = t;
        }
    }
    for (std::size_t k = 0; k < unit_times_.size(); ++k)
        HTIMS_ENSURES(unit_times_[k] < n);
}

std::size_t MSequence::unit_state_time(int k) const {
    HTIMS_EXPECTS(k >= 0 && k < order_);
    return unit_times_[static_cast<std::size_t>(k)];
}

double MSequence::duty_cycle() const {
    return static_cast<double>(ones_) / static_cast<double>(bits_.size());
}

double MSequence::autocorrelation(std::size_t lag) const {
    const std::size_t n = bits_.size();
    long long acc = 0;
    for (std::size_t t = 0; t < n; ++t) {
        const int a = bits_[t] ? 1 : -1;
        const int b = bits_[(t + lag) % n] ? 1 : -1;
        acc += a * b;
    }
    return static_cast<double>(acc);
}

SimplexMatrix::SimplexMatrix(const MSequence& seq) : n_(seq.length()) {
    matrix_.resize(n_ * n_);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = 0; j < n_; ++j)
            matrix_[i * n_ + j] = static_cast<double>(seq.bit(i + n_ - j));
}

AlignedVector<double> SimplexMatrix::encode(std::span<const double> x) const {
    HTIMS_EXPECTS(x.size() == n_);
    AlignedVector<double> y(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        double acc = 0.0;
        const double* row = &matrix_[i * n_];
        for (std::size_t j = 0; j < n_; ++j) acc += row[j] * x[j];
        y[i] = acc;
    }
    return y;
}

AlignedVector<double> SimplexMatrix::decode(std::span<const double> y) const {
    HTIMS_EXPECTS(y.size() == n_);
    // S^{-1} = 2/(N+1) (2 S^T - J): x[j] = 2/(N+1) (2 sum_i S[i][j] y[i] - sum_i y[i])
    double total = 0.0;
    for (double v : y) total += v;
    AlignedVector<double> x(n_, 0.0);
    const double scale = 2.0 / static_cast<double>(n_ + 1);
    for (std::size_t j = 0; j < n_; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n_; ++i) acc += matrix_[i * n_ + j] * y[i];
        x[j] = scale * (2.0 * acc - total);
    }
    return x;
}

double SimplexMatrix::inverse_at(std::size_t i, std::size_t j) const {
    HTIMS_EXPECTS(i < n_ && j < n_);
    const double scale = 2.0 / static_cast<double>(n_ + 1);
    return scale * (2.0 * at(j, i) - 1.0);
}

}  // namespace htims::prs
