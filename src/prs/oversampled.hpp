// oversampled.hpp — PNNL-modified (oversampled) pseudo-random sequences.
//
// The enhancement the paper's FPGA deconvolver implements: the base
// m-sequence of length N is laid onto a finer time grid with an oversampling
// factor F, giving an F·N-bin reconstruction window from the same drift
// period. Two gate strategies are modelled:
//
//  * kStretched — the gate follows the base chip verbatim (each chip spans F
//    fine bins, the gate is open for the whole '1' chip). The fine-grained
//    system is *coupled* across oversampling phases and requires the
//    enhanced deconvolution (transform/enhanced.hpp) to invert.
//  * kPulsed — the gate opens only for the first fine bin of each '1' chip,
//    with the ion-funnel trap accumulating ions between openings. Each
//    oversampling phase then forms an independent standard simplex system,
//    and the modified sequence delivers ~2x more gate pulses per unit time
//    than a classic HT-IMS experiment of the same duration — the property
//    reported for the modified-PRS approach (Clowers et al. 2008).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "prs/sequence.hpp"

namespace htims::prs {

/// Gate strategy for the oversampled sequence.
enum class GateMode {
    kStretched,  ///< gate open across the whole '1' chip (F fine bins)
    kPulsed,     ///< gate open only in the first fine bin of a '1' chip
};

/// An oversampled PRS: the base m-sequence expanded onto a grid of
/// factor() x base().length() fine bins, with a gate waveform according to
/// the chosen GateMode.
class OversampledPrs {
public:
    OversampledPrs(int order, int factor, GateMode mode, std::uint32_t seed_state = 0);

    const MSequence& base() const { return base_; }
    int factor() const { return factor_; }
    GateMode mode() const { return mode_; }

    /// Fine-grid length: factor * (2^order - 1).
    std::size_t length() const { return gate_.size(); }

    /// Gate waveform over one period of the fine grid (1 = gate open).
    std::span<const std::uint8_t> gate() const { return gate_; }

    /// Number of gate-opening events (rising edges) per period.
    std::size_t pulse_count() const { return pulses_; }

    /// Fraction of fine bins during which the gate is open.
    double open_fraction() const;

    /// Gate pulses per fine bin — the "pulses per unit time" figure used to
    /// compare against a classic HT-IMS experiment of equal duration.
    double pulses_per_bin() const;

    /// Reference encoder: circular superposition y[m] = sum_k g[(m-k)] x[k]
    /// on the fine grid. Exploits gate sparsity; O(open_bins * length).
    AlignedVector<double> encode_reference(std::span<const double> x) const;

private:
    MSequence base_;
    int factor_;
    GateMode mode_;
    std::vector<std::uint8_t> gate_;
    std::size_t pulses_ = 0;
};

}  // namespace htims::prs
