// lfsr.hpp — linear feedback shift registers over GF(2).
//
// The Fibonacci form is the reference generator for m-sequences (its state
// sequence is what the fast simplex decoder indexes by); the Galois form is
// provided as the hardware-shaped equivalent (single XOR per step — the form
// an FPGA gate-control block would implement) and is verified against the
// Fibonacci form in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "prs/polynomials.hpp"

namespace htims::prs {

/// Fibonacci (external-XOR) LFSR. State is `order` bits; the output bit of
/// each step is the low state bit, and the feedback bit (XOR of tap bits)
/// shifts in at the top.
class FibonacciLfsr {
public:
    /// Construct with the library's primitive polynomial for `order` and a
    /// nonzero initial state (default all-ones).
    explicit FibonacciLfsr(int order, std::uint32_t seed_state = 0);

    int order() const { return order_; }
    std::uint32_t state() const { return state_; }

    /// Advance one step; returns the output bit (0/1).
    int step();

    /// Generate the next `count` output bits.
    std::vector<std::uint8_t> generate(std::size_t count);

private:
    int order_;
    std::uint32_t taps_;
    std::uint32_t mask_;
    std::uint32_t state_;
};

/// Galois (internal-XOR) LFSR with the same feedback polynomial. Produces a
/// maximal-length sequence (the cyclically shifted / time-reversed image of
/// the Fibonacci sequence), with a single XOR per step — the form a gate
/// control block on an FPGA would implement.
class GaloisLfsr {
public:
    explicit GaloisLfsr(int order, std::uint32_t seed_state = 0);

    int order() const { return order_; }
    std::uint32_t state() const { return state_; }

    /// Advance one step; returns the output bit (0/1).
    int step();

    std::vector<std::uint8_t> generate(std::size_t count);

private:
    int order_;
    std::uint32_t taps_;
    std::uint32_t mask_;
    std::uint32_t state_;
};

}  // namespace htims::prs
