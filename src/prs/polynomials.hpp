// polynomials.hpp — primitive feedback polynomials over GF(2).
//
// A Fibonacci LFSR with a primitive feedback polynomial of degree n cycles
// through all 2^n - 1 nonzero states, producing a maximal-length sequence
// (m-sequence). The taps below are the standard published maximal sets
// (Xilinx XAPP052 family); every entry is verified to be maximal by the
// test suite's exhaustive period check.
#pragma once

#include <cstdint>
#include <span>

namespace htims::prs {

/// Smallest and largest supported LFSR order (sequence lengths 3 .. 2^20-1).
inline constexpr int kMinOrder = 2;
inline constexpr int kMaxOrder = 20;

/// Tap positions (1-based polynomial exponents) of a primitive polynomial of
/// the given order. The feedback bit is the XOR of the state bits at these
/// positions. Throws ConfigError for unsupported orders.
std::span<const int> primitive_taps(int order);

/// Feedback polynomial as a bitmask: bit (t-1) set for each tap t. This is
/// the toggle mask of the right-shift Galois-form LFSR.
std::uint32_t tap_mask(int order);

/// Feedback mask of the right-shift Fibonacci-form LFSR (output at bit 0,
/// new bit inserted at bit order-1): with bit k of the state holding the
/// sequence bit emitted k steps from now, the recurrence
/// a[t+n] = a[t] ^ a[t+t1] ^ ... (polynomial x^n + x^t1 + ... + 1) means
/// the feedback XORs bit 0 and bits t_i for every tap t_i < order.
std::uint32_t fibonacci_tap_mask(int order);

/// Sequence length for a maximal LFSR of this order: 2^order - 1.
std::uint64_t sequence_length(int order);

}  // namespace htims::prs
