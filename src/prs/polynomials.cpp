#include "prs/polynomials.hpp"

#include <array>
#include <vector>

#include "common/error.hpp"

namespace htims::prs {

namespace {

// One maximal tap set per order. Taps are polynomial exponents; the
// corresponding feedback polynomial is x^n + sum(x^t) + 1.
const std::array<std::vector<int>, kMaxOrder + 1> kTaps = {{
    /* 0 */ {},
    /* 1 */ {},
    /* 2 */ {2, 1},
    /* 3 */ {3, 2},
    /* 4 */ {4, 3},
    /* 5 */ {5, 3},
    /* 6 */ {6, 5},
    /* 7 */ {7, 6},
    /* 8 */ {8, 6, 5, 4},
    /* 9 */ {9, 5},
    /* 10 */ {10, 7},
    /* 11 */ {11, 9},
    /* 12 */ {12, 11, 10, 4},
    /* 13 */ {13, 12, 11, 8},
    /* 14 */ {14, 13, 12, 2},
    /* 15 */ {15, 14},
    /* 16 */ {16, 15, 13, 4},
    /* 17 */ {17, 14},
    /* 18 */ {18, 11},
    /* 19 */ {19, 18, 17, 14},
    /* 20 */ {20, 17},
}};

void check_order(int order) {
    if (order < kMinOrder || order > kMaxOrder)
        throw ConfigError("LFSR order must be in [" + std::to_string(kMinOrder) + ", " +
                          std::to_string(kMaxOrder) + "], got " + std::to_string(order));
}

}  // namespace

std::span<const int> primitive_taps(int order) {
    check_order(order);
    return kTaps[static_cast<std::size_t>(order)];
}

std::uint32_t tap_mask(int order) {
    check_order(order);
    std::uint32_t mask = 0;
    for (int t : kTaps[static_cast<std::size_t>(order)]) mask |= 1u << (t - 1);
    return mask;
}

std::uint32_t fibonacci_tap_mask(int order) {
    check_order(order);
    std::uint32_t mask = 1;  // the x^0 term
    for (int t : kTaps[static_cast<std::size_t>(order)])
        if (t < order) mask |= 1u << t;
    return mask;
}

std::uint64_t sequence_length(int order) {
    check_order(order);
    return (std::uint64_t{1} << order) - 1;
}

}  // namespace htims::prs
