#include "prs/oversampled.hpp"

#include "common/error.hpp"

namespace htims::prs {

OversampledPrs::OversampledPrs(int order, int factor, GateMode mode, std::uint32_t seed_state)
    : base_(order, seed_state), factor_(factor), mode_(mode) {
    if (factor < 1 || factor > 64) throw ConfigError("oversampling factor must be in [1, 64]");
    const std::size_t n = base_.length();
    gate_.assign(n * static_cast<std::size_t>(factor), 0);
    for (std::size_t q = 0; q < n; ++q) {
        if (!base_.bit(q)) continue;
        const std::size_t start = q * static_cast<std::size_t>(factor);
        if (mode == GateMode::kPulsed) {
            gate_[start] = 1;
        } else {
            for (int r = 0; r < factor; ++r) gate_[start + static_cast<std::size_t>(r)] = 1;
        }
    }
    // Count rising edges over the (circular) period.
    const std::size_t m = gate_.size();
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint8_t prev = gate_[(i + m - 1) % m];
        if (gate_[i] && !prev) ++pulses_;
    }
}

double OversampledPrs::open_fraction() const {
    std::size_t open = 0;
    for (auto g : gate_) open += g;
    return static_cast<double>(open) / static_cast<double>(gate_.size());
}

double OversampledPrs::pulses_per_bin() const {
    return static_cast<double>(pulses_) / static_cast<double>(gate_.size());
}

AlignedVector<double> OversampledPrs::encode_reference(std::span<const double> x) const {
    HTIMS_EXPECTS(x.size() == gate_.size());
    const std::size_t m = gate_.size();
    AlignedVector<double> y(m, 0.0);
    // y[t] = sum over open gate offsets o of x[(t - o) mod m]; equivalently
    // every open bin o adds a copy of x shifted by o.
    for (std::size_t o = 0; o < m; ++o) {
        if (!gate_[o]) continue;
        for (std::size_t k = 0; k < m; ++k) {
            const std::size_t t = o + k < m ? o + k : o + k - m;
            y[t] += x[k];
        }
    }
    return y;
}

}  // namespace htims::prs
