#include "transform/circulant.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace htims::transform {

namespace {

/// Nonzero kernel entries as (offset, value) pairs; gate kernels are ~50%
/// sparse so this halves the matvec cost.
std::vector<std::pair<std::size_t, double>> sparsify(std::span<const double> kernel) {
    std::vector<std::pair<std::size_t, double>> nz;
    nz.reserve(kernel.size());
    for (std::size_t o = 0; o < kernel.size(); ++o)
        if (kernel[o] != 0.0) nz.emplace_back(o, kernel[o]);
    return nz;
}

void convolve_into(const std::vector<std::pair<std::size_t, double>>& nz, std::size_t n,
                   std::span<const double> x, std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
    for (const auto& [o, v] : nz) {
        // contribution of kernel tap at offset o: y[k + o] += v * x[k]
        const std::size_t split = n - o;
        for (std::size_t k = 0; k < split; ++k) y[k + o] += v * x[k];
        for (std::size_t k = split; k < n; ++k) y[k + o - n] += v * x[k];
    }
}

void correlate_into(const std::vector<std::pair<std::size_t, double>>& nz, std::size_t n,
                    std::span<const double> y, std::span<double> r) {
    std::fill(r.begin(), r.end(), 0.0);
    for (const auto& [o, v] : nz) {
        // adjoint: r[k] += v * y[k + o]
        const std::size_t split = n - o;
        for (std::size_t k = 0; k < split; ++k) r[k] += v * y[k + o];
        for (std::size_t k = split; k < n; ++k) r[k] += v * y[k + o - n];
    }
}

double dot(std::span<const double> a, std::span<const double> b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

}  // namespace

AlignedVector<double> circular_convolve(std::span<const double> kernel,
                                        std::span<const double> x) {
    HTIMS_EXPECTS(kernel.size() == x.size());
    AlignedVector<double> y(x.size());
    convolve_into(sparsify(kernel), x.size(), x, y);
    return y;
}

AlignedVector<double> circular_correlate(std::span<const double> kernel,
                                         std::span<const double> y) {
    HTIMS_EXPECTS(kernel.size() == y.size());
    AlignedVector<double> r(y.size());
    correlate_into(sparsify(kernel), y.size(), y, r);
    return r;
}

CgResult circulant_lstsq(std::span<const double> kernel, std::span<const double> y,
                         const CgOptions& opts) {
    HTIMS_EXPECTS(kernel.size() == y.size());
    HTIMS_EXPECTS(opts.max_iterations > 0);
    const std::size_t n = y.size();
    const auto nz = sparsify(kernel);

    // Normal equations: (H^T H + ridge I) x = H^T y, solved with CG.
    AlignedVector<double> b(n);
    correlate_into(nz, n, y, b);

    CgResult result;
    result.x.assign(n, 0.0);
    AlignedVector<double> r = b;  // residual b - A x with x = 0
    AlignedVector<double> p = b;
    AlignedVector<double> hp(n), ap(n);

    const double b_norm = std::sqrt(dot(b, b));
    if (b_norm == 0.0) return result;

    double rr = dot(r, r);
    for (int it = 0; it < opts.max_iterations; ++it) {
        // A p = H^T (H p) + ridge p
        convolve_into(nz, n, p, hp);
        correlate_into(nz, n, hp, ap);
        if (opts.ridge != 0.0)
            for (std::size_t i = 0; i < n; ++i) ap[i] += opts.ridge * p[i];

        const double p_ap = dot(p, ap);
        if (p_ap <= 0.0) break;  // numerical breakdown; return best so far
        const double alpha = rr / p_ap;
        for (std::size_t i = 0; i < n; ++i) {
            result.x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        const double rr_new = dot(r, r);
        result.iterations = it + 1;
        result.relative_residual = std::sqrt(rr_new) / b_norm;
        if (result.relative_residual < opts.tolerance) break;
        const double beta = rr_new / rr;
        for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
        rr = rr_new;
    }
    return result;
}

}  // namespace htims::transform
