// filters.hpp — post-deconvolution spectrum conditioning.
//
// Production IMS-TOF pipelines smooth and baseline-correct the deconvolved
// drift spectra before peak picking. Provided here: moving-average and
// Savitzky–Golay smoothing (quadratic, odd windows — preserves peak
// position and, far better than the boxcar, peak height), a median filter
// for impulse (single-bin spike) suppression, and a rolling-minimum
// baseline estimator ("top-hat" opening) for slowly varying chemical
// background.
//
// All filters treat the record as *circular*, matching the periodic
// multiplexed drift record.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"

namespace htims::transform {

/// Circular moving average over an odd window (window/2 each side).
AlignedVector<double> moving_average(std::span<const double> x, std::size_t window);

/// Circular Savitzky–Golay smoothing, quadratic polynomial, odd window in
/// {5, 7, 9, 11}. Preserves peak centroids exactly for symmetric peaks.
AlignedVector<double> savitzky_golay(std::span<const double> x, std::size_t window);

/// Circular median filter over an odd window; removes isolated single-bin
/// spikes without broadening genuine multi-bin peaks.
AlignedVector<double> median_filter(std::span<const double> x, std::size_t window);

/// Rolling-minimum baseline ("morphological opening"): erode with an odd
/// window, then dilate with the same window. The result underestimates any
/// peak narrower than the window but follows slow baseline drift.
AlignedVector<double> rolling_baseline(std::span<const double> x, std::size_t window);

/// Convenience: x - rolling_baseline(x, window), clamped at 0.
AlignedVector<double> baseline_corrected(std::span<const double> x, std::size_t window);

}  // namespace htims::transform
