// enhanced.hpp — the PNNL-enhanced deconvolution for oversampled PRS.
//
// This is the "more sophisticated deconvolution algorithm based on a
// PNNL-developed enhancement to standard Hadamard transform Ion Mobility
// spectrometry" the paper implements on the FPGA. The detector stream is
// sampled on a grid F times finer than the sequence chip; the decoder
// recovers an F*N-bin drift profile from one F*N-bin multiplexed record.
//
// Two gate modes (see prs/oversampled.hpp):
//
//  * kPulsed: each oversampling phase r forms an independent classic
//    simplex system Y_r = S X_r (Y_r[q] = y[F q + r], X_r[p] = x[F p + r]),
//    so the decode is F standard HT inversions — embarrassingly parallel
//    and free of cross-phase coupling.
//
//  * kStretched: the chip-wide gate couples the phases. With
//    Z_r = S^{-1} Y_r one can show
//        Z_r = sum_{t<=r} X_t + rot1( sum_{t>r} X_t ),
//    (rot1 = one-chip circular delay), which yields per-phase circular
//    difference equations (I - rot1) X_r = D_r with
//        D_0 = Z_0 - rot1(Z_{F-1}),   D_r = Z_r - Z_{r-1}  (r >= 1).
//    (I - rot1) is singular (constants are its null space); the decoder
//    integrates D_r around the circle anchored at a quiet chip — chosen as
//    the minimum of the chip-resolution total Z_{F-1}, exploiting the IMS
//    convention that the drift period is longer than the slowest ion so a
//    baseline region always exists — then distributes the remaining
//    constant so that sum_r X_r matches Z_{F-1} exactly.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "prs/oversampled.hpp"
#include "transform/deconvolver.hpp"

namespace htims::transform {

/// Decoder for oversampled (modified-PRS) acquisitions.
class EnhancedDeconvolver {
public:
    explicit EnhancedDeconvolver(const prs::OversampledPrs& prs);

    /// Fine-grid record length F * N.
    std::size_t length() const { return fine_len_; }
    int factor() const { return factor_; }
    prs::GateMode mode() const { return mode_; }

    struct Workspace {
        Deconvolver::Workspace base;
        AlignedVector<double> phase_in;   // one phase, length N
        AlignedVector<double> phase_out;  // one phase, length N
        AlignedVector<double> z;          // Z_r stack, length F * N (stretched mode)
    };
    Workspace make_workspace() const;

    /// Decode the fine-grid multiplexed record y (length F*N) into the
    /// fine-grid drift profile x (length F*N).
    void decode(std::span<const double> y, std::span<double> x, Workspace& ws) const;
    AlignedVector<double> decode(std::span<const double> y) const;

    /// Scratch for a lane-interleaved batch of `lanes` records.
    struct BatchWorkspace {
        Deconvolver::BatchWorkspace base;
        AlignedVector<double> phase_in;        // one phase, N * lanes
        AlignedVector<double> phase_out;       // one phase, N * lanes
        AlignedVector<double> z;               // Z_r stack, F * N * lanes (stretched)
        std::vector<std::size_t> anchor;       // per-lane quiet-chip index
        std::size_t lanes = 0;
    };
    BatchWorkspace make_batch_workspace(std::size_t lanes) const;

    /// Decode `ws.lanes` fine-grid records at once; y and x are
    /// lane-interleaved (element i of lane l at y[i * lanes + l]). The
    /// per-phase FWHT inversions run `lanes` wide through
    /// Deconvolver::decode_batch; the stretched-mode circular integration is
    /// inherently sequential per lane and runs scalar per lane in the exact
    /// arithmetic order of decode(), so batched results match the scalar
    /// decoder bit for bit (each lane keeps its own quiet-chip anchor).
    void decode_batch(std::span<const double> y, std::span<double> x,
                      BatchWorkspace& ws) const;

    /// Forward model on the fine grid (delegates to the gate waveform);
    /// reference implementation for tests and benches.
    AlignedVector<double> encode(std::span<const double> x) const;

    /// Fast forward model: F Hadamard encodes plus (for kStretched) a
    /// prefix-sum phase combination — O(F N log N) instead of O(F N^2).
    /// Verified against encode() in the test suite; used by the acquisition
    /// engine, which encodes one record per m/z channel.
    void encode_fast(std::span<const double> x, std::span<double> y, Workspace& ws) const;

private:
    void decode_pulsed(std::span<const double> y, std::span<double> x, Workspace& ws) const;
    void decode_stretched(std::span<const double> y, std::span<double> x, Workspace& ws) const;

    prs::OversampledPrs prs_;
    Deconvolver base_;
    std::size_t n_;         // chip-resolution length N
    std::size_t fine_len_;  // F * N
    int factor_;
    prs::GateMode mode_;
};

}  // namespace htims::transform
