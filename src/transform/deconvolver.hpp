// deconvolver.hpp — fast Hadamard-transform simplex encode/decode.
//
// The detector signal in HT-IMS is the circular convolution y = S x of the
// drift profile x with the gate m-sequence (S[t][k] = a[(t-k) mod N]).
// Because S is invertible in closed form, S^{-1} = 2/(N+1) (2 S^T - J), and
// because the ±1 image of S is a row/column-permuted Sylvester-Hadamard
// matrix, both the encode and the decode reduce to one fast Walsh–Hadamard
// transform of length N+1 = 2^n plus an index permutation:
//
//   decode:  z[s_t] = y[t];  w = FWHT(z);  x[k] = -2/(N+1) * w[f_k]
//   encode:  z[f_k] = x[k];  w = FWHT(z);  y[t] = (sum(x) - w[s_t]) / 2
//
// where s_t is the LFSR state trajectory and f_k the matching linear
// functional index, both precomputed from the sequence. This is the
// algorithm the paper's FPGA deconvolver implements (there in fixed point;
// see pipeline/fpga.hpp); here it is the double-precision software decoder
// used by the CPU backend and the verification reference for everything
// else. Complexity O(N log N), allocation-free when a Workspace is reused.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.hpp"
#include "prs/sequence.hpp"

namespace htims {
class ThreadPool;
}

namespace htims::transform {

/// Fast encoder/decoder for one m-sequence. Thread-safe for concurrent use
/// when each thread passes its own Workspace.
class Deconvolver {
public:
    explicit Deconvolver(const prs::MSequence& seq);

    /// Sequence length N = 2^order - 1.
    std::size_t length() const { return n_; }
    /// FWHT length N + 1.
    std::size_t padded_length() const { return n_ + 1; }

    /// Scratch buffer sized for one transform. Reuse across calls to avoid
    /// per-spectrum allocation in the streaming pipeline.
    struct Workspace {
        AlignedVector<double> buf;
    };
    Workspace make_workspace() const { return Workspace{AlignedVector<double>(n_ + 1)}; }

    /// x (length N) -> y (length N): y = S x, the multiplexed signal.
    void encode(std::span<const double> x, std::span<double> y, Workspace& ws) const;
    AlignedVector<double> encode(std::span<const double> x) const;

    /// y (length N) -> x (length N): x = S^{-1} y.
    void decode(std::span<const double> y, std::span<double> x, Workspace& ws) const;
    AlignedVector<double> decode(std::span<const double> y) const;

    /// Decode using a thread pool to parallelise the internal FWHT (only
    /// profitable for large N; the per-channel parallelism in the CPU
    /// backend is usually the better axis).
    void decode_parallel(std::span<const double> y, std::span<double> x, Workspace& ws,
                         ThreadPool& pool) const;

    /// Scratch for a lane-interleaved batch of `lanes` transforms:
    /// (N + 1) * lanes doubles.
    struct BatchWorkspace {
        AlignedVector<double> buf;
        std::size_t lanes = 0;
    };
    BatchWorkspace make_batch_workspace(std::size_t lanes) const {
        return BatchWorkspace{AlignedVector<double>((n_ + 1) * lanes), lanes};
    }

    /// Decode `ws.lanes` independent records at once. `y` and `x` are
    /// lane-interleaved (AoSoA): element t of lane l lives at
    /// y[t * lanes + l]. The scatter/gather index permutations are applied
    /// once per node group (L contiguous doubles move together) and the
    /// transform runs through fwht_batch, so each lane's result is
    /// bit-identical to decode() on that lane alone.
    void decode_batch(std::span<const double> y, std::span<double> x,
                      BatchWorkspace& ws) const;

    /// LFSR state trajectory s_t (scatter index for decode); values are
    /// distinct and nonzero, in [1, N].
    std::span<const std::uint32_t> scatter_index() const { return state_idx_; }

    /// Linear-functional index f_k (gather index for decode); values are
    /// distinct and nonzero, in [1, N].
    std::span<const std::uint32_t> gather_index() const { return func_idx_; }

    /// Decode normalization factor -2/(N+1).
    double decode_scale() const { return scale_; }

private:
    std::size_t n_;
    double scale_;
    std::vector<std::uint32_t> state_idx_;  // s_t, t in [0, N)
    std::vector<std::uint32_t> func_idx_;   // f_k, k in [0, N)
};

}  // namespace htims::transform
