// fwht.hpp — fast Walsh–Hadamard transform.
//
// The workhorse of the O(N log N) simplex decoder. The transform computed is
// the *unnormalized* Sylvester–Hadamard transform:
//     W[v] = sum_u (-1)^{<u,v>} z[u],   u, v in [0, 2^n)
// with <u,v> the GF(2) inner product of the bit vectors. Applying it twice
// multiplies by the length, i.e. fwht(fwht(z)) == len * z.
#pragma once

#include <cstddef>
#include <span>

namespace htims {
class ThreadPool;
}

namespace htims::transform {

/// In-place unnormalized FWHT. `data.size()` must be a power of two.
void fwht(std::span<double> data);

/// In-place FWHT parallelised over a thread pool. Falls back to the serial
/// version for small inputs where fork-join overhead dominates.
void fwht_parallel(std::span<double> data, ThreadPool& pool);

/// In-place unnormalized FWHT over 64-bit integers (exact; used by the
/// fixed-point FPGA pipeline model where all arithmetic is integral).
void fwht_i64(std::span<long long> data);

/// In-place batched FWHT over `lanes` interleaved transforms. `data` is
/// lane-interleaved (AoSoA): node j of lane l lives at data[j * lanes + l],
/// data.size() == n * lanes with n a power of two. Every lane undergoes
/// exactly the butterfly schedule of fwht(), so per-lane results are
/// bit-identical to the scalar transform; the batch layout only widens each
/// butterfly to `lanes` contiguous doubles, which is what lets the kernel
/// run one full SIMD register per node pair. Dispatches at runtime to the
/// best available kernel (generic / AVX2 / AVX-512 / NEON — see
/// common/simd.hpp); any lane count is accepted, multiples of the register
/// width are the fast path.
void fwht_batch(std::span<double> data, std::size_t lanes);

/// True if n is a nonzero power of two.
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace htims::transform
