#include "transform/weighted.hpp"

#include "common/error.hpp"

namespace htims::transform {

AlignedVector<double> weighted_gate_kernel(const prs::MSequence& seq,
                                           std::span<const double> weights) {
    HTIMS_EXPECTS(weights.size() == seq.length());
    AlignedVector<double> kernel(seq.length(), 0.0);
    for (std::size_t t = 0; t < seq.length(); ++t)
        if (seq.bit(t)) kernel[t] = weights[t];
    return kernel;
}

WeightedDeconvolver::WeightedDeconvolver(const prs::MSequence& seq,
                                         std::span<const double> weights, CgOptions options)
    : kernel_(weighted_gate_kernel(seq, weights)), options_(options) {}

AlignedVector<double> WeightedDeconvolver::encode(std::span<const double> x) const {
    return circular_convolve(kernel_, x);
}

AlignedVector<double> WeightedDeconvolver::decode(std::span<const double> y) const {
    CgResult result = circulant_lstsq(kernel_, y, options_);
    last_residual_ = result.relative_residual;
    return std::move(result.x);
}

}  // namespace htims::transform
