// weighted.hpp — weighted-design deconvolution (the pre-enhancement baseline).
//
// Real multiplexed acquisitions deviate from the ideal binary gate: the ion
// flux delivered by consecutive gate openings varies (trap depletion, source
// fluctuation, gate rise time), so the effective encoding kernel is
// h[t] = a[t] * w[t] with per-opening weights w. Before the modified-PRS
// approach, this was handled with sample-specific *weighting designs*: a
// weighted inverse built from the (estimated or calibrated) weights. That is
// the baseline this module implements; experiment E5/E6 compares it against
// the closed-form simplex inverse (which ignores the weights and shows
// demultiplexing artifacts) and against the enhanced oversampled decoder.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "prs/sequence.hpp"
#include "transform/circulant.hpp"

namespace htims::transform {

/// Deconvolver for a weighted gate kernel h[t] = a[t] * w[t].
class WeightedDeconvolver {
public:
    /// `weights` has one entry per sequence bin (entries at closed-gate bins
    /// are ignored). Weight 1 everywhere reproduces the ideal system.
    WeightedDeconvolver(const prs::MSequence& seq, std::span<const double> weights,
                        CgOptions options = {});

    std::size_t length() const { return kernel_.size(); }
    std::span<const double> kernel() const { return kernel_; }

    /// Forward model with the weighted kernel: y = H x.
    AlignedVector<double> encode(std::span<const double> x) const;

    /// Least-squares inverse via CG on the normal equations.
    AlignedVector<double> decode(std::span<const double> y) const;

    /// Relative residual of the last decode (diagnostic).
    double last_residual() const { return last_residual_; }

private:
    AlignedVector<double> kernel_;
    CgOptions options_;
    mutable double last_residual_ = 0.0;
};

/// Convenience: build the defective kernel a[t]*w[t] for simulation of
/// non-ideal gates.
AlignedVector<double> weighted_gate_kernel(const prs::MSequence& seq,
                                           std::span<const double> weights);

}  // namespace htims::transform
