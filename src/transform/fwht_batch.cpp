// fwht_batch.cpp — lane-blocked (AoSoA) batched Walsh–Hadamard kernels.
//
// The scalar FWHT's butterfly touches two doubles per node pair; processing
// L independent transforms whose elements are interleaved lane-first turns
// the same butterfly into two L-wide vector operations on contiguous memory.
// The kernels below are the generic auto-vectorizable form plus explicit
// AVX2 / AVX-512 / NEON variants selected once per process through a
// function-pointer table keyed on common/simd.hpp's detected tier.
//
// Large batches are additionally cache-blocked: a lane-interleaved transform
// of 2^11 nodes at 8 lanes is a 128 KiB working set, and running all eleven
// butterfly stages as full passes streams it from L2 eleven times. Instead,
// every stage with h < B is run block-by-block on B-node sub-transforms that
// fit L1, and only the log2(n/B) cross-block stages touch the full buffer.
// Blocks are data-independent below the cross stages, so this reordering
// leaves every lane's arithmetic sequence unchanged: each result is still
// bit-identical to transform::fwht() on that lane alone — the property the
// parity tests pin down.
#include "transform/fwht.hpp"

#include <bit>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HTIMS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define HTIMS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace htims::transform {

namespace {

// Runs butterfly stages h = h0, 2*h0, ... while h < n. A full transform is
// h0 == 1; the cross-block tail after cache blocking is h0 == block.
using BatchKernel = void (*)(double*, std::size_t, std::size_t, std::size_t);

// Portable kernel with a compile-time lane count: the fixed trip count lets
// the auto-vectorizer unroll the lane loop into whatever the baseline ISA
// offers.
template <std::size_t L>
void batch_fixed(double* data, std::size_t n, std::size_t /*lanes*/,
                 std::size_t h0) {
    for (std::size_t h = h0; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                double* a = data + j * L;
                double* b = data + (j + h) * L;
                for (std::size_t l = 0; l < L; ++l) {
                    const double x = a[l];
                    const double y = b[l];
                    a[l] = x + y;
                    b[l] = x - y;
                }
            }
        }
    }
}

// Portable kernel for arbitrary (runtime) lane counts — the ragged fallback.
void batch_any(double* data, std::size_t n, std::size_t lanes, std::size_t h0) {
    for (std::size_t h = h0; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                double* a = data + j * lanes;
                double* b = data + (j + h) * lanes;
                for (std::size_t l = 0; l < lanes; ++l) {
                    const double x = a[l];
                    const double y = b[l];
                    a[l] = x + y;
                    b[l] = x - y;
                }
            }
        }
    }
}

#if HTIMS_SIMD_X86

// One 256-bit register per four lanes. Requires lanes % 4 == 0.
__attribute__((target("avx2"))) void batch_avx2(double* data, std::size_t n,
                                                std::size_t lanes,
                                                std::size_t h0) {
    for (std::size_t h = h0; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                double* a = data + j * lanes;
                double* b = data + (j + h) * lanes;
                for (std::size_t l = 0; l < lanes; l += 4) {
                    const __m256d va = _mm256_loadu_pd(a + l);
                    const __m256d vb = _mm256_loadu_pd(b + l);
                    _mm256_storeu_pd(a + l, _mm256_add_pd(va, vb));
                    _mm256_storeu_pd(b + l, _mm256_sub_pd(va, vb));
                }
            }
        }
    }
}

// One 512-bit register per eight lanes. Requires lanes % 8 == 0.
__attribute__((target("avx512f"))) void batch_avx512(double* data,
                                                     std::size_t n,
                                                     std::size_t lanes,
                                                     std::size_t h0) {
    for (std::size_t h = h0; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                double* a = data + j * lanes;
                double* b = data + (j + h) * lanes;
                for (std::size_t l = 0; l < lanes; l += 8) {
                    const __m512d va = _mm512_loadu_pd(a + l);
                    const __m512d vb = _mm512_loadu_pd(b + l);
                    _mm512_storeu_pd(a + l, _mm512_add_pd(va, vb));
                    _mm512_storeu_pd(b + l, _mm512_sub_pd(va, vb));
                }
            }
        }
    }
}

#endif  // HTIMS_SIMD_X86

#if HTIMS_SIMD_NEON

// One 128-bit register per two lanes (NEON is baseline on aarch64).
void batch_neon(double* data, std::size_t n, std::size_t lanes,
                std::size_t h0) {
    for (std::size_t h = h0; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                double* a = data + j * lanes;
                double* b = data + (j + h) * lanes;
                for (std::size_t l = 0; l < lanes; l += 2) {
                    const float64x2_t va = vld1q_f64(a + l);
                    const float64x2_t vb = vld1q_f64(b + l);
                    vst1q_f64(a + l, vaddq_f64(va, vb));
                    vst1q_f64(b + l, vsubq_f64(va, vb));
                }
            }
        }
    }
}

#endif  // HTIMS_SIMD_NEON

// Dispatch table: `wide`/`narrow` run when the lane count is a multiple of
// the matching step (0 = slot unavailable); anything else falls through to
// the portable kernels. Built once — simd_tier() is cached process-wide.
struct DispatchTable {
    BatchKernel wide = nullptr;
    std::size_t wide_step = 0;
    BatchKernel narrow = nullptr;
    std::size_t narrow_step = 0;
};

DispatchTable make_dispatch_table() {
    switch (simd_tier()) {
#if HTIMS_SIMD_X86
        case SimdTier::kAvx512:
            // avx512vl implies AVX2, so ragged multiples of 4 stay vectorized.
            return {batch_avx512, 8, batch_avx2, 4};
        case SimdTier::kAvx2:
            return {batch_avx2, 4, batch_avx2, 4};
#endif
#if HTIMS_SIMD_NEON
        case SimdTier::kNeon:
            return {batch_neon, 2, batch_neon, 2};
#endif
        default:
            return {};
    }
}

BatchKernel select_kernel(std::size_t lanes) {
    static const DispatchTable table = make_dispatch_table();
    if (table.wide_step != 0 && lanes % table.wide_step == 0) return table.wide;
    if (table.narrow_step != 0 && lanes % table.narrow_step == 0)
        return table.narrow;
    if (lanes == 8) return batch_fixed<8>;
    if (lanes == 4) return batch_fixed<4>;
    return batch_any;
}

// Target footprint for one cache-resident sub-transform: half of a typical
// 32 KiB L1d, leaving room for the streamed cross-stage lines.
constexpr std::size_t kBlockBytes = std::size_t{16} * 1024;

}  // namespace

void fwht_batch(std::span<double> data, std::size_t lanes) {
    HTIMS_EXPECTS(lanes > 0 && data.size() % lanes == 0);
    const std::size_t n = data.size() / lanes;
    HTIMS_EXPECTS(is_pow2(n));
    if (n == 1) return;
    const BatchKernel kern = select_kernel(lanes);
    HTIMS_DCHECK(kern != nullptr, "dispatch always resolves to a kernel");
    const std::size_t block =
        std::bit_floor(kBlockBytes / (lanes * sizeof(double)));
    if (block < 2 || block >= n) {
        kern(data.data(), n, lanes, 1);
        return;
    }
    // Tile-geometry invariants the blocked schedule relies on: a power-of-two
    // block that divides n means the sub-transforms partition the buffer and
    // the cross stages start exactly at stride h = block.
    HTIMS_DCHECK(is_pow2(block), "cache block is a power of two");
    HTIMS_DCHECK(n % block == 0, "blocks partition the transform");
    // Stages h < block, one L1-resident sub-transform per block...
    const std::size_t stride = block * lanes;
    HTIMS_DCHECK(data.size() % stride == 0, "tiles partition the lane buffer");
    for (std::size_t b = 0; b < data.size(); b += stride)
        kern(data.data() + b, block, lanes, 1);
    // ...then the log2(n/block) cross-block stages over the full buffer.
    kern(data.data(), n, lanes, block);
}

}  // namespace htims::transform
