#include "transform/filters.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "common/error.hpp"

namespace htims::transform {

namespace {

void check_window(std::span<const double> x, std::size_t window) {
    if (window % 2 == 0 || window < 3)
        throw ConfigError("filter window must be odd and >= 3");
    if (window >= x.size())
        throw ConfigError("filter window must be smaller than the record");
}

std::size_t wrap(std::ptrdiff_t i, std::size_t n) {
    const auto sn = static_cast<std::ptrdiff_t>(n);
    return static_cast<std::size_t>(((i % sn) + sn) % sn);
}

}  // namespace

AlignedVector<double> moving_average(std::span<const double> x, std::size_t window) {
    check_window(x, window);
    const std::size_t n = x.size();
    const auto half = static_cast<std::ptrdiff_t>(window / 2);
    AlignedVector<double> out(n);
    // Sliding circular sum.
    double acc = 0.0;
    for (std::ptrdiff_t k = -half; k <= half; ++k) acc += x[wrap(k, n)];
    const double inv = 1.0 / static_cast<double>(window);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = acc * inv;
        acc -= x[wrap(static_cast<std::ptrdiff_t>(i) - half, n)];
        acc += x[wrap(static_cast<std::ptrdiff_t>(i) + half + 1, n)];
    }
    return out;
}

AlignedVector<double> savitzky_golay(std::span<const double> x, std::size_t window) {
    check_window(x, window);
    // Quadratic SG convolution weights (classic Savitzky–Golay tables),
    // normalized by the listed divisor.
    struct Kernel {
        std::size_t window;
        std::array<double, 11> weights;
        double norm;
    };
    static const Kernel kKernels[] = {
        {5, {-3, 12, 17, 12, -3}, 35.0},
        {7, {-2, 3, 6, 7, 6, 3, -2}, 21.0},
        {9, {-21, 14, 39, 54, 59, 54, 39, 14, -21}, 231.0},
        {11, {-36, 9, 44, 69, 84, 89, 84, 69, 44, 9, -36}, 429.0},
    };
    const Kernel* kernel = nullptr;
    for (const auto& k : kKernels)
        if (k.window == window) kernel = &k;
    if (kernel == nullptr)
        throw ConfigError("Savitzky-Golay window must be one of 5, 7, 9, 11");

    const std::size_t n = x.size();
    const auto half = static_cast<std::ptrdiff_t>(window / 2);
    AlignedVector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::ptrdiff_t k = -half; k <= half; ++k)
            acc += kernel->weights[static_cast<std::size_t>(k + half)] *
                   x[wrap(static_cast<std::ptrdiff_t>(i) + k, n)];
        out[i] = acc / kernel->norm;
    }
    return out;
}

AlignedVector<double> median_filter(std::span<const double> x, std::size_t window) {
    check_window(x, window);
    const std::size_t n = x.size();
    const auto half = static_cast<std::ptrdiff_t>(window / 2);
    AlignedVector<double> out(n);
    std::vector<double> buf(window);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::ptrdiff_t k = -half; k <= half; ++k)
            buf[static_cast<std::size_t>(k + half)] =
                x[wrap(static_cast<std::ptrdiff_t>(i) + k, n)];
        const auto mid = buf.begin() + static_cast<std::ptrdiff_t>(window / 2);
        std::nth_element(buf.begin(), mid, buf.end());
        out[i] = *mid;
    }
    return out;
}

namespace {

AlignedVector<double> rolling_extreme(std::span<const double> x, std::size_t window,
                                      bool minimum) {
    const std::size_t n = x.size();
    const auto half = static_cast<std::ptrdiff_t>(window / 2);
    AlignedVector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = x[i];
        for (std::ptrdiff_t k = -half; k <= half; ++k) {
            const double c = x[wrap(static_cast<std::ptrdiff_t>(i) + k, n)];
            v = minimum ? std::min(v, c) : std::max(v, c);
        }
        out[i] = v;
    }
    return out;
}

}  // namespace

AlignedVector<double> rolling_baseline(std::span<const double> x, std::size_t window) {
    check_window(x, window);
    const auto eroded = rolling_extreme(x, window, /*minimum=*/true);
    return rolling_extreme(eroded, window, /*minimum=*/false);
}

AlignedVector<double> baseline_corrected(std::span<const double> x, std::size_t window) {
    const auto base = rolling_baseline(x, window);
    AlignedVector<double> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = std::max(0.0, x[i] - base[i]);
    return out;
}

}  // namespace htims::transform
