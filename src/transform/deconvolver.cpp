#include "transform/deconvolver.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "transform/fwht.hpp"

namespace htims::transform {

Deconvolver::Deconvolver(const prs::MSequence& seq)
    : n_(seq.length()), scale_(-2.0 / static_cast<double>(seq.length() + 1)) {
    state_idx_.assign(seq.states().begin(), seq.states().end());

    // u_i: the linear functional with a[(i+j) mod N] = <u_i, s_j>; its bit b
    // equals the sequence at (i + t_b) where t_b is the time the state was
    // the b-th unit vector. The convolution-form gather index is the
    // time-reversed trajectory f_k = u_{(N-k) mod N}.
    const int order = seq.order();
    std::vector<std::uint32_t> u(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        std::uint32_t v = 0;
        for (int b = 0; b < order; ++b)
            v |= static_cast<std::uint32_t>(seq.bit(i + seq.unit_state_time(b)))
                 << static_cast<std::uint32_t>(b);
        u[i] = v;
    }
    func_idx_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        func_idx_[k] = u[(n_ - k) % n_];
        // Both index maps land in [1, N]: the transform scratch is N+1 wide
        // with node 0 reserved, and the decode loops index it unchecked.
        HTIMS_DCHECK(func_idx_[k] >= 1 && func_idx_[k] <= n_,
                     "gather index targets a transform node");
    }
    HTIMS_CHECK(n_ > 0 && state_idx_.size() == n_, "one LFSR state per chip");
}

void Deconvolver::decode(std::span<const double> y, std::span<double> x, Workspace& ws) const {
    HTIMS_EXPECTS(y.size() == n_ && x.size() == n_);
    HTIMS_EXPECTS(ws.buf.size() == n_ + 1);
    std::fill(ws.buf.begin(), ws.buf.end(), 0.0);
    for (std::size_t t = 0; t < n_; ++t) ws.buf[state_idx_[t]] = y[t];
    fwht(ws.buf);
    for (std::size_t k = 0; k < n_; ++k) x[k] = scale_ * ws.buf[func_idx_[k]];
}

void Deconvolver::decode_parallel(std::span<const double> y, std::span<double> x, Workspace& ws,
                                  ThreadPool& pool) const {
    HTIMS_EXPECTS(y.size() == n_ && x.size() == n_);
    HTIMS_EXPECTS(ws.buf.size() == n_ + 1);
    std::fill(ws.buf.begin(), ws.buf.end(), 0.0);
    for (std::size_t t = 0; t < n_; ++t) ws.buf[state_idx_[t]] = y[t];
    fwht_parallel(ws.buf, pool);
    for (std::size_t k = 0; k < n_; ++k) x[k] = scale_ * ws.buf[func_idx_[k]];
}

void Deconvolver::decode_batch(std::span<const double> y, std::span<double> x,
                               BatchWorkspace& ws) const {
    const std::size_t lanes = ws.lanes;
    HTIMS_EXPECTS(lanes > 0 && ws.buf.size() == (n_ + 1) * lanes);
    HTIMS_EXPECTS(y.size() == n_ * lanes && x.size() == n_ * lanes);
    // The scatter indices cover [1, N] exactly once, so only node 0 needs
    // explicit zeroing before the transform.
    std::fill(ws.buf.begin(), ws.buf.begin() + static_cast<std::ptrdiff_t>(lanes), 0.0);
    double* buf = ws.buf.data();
    for (std::size_t t = 0; t < n_; ++t) {
        HTIMS_DCHECK(state_idx_[t] >= 1 && state_idx_[t] <= n_,
                     "scatter index targets a transform node");
        std::copy_n(y.data() + t * lanes, lanes, buf + state_idx_[t] * lanes);
    }
    fwht_batch(ws.buf, lanes);
    for (std::size_t k = 0; k < n_; ++k) {
        const double* w = buf + func_idx_[k] * lanes;
        double* out = x.data() + k * lanes;
        for (std::size_t l = 0; l < lanes; ++l) out[l] = scale_ * w[l];
    }
}

void Deconvolver::encode(std::span<const double> x, std::span<double> y, Workspace& ws) const {
    HTIMS_EXPECTS(x.size() == n_ && y.size() == n_);
    HTIMS_EXPECTS(ws.buf.size() == n_ + 1);
    std::fill(ws.buf.begin(), ws.buf.end(), 0.0);
    double total = 0.0;
    for (std::size_t k = 0; k < n_; ++k) {
        ws.buf[func_idx_[k]] = x[k];
        total += x[k];
    }
    fwht(ws.buf);
    for (std::size_t t = 0; t < n_; ++t) y[t] = 0.5 * (total - ws.buf[state_idx_[t]]);
}

AlignedVector<double> Deconvolver::encode(std::span<const double> x) const {
    AlignedVector<double> y(n_);
    Workspace ws = make_workspace();
    encode(x, y, ws);
    return y;
}

AlignedVector<double> Deconvolver::decode(std::span<const double> y) const {
    AlignedVector<double> x(n_);
    Workspace ws = make_workspace();
    decode(y, x, ws);
    return x;
}

}  // namespace htims::transform
