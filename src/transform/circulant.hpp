// circulant.hpp — circulant linear algebra helpers.
//
// The weighted-design baseline deconvolver and the gate-defect models need
// generic circulant operators (kernel no longer binary, so the closed-form
// simplex inverse does not apply). Systems are solved with conjugate
// gradients on the ridge-regularised normal equations; kernels here are
// ~50% sparse gate waveforms, so the matvec exploits sparsity.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned_buffer.hpp"

namespace htims::transform {

/// y[t] = sum_k h[(t-k) mod N] x[k] — circular convolution (the forward
/// operator of a gate with kernel h).
AlignedVector<double> circular_convolve(std::span<const double> kernel,
                                        std::span<const double> x);

/// r[k] = sum_t h[(t-k) mod N] y[t] — the adjoint (circular correlation).
AlignedVector<double> circular_correlate(std::span<const double> kernel,
                                         std::span<const double> y);

/// Options for the conjugate-gradient least-squares solve.
struct CgOptions {
    int max_iterations = 400;
    double tolerance = 1e-10;  ///< relative residual at which to stop
    double ridge = 0.0;        ///< Tikhonov term lambda added to H^T H
};

/// Result of a CG solve.
struct CgResult {
    AlignedVector<double> x;
    int iterations = 0;
    double relative_residual = 0.0;
};

/// Solve min_x ||H x - y||^2 + ridge ||x||^2 for circulant H with the given
/// kernel, by CG on the normal equations. Deterministic; throws on size
/// mismatch.
CgResult circulant_lstsq(std::span<const double> kernel, std::span<const double> y,
                         const CgOptions& opts = {});

}  // namespace htims::transform
