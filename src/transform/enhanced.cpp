#include "transform/enhanced.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::transform {

EnhancedDeconvolver::EnhancedDeconvolver(const prs::OversampledPrs& prs)
    : prs_(prs),
      base_(prs.base()),
      n_(prs.base().length()),
      fine_len_(prs.length()),
      factor_(prs.factor()),
      mode_(prs.mode()) {
    // PRS order/length coherence: the fine grid is exactly F interleaved
    // copies of the base m-sequence, the assumption every phase loop below
    // indexes by.
    HTIMS_CHECK(factor_ >= 1, "oversampling factor is at least 1");
    HTIMS_CHECK(fine_len_ == n_ * static_cast<std::size_t>(factor_),
                "fine-grid length is factor x base length");
}

EnhancedDeconvolver::Workspace EnhancedDeconvolver::make_workspace() const {
    Workspace ws;
    ws.base = base_.make_workspace();
    ws.phase_in.resize(n_);
    ws.phase_out.resize(n_);
    ws.z.resize(fine_len_);
    return ws;
}

void EnhancedDeconvolver::decode(std::span<const double> y, std::span<double> x,
                                 Workspace& ws) const {
    HTIMS_EXPECTS(y.size() == fine_len_ && x.size() == fine_len_);
    if (factor_ == 1) {
        base_.decode(y, x, ws.base);
        return;
    }
    if (mode_ == prs::GateMode::kPulsed)
        decode_pulsed(y, x, ws);
    else
        decode_stretched(y, x, ws);
}

AlignedVector<double> EnhancedDeconvolver::decode(std::span<const double> y) const {
    AlignedVector<double> x(fine_len_);
    Workspace ws = make_workspace();
    decode(y, x, ws);
    return x;
}

EnhancedDeconvolver::BatchWorkspace EnhancedDeconvolver::make_batch_workspace(
    std::size_t lanes) const {
    BatchWorkspace ws;
    ws.base = base_.make_batch_workspace(lanes);
    ws.phase_in.resize(n_ * lanes);
    ws.phase_out.resize(n_ * lanes);
    ws.z.resize(fine_len_ * lanes);
    ws.anchor.resize(lanes);
    ws.lanes = lanes;
    return ws;
}

void EnhancedDeconvolver::decode_batch(std::span<const double> y, std::span<double> x,
                                       BatchWorkspace& ws) const {
    const std::size_t L = ws.lanes;
    HTIMS_EXPECTS(L > 0 && ws.base.lanes == L);
    HTIMS_EXPECTS(y.size() == fine_len_ * L && x.size() == fine_len_ * L);
    if (factor_ == 1) {
        base_.decode_batch(y, x, ws.base);
        return;
    }
    const auto f = static_cast<std::size_t>(factor_);
    HTIMS_DCHECK(ws.phase_in.size() == n_ * L && ws.phase_out.size() == n_ * L,
                 "phase scratch sized to one chip profile per lane");
    HTIMS_DCHECK(ws.z.size() == fine_len_ * L && ws.anchor.size() == L,
                 "stretched scratch sized to the fine grid");

    if (mode_ == prs::GateMode::kPulsed) {
        // F independent simplex systems, each decoded L lanes wide.
        for (std::size_t r = 0; r < f; ++r) {
            for (std::size_t q = 0; q < n_; ++q)
                std::copy_n(y.data() + (f * q + r) * L, L, ws.phase_in.data() + q * L);
            base_.decode_batch(ws.phase_in, ws.phase_out, ws.base);
            for (std::size_t p = 0; p < n_; ++p)
                std::copy_n(ws.phase_out.data() + p * L, L, x.data() + (f * p + r) * L);
        }
        return;
    }

    // Stretched gate. Z_r = S^{-1} Y_r for every phase, L lanes at a time.
    for (std::size_t r = 0; r < f; ++r) {
        for (std::size_t q = 0; q < n_; ++q)
            std::copy_n(y.data() + (f * q + r) * L, L, ws.phase_in.data() + q * L);
        base_.decode_batch(ws.phase_in, std::span(ws.z).subspan(r * n_ * L, n_ * L),
                           ws.base);
    }
    const double* w = ws.z.data() + (f - 1) * n_ * L;  // Z_{F-1} = sum_t X_t

    // Quiet-chip anchor per lane: first minimum of the chip-resolution total,
    // matching std::min_element in the scalar decoder.
    for (std::size_t l = 0; l < L; ++l) {
        std::size_t q0 = 0;
        double best = w[l];
        for (std::size_t q = 1; q < n_; ++q) {
            const double v = w[q * L + l];
            if (v < best) {
                best = v;
                q0 = q;
            }
        }
        ws.anchor[l] = q0;
    }

    // Integrate each phase's circular difference equation. The D_r build is
    // lane-wide; the prefix integration is a sequential scan and runs scalar
    // per lane with each lane's own anchor — identical arithmetic order to
    // the scalar decoder, so results stay bit-identical.
    for (std::size_t r = 0; r < f; ++r) {
        const double* zr = ws.z.data() + r * n_ * L;
        if (r == 0) {
            for (std::size_t q = 0; q < n_; ++q) {
                const double* wm1 = w + ((q + n_ - 1) % n_) * L;
                double* d = ws.phase_in.data() + q * L;
                for (std::size_t l = 0; l < L; ++l) d[l] = zr[q * L + l] - wm1[l];
            }
        } else {
            const double* zp = ws.z.data() + (r - 1) * n_ * L;
            for (std::size_t i = 0; i < n_ * L; ++i) ws.phase_in[i] = zr[i] - zp[i];
        }
        for (std::size_t l = 0; l < L; ++l) {
            const std::size_t q0 = ws.anchor[l];
            HTIMS_DCHECK(q0 < n_, "lane anchor is a valid chip index");
            ws.phase_out[q0 * L + l] = 0.0;
            for (std::size_t s = 1; s < n_; ++s) {
                const std::size_t q = (q0 + s) % n_;
                const std::size_t prev = (q0 + s - 1) % n_;
                ws.phase_out[q * L + l] =
                    ws.phase_out[prev * L + l] + ws.phase_in[q * L + l];
            }
        }
        for (std::size_t p = 0; p < n_; ++p)
            std::copy_n(ws.phase_out.data() + p * L, L, x.data() + (f * p + r) * L);
    }

    // Per-lane residual redistribution, same summation order as the scalar
    // decoder.
    for (std::size_t l = 0; l < L; ++l) {
        double residual = 0.0;
        for (std::size_t q = 0; q < n_; ++q) {
            double s = w[q * L + l];
            for (std::size_t r = 0; r < f; ++r) s -= x[(f * q + r) * L + l];
            residual += s;
        }
        const double alpha = residual / static_cast<double>(n_ * f);
        for (std::size_t i = 0; i < fine_len_; ++i) x[i * L + l] += alpha;
    }
}

AlignedVector<double> EnhancedDeconvolver::encode(std::span<const double> x) const {
    return prs_.encode_reference(x);
}

void EnhancedDeconvolver::encode_fast(std::span<const double> x, std::span<double> y,
                                      Workspace& ws) const {
    HTIMS_EXPECTS(x.size() == fine_len_ && y.size() == fine_len_);
    if (factor_ == 1) {
        base_.encode(x, y, ws.base);
        return;
    }
    const auto f = static_cast<std::size_t>(factor_);
    if (mode_ == prs::GateMode::kPulsed) {
        // Each phase is an independent simplex system: Y_r = S X_r.
        for (std::size_t r = 0; r < f; ++r) {
            for (std::size_t p = 0; p < n_; ++p) ws.phase_in[p] = x[f * p + r];
            base_.encode(ws.phase_in, ws.phase_out, ws.base);
            for (std::size_t q = 0; q < n_; ++q) y[f * q + r] = ws.phase_out[q];
        }
        return;
    }
    // Stretched gate: E_t = S X_t per phase, then
    // Y_r = prefix_r + rot1(total - prefix_r) with prefix_r = sum_{t<=r} E_t.
    for (std::size_t t = 0; t < f; ++t) {
        for (std::size_t p = 0; p < n_; ++p) ws.phase_in[p] = x[f * p + t];
        base_.encode(ws.phase_in, std::span(ws.z).subspan(t * n_, n_), ws.base);
    }
    std::fill(ws.phase_out.begin(), ws.phase_out.end(), 0.0);  // total
    for (std::size_t t = 0; t < f; ++t) {
        const double* et = ws.z.data() + t * n_;
        for (std::size_t q = 0; q < n_; ++q) ws.phase_out[q] += et[q];
    }
    std::fill(ws.phase_in.begin(), ws.phase_in.end(), 0.0);  // prefix
    for (std::size_t r = 0; r < f; ++r) {
        const double* er = ws.z.data() + r * n_;
        for (std::size_t q = 0; q < n_; ++q) ws.phase_in[q] += er[q];
        for (std::size_t q = 0; q < n_; ++q) {
            const std::size_t qm1 = (q + n_ - 1) % n_;
            y[f * q + r] = ws.phase_in[q] + (ws.phase_out[qm1] - ws.phase_in[qm1]);
        }
    }
}

void EnhancedDeconvolver::decode_pulsed(std::span<const double> y, std::span<double> x,
                                        Workspace& ws) const {
    const auto f = static_cast<std::size_t>(factor_);
    for (std::size_t r = 0; r < f; ++r) {
        for (std::size_t q = 0; q < n_; ++q) ws.phase_in[q] = y[f * q + r];
        base_.decode(ws.phase_in, ws.phase_out, ws.base);
        for (std::size_t p = 0; p < n_; ++p) x[f * p + r] = ws.phase_out[p];
    }
}

void EnhancedDeconvolver::decode_stretched(std::span<const double> y, std::span<double> x,
                                           Workspace& ws) const {
    const auto f = static_cast<std::size_t>(factor_);

    // Z_r = S^{-1} Y_r for every oversampling phase.
    for (std::size_t r = 0; r < f; ++r) {
        for (std::size_t q = 0; q < n_; ++q) ws.phase_in[q] = y[f * q + r];
        base_.decode(ws.phase_in, std::span(ws.z).subspan(r * n_, n_), ws.base);
    }
    const std::span<const double> w(ws.z.data() + (f - 1) * n_, n_);  // Z_{F-1} = sum_t X_t

    // Quiet-chip anchor: the minimum of the chip-resolution total profile.
    const std::size_t q0 = static_cast<std::size_t>(
        std::min_element(w.begin(), w.end()) - w.begin());

    // Integrate each phase's circular difference equation from the anchor.
    for (std::size_t r = 0; r < f; ++r) {
        // D_r into phase_in.
        const double* zr = ws.z.data() + r * n_;
        if (r == 0) {
            for (std::size_t q = 0; q < n_; ++q)
                ws.phase_in[q] = zr[q] - w[(q + n_ - 1) % n_];
        } else {
            const double* zp = ws.z.data() + (r - 1) * n_;
            for (std::size_t q = 0; q < n_; ++q) ws.phase_in[q] = zr[q] - zp[q];
        }
        // P_r[q0] = 0; P_r[q] = P_r[q-1] + D_r[q] around the circle.
        ws.phase_out[q0] = 0.0;
        for (std::size_t s = 1; s < n_; ++s) {
            const std::size_t q = (q0 + s) % n_;
            const std::size_t prev = (q0 + s - 1) % n_;
            ws.phase_out[q] = ws.phase_out[prev] + ws.phase_in[q];
        }
        for (std::size_t p = 0; p < n_; ++p) x[f * p + r] = ws.phase_out[p];
    }

    // Distribute the remaining additive constant so that sum_r X_r matches
    // the chip-resolution total W in the mean.
    double residual = 0.0;
    for (std::size_t q = 0; q < n_; ++q) {
        double s = w[q];
        for (std::size_t r = 0; r < f; ++r) s -= x[f * q + r];
        residual += s;
    }
    const double alpha = residual / static_cast<double>(n_ * f);
    for (std::size_t i = 0; i < fine_len_; ++i) x[i] += alpha;
}

}  // namespace htims::transform
