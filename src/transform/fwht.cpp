#include "transform/fwht.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace htims::transform {

namespace {

template <typename T>
void fwht_block(T* data, std::size_t n) {
    // Callers validated n as a power of two; let the optimizer drop the
    // partial-tail paths the loop bounds could otherwise imply.
    HTIMS_ASSUME(n == 0 || (n & (n - 1)) == 0);
    for (std::size_t h = 1; h < n; h <<= 1) {
        for (std::size_t i = 0; i < n; i += h << 1) {
            for (std::size_t j = i; j < i + h; ++j) {
                const T a = data[j];
                const T b = data[j + h];
                data[j] = a + b;
                data[j + h] = a - b;
            }
        }
    }
}

}  // namespace

void fwht(std::span<double> data) {
    HTIMS_EXPECTS(is_pow2(data.size()));
    fwht_block(data.data(), data.size());
}

void fwht_i64(std::span<long long> data) {
    HTIMS_EXPECTS(is_pow2(data.size()));
    fwht_block(data.data(), data.size());
}

void fwht_parallel(std::span<double> data, ThreadPool& pool) {
    HTIMS_EXPECTS(is_pow2(data.size()));
    const std::size_t n = data.size();
    const std::size_t workers = pool.size();
    // Below this size the serial transform finishes faster than a dispatch.
    if (workers <= 1 || n < (std::size_t{1} << 14)) {
        fwht_block(data.data(), n);
        return;
    }
    // Split into `parts` contiguous blocks (power of two). Each block is an
    // independent FWHT of size n/parts; the remaining log2(parts) butterfly
    // stages combine across blocks and are parallelised over index ranges.
    std::size_t parts = 1;
    while (parts < workers) parts <<= 1;
    const std::size_t block = n / parts;
    HTIMS_DCHECK(block >= 1 && block * parts == n,
                 "power-of-two split covers the transform exactly");
    pool.parallel_for(parts, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) fwht_block(data.data() + p * block, block);
    });
    for (std::size_t h = block; h < n; h <<= 1) {
        // For stride h there are n/2 butterfly pairs; chunk them evenly.
        pool.parallel_for(n / (h << 1), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
                const std::size_t i = g * (h << 1);
                for (std::size_t j = i; j < i + h; ++j) {
                    const double a = data[j];
                    const double b = data[j + h];
                    data[j] = a + b;
                    data[j + h] = a - b;
                }
            }
        });
    }
}

}  // namespace htims::transform
