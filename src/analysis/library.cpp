#include "analysis/library.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace htims::analysis {

SpectralLibrary::SpectralLibrary(const SpectrumEncoder& encoder,
                                 const instrument::SampleMixture& mixture,
                                 const SpectralLibraryConfig& config)
    : config_(config), mz_bins_(encoder.config().mz_bins),
      species_(mixture.species) {
    HTIMS_EXPECTS(config.max_mz > config.min_mz);
    names_.reserve(species_.size());
    entries_.reserve(species_.size());
    for (std::size_t i = 0; i < species_.size(); ++i) {
        names_.push_back(species_[i].name);
        entries_.push_back(encoder.encode(reference_spectrum(i)));
    }
}

std::vector<double> SpectralLibrary::reference_spectrum(std::size_t i) const {
    HTIMS_EXPECTS(i < species_.size());
    const instrument::IonSpecies& sp = species_[i];
    std::vector<double> spectrum(mz_bins_, 0.0);

    const double span = config_.max_mz - config_.min_mz;
    const double frac = (sp.mz - config_.min_mz) / span;
    const auto main_bin = static_cast<std::size_t>(std::clamp(
        frac * static_cast<double>(mz_bins_ - 1), 0.0,
        static_cast<double>(mz_bins_ - 1)));
    spectrum[main_bin] += sp.intensity;

    // Pseudo-fragments: deterministic per species, decoupled across species
    // by folding the index into the seed so neighbouring entries share no
    // fragment pattern.
    Rng rng(config_.seed ^
            (static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL));
    for (std::size_t f = 0; f < config_.fragment_peaks; ++f) {
        const auto bin = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(mz_bins_)));
        spectrum[bin] += sp.intensity * (0.2 + 0.8 * rng.uniform());
    }
    return spectrum;
}

Match SpectralLibrary::nearest(const Hypervector& query) const {
    HTIMS_EXPECTS(!entries_.empty());
    Match best{0, distance(entries_[0], query)};
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const std::uint64_t d = distance(entries_[i], query);
        if (d < best.distance) best = Match{i, d};
    }
    return best;
}

}  // namespace htims::analysis
