// stage.hpp — streaming hyperdimensional analysis over decoded frames.
//
// Sits directly downstream of decode: every finalized frame is collapsed to
// its m/z profile, encoded to a hypervector, identified against an optional
// reference library (nearest Hamming neighbour), and clustered online by
// greedy leader clustering — the first spectrum within `cluster_radius` of
// an existing leader joins it, otherwise it founds a new cluster. Both the
// hybrid pipeline and the fleet runner invoke analyze() from their ordered
// emission sections (HybridConfig::analysis), so frames of one stream always
// arrive in frame order; with per-stream cluster state and exact integer
// distances, the assignment sequence is deterministic across decode-worker
// counts and SIMD tiers — digest() pins that.
//
// Concurrency: analyze() is called concurrently by decode workers of
// different streams/pipelines; encode and library search run outside the
// lock (they touch only immutable state), cluster bookkeeping runs under a
// single mutex. No atomics.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "analysis/encoder.hpp"
#include "analysis/library.hpp"

namespace htims::analysis {

/// Stage parameters.
struct AnalysisConfig {
    SpectrumEncoderConfig encoder;
    /// Leader-clustering join radius as a fraction of the hypervector
    /// dimension (0.30 * 4096 = 1229 bits). Two independent random
    /// hypervectors sit near 0.5 * D apart, so radii well below 0.5
    /// separate unrelated spectra.
    double cluster_radius = 0.30;
};

/// Outcome of analyzing one frame.
struct FrameVerdict {
    std::uint32_t stream = 0;
    std::uint64_t frame = 0;
    std::size_t cluster = 0;             ///< per-stream cluster id (leader order)
    std::uint64_t cluster_distance = 0;  ///< bits to the joined leader (0 if founder)
    std::size_t library_entry = 0;       ///< nearest library entry, if searched
    std::uint64_t library_distance = 0;  ///< bits to that entry
    bool searched = false;               ///< library lookup actually ran
};

/// Aggregate view of everything analyzed so far.
struct AnalysisReport {
    std::uint64_t frames = 0;
    std::uint64_t clusters = 0;  ///< across all streams
    std::vector<FrameVerdict> verdicts;
};

/// Streaming analysis stage; one instance may serve many streams.
class AnalysisStage {
public:
    /// Builds the encoder from config. Throws ConfigError on a malformed
    /// encoder config.
    explicit AnalysisStage(const AnalysisConfig& config);

    const SpectrumEncoder& encoder() const { return encoder_; }

    /// Attach a reference library (nullptr detaches). The library must
    /// outlive the stage and must have been built from an encoder with the
    /// same dim/mz_bins. Not thread-safe against concurrent analyze().
    void set_library(const SpectralLibrary* library) { library_ = library; }

    /// Analyze one decoded frame. MUST be called in frame order within a
    /// stream — the pipeline orchestrators guarantee this by calling from
    /// their turnstile-serialized emission sections. Calls for different
    /// streams may race freely.
    FrameVerdict analyze(std::uint32_t stream, std::uint64_t frame_index,
                         const pipeline::Frame& frame);

    /// Snapshot of all verdicts so far (stream-major, frame order within a
    /// stream).
    AnalysisReport report() const;

    /// FNV-1a digest over the verdict sequence of report() — equal digests
    /// mean identical clustering and identification outcomes. Used by tests
    /// to pin determinism across worker counts and SIMD tiers.
    std::uint64_t digest() const;

private:
    struct StreamState {
        std::vector<Hypervector> leaders;
        std::vector<FrameVerdict> verdicts;
    };

    AnalysisConfig config_;
    SpectrumEncoder encoder_;
    std::uint64_t radius_bits_;
    const SpectralLibrary* library_ = nullptr;

    mutable std::mutex mutex_;
    std::map<std::uint32_t, StreamState> streams_;
    std::uint64_t clusters_total_ = 0;
};

}  // namespace htims::analysis
