#include "analysis/stage.hpp"

#include "pipeline/frame.hpp"
#include "telemetry/registry.hpp"

namespace htims::analysis {

AnalysisStage::AnalysisStage(const AnalysisConfig& config)
    : config_(config), encoder_(config.encoder),
      radius_bits_(static_cast<std::uint64_t>(
          config.cluster_radius * static_cast<double>(config.encoder.dim))) {}

FrameVerdict AnalysisStage::analyze(std::uint32_t stream,
                                    std::uint64_t frame_index,
                                    const pipeline::Frame& frame) {
    auto& tel = telemetry::Registry::global();
    static auto& frames_c = tel.counter("analysis.frames");
    static auto& clusters_c = tel.counter("analysis.clusters");
    static auto& lib_h = tel.histogram("analysis.library_distance_bits");
    static auto& cluster_h = tel.histogram("analysis.cluster_distance_bits");
    static const auto encode_id = tel.intern("analysis.encode");
    static const auto search_id = tel.intern("analysis.search");

    FrameVerdict verdict;
    verdict.stream = stream;
    verdict.frame = frame_index;

    // Encode and library search touch only immutable state — keep them
    // outside the lock so streams overlap.
    Hypervector hv;
    {
        auto span = tel.span(encode_id);
        hv = encoder_.encode(mz_intensity_profile(frame));
    }
    if (library_ != nullptr && library_->size() > 0) {
        auto span = tel.span(search_id);
        const Match m = library_->nearest(hv);
        verdict.library_entry = m.index;
        verdict.library_distance = m.distance;
        verdict.searched = true;
        lib_h.observe(m.distance);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        StreamState& st = streams_[stream];
        std::size_t best = st.leaders.size();
        std::uint64_t best_d = 0;
        for (std::size_t i = 0; i < st.leaders.size(); ++i) {
            const std::uint64_t d = distance(st.leaders[i], hv);
            if (best == st.leaders.size() || d < best_d) {
                best = i;
                best_d = d;
            }
        }
        if (best < st.leaders.size() && best_d <= radius_bits_) {
            verdict.cluster = best;
            verdict.cluster_distance = best_d;
        } else {
            verdict.cluster = st.leaders.size();
            verdict.cluster_distance = 0;
            st.leaders.push_back(std::move(hv));
            ++clusters_total_;
            clusters_c.add(1);
        }
        cluster_h.observe(verdict.cluster_distance);
        st.verdicts.push_back(verdict);
    }
    frames_c.add(1);
    return verdict;
}

AnalysisReport AnalysisStage::report() const {
    std::lock_guard<std::mutex> lock(mutex_);
    AnalysisReport report;
    report.clusters = clusters_total_;
    for (const auto& [stream, st] : streams_) {
        report.frames += st.verdicts.size();
        report.verdicts.insert(report.verdicts.end(), st.verdicts.begin(),
                               st.verdicts.end());
    }
    return report;
}

std::uint64_t AnalysisStage::digest() const {
    const AnalysisReport report = this->report();
    std::uint64_t h = 14695981039346656037ULL;
    const auto fold = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 1099511628211ULL;
        }
    };
    for (const FrameVerdict& v : report.verdicts) {
        fold(v.stream);
        fold(v.frame);
        fold(v.cluster);
        fold(v.cluster_distance);
        fold(v.searched ? v.library_entry : ~std::uint64_t{0});
        fold(v.searched ? v.library_distance : 0);
    }
    return h;
}

}  // namespace htims::analysis
