// library.hpp — hypervector reference library derived from a sample mixture.
//
// The screening workflow needs something to identify spectra *against*: for
// each species in a mixture (e.g. the seeded tryptic peptide digest), we
// synthesize a reference fragmentation spectrum — main peak at the species'
// m/z plus a deterministic set of pseudo-fragment peaks — encode it, and
// keep the hypervector. Identification is then a nearest-neighbour Hamming
// scan over the entries, which the E19 bench drives at rate.
//
// The reference spectra are derived purely from (species index, seed), so a
// bench can regenerate reference_spectrum(i), perturb it, and measure
// recall against ground truth i.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/encoder.hpp"
#include "analysis/hypervector.hpp"
#include "instrument/ion.hpp"

namespace htims::analysis {

/// Reference-spectrum synthesis parameters.
struct SpectralLibraryConfig {
    double min_mz = 200.0;           ///< m/z mapped to bin 0
    double max_mz = 2000.0;          ///< m/z mapped to the last bin
    std::size_t fragment_peaks = 12; ///< pseudo-fragments per species
    std::uint64_t seed = 7;          ///< fragment placement seed
};

/// One nearest-neighbour query result.
struct Match {
    std::size_t index = 0;        ///< library entry (== species index)
    std::uint64_t distance = 0;   ///< Hamming distance in bits
};

/// Encoded reference library; immutable after construction, safe to share
/// read-only across threads.
class SpectralLibrary {
public:
    /// Builds one entry per mixture species using `encoder` (whose mz_bins
    /// determines the spectrum length). The encoder must outlive queries
    /// only through its output — the library stores no reference to it.
    SpectralLibrary(const SpectrumEncoder& encoder,
                    const instrument::SampleMixture& mixture,
                    const SpectralLibraryConfig& config = {});

    std::size_t size() const { return entries_.size(); }
    const std::string& name(std::size_t i) const { return names_[i]; }
    const Hypervector& entry(std::size_t i) const { return entries_[i]; }

    /// Linear Hamming scan; ties resolve to the lowest index. The library
    /// must be non-empty.
    Match nearest(const Hypervector& query) const;

    /// Regenerate the synthetic reference spectrum of entry i (the exact
    /// input its hypervector was encoded from) — for benches that perturb
    /// references into queries with known ground truth.
    std::vector<double> reference_spectrum(std::size_t i) const;

private:
    SpectralLibraryConfig config_;
    std::size_t mz_bins_ = 0;
    std::vector<instrument::IonSpecies> species_;
    std::vector<std::string> names_;
    std::vector<Hypervector> entries_;
};

}  // namespace htims::analysis
