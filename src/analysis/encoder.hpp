// encoder.hpp — spectrum -> binary hypervector encoder (level + ID binding).
//
// Follows the SpecHD/RapidOMS hyperdimensional encoding recipe: every m/z
// bin gets a random D-bit *ID* vector; intensity is quantized onto a ladder
// of *level* vectors built so the Hamming distance between rungs grows
// linearly with their intensity gap (consecutive rungs differ by a fixed
// slice of D/2 bits, so rung 0 and the top rung are D/2 apart — orthogonal,
// as two independent random vectors would be). A spectrum's hypervector is
// the bitwise majority over its top peaks of ID[bin] XOR LEVEL[q(intensity)],
// with a fixed random tiebreak vector deciding even splits.
//
// Everything is derived deterministically from the config seed, so two
// encoders with equal configs produce bit-identical hypervectors — the
// property the clustering digest tests pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/hypervector.hpp"

namespace htims::pipeline {
class Frame;
}

namespace htims::analysis {

/// Encoder shape. `dim` must be a positive multiple of 64.
struct SpectrumEncoderConfig {
    std::size_t dim = 4096;      ///< hypervector width D in bits
    std::size_t mz_bins = 256;   ///< spectrum length the encoder accepts
    std::size_t levels = 32;     ///< intensity quantization rungs
    std::size_t top_peaks = 48;  ///< strongest peaks bound per spectrum
    std::uint64_t seed = 42;     ///< basis derivation seed
};

/// Deterministic spectrum encoder; immutable after construction, safe to
/// share read-only across threads.
class SpectrumEncoder {
public:
    /// Derives the ID / level / tiebreak basis from the seed.
    /// Throws ConfigError when the config is malformed (dim not a positive
    /// multiple of 64, zero mz_bins, fewer than two levels, zero top_peaks).
    explicit SpectrumEncoder(const SpectrumEncoderConfig& config);

    const SpectrumEncoderConfig& config() const { return config_; }
    std::size_t dim() const { return config_.dim; }

    /// Encode a non-negative intensity spectrum of exactly mz_bins values.
    /// An all-zero spectrum encodes to the all-zero hypervector.
    Hypervector encode(std::span<const double> spectrum) const;

private:
    SpectrumEncoderConfig config_;
    std::vector<Hypervector> id_;     ///< one random ID vector per m/z bin
    std::vector<Hypervector> level_;  ///< intensity ladder, rung 0..levels-1
    Hypervector tiebreak_;            ///< decides even majority splits
};

/// Collapse a decoded frame to its m/z intensity profile: the sum of
/// positive deconvolved cell values over drift time, per m/z bin. Negative
/// excursions (deconvolution noise) are clipped so they cannot cancel real
/// signal. This is the spectrum the analysis stage feeds the encoder.
std::vector<double> mz_intensity_profile(const pipeline::Frame& frame);

}  // namespace htims::analysis
