// hypervector.hpp — packed binary hypervector for the HD analysis stage.
//
// A hypervector is a D-bit binary vector (D in the thousands) stored as
// D/64 packed uint64 words. The hyperdimensional encoding scheme
// (src/analysis/encoder.hpp) represents spectra as such vectors; all
// similarity queries reduce to Hamming distance, served by the dispatched
// XOR-popcount kernel in common/simd.hpp. D is restricted to multiples of
// 64 so no partial-word masking is ever needed — every kernel tier then
// operates on whole words only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace htims::analysis {

/// D-bit binary vector, bit i stored at words()[i / 64] bit (i % 64).
class Hypervector {
public:
    Hypervector() = default;

    /// All-zero vector of `bits` bits; `bits` must be a positive multiple
    /// of 64 (whole packed words — see file comment).
    explicit Hypervector(std::size_t bits)
        : bits_(bits), words_(bits / 64, 0) {
        HTIMS_EXPECTS(bits > 0 && bits % 64 == 0);
    }

    std::size_t bits() const { return bits_; }
    std::size_t word_count() const { return words_.size(); }
    const std::uint64_t* data() const { return words_.data(); }
    std::uint64_t* data() { return words_.data(); }

    bool test(std::size_t bit) const {
        return ((words_[bit / 64] >> (bit % 64)) & 1u) != 0;
    }
    void set(std::size_t bit) { words_[bit / 64] |= std::uint64_t{1} << (bit % 64); }
    void flip(std::size_t bit) { words_[bit / 64] ^= std::uint64_t{1} << (bit % 64); }

    /// Elementwise XOR (the binding operator of the HD algebra).
    Hypervector& operator^=(const Hypervector& other) {
        HTIMS_EXPECTS(bits_ == other.bits_);
        for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
        return *this;
    }

    bool operator==(const Hypervector& other) const = default;

private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/// Hamming distance in bits, via the runtime-dispatched popcount kernel.
inline std::uint64_t distance(const Hypervector& a, const Hypervector& b) {
    HTIMS_EXPECTS(a.bits() == b.bits());
    return hamming_distance(a.data(), b.data(), a.word_count());
}

}  // namespace htims::analysis
