#include "analysis/encoder.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pipeline/frame.hpp"

namespace htims::analysis {

namespace {

Hypervector random_hypervector(std::size_t dim, Rng& rng) {
    Hypervector hv(dim);
    for (std::size_t w = 0; w < hv.word_count(); ++w) hv.data()[w] = rng.next_u64();
    return hv;
}

}  // namespace

SpectrumEncoder::SpectrumEncoder(const SpectrumEncoderConfig& config)
    : config_(config) {
    if (config.dim == 0 || config.dim % 64 != 0)
        throw ConfigError("encoder dim must be a positive multiple of 64");
    if (config.mz_bins == 0) throw ConfigError("encoder mz_bins must be > 0");
    if (config.levels < 2) throw ConfigError("encoder needs at least 2 levels");
    if (config.top_peaks == 0) throw ConfigError("encoder top_peaks must be > 0");

    Rng rng(config.seed);
    id_.reserve(config.mz_bins);
    for (std::size_t i = 0; i < config.mz_bins; ++i)
        id_.push_back(random_hypervector(config.dim, rng));

    // Level ladder: rung 0 is random; each higher rung flips the next slice
    // of a fixed random permutation of the bit positions, spending D/2 flips
    // across the whole ladder. Distance between rungs is then proportional
    // to their index gap, and rung 0 vs the top rung is D/2 — as far apart
    // as two independent random vectors.
    std::vector<std::size_t> perm(config.dim);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = config.dim - 1; i > 0; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(i + 1)));
        std::swap(perm[i], perm[j]);
    }
    level_.reserve(config.levels);
    level_.push_back(random_hypervector(config.dim, rng));
    const std::size_t flips_total = config.dim / 2;
    for (std::size_t l = 1; l < config.levels; ++l) {
        Hypervector rung = level_.back();
        const std::size_t from = flips_total * (l - 1) / (config.levels - 1);
        const std::size_t to = flips_total * l / (config.levels - 1);
        for (std::size_t f = from; f < to; ++f) rung.flip(perm[f]);
        level_.push_back(std::move(rung));
    }

    tiebreak_ = random_hypervector(config.dim, rng);
}

Hypervector SpectrumEncoder::encode(std::span<const double> spectrum) const {
    HTIMS_EXPECTS(spectrum.size() == config_.mz_bins);

    // Top peaks by intensity, index as a deterministic tiebreak.
    std::vector<std::size_t> peaks;
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        if (spectrum[i] > 0.0) peaks.push_back(i);
    if (peaks.empty()) return Hypervector(config_.dim);
    std::sort(peaks.begin(), peaks.end(), [&](std::size_t a, std::size_t b) {
        if (spectrum[a] != spectrum[b]) return spectrum[a] > spectrum[b];
        return a < b;
    });
    if (peaks.size() > config_.top_peaks) peaks.resize(config_.top_peaks);

    // Bind each peak (ID XOR level) and bundle with a per-bit majority vote.
    const double maxv = spectrum[peaks.front()];
    std::vector<std::uint16_t> votes(config_.dim, 0);
    for (const std::size_t bin : peaks) {
        const double rel = spectrum[bin] / maxv;
        const auto rung = std::min<std::size_t>(
            static_cast<std::size_t>(rel * static_cast<double>(config_.levels - 1) + 0.5),
            config_.levels - 1);
        const Hypervector& id = id_[bin];
        const Hypervector& lvl = level_[rung];
        for (std::size_t w = 0; w < id.word_count(); ++w) {
            std::uint64_t bound = id.data()[w] ^ lvl.data()[w];
            while (bound != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(bound));
                ++votes[w * 64 + bit];
                bound &= bound - 1;
            }
        }
    }

    const std::size_t n = peaks.size();
    Hypervector out(config_.dim);
    for (std::size_t bit = 0; bit < config_.dim; ++bit) {
        const std::size_t v = 2 * static_cast<std::size_t>(votes[bit]);
        if (v > n || (v == n && tiebreak_.test(bit))) out.set(bit);
    }
    return out;
}

std::vector<double> mz_intensity_profile(const pipeline::Frame& frame) {
    std::vector<double> profile(frame.mz_bins(), 0.0);
    for (std::size_t d = 0; d < frame.drift_bins(); ++d) {
        const auto row = frame.record(d);
        for (std::size_t mz = 0; mz < profile.size(); ++mz)
            if (row[mz] > 0.0) profile[mz] += row[mz];
    }
    return profile;
}

}  // namespace htims::analysis
