#include "telemetry/trace.hpp"

#include <chrono>

namespace htims::telemetry {

std::uint64_t now_ns() noexcept {
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point t0 = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
}

}  // namespace htims::telemetry
