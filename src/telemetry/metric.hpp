// metric.hpp — lock-free counters and gauges for the telemetry subsystem.
//
// Hot-path discipline: a Counter is a small array of cache-line-separated
// atomic cells, striped by a per-thread slot, so concurrent increments from
// the producer, consumer and pool workers never contend on one line. Cells
// are summed only at snapshot time. Every mutator first loads a shared
// runtime-enable flag (one relaxed load + predictable branch), and the whole
// body compiles away when HTIMS_TELEMETRY is defined to 0, so instrumented
// code pays nothing when observability is off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/aligned_buffer.hpp"

// Compile-time switch: -DHTIMS_TELEMETRY=0 removes every instrumentation
// body (the types keep their API so call sites compile unchanged).
#ifndef HTIMS_TELEMETRY
#define HTIMS_TELEMETRY 1
#endif

namespace htims::telemetry {

inline constexpr bool kCompiledIn = HTIMS_TELEMETRY != 0;

/// Number of independent counter cells; threads hash onto stripes, so two
/// threads may share one (the fetch_add keeps that correct, just slower).
inline constexpr std::size_t kStripes = 16;

/// Small dense id for the calling thread, assigned on first use. Used both
/// for stripe selection and to tag trace spans.
inline std::uint32_t thread_slot() noexcept {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

/// Monotonic event counter. add() is wait-free; value() is a snapshot sum
/// (exact once writers are quiescent, approximate while they run).
class Counter {
public:
    explicit Counter(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}

    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void add(std::int64_t n) noexcept {
        if constexpr (!kCompiledIn) return;
        if (!enabled_->load(std::memory_order_relaxed)) return;
        cells_[thread_slot() % kStripes].v.fetch_add(n, std::memory_order_relaxed);
    }
    void increment() noexcept { add(1); }

    std::int64_t value() const noexcept {
        std::int64_t sum = 0;
        for (const auto& c : cells_) sum += c.v.load(std::memory_order_relaxed);
        return sum;
    }

    void reset() noexcept {
        for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(kCacheLine) Cell {
        std::atomic<std::int64_t> v{0};
    };
    std::array<Cell, kStripes> cells_{};
    const std::atomic<bool>* enabled_;
};

/// Last-value gauge that also tracks the maximum it ever held (ring
/// occupancy, queue depth, BRAM bytes). set() is lock-free.
class Gauge {
public:
    explicit Gauge(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}

    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(std::int64_t v) noexcept {
        if constexpr (!kCompiledIn) return;
        if (!enabled_->load(std::memory_order_relaxed)) return;
        value_.store(v, std::memory_order_relaxed);
        std::int64_t m = max_.load(std::memory_order_relaxed);
        while (v > m &&
               !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
        }
    }

    std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    std::int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }

    void reset() noexcept {
        value_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
    const std::atomic<bool>* enabled_;
};

}  // namespace htims::telemetry
