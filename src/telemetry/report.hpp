// report.hpp — snapshot exporters: ASCII tables, CSV, and the stable JSON
// run-report schema the BENCH_*.json trajectory files use.
//
// Schema "htims.telemetry.v1":
//   {
//     "schema":   "htims.telemetry.v1",
//     "bench":    "<run name>",
//     "labels":   { "<key>": "<string>", ... },       // free-form context
//     "scalars":  { "<key>": <number>, ... },         // headline results
//     "counters": { "<name>": <integer>, ... },
//     "gauges":   { "<name>": {"value": n, "max": n}, ... },
//     "histograms": { "<name>": {"count","min","max","mean",
//                                "p50","p95","p99"}, ... },
//     "spans":    [ {"stage","thread","depth","start_ns","end_ns"}, ... ],
//     "spans_dropped": <integer>
//   }
// Readers must ignore unknown fields; writers never remove or retype the
// fields above (additions bump a v2 only if incompatible).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace htims::telemetry {

/// Run-level context attached to a JSON report: the run name plus headline
/// scalar results and free-form labels from the emitting bench.
struct RunMeta {
    std::string bench;
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<std::pair<std::string, std::string>> labels;
};

/// The schema identifier emitted and required by this version.
inline constexpr const char* kSchemaV1 = "htims.telemetry.v1";

/// Counters + gauges as one table, histograms as another.
Table counters_table(const Snapshot& snap);
Table histograms_table(const Snapshot& snap);

/// Human-readable report (both tables) to a stream.
void print_report(std::ostream& os, const Snapshot& snap);

/// CSV: one row per metric, kind-tagged
/// (kind,name,value,max,count,min,mean,p50,p95,p99).
void write_csv(std::ostream& os, const Snapshot& snap);

/// Build/serialize the v1 JSON document.
JsonValue to_json(const Snapshot& snap, const RunMeta& meta);
void write_json_report(std::ostream& os, const Snapshot& snap, const RunMeta& meta);
void save_json_report(const std::string& path, const Snapshot& snap,
                      const RunMeta& meta);

/// Inverse of to_json: validates the schema tag and reconstructs the
/// snapshot (spans included). Throws htims::Error on a schema violation.
Snapshot snapshot_from_json(const JsonValue& doc);

}  // namespace htims::telemetry
