#include "telemetry/report.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace htims::telemetry {

Table counters_table(const Snapshot& snap) {
    Table table("telemetry: counters and gauges");
    table.set_header({"kind", "name", "value", "max"});
    for (const auto& c : snap.counters)
        table.add_row({std::string("counter"), c.name, c.value, std::string("-")});
    for (const auto& g : snap.gauges)
        table.add_row({std::string("gauge"), g.name, g.value, g.max});
    return table;
}

Table histograms_table(const Snapshot& snap) {
    Table table("telemetry: histograms");
    table.set_header({"name", "count", "min", "mean", "p50", "p95", "p99", "max"});
    table.set_precision(1);
    for (const auto& h : snap.histograms) {
        const auto& s = h.summary;
        table.add_row({h.name, static_cast<std::int64_t>(s.count),
                       static_cast<std::int64_t>(s.min), s.mean, s.p50, s.p95,
                       s.p99, static_cast<std::int64_t>(s.max)});
    }
    return table;
}

void print_report(std::ostream& os, const Snapshot& snap) {
    counters_table(snap).print(os);
    os << '\n';
    histograms_table(snap).print(os);
    if (snap.spans_dropped > 0)
        os << "(trace buffer full: " << snap.spans_dropped << " spans dropped)\n";
}

void write_csv(std::ostream& os, const Snapshot& snap) {
    os << "kind,name,value,max,count,min,mean,p50,p95,p99\n";
    for (const auto& c : snap.counters)
        os << "counter," << c.name << ',' << c.value << ",,,,,,,\n";
    for (const auto& g : snap.gauges)
        os << "gauge," << g.name << ',' << g.value << ',' << g.max
           << ",,,,,,\n";
    for (const auto& h : snap.histograms) {
        const auto& s = h.summary;
        os << "histogram," << h.name << ",,," << s.count << ',' << s.min << ','
           << s.mean << ',' << s.p50 << ',' << s.p95 << ',' << s.p99 << '\n';
    }
}

JsonValue to_json(const Snapshot& snap, const RunMeta& meta) {
    JsonValue doc{JsonValue::Object{}};
    doc.set("schema", kSchemaV1);
    doc.set("bench", meta.bench);

    JsonValue labels{JsonValue::Object{}};
    for (const auto& [k, v] : meta.labels) labels.set(k, v);
    doc.set("labels", std::move(labels));

    JsonValue scalars{JsonValue::Object{}};
    for (const auto& [k, v] : meta.scalars) scalars.set(k, v);
    doc.set("scalars", std::move(scalars));

    JsonValue counters{JsonValue::Object{}};
    for (const auto& c : snap.counters) counters.set(c.name, c.value);
    doc.set("counters", std::move(counters));

    JsonValue gauges{JsonValue::Object{}};
    for (const auto& g : snap.gauges) {
        JsonValue entry{JsonValue::Object{}};
        entry.set("value", g.value);
        entry.set("max", g.max);
        gauges.set(g.name, std::move(entry));
    }
    doc.set("gauges", std::move(gauges));

    JsonValue histograms{JsonValue::Object{}};
    for (const auto& h : snap.histograms) {
        const auto& s = h.summary;
        JsonValue entry{JsonValue::Object{}};
        entry.set("count", s.count);
        entry.set("min", s.min);
        entry.set("max", s.max);
        entry.set("mean", s.mean);
        entry.set("p50", s.p50);
        entry.set("p95", s.p95);
        entry.set("p99", s.p99);
        histograms.set(h.name, std::move(entry));
    }
    doc.set("histograms", std::move(histograms));

    JsonValue::Array span_items;
    span_items.reserve(snap.spans.size());
    for (const auto& sp : snap.spans) {
        JsonValue entry{JsonValue::Object{}};
        entry.set("stage", sp.stage);
        entry.set("thread", static_cast<std::uint64_t>(sp.thread));
        entry.set("depth", static_cast<std::uint64_t>(sp.depth));
        entry.set("start_ns", sp.start_ns);
        entry.set("end_ns", sp.end_ns);
        span_items.push_back(std::move(entry));
    }
    doc.set("spans", JsonValue(std::move(span_items)));
    doc.set("spans_dropped", snap.spans_dropped);
    return doc;
}

void write_json_report(std::ostream& os, const Snapshot& snap,
                       const RunMeta& meta) {
    to_json(snap, meta).write(os, 2);
    os << '\n';
}

void save_json_report(const std::string& path, const Snapshot& snap,
                      const RunMeta& meta) {
    std::ofstream os(path);
    if (!os) throw Error("cannot open " + path + " for writing");
    write_json_report(os, snap, meta);
    if (!os) throw Error("write failed for " + path);
}

Snapshot snapshot_from_json(const JsonValue& doc) {
    if (doc.at("schema").as_string() != kSchemaV1)
        throw Error("telemetry report: unsupported schema '" +
                    doc.at("schema").as_string() + "'");
    Snapshot snap;
    for (const auto& [name, v] : doc.at("counters").as_object())
        snap.counters.push_back(
            {name, static_cast<std::int64_t>(v.as_number())});
    for (const auto& [name, v] : doc.at("gauges").as_object())
        snap.gauges.push_back(
            {name, static_cast<std::int64_t>(v.at("value").as_number()),
             static_cast<std::int64_t>(v.at("max").as_number())});
    for (const auto& [name, v] : doc.at("histograms").as_object()) {
        HistogramSummary s;
        s.count = static_cast<std::uint64_t>(v.at("count").as_number());
        s.min = static_cast<std::uint64_t>(v.at("min").as_number());
        s.max = static_cast<std::uint64_t>(v.at("max").as_number());
        s.mean = v.at("mean").as_number();
        s.p50 = v.at("p50").as_number();
        s.p95 = v.at("p95").as_number();
        s.p99 = v.at("p99").as_number();
        snap.histograms.push_back({name, s});
    }
    for (const auto& sp : doc.at("spans").as_array()) {
        SpanSample s;
        s.stage = sp.at("stage").as_string();
        s.thread = static_cast<std::uint32_t>(sp.at("thread").as_number());
        s.depth = static_cast<std::uint32_t>(sp.at("depth").as_number());
        s.start_ns = static_cast<std::uint64_t>(sp.at("start_ns").as_number());
        s.end_ns = static_cast<std::uint64_t>(sp.at("end_ns").as_number());
        snap.spans.push_back(std::move(s));
    }
    snap.spans_dropped =
        static_cast<std::uint64_t>(doc.at("spans_dropped").as_number());
    return snap;
}

}  // namespace htims::telemetry
