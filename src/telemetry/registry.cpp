#include "telemetry/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::telemetry {

namespace {

bool env_disables_telemetry() {
    const char* v = std::getenv("HTIMS_TELEMETRY");
    if (v == nullptr) return false;
    return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0;
}

}  // namespace

Registry::Registry(std::size_t trace_capacity) : trace_(trace_capacity) {}

Registry& Registry::global() {
    static Registry instance;
    static const bool env_init = [] {
        if (env_disables_telemetry()) instance.set_enabled(false);
        return true;
    }();
    (void)env_init;
    return instance;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard lock(mutex_);
    for (auto& e : counters_)
        if (e.name == name) return e.metric;
    return counters_.emplace_back(std::string(name), &enabled_).metric;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard lock(mutex_);
    for (auto& e : gauges_)
        if (e.name == name) return e.metric;
    return gauges_.emplace_back(std::string(name), &enabled_).metric;
}

LogHistogram& Registry::histogram(std::string_view name) {
    std::lock_guard lock(mutex_);
    for (auto& e : histograms_)
        if (e.name == name) return e.metric;
    return histograms_.emplace_back(std::string(name), &enabled_).metric;
}

std::uint32_t Registry::intern(std::string_view stage) {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < span_names_.size(); ++i)
        if (span_names_[i] == stage) return static_cast<std::uint32_t>(i);
    HTIMS_CHECK(span_names_.size() < std::numeric_limits<std::uint32_t>::max(),
                "stage-name id space exhausted");
    span_names_.emplace_back(stage);
    return static_cast<std::uint32_t>(span_names_.size() - 1);
}

const std::string& Registry::span_name(std::uint32_t id) const {
    std::lock_guard lock(mutex_);
    HTIMS_EXPECTS(id < span_names_.size());
    return span_names_[id];
}

Snapshot Registry::snapshot() const {
    Snapshot snap;
    std::vector<std::string> names;  // copy under lock, resolve spans after
    std::vector<SpanEvent> events = trace_.events();
    {
        std::lock_guard lock(mutex_);
        for (const auto& e : counters_)
            snap.counters.push_back({e.name, e.metric.value()});
        for (const auto& e : gauges_)
            snap.gauges.push_back({e.name, e.metric.value(), e.metric.max()});
        for (const auto& e : histograms_)
            snap.histograms.push_back({e.name, e.metric.summarize()});
        names = span_names_;
    }
    snap.spans_dropped = trace_.dropped();
    snap.spans.reserve(events.size());
    for (const auto& ev : events) {
        SpanSample s;
        s.stage = ev.name_id < names.size() ? names[ev.name_id] : "?";
        s.thread = ev.thread;
        s.depth = ev.depth;
        s.start_ns = ev.start_ns;
        s.end_ns = ev.end_ns;
        snap.spans.push_back(std::move(s));
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
}

void Registry::reset() {
    std::lock_guard lock(mutex_);
    for (auto& e : counters_) e.metric.reset();
    for (auto& e : gauges_) e.metric.reset();
    for (auto& e : histograms_) e.metric.reset();
    trace_.clear();
}

}  // namespace htims::telemetry
