// registry.hpp — named metric registry and point-in-time snapshots.
//
// The registry owns every counter, gauge, histogram and the span trace
// buffer, keyed by dotted names ("hybrid.ring_occupancy"). Creation and
// lookup take a mutex, but instrumentation sites call them once and cache
// the returned reference (the storage is a deque, so references stay valid
// forever); the hot path never touches the lock. One process-global
// registry backs the pipeline instrumentation, with a runtime enable switch
// seeded from the HTIMS_TELEMETRY environment variable ("0"/"off" starts
// disabled); tests may construct private registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/histogram.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/trace.hpp"

namespace htims::telemetry {

/// Aggregated value of one counter at snapshot time.
struct CounterSample {
    std::string name;
    std::int64_t value = 0;
};

/// Last/max value of one gauge at snapshot time.
struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
};

/// Quantile summary of one histogram at snapshot time.
struct HistogramSample {
    std::string name;
    HistogramSummary summary;
};

/// One completed span with its stage name resolved.
struct SpanSample {
    std::string stage;
    std::uint32_t thread = 0;
    std::uint32_t depth = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
};

/// Point-in-time aggregation of the whole registry. Plain data — safe to
/// copy into run reports and serialize.
struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
    std::vector<SpanSample> spans;
    std::uint64_t spans_dropped = 0;
};

/// The metric registry. Thread-safe; metric references are stable.
class Registry {
public:
    explicit Registry(std::size_t trace_capacity = 8192);

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry the pipeline instrumentation uses.
    static Registry& global();

    bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }
    void set_enabled(bool on) noexcept {
        enabled_.store(on && kCompiledIn, std::memory_order_relaxed);
    }

    /// Find-or-create by name. O(#metrics) under a mutex — call once per
    /// site and cache the reference.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    LogHistogram& histogram(std::string_view name);

    /// Intern a stage name for span tracing; ids are dense and stable.
    std::uint32_t intern(std::string_view stage);
    const std::string& span_name(std::uint32_t id) const;

    TraceBuffer& trace() noexcept { return trace_; }

    /// Open a span for an interned stage (records nothing when disabled).
    ScopedSpan span(std::uint32_t name_id) noexcept {
        return ScopedSpan(&trace_, &enabled_, name_id);
    }

    /// Aggregate every metric and the trace into plain data, sorted by
    /// name (spans in record order).
    Snapshot snapshot() const;

    /// Zero all metric values and clear the trace. Registered names and
    /// cached references stay valid.
    void reset();

private:
    template <typename M>
    struct Entry {
        std::string name;
        M metric;
        Entry(std::string n, const std::atomic<bool>* enabled)
            : name(std::move(n)), metric(enabled) {}
    };

    std::atomic<bool> enabled_{kCompiledIn};
    mutable std::mutex mutex_;
    std::deque<Entry<Counter>> counters_;
    std::deque<Entry<Gauge>> gauges_;
    std::deque<Entry<LogHistogram>> histograms_;
    std::vector<std::string> span_names_;
    TraceBuffer trace_;
};

}  // namespace htims::telemetry
