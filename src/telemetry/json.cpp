#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace htims::telemetry {

namespace {

[[noreturn]] void type_error(const char* want) {
    throw Error(std::string("json: value is not a ") + want);
}

void write_escaped(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xFFu);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_number(std::ostream& os, double d) {
    if (!std::isfinite(d)) {
        os << "null";  // JSON has no inf/nan; reports never produce them
        return;
    }
    // Integers (the common case: counters, cycle counts, nanoseconds) print
    // without an exponent or trailing ".0"; everything else round-trips via
    // shortest-form scientific notation.
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        os << static_cast<long long>(d);
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    os.write(buf, res.ptr - buf);
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue run() {
        JsonValue v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                    what);
    }

    char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char next() {
        const char c = peek();
        ++pos_;
        return c;
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void expect(char c) {
        if (next() != c) fail(std::string("expected '") + c + "'");
    }

    void expect_word(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) fail("bad literal");
        pos_ += word.size();
    }

    JsonValue value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return JsonValue(string());
            case 't': expect_word("true"); return JsonValue(true);
            case 'f': expect_word("false"); return JsonValue(false);
            case 'n': expect_word("null"); return JsonValue(nullptr);
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue::Object fields;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(fields));
        }
        for (;;) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            fields.emplace_back(std::move(key), value());
            skip_ws();
            const char c = next();
            if (c == '}') return JsonValue(std::move(fields));
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue::Array items;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(items));
        }
        for (;;) {
            items.push_back(value());
            skip_ws();
            const char c = next();
            if (c == ']') return JsonValue(std::move(items));
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = next();
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = next();
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape");
                    }
                    // Encode the code point as UTF-8 (BMP only; surrogate
                    // pairs are not produced by our writer).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        double d = 0.0;
        const auto res = std::from_chars(text_.data() + start,
                                         text_.data() + pos_, d);
        if (res.ec != std::errc{} || res.ptr != text_.data() + pos_)
            fail("bad number");
        return JsonValue(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
    if (!is_bool()) type_error("bool");
    return std::get<bool>(value_);
}

double JsonValue::as_number() const {
    if (!is_number()) type_error("number");
    return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) type_error("string");
    return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
    if (!is_array()) type_error("array");
    return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
    if (!is_object()) type_error("object");
    return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : std::get<Object>(value_))
        if (k == key) return &v;
    return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr) throw Error("json: missing field '" + std::string(key) + "'");
    return *v;
}

void JsonValue::set(std::string key, JsonValue value) {
    if (!is_object()) type_error("object");
    std::get<Object>(value_).emplace_back(std::move(key), std::move(value));
}

void JsonValue::write_impl(std::ostream& os, int indent, int depth) const {
    const auto pad = [&](int d) {
        if (indent <= 0) return;
        os << '\n';
        for (int i = 0; i < indent * d; ++i) os << ' ';
    };
    if (is_null()) {
        os << "null";
    } else if (is_bool()) {
        os << (std::get<bool>(value_) ? "true" : "false");
    } else if (is_number()) {
        write_number(os, std::get<double>(value_));
    } else if (is_string()) {
        write_escaped(os, std::get<std::string>(value_));
    } else if (is_array()) {
        const auto& a = std::get<Array>(value_);
        os << '[';
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i != 0) os << ',';
            pad(depth + 1);
            a[i].write_impl(os, indent, depth + 1);
        }
        if (!a.empty()) pad(depth);
        os << ']';
    } else {
        const auto& o = std::get<Object>(value_);
        os << '{';
        for (std::size_t i = 0; i < o.size(); ++i) {
            if (i != 0) os << ',';
            pad(depth + 1);
            write_escaped(os, o[i].first);
            os << (indent > 0 ? ": " : ":");
            o[i].second.write_impl(os, indent, depth + 1);
        }
        if (!o.empty()) pad(depth);
        os << '}';
    }
}

void JsonValue::write(std::ostream& os, int indent) const {
    write_impl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

JsonValue parse_json(std::string_view text) {
    return Parser(text).run();
}

}  // namespace htims::telemetry
