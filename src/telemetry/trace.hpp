// trace.hpp — lightweight scoped-span stage tracing.
//
// A span is one timed region of one pipeline stage: interned stage name,
// start/stop nanoseconds on the process-local monotonic clock, the compact
// thread slot of the recording thread, and its nesting depth (per-thread).
// Spans land in a bounded pre-allocated buffer via a single fetch_add — the
// first `capacity` spans of a run are retained and later arrivals are
// counted as dropped, so a runaway stage can never grow memory or tear a
// slot that a snapshot is reading.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/atomics_policy.hpp"
#include "common/contracts.hpp"
#include "telemetry/metric.hpp"

namespace htims::telemetry {

/// Nanoseconds since the first telemetry clock query in this process
/// (steady clock, so spans order correctly across threads).
std::uint64_t now_ns() noexcept;

/// One completed stage span.
struct SpanEvent {
    std::uint32_t name_id = 0;  ///< Registry::intern id of the stage name
    std::uint32_t thread = 0;   ///< compact thread slot
    std::uint32_t depth = 0;    ///< nesting level within the thread
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
};

/// Bounded first-N span store; record() is wait-free.
///
/// A writer first reserves a slot with one fetch_add, fills it, then
/// publishes it with a release store on the slot's ready flag; readers only
/// copy slots whose flag they acquire. That makes events() safe to call
/// *while spans are still being recorded* — a mid-run exporter sees every
/// published span and simply skips the (at most one per writer) slot still
/// being filled, instead of reading a torn SpanEvent. clear() is the only
/// operation that still requires writer quiescence, since it retires every
/// slot at once.
///
/// Templatized over the atomics policy (common/atomics_policy.hpp) so the
/// model checker can instantiate this exact publish protocol; the litmus
/// units `trace_*` in src/check/litmus.hpp exhaustively verify the
/// snapshot-during-record path. Use the `TraceBuffer` alias in production.
template <typename Atomics = common::StdAtomics>
class BasicTraceBuffer {
    // Under the model-checking policy every atomic op may throw ModelAbort
    // (execution wind-down), so only the production instantiation is
    // noexcept — same signature there as before templatization.
    static constexpr bool kNothrow = std::is_same_v<Atomics, common::StdAtomics>;

public:
    explicit BasicTraceBuffer(std::size_t capacity = 8192)
        : slots_(capacity), ready_(capacity) {}

    BasicTraceBuffer(const BasicTraceBuffer&) = delete;
    BasicTraceBuffer& operator=(const BasicTraceBuffer&) = delete;

    std::size_t capacity() const noexcept { return slots_.size(); }

    void record(const SpanEvent& ev) noexcept(kNothrow) {
        const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i < slots_.size()) {
            slots_[i].store_plain(ev);
            ready_[i].store(1, Atomics::trace_publish);
        } else {
            dropped_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /// Copy of the published spans. Safe concurrently with record();
    /// in-flight slots (reserved but not yet published) are skipped.
    ///
    /// The relaxed load of next_ is deliberate and audited (litmus unit
    /// trace_relaxed_next_audit): next_ only *bounds the scan* — it is
    /// monotonic, so a stale read can at worst undercount and stop the loop
    /// early, never index an unwritten slot. The happens-before edge that
    /// makes each SpanEvent safe to copy is carried entirely by the per-slot
    /// ready flag (trace_publish release store → trace_acquire load below);
    /// upgrading the next_ load to acquire would add nothing.
    std::vector<SpanEvent> events() const {
        const std::uint64_t n =
            std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                                    slots_.size());
        std::vector<SpanEvent> out;
        out.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            if (ready_[i].load(Atomics::trace_acquire) != 0)
                out.push_back(slots_[i].load_plain());
        return out;
    }

    std::uint64_t dropped() const noexcept(kNothrow) {
        return dropped_.load(std::memory_order_relaxed);
    }

    /// Reset to empty. Requires writer quiescence (unlike events()).
    void clear() noexcept(kNothrow) {
        for (auto& r : ready_) r.store(0, std::memory_order_relaxed);
        next_.store(0, std::memory_order_relaxed);
        dropped_.store(0, std::memory_order_relaxed);
    }

private:
    std::vector<typename Atomics::template var<SpanEvent>> slots_;
    // deque is unusable here (atomics are not movable); a plain vector of
    // atomics is fine because the buffer never resizes after construction.
    std::vector<typename Atomics::template atomic<std::uint8_t>> ready_;
    typename Atomics::template atomic<std::uint64_t> next_{0};
    typename Atomics::template atomic<std::uint64_t> dropped_{0};
};

/// The production trace buffer: BasicTraceBuffer over real std::atomic.
using TraceBuffer = BasicTraceBuffer<>;

/// RAII span: stamps the start on construction and records the completed
/// event on destruction. A span constructed while telemetry is disabled
/// records nothing, even if telemetry is re-enabled before it closes.
class ScopedSpan {
public:
    ScopedSpan(TraceBuffer* buffer, const std::atomic<bool>* enabled,
               std::uint32_t name_id) noexcept {
        if constexpr (!kCompiledIn) return;
        if (!enabled->load(std::memory_order_relaxed)) return;
        buffer_ = buffer;
        name_id_ = name_id;
        depth_ = static_cast<std::uint32_t>(thread_depth()++);
        start_ns_ = now_ns();
    }

    ~ScopedSpan() {
        if (buffer_ == nullptr) return;
        HTIMS_DCHECK(thread_depth() > 0, "span close matches an open on this thread");
        --thread_depth();
        buffer_->record(SpanEvent{name_id_, thread_slot(), depth_, start_ns_,
                                  now_ns()});
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    static int& thread_depth() noexcept {
        thread_local int depth = 0;
        return depth;
    }

    TraceBuffer* buffer_ = nullptr;
    std::uint32_t name_id_ = 0;
    std::uint32_t depth_ = 0;
    std::uint64_t start_ns_ = 0;
};

}  // namespace htims::telemetry
