// telemetry.hpp — umbrella header for the observability subsystem.
//
// Counters, gauges, log-scale latency histograms, scoped-span stage tracing,
// a named registry with point-in-time snapshots, and exporters (ASCII table,
// CSV, and the stable "htims.telemetry.v1" JSON run-report schema used by
// the BENCH_*.json trajectory files).
//
// Switches:
//   * compile time — build with -DHTIMS_TELEMETRY=0 (CMake option
//     HTIMS_TELEMETRY=OFF) and every instrumentation body compiles away;
//   * runtime — telemetry::Registry::global().set_enabled(false), or launch
//     with HTIMS_TELEMETRY=0 in the environment. Disabled mutators cost one
//     relaxed atomic load and a predictable branch.
//
// Instrumentation idiom (the references are cached, the lock is taken once):
//   auto& tel = telemetry::Registry::global();
//   static auto& frames = tel.counter("hybrid.frames");
//   static const auto kStage = tel.intern("hybrid.frame");
//   { auto span = tel.span(kStage); frames.increment(); ... }
#pragma once

#include "telemetry/histogram.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metric.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
