// histogram.hpp — fixed-bucket log-scale histogram with quantile extraction.
//
// HDR-style layout: values 0..7 get exact unit buckets; above that each
// power-of-two octave is split into 8 sub-buckets, giving <= 12.5% relative
// resolution over the whole 2^40 range (about 18 minutes when the unit is a
// nanosecond). Buckets are plain relaxed atomics shared by all writers —
// per-bucket contention is negligible for the event rates the pipeline
// produces — so observe() is one branch, one bit-scan and one fetch_add.
// Quantiles are computed from the bucket cumulative at snapshot time, with
// linear interpolation inside the winning bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "telemetry/metric.hpp"

namespace htims::telemetry {

/// Quantile summary extracted from a histogram snapshot.
struct HistogramSummary {
    std::uint64_t count = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/// Concurrent log-scale histogram of non-negative 64-bit values.
class LogHistogram {
public:
    /// Sub-bucket resolution: 2^kSubBits linear buckets per octave.
    static constexpr unsigned kSubBits = 3;
    /// Largest representable value exponent; larger samples clamp into the
    /// final bucket.
    static constexpr unsigned kMaxExponent = 40;
    static constexpr std::size_t kBuckets =
        (std::size_t{1} << kSubBits) * (kMaxExponent - kSubBits + 1);

    explicit LogHistogram(const std::atomic<bool>* enabled) noexcept
        : enabled_(enabled) {}

    LogHistogram(const LogHistogram&) = delete;
    LogHistogram& operator=(const LogHistogram&) = delete;

    void observe(std::uint64_t value) noexcept;

    /// Bucket index of a value (exposed for tests).
    static std::size_t bucket_index(std::uint64_t value) noexcept;
    /// Inclusive lower / exclusive upper value bound of a bucket.
    static std::uint64_t bucket_lo(std::size_t index) noexcept;
    static std::uint64_t bucket_hi(std::size_t index) noexcept;

    /// Aggregate the buckets into count/min/max/mean and p50/p95/p99.
    HistogramSummary summarize() const;

    /// Quantile q in [0,1] from the current buckets (0 when empty).
    double quantile(double q) const;

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
    const std::atomic<bool>* enabled_;
};

}  // namespace htims::telemetry
