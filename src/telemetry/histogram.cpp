#include "telemetry/histogram.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"

namespace htims::telemetry {

namespace {

constexpr std::uint64_t kSub = std::uint64_t{1} << LogHistogram::kSubBits;
constexpr std::uint64_t kClamp =
    (std::uint64_t{1} << LogHistogram::kMaxExponent) - 1;

}  // namespace

std::size_t LogHistogram::bucket_index(std::uint64_t value) noexcept {
    value = std::min(value, kClamp);
    if (value < kSub) return static_cast<std::size_t>(value);
    // value in [2^k, 2^(k+1)) with k >= kSubBits: block (k - kSubBits + 1)
    // holds sub-buckets of width 2^(k - kSubBits).
    const unsigned k = static_cast<unsigned>(std::bit_width(value)) - 1;
    const std::uint64_t offset = (value >> (k - kSubBits)) - kSub;
    const std::size_t block = k - kSubBits + 1;
    const std::size_t index = block * static_cast<std::size_t>(kSub) +
                              static_cast<std::size_t>(offset);
    // observe() indexes the bucket array with this result unchecked.
    HTIMS_DCHECK(index < kBuckets, "clamped value maps inside the bucket array");
    return index;
}

std::uint64_t LogHistogram::bucket_lo(std::size_t index) noexcept {
    HTIMS_DCHECK(index < kBuckets, "bucket bound query in range");
    const std::size_t block = index >> kSubBits;
    if (block == 0) return index;
    const std::uint64_t within = index & (kSub - 1);
    return (kSub + within) << (block - 1);
}

std::uint64_t LogHistogram::bucket_hi(std::size_t index) noexcept {
    const std::size_t block = index >> kSubBits;
    if (block == 0) return index + 1;
    return bucket_lo(index) + (std::uint64_t{1} << (block - 1));
}

void LogHistogram::observe(std::uint64_t value) noexcept {
    if constexpr (!kCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t lo = min_.load(std::memory_order_relaxed);
    while (value < lo &&
           !min_.compare_exchange_weak(lo, value, std::memory_order_relaxed)) {
    }
    std::uint64_t hi = max_.load(std::memory_order_relaxed);
    while (value > hi &&
           !max_.compare_exchange_weak(hi, value, std::memory_order_relaxed)) {
    }
}

double LogHistogram::quantile(double q) const {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target sample (1-based), nearest-rank with interpolation
    // inside the bucket that crosses it.
    const double rank = q * static_cast<double>(n - 1) + 1.0;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
        if (c == 0) continue;
        if (static_cast<double>(cum + c) >= rank) {
            const double into =
                (rank - static_cast<double>(cum)) / static_cast<double>(c);
            const double lo = static_cast<double>(bucket_lo(b));
            const double hi = static_cast<double>(bucket_hi(b));
            // Interpolating against the bucket edges can leave the observed
            // range when a log bucket is wider than the samples in it (one
            // sample at 1000 lands in [960, 1024) and rank interpolation
            // lands on 1024): clamp to the recorded extremes so no quantile
            // ever exceeds the max or undershoots the min.
            const double v = lo + into * (hi - lo);
            return std::clamp(
                v, static_cast<double>(min_.load(std::memory_order_relaxed)),
                static_cast<double>(max_.load(std::memory_order_relaxed)));
        }
        cum += c;
    }
    return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramSummary LogHistogram::summarize() const {
    HistogramSummary s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0) return s;
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.mean = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
             static_cast<double>(s.count);
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    return s;
}

void LogHistogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

}  // namespace htims::telemetry
