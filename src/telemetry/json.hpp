// json.hpp — minimal JSON document model for run reports.
//
// The telemetry exporters need a writer with stable field ordering and the
// tests (and any external tooling reading BENCH_*.json trajectories) need a
// parser to validate the schema round-trip. This is a deliberately small
// strict-subset implementation: UTF-8 pass-through strings with the
// standard escapes, doubles for all numbers (counters stay exact through
// 2^53), objects preserving insertion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace htims::telemetry {

/// One JSON value: null, bool, number, string, array, or object. Objects
/// keep fields in insertion order so emitted reports are diff-stable.
class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() : value_(nullptr) {}
    JsonValue(std::nullptr_t) : value_(nullptr) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
    JsonValue(std::uint64_t u) : value_(static_cast<double>(u)) {}
    JsonValue(int i) : value_(static_cast<double>(i)) {}
    JsonValue(const char* s) : value_(std::string(s)) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool is_bool() const { return std::holds_alternative<bool>(value_); }
    bool is_number() const { return std::holds_alternative<double>(value_); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_array() const { return std::holds_alternative<Array>(value_); }
    bool is_object() const { return std::holds_alternative<Object>(value_); }

    /// Typed accessors; throw htims::Error on a type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Object field lookup; throws htims::Error when absent.
    const JsonValue& at(std::string_view key) const;
    /// Object field lookup; nullptr when absent.
    const JsonValue* find(std::string_view key) const;

    /// Append a field to an object (value must be an object).
    void set(std::string key, JsonValue value);

    /// Serialize. `indent` > 0 pretty-prints with that many spaces.
    void write(std::ostream& os, int indent = 0) const;
    std::string dump(int indent = 0) const;

private:
    void write_impl(std::ostream& os, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parse a complete JSON document; throws htims::Error with the byte offset
/// on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace htims::telemetry
