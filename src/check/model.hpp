// model.hpp — deterministic exhaustive model checker for small concurrent
// programs under a simulated C++11 memory model.
//
// check(options, body) runs `body` — a closure that creates model::atomic /
// model::var cells, spawns check::thread workers, and asserts invariants
// with MODEL_ASSERT — once per distinct behavior: a DFS over both *schedule*
// choices (which runnable thread performs its next visible operation) and
// *read-from* choices (which store in a location's modification order a load
// observes, as permitted by the simulated memory model). Threads are real OS
// threads driven cooperatively by a turn token, so exactly one runs at a
// time and every interleaving is replayable; the exploration is pruned with
// Godefroid-style sleep sets and an optional preemption bound.
//
// The simulated memory model is operational, store-buffer style:
//   * every atomic store is appended to its location's modification order
//     and stamped with the storing thread's vector clock;
//   * a load may read any store that is not stale for the loading thread
//     (per-thread views track the newest store each thread is obliged to
//     see), so relaxed loads really do return old values — bugs that x86's
//     strong hardware ordering hides are still exercised;
//   * release stores carry the thread's dependency clock as a payload;
//     acquire loads join the payload of the store they read (and of its
//     release sequence head), creating the happens-before edge;
//   * seq_cst is approximated per-location (an SC access must read from or
//     overwrite the latest SC store of that location) — sound for the
//     protocols here, which never rely on cross-location SC total order.
//
// Plain (non-atomic) shared cells are model::var<T>: each access checks for
// a data race against every concurrent access using the same vector clocks,
// so a demoted release publish is caught as a *race on the payload slot*,
// not just as a wrong value.
//
// Failure modes detected: MODEL_ASSERT violations, data races on model::var,
// deadlock (no thread enabled, not all finished), destruction of a joinable
// check::thread, and a per-execution step cap (runaway loops). Every failure
// carries the full interleaving trace that produced it.
//
// Limitations (documented, deliberate):
//   * modification order is append-only in execution order — stores are not
//     reordered after the fact, an under-approximation of the full C++11
//     coherence lattice (it cannot manufacture behaviors the real model
//     forbids, it can only miss some exotic ones);
//   * atomic wait(old) is modeled as value-watching: a waiter is blocked
//     until some store it may read has a value != old. notify is a no-op,
//     so *lost-wakeup* bugs (missing notify) are out of scope — the TSan
//     stress gate covers those with real futexes;
//   * atomics are capped at 8 trivially-copyable bytes (everything the
//     production protocols use).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

namespace htims::check {

/// Thrown inside a model thread to unwind it after a failure was recorded
/// (or when the exploration is winding down an aborted execution). User
/// code must let it propagate.
struct ModelAbort {};

/// Exploration knobs. The defaults explore exhaustively with a generous
/// step cap; tests that only need a smoke pass can set preemption_bound.
struct Options {
    /// Max preemptions (context switches away from a runnable thread) per
    /// execution; -1 = unbounded (full exhaustive exploration).
    int preemption_bound = -1;
    /// Stop after this many executions (0 = unlimited). If the cap fires,
    /// Result::complete is false.
    std::uint64_t max_executions = 0;
    /// Per-execution step cap: a single interleaving longer than this is
    /// reported as a failure (runaway loop in the litmus body).
    std::uint64_t max_steps = 20000;
    /// Print each failure trace to stderr as it is found (the Result carries
    /// it either way).
    bool verbose = false;
};

/// Exploration outcome. `ok` means no failing interleaving was found;
/// `complete` means the search space was exhausted (false when
/// max_executions fired). A trustworthy PASS is `ok && complete`.
struct Result {
    bool ok = false;
    bool complete = false;
    std::uint64_t executions = 0;  ///< distinct interleavings explored
    std::uint64_t steps = 0;       ///< total scheduled operations
    std::string failure;           ///< human-readable failure + trace
    explicit operator bool() const { return ok && complete; }
};

/// Explore every interleaving of `body`. The body runs on the calling
/// thread (as model thread 0) once per explored execution; it must be
/// re-runnable (all state created inside the closure).
Result check(const Options& options, const std::function<void()>& body);

namespace detail {

/// Narrow static interface between the user-facing cell/thread wrappers and
/// the execution engine (a thread_local current-execution pointer behind
/// the scenes). All value traffic is via uint64 bit-patterns.
struct ExecHandle {
    static std::size_t reg_atomic(std::uint64_t init);
    static std::size_t reg_plain();
    static std::uint64_t atomic_load(std::size_t loc, int mo);
    static void atomic_store(std::size_t loc, std::uint64_t v, int mo);
    static std::uint64_t rmw_add(std::size_t loc, std::uint64_t delta, int mo);
    static bool cas(std::size_t loc, std::uint64_t& expected,
                    std::uint64_t desired, int mo);
    static void atomic_wait(std::size_t loc, std::uint64_t old, int mo);
    static void plain_read(std::size_t loc);
    static void plain_write(std::size_t loc);
    static int spawn(std::function<void()> fn);
    static void join(int tid);
    [[noreturn]] static void fail(const std::string& msg);
};

template <typename T>
std::uint64_t to_bits(T v) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "model atomics hold trivially-copyable values of <= 8 bytes");
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
}

template <typename T>
T from_bits(std::uint64_t bits) {
    T v{};
    std::memcpy(&v, &bits, sizeof(T));
    return v;
}

/// std::memory_order carried as int through the narrow interface.
inline int mo_int(std::memory_order mo) { return static_cast<int>(mo); }

}  // namespace detail

namespace model {

/// Shadow std::atomic<T>. Must be created inside a running check() body;
/// every operation is a schedule point with full read-from branching.
template <typename T>
class atomic {
public:
    atomic() : atomic(T{}) {}
    explicit atomic(T init)
        : loc_(detail::ExecHandle::reg_atomic(detail::to_bits(init))) {}

    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst) const {
        return detail::from_bits<T>(
            detail::ExecHandle::atomic_load(loc_, detail::mo_int(mo)));
    }

    void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
        detail::ExecHandle::atomic_store(loc_, detail::to_bits(v),
                                         detail::mo_int(mo));
    }

    T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst) {
        static_assert(std::is_integral_v<T>,
                      "fetch_add is modeled for integral types only");
        return detail::from_bits<T>(detail::ExecHandle::rmw_add(
            loc_, detail::to_bits(delta), detail::mo_int(mo)));
    }

    bool compare_exchange_weak(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
        // No spurious failure in the model: weak == strong. Spurious failure
        // only adds schedules in which the surrounding retry loop runs again,
        // which the schedule explorer already covers via interleaving.
        return compare_exchange_strong(expected, desired, mo);
    }

    bool compare_exchange_strong(T& expected, T desired,
                                 std::memory_order mo = std::memory_order_seq_cst) {
        std::uint64_t exp = detail::to_bits(expected);
        const bool done = detail::ExecHandle::cas(loc_, exp, detail::to_bits(desired),
                                                  detail::mo_int(mo));
        expected = detail::from_bits<T>(exp);
        return done;
    }

    /// Blocks (in model time) until a store with value != old is readable.
    void wait(T old, std::memory_order mo = std::memory_order_seq_cst) const {
        detail::ExecHandle::atomic_wait(loc_, detail::to_bits(old),
                                        detail::mo_int(mo));
    }

    // Wake-ups are modeled at the wait() side (value-watching); notify
    // carries no information the model needs. See header comment.
    void notify_one() noexcept {}
    void notify_all() noexcept {}

private:
    std::size_t loc_;
};

/// Shadow plain-data cell: the model policy's `var<T>`. Accesses are race-
/// checked against every concurrent access but are NOT schedule points —
/// the race check is interleaving-insensitive (vector clocks), so skipping
/// the scheduler keeps the state space small without losing detection.
template <typename T>
class var {
public:
    var() : loc_(detail::ExecHandle::reg_plain()) {}
    explicit var(T v) : value_(std::move(v)), loc_(detail::ExecHandle::reg_plain()) {}

    var(var&& other) noexcept
        : value_(std::move(other.value_)),
          loc_(detail::ExecHandle::reg_plain()) {}
    var& operator=(var&& other) noexcept {
        value_ = std::move(other.value_);
        return *this;
    }
    var(const var&) = delete;
    var& operator=(const var&) = delete;

    void store_plain(T v) {
        detail::ExecHandle::plain_write(loc_);
        value_ = std::move(v);
    }
    const T& load_plain() const {
        detail::ExecHandle::plain_read(loc_);
        return value_;
    }
    T take_plain() {
        detail::ExecHandle::plain_write(loc_);
        return std::move(value_);
    }

private:
    T value_{};
    std::size_t loc_;
};

}  // namespace model

/// Model thread: spawn-on-construction, must be joined before destruction
/// (a dtor on a joinable thread is reported as a failure, mirroring
/// std::thread's terminate()).
class thread {
public:
    thread() = default;
    explicit thread(std::function<void()> fn)
        : tid_(detail::ExecHandle::spawn(std::move(fn))) {}

    thread(thread&& other) noexcept : tid_(other.tid_) { other.tid_ = -1; }
    thread& operator=(thread&& other) noexcept {
        std::swap(tid_, other.tid_);
        return *this;
    }
    thread(const thread&) = delete;
    thread& operator=(const thread&) = delete;

    bool joinable() const { return tid_ >= 0; }

    void join() {
        detail::ExecHandle::join(tid_);
        tid_ = -1;
    }

    ~thread() noexcept(false) {
        if (tid_ < 0) return;
        // During the unwind of an already-failed execution (ModelAbort in
        // flight) a joinable wrapper is expected — the engine winds the
        // spawned thread down itself; throwing here would terminate().
        if (std::uncaught_exceptions() > 0) return;
        detail::ExecHandle::fail("model thread destroyed without join");
    }

private:
    int tid_ = -1;
};

/// The model-checking atomics policy: same named orders as
/// common::StdAtomics (the canonical protocol edges), shadow cell types.
/// Mutants in src/check/mutants.hpp derive from this and demote one order.
struct ModelAtomics {
    template <typename T>
    using atomic = model::atomic<T>;
    template <typename T>
    using var = model::var<T>;

    static constexpr std::memory_order ring_publish = std::memory_order_release;
    static constexpr std::memory_order ring_peer_acquire = std::memory_order_acquire;
    static constexpr std::memory_order turnstile_advance = std::memory_order_release;
    static constexpr std::memory_order turnstile_observe = std::memory_order_acquire;
    static constexpr std::memory_order mpmc_slot_publish = std::memory_order_release;
    static constexpr std::memory_order mpmc_slot_acquire = std::memory_order_acquire;
    static constexpr std::memory_order trace_publish = std::memory_order_release;
    static constexpr std::memory_order trace_acquire = std::memory_order_acquire;
};

}  // namespace htims::check

/// Assert an invariant inside a model-checked body. On violation the
/// current execution is aborted and reported with its full interleaving.
#define MODEL_ASSERT(cond)                                                   \
    do {                                                                     \
        if (!(cond))                                                         \
            ::htims::check::detail::ExecHandle::fail(                        \
                "MODEL_ASSERT failed: " #cond);                              \
    } while (0)
