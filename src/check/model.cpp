// model.cpp — the exploration engine behind src/check/model.hpp.
//
// One Explorer per check() call. Model threads are OS threads driven
// cooperatively through a single turn token (mutex + condvar), so exactly
// one model thread executes between scheduling decisions and every
// interleaving is deterministic and replayable. Worker OS threads are
// created once and reused across the (possibly millions of) executions of
// a search. The DFS trail alternates two node kinds:
//
//   Sched  — which enabled thread performs its announced pending operation
//            (created by the controller; carries the sleep set and the
//            preemption budget);
//   Choice — which store in the location's modification order a load (or
//            wait wake-up) observes (created by the performing thread).
//
// Replay of a trail prefix is bit-deterministic, so nodes are extended in
// place and backtracking truncates the suffix.
#include "check/model.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace htims::check {
namespace {

constexpr int kController = -1;
constexpr std::size_t kMaxThreads = 8;

/// Vector clock over model thread ids.
using Clock = std::array<std::uint64_t, kMaxThreads>;

Clock zero_clock() { return Clock{}; }

void join_clock(Clock& into, const Clock& other) {
    for (std::size_t i = 0; i < kMaxThreads; ++i)
        into[i] = std::max(into[i], other[i]);
}

bool clock_leq(const Clock& a, const Clock& b) {
    for (std::size_t i = 0; i < kMaxThreads; ++i)
        if (a[i] > b[i]) return false;
    return true;
}

enum class OpKind { kLoad, kStore, kRmw, kCas, kWait, kSpawn, kJoin };

const char* op_name(OpKind k) {
    switch (k) {
        case OpKind::kLoad: return "load";
        case OpKind::kStore: return "store";
        case OpKind::kRmw: return "rmw";
        case OpKind::kCas: return "cas";
        case OpKind::kWait: return "wait";
        case OpKind::kSpawn: return "spawn";
        case OpKind::kJoin: return "join";
    }
    return "?";
}

const char* mo_name(int mo) {
    switch (static_cast<std::memory_order>(mo)) {
        case std::memory_order_relaxed: return "rlx";
        case std::memory_order_consume: return "cns";
        case std::memory_order_acquire: return "acq";
        case std::memory_order_release: return "rel";
        case std::memory_order_acq_rel: return "ar";
        case std::memory_order_seq_cst: return "sc";
    }
    return "?";
}

bool mo_acquires(int mo) {
    const auto m = static_cast<std::memory_order>(mo);
    return m == std::memory_order_acquire || m == std::memory_order_acq_rel ||
           m == std::memory_order_seq_cst || m == std::memory_order_consume;
}

bool mo_releases(int mo) {
    const auto m = static_cast<std::memory_order>(mo);
    return m == std::memory_order_release || m == std::memory_order_acq_rel ||
           m == std::memory_order_seq_cst;
}

bool mo_sc(int mo) {
    return static_cast<std::memory_order>(mo) == std::memory_order_seq_cst;
}

/// A pending (announced, not yet performed) operation of a parked thread.
struct Op {
    OpKind kind = OpKind::kLoad;
    std::size_t loc = 0;   // atomic location (kSpawn/kJoin: unused/target)
    std::uint64_t arg = 0; // store value / rmw delta / wait old / join target
    int mo = 0;
};

/// Two ops are dependent when reordering them can change the execution.
/// Reads of the same location commute; everything touching a location with
/// at least one writer does not. Thread-control ops are conservatively
/// dependent with everything (they are rare; precision there buys little).
bool dependent(const Op& a, const Op& b) {
    auto is_control = [](const Op& o) {
        return o.kind == OpKind::kSpawn || o.kind == OpKind::kJoin;
    };
    if (is_control(a) || is_control(b)) return true;
    if (a.loc != b.loc) return false;
    auto is_read = [](const Op& o) {
        return o.kind == OpKind::kLoad || o.kind == OpKind::kWait;
    };
    return !(is_read(a) && is_read(b));
}

/// One store in a location's modification order.
struct Store {
    std::uint64_t value = 0;
    int tid = 0;      // storing thread
    Clock stamp;      // storing thread's clock at the store (hb test)
    Clock rel;        // release-sequence payload joined by acquire readers
    bool has_rel = false;
};

struct AtomicLoc {
    std::vector<Store> mo;  // modification order, append-only
    int last_sc = -1;       // index of the latest seq_cst store, -1 if none
};

/// Race-detection state of one plain (model::var) location.
struct PlainLoc {
    Clock write_stamp;  // stamp of the last write
    int write_tid = -1;
    Clock reads;        // join of all read stamps since the last write
    bool has_reads = false;
};

enum class ThreadState { kUnused, kRunning, kParked, kDone };

struct ThreadRec {
    ThreadState state = ThreadState::kUnused;
    Op pending;              // valid when kParked
    Clock clock;             // the thread's vector clock
    std::function<void()> job;
    bool has_job = false;    // job assigned, worker should pick it up
};

struct SleepEnt {
    int tid = 0;
    Op op;
};

/// One DFS trail node.
struct Node {
    bool is_choice = false;

    // --- Sched node ---
    int chosen_tid = 0;
    Op chosen_op;                      // the op the chosen thread announced
    std::vector<SleepEnt> sleep;       // sleep set on entry (fixed at creation)
    std::vector<SleepEnt> tried;       // fully-explored siblings
    std::vector<SleepEnt> enabled_at;  // enabled threads + their pending ops
    int preemptions = 0;               // preemptions used up to and incl. here

    // --- Choice node ---
    std::size_t num_choices = 0;
    std::size_t chosen = 0;  // index into the candidate list (newest first)
};

class Explorer;
thread_local Explorer* tls_explorer = nullptr;

class Explorer {
public:
    explicit Explorer(const Options& options) : options_(options) {}

    ~Explorer() {
        {
            std::lock_guard lock(m_);
            shutdown_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            if (w.joinable()) w.join();
    }

    Explorer(const Explorer&) = delete;
    Explorer& operator=(const Explorer&) = delete;

    Result run(const std::function<void()>& body) {
        Result res;
        while (true) {
            run_one(body);
            ++res.executions;
            res.steps += exec_steps_;
            if (!failure_.empty()) {
                res.ok = false;
                res.complete = true;  // failing interleaving is a definite answer
                res.failure = render_failure();
                if (options_.verbose) std::fputs(res.failure.c_str(), stderr);
                return res;
            }
            if (options_.max_executions != 0 &&
                res.executions >= options_.max_executions && advance_possible()) {
                res.ok = true;
                res.complete = false;
                return res;
            }
            if (!advance_trail()) {
                res.ok = true;
                res.complete = true;
                return res;
            }
        }
    }

    // ---- calls from model threads (narrow interface) --------------------

    std::size_t reg_atomic(std::uint64_t init) {
        const int tid = current_tid();
        AtomicLoc loc;
        Store s;
        s.value = init;
        s.tid = tid;
        s.stamp = threads_[static_cast<std::size_t>(tid)].clock;
        // The initial value behaves like a release store by the creator:
        // any thread that reaches this cell does so via a spawn edge anyway.
        s.rel = s.stamp;
        s.has_rel = true;
        loc.mo.push_back(s);
        atomics_.push_back(std::move(loc));
        for (auto& v : views_) v.push_back(0);
        return atomics_.size() - 1;
    }

    std::size_t reg_plain() {
        plains_.emplace_back();
        return plains_.size() - 1;
    }

    std::uint64_t atomic_load(std::size_t loc, int mo) {
        schedule(Op{OpKind::kLoad, loc, 0, mo});
        return perform_read(loc, mo, /*wait_old=*/nullptr);
    }

    void atomic_store(std::size_t loc, std::uint64_t v, int mo) {
        schedule(Op{OpKind::kStore, loc, v, mo});
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        Store s;
        s.value = v;
        s.tid = tid;
        s.stamp = th.clock;
        if (mo_releases(mo)) {
            s.rel = th.clock;
            s.has_rel = true;
        }
        auto& al = atomics_[loc];
        al.mo.push_back(s);
        if (mo_sc(mo)) al.last_sc = static_cast<int>(al.mo.size()) - 1;
        views_[static_cast<std::size_t>(tid)][loc] = al.mo.size() - 1;
        trace_step(tid, "store " + loc_str(loc) + "@" + mo_name(mo) + " := " +
                            std::to_string(v));
    }

    std::uint64_t rmw_add(std::size_t loc, std::uint64_t delta, int mo) {
        schedule(Op{OpKind::kRmw, loc, delta, mo});
        const std::uint64_t old = perform_rmw(loc, mo, [&](std::uint64_t v) {
            return v + delta;
        });
        trace_step(current_tid(), "rmw " + loc_str(loc) + "@" + mo_name(mo) +
                                      " +" + std::to_string(delta) + " -> " +
                                      std::to_string(old));
        return old;
    }

    bool cas(std::size_t loc, std::uint64_t& expected, std::uint64_t desired,
             int mo) {
        schedule(Op{OpKind::kCas, loc, desired, mo});
        // Both arms read the latest store (atomicity for the success arm; a
        // deliberate simplification for the failure arm, which C++ allows to
        // read staler values — an under-approximation, documented in the
        // header, that cannot invent forbidden behaviors).
        auto& al = atomics_[loc];
        const Store& back = al.mo.back();
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        const bool success = back.value == expected;
        if (!success) {
            expected = back.value;
            if (mo_acquires(mo) && back.has_rel) join_clock(th.clock, back.rel);
            views_[static_cast<std::size_t>(tid)][loc] = al.mo.size() - 1;
            trace_step(tid, "cas-fail " + loc_str(loc) + "@" + mo_name(mo) +
                                " -> " + std::to_string(back.value));
            return false;
        }
        perform_rmw(loc, mo, [&](std::uint64_t) { return desired; });
        trace_step(tid, "cas " + loc_str(loc) + "@" + mo_name(mo) + " := " +
                            std::to_string(desired));
        return true;
    }

    void atomic_wait(std::size_t loc, std::uint64_t old, int mo) {
        schedule(Op{OpKind::kWait, loc, old, mo});
        perform_read(loc, mo, &old);
    }

    void plain_read(std::size_t loc) {
        // Not a schedule point: the race check below is interleaving-
        // insensitive, so scheduling around plain accesses adds states
        // without adding detection power.
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        auto& pl = plains_[loc];
        th.clock[static_cast<std::size_t>(tid)] += 1;
        if (pl.write_tid >= 0 && !clock_leq(pl.write_stamp, th.clock))
            fail("data race on plain location " + plain_str(loc) +
                 ": read by T" + std::to_string(tid) +
                 " concurrent with write by T" + std::to_string(pl.write_tid));
        join_clock(pl.reads, th.clock);
        pl.has_reads = true;
    }

    void plain_write(std::size_t loc) {
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        auto& pl = plains_[loc];
        th.clock[static_cast<std::size_t>(tid)] += 1;
        if (pl.write_tid >= 0 && !clock_leq(pl.write_stamp, th.clock))
            fail("data race on plain location " + plain_str(loc) +
                 ": write by T" + std::to_string(tid) +
                 " concurrent with write by T" + std::to_string(pl.write_tid));
        if (pl.has_reads && !clock_leq(pl.reads, th.clock))
            fail("data race on plain location " + plain_str(loc) +
                 ": write by T" + std::to_string(tid) +
                 " concurrent with a read");
        pl.write_stamp = th.clock;
        pl.write_tid = tid;
        pl.reads = zero_clock();
        pl.has_reads = false;
    }

    int spawn(std::function<void()> fn) {
        const int child = next_tid_;
        schedule(Op{OpKind::kSpawn, 0, static_cast<std::uint64_t>(child), 0});
        if (next_tid_ >= static_cast<int>(kMaxThreads))
            fail("model thread limit (" + std::to_string(kMaxThreads) +
                 ") exceeded");
        ++next_tid_;
        const int tid = current_tid();
        auto& parent = threads_[static_cast<std::size_t>(tid)];
        auto& ch = threads_[static_cast<std::size_t>(child)];
        ch.clock = parent.clock;  // spawn happens-before the child's first op
        ch.clock[static_cast<std::size_t>(child)] += 1;
        trace_step(tid, "spawn T" + std::to_string(child));
        start_job(child, std::move(fn));
        return child;
    }

    void join(int target) {
        schedule(Op{OpKind::kJoin, 0, static_cast<std::uint64_t>(target), 0});
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        join_clock(th.clock, threads_[static_cast<std::size_t>(target)].clock);
        trace_step(tid, "join T" + std::to_string(target));
    }

    [[noreturn]] void fail(const std::string& msg) {
        if (failure_.empty()) {
            failure_ = msg;
            failure_tid_ = current_tid();
        }
        aborting_ = true;
        throw ModelAbort{};
    }

private:
    // ---- one execution ---------------------------------------------------

    void run_one(const std::function<void()>& body) {
        atomics_.clear();
        plains_.clear();
        for (auto& v : views_) v.clear();
        for (auto& t : threads_) {
            t.state = ThreadState::kUnused;
            t.clock = zero_clock();
        }
        next_tid_ = 1;
        pos_ = 0;
        exec_steps_ = 0;
        trace_.clear();
        failure_.clear();
        failure_tid_ = -1;
        aborting_ = false;

        threads_[0].clock[0] = 1;
        start_job(0, body);
        controller_loop();
    }

    void controller_loop() {
        while (true) {
            std::vector<SleepEnt> enabled;
            bool any_live = false;
            {
                std::unique_lock lock(m_);
                for (int t = 0; t < next_tid_; ++t) {
                    auto& th = threads_[static_cast<std::size_t>(t)];
                    if (th.state == ThreadState::kDone) continue;
                    any_live = true;
                    if (th.state == ThreadState::kParked && op_enabled(th.pending))
                        enabled.push_back(SleepEnt{t, th.pending});
                }
            }
            if (!any_live) return;  // execution complete
            if (aborting_) {
                wind_down();
                return;
            }
            if (enabled.empty()) {
                record_deadlock();
                wind_down();
                return;
            }
            const int pick = sched_decide(enabled);
            if (pick < 0) {  // every enabled thread is asleep: redundant branch
                wind_down();
                return;
            }
            grant_and_wait(pick);
        }
    }

    /// Enabledness of an announced op (engine lock held).
    bool op_enabled(const Op& op) {
        if (op.kind == OpKind::kJoin)
            return threads_[static_cast<std::size_t>(op.arg)].state ==
                   ThreadState::kDone;
        if (op.kind == OpKind::kWait) {
            // Enabled once some readable store has a value != old. Waiting
            // threads don't hold the turn, so compute with its thread state.
            return !read_candidates_for(find_parked_tid(op), op.loc, op.mo,
                                        &op.arg)
                        .empty();
        }
        return true;
    }

    int find_parked_tid(const Op& op) const {
        for (int t = 0; t < next_tid_; ++t) {
            const auto& th = threads_[static_cast<std::size_t>(t)];
            if (th.state == ThreadState::kParked && &th.pending == &op) return t;
        }
        return 0;  // unreachable: op always belongs to a parked thread
    }

    /// Scheduling decision at the current trail position. Returns the tid to
    /// run, or -1 when every enabled thread is in the sleep set (prune).
    int sched_decide(const std::vector<SleepEnt>& enabled) {
        if (pos_ < trail_.size()) {
            Node& node = trail_[pos_];
            ++pos_;
            return node.chosen_tid;  // deterministic replay
        }
        Node node;
        node.is_choice = false;
        node.enabled_at = enabled;
        // Sleep set inherited from the parent sched node, minus entries woken
        // by a dependent op executed since (each step has its own node, so
        // "since" is exactly the parent's op).
        const Node* parent = last_sched_node();
        if (parent != nullptr) {
            for (const auto& e : parent->sleep)
                if (!dependent(e.op, parent->chosen_op)) node.sleep.push_back(e);
            for (const auto& e : parent->tried)
                if (!dependent(e.op, parent->chosen_op)) node.sleep.push_back(e);
        }
        const int prev = parent != nullptr ? parent->chosen_tid : 0;
        const int used = parent != nullptr ? parent->preemptions : 0;
        const int chosen = pick_candidate(node, enabled, prev, used);
        if (chosen < 0) return -1;
        trail_.push_back(std::move(node));
        ++pos_;
        return chosen;
    }

    /// Pick a runnable candidate for `node` honoring sleep set + preemption
    /// budget; fills chosen_tid/chosen_op/preemptions. Returns -1 if none.
    int pick_candidate(Node& node, const std::vector<SleepEnt>& enabled,
                       int prev, int used) {
        auto asleep = [&](int tid) {
            for (const auto& e : node.sleep)
                if (e.tid == tid) return true;
            for (const auto& e : node.tried)
                if (e.tid == tid) return true;
            return false;
        };
        const bool prev_enabled = std::any_of(
            enabled.begin(), enabled.end(),
            [&](const SleepEnt& e) { return e.tid == prev; });
        std::vector<const SleepEnt*> cands;
        // Prefer continuing the previous thread (no preemption) — it keeps
        // the default execution close to a sequential run.
        for (const auto& e : enabled)
            if (e.tid == prev && !asleep(e.tid)) cands.push_back(&e);
        for (const auto& e : enabled)
            if (e.tid != prev && !asleep(e.tid)) cands.push_back(&e);
        for (const SleepEnt* c : cands) {
            const bool preempts = prev_enabled && c->tid != prev;
            if (preempts && options_.preemption_bound >= 0 &&
                used >= options_.preemption_bound)
                continue;
            node.chosen_tid = c->tid;
            node.chosen_op = c->op;
            node.preemptions = used + (preempts ? 1 : 0);
            return c->tid;
        }
        return -1;
    }

    const Node* last_sched_node() const {
        for (std::size_t i = pos_; i > 0; --i)
            if (!trail_[i - 1].is_choice) return &trail_[i - 1];
        return nullptr;
    }

    /// Backtrack: advance the deepest node with an unexplored alternative.
    bool advance_trail() {
        while (!trail_.empty()) {
            Node& node = trail_.back();
            if (node.is_choice) {
                if (node.chosen + 1 < node.num_choices) {
                    ++node.chosen;
                    return true;
                }
                trail_.pop_back();
                continue;
            }
            node.tried.push_back(SleepEnt{node.chosen_tid, node.chosen_op});
            // Recompute used-preemption budget from the parent.
            const Node* parent = nullptr;
            for (std::size_t i = trail_.size() - 1; i > 0; --i)
                if (!trail_[i - 1].is_choice) {
                    parent = &trail_[i - 1];
                    break;
                }
            const int prev = parent != nullptr ? parent->chosen_tid : 0;
            const int used = parent != nullptr ? parent->preemptions : 0;
            if (pick_candidate(node, node.enabled_at, prev, used) >= 0)
                return true;
            trail_.pop_back();
        }
        return false;
    }

    bool advance_possible() const {
        for (const Node& node : trail_) {
            if (node.is_choice) {
                if (node.chosen + 1 < node.num_choices) return true;
            } else if (node.tried.size() + node.sleep.size() + 1 <
                       node.enabled_at.size()) {
                return true;
            }
        }
        return false;
    }

    // ---- memory-model semantics (thread holds the turn) ------------------

    /// Stores of `loc` thread `tid` may legally read: at or after its own
    /// per-location view, at or after any store that happens-before now,
    /// and (for seq_cst) at or after the latest seq_cst store. Newest first.
    std::vector<std::size_t> read_candidates_for(int tid, std::size_t loc,
                                                 int mo,
                                                 const std::uint64_t* not_value) {
        const auto& th = threads_[static_cast<std::size_t>(tid)];
        const auto& al = atomics_[loc];
        std::size_t floor = views_[static_cast<std::size_t>(tid)][loc];
        for (std::size_t j = al.mo.size(); j > floor; --j) {
            const Store& s = al.mo[j - 1];
            if (s.stamp[static_cast<std::size_t>(s.tid)] <=
                th.clock[static_cast<std::size_t>(s.tid)]) {
                floor = std::max(floor, j - 1);  // hb-ordered: can't read older
                break;
            }
        }
        if (mo_sc(mo) && al.last_sc >= 0)
            floor = std::max(floor, static_cast<std::size_t>(al.last_sc));
        std::vector<std::size_t> out;
        for (std::size_t j = al.mo.size(); j > floor; --j) {
            if (not_value != nullptr && al.mo[j - 1].value == *not_value)
                continue;
            out.push_back(j - 1);
        }
        return out;
    }

    /// Perform a load (wait_old == nullptr) or a wait wake-up read
    /// (candidates restricted to value != *wait_old), with read-from
    /// branching through a Choice trail node.
    std::uint64_t perform_read(std::size_t loc, int mo,
                               const std::uint64_t* wait_old) {
        const int tid = current_tid();
        auto cands = read_candidates_for(tid, loc, mo, wait_old);
        // Enabledness was checked before granting; candidates only grow.
        std::size_t pick = 0;
        if (cands.size() > 1) pick = choose(cands.size());
        const std::size_t idx = cands[pick];
        auto& th = threads_[static_cast<std::size_t>(tid)];
        const Store& s = atomics_[loc].mo[idx];
        if (mo_acquires(mo) && s.has_rel) join_clock(th.clock, s.rel);
        auto& view = views_[static_cast<std::size_t>(tid)][loc];
        view = std::max(view, idx);
        trace_step(tid, std::string(wait_old != nullptr ? "wake " : "load ") +
                            loc_str(loc) + "@" + mo_name(mo) + " -> " +
                            std::to_string(s.value) + " (store#" +
                            std::to_string(idx) + ")");
        return s.value;
    }

    /// Read-modify-write: atomically reads the latest store and appends the
    /// transformed value, continuing the release sequence. Returns old.
    template <typename F>
    std::uint64_t perform_rmw(std::size_t loc, int mo, F&& f) {
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        auto& al = atomics_[loc];
        const Store back = al.mo.back();
        if (mo_acquires(mo) && back.has_rel) join_clock(th.clock, back.rel);
        Store s;
        s.value = f(back.value);
        s.tid = tid;
        s.stamp = th.clock;
        // An RMW continues the release sequence of the store it replaces:
        // its payload keeps the predecessor's, joined with this thread's
        // clock when the RMW itself releases.
        s.rel = back.has_rel ? back.rel : zero_clock();
        s.has_rel = back.has_rel;
        if (mo_releases(mo)) {
            join_clock(s.rel, th.clock);
            s.has_rel = true;
        }
        al.mo.push_back(s);
        if (mo_sc(mo)) al.last_sc = static_cast<int>(al.mo.size()) - 1;
        views_[static_cast<std::size_t>(tid)][loc] = al.mo.size() - 1;
        return back.value;
    }

    /// Read-from (and any other data) nondeterminism: branch over n
    /// alternatives through the trail. Called by the thread with the turn.
    std::size_t choose(std::size_t n) {
        if (pos_ < trail_.size()) {
            Node& node = trail_[pos_];
            ++pos_;
            return node.chosen;
        }
        Node node;
        node.is_choice = true;
        node.num_choices = n;
        node.chosen = 0;
        trail_.push_back(node);
        ++pos_;
        return 0;
    }

    // ---- cooperative scheduling machinery --------------------------------

    int current_tid() const { return tls_tid; }

    /// Announce the next operation, hand the turn back, and block until the
    /// controller grants it. Increments the thread's clock component (every
    /// performed op is a distinct event).
    void schedule(Op op) {
        const int tid = current_tid();
        auto& th = threads_[static_cast<std::size_t>(tid)];
        {
            std::unique_lock lock(m_);
            th.pending = op;
            th.state = ThreadState::kParked;
            if (turn_ == tid) turn_ = kController;
            cv_.notify_all();
            cv_.wait(lock, [&] { return turn_ == tid || shutdown_; });
            th.state = ThreadState::kRunning;
            if (shutdown_) throw ModelAbort{};
        }
        if (aborting_) throw ModelAbort{};
        th.clock[static_cast<std::size_t>(tid)] += 1;
        ++exec_steps_;
        if (exec_steps_ > options_.max_steps)
            fail("step cap exceeded (" + std::to_string(options_.max_steps) +
                 " ops in one execution) — runaway loop in the checked body?");
    }

    /// Controller: give the turn to `tid` and wait for it to park or finish.
    void grant_and_wait(int tid) {
        std::unique_lock lock(m_);
        turn_ = tid;
        cv_.notify_all();
        cv_.wait(lock, [&] { return turn_ == kController; });
    }

    /// Wind down an aborted or pruned execution: release every live thread;
    /// each observes aborting_ and unwinds via ModelAbort.
    void wind_down() {
        aborting_ = true;
        while (true) {
            int next = -1;
            {
                std::lock_guard lock(m_);
                for (int t = 0; t < next_tid_; ++t)
                    if (threads_[static_cast<std::size_t>(t)].state ==
                        ThreadState::kParked) {
                        next = t;
                        break;
                    }
            }
            if (next < 0) break;
            grant_and_wait(next);
        }
        // Wait for any thread still running its unwind to finish.
        std::unique_lock lock(m_);
        cv_.wait(lock, [&] {
            for (int t = 0; t < next_tid_; ++t)
                if (threads_[static_cast<std::size_t>(t)].state !=
                        ThreadState::kDone &&
                    threads_[static_cast<std::size_t>(t)].state !=
                        ThreadState::kUnused)
                    return false;
            return true;
        });
    }

    void record_deadlock() {
        if (!failure_.empty()) return;
        std::ostringstream os;
        os << "deadlock: no thread is enabled;";
        for (int t = 0; t < next_tid_; ++t) {
            const auto& th = threads_[static_cast<std::size_t>(t)];
            if (th.state == ThreadState::kParked)
                os << " T" << t << " blocked on "
                   << op_name(th.pending.kind) << "(" << th.pending.loc << ")";
        }
        failure_ = os.str();
    }

    /// Start (or reuse) the worker OS thread for model tid `t` and hand it
    /// `fn`; blocks until the new model thread parks at its first operation
    /// (so exactly one model thread is ever running user code).
    void start_job(int t, std::function<void()> fn) {
        {
            std::lock_guard lock(m_);
            auto& th = threads_[static_cast<std::size_t>(t)];
            th.job = std::move(fn);
            th.has_job = true;
            th.state = ThreadState::kRunning;
            if (workers_.size() <= static_cast<std::size_t>(t))
                workers_.emplace_back([this, t] { worker_loop(t); });
        }
        cv_.notify_all();
        std::unique_lock lock(m_);
        cv_.wait(lock, [&] {
            const auto st = threads_[static_cast<std::size_t>(t)].state;
            return st == ThreadState::kParked || st == ThreadState::kDone;
        });
    }

    void worker_loop(int tid) {
        tls_explorer = this;
        tls_tid = tid;
        while (true) {
            std::function<void()> job;
            {
                std::unique_lock lock(m_);
                auto& th = threads_[static_cast<std::size_t>(tid)];
                cv_.wait(lock, [&] { return th.has_job || shutdown_; });
                if (shutdown_) return;
                th.has_job = false;
                job = std::move(th.job);
            }
            try {
                job();
            } catch (const ModelAbort&) {
            } catch (const std::exception& e) {
                if (failure_.empty())
                    failure_ = std::string("exception escaped model thread: ") +
                               e.what();
                aborting_ = true;
            } catch (...) {
                if (failure_.empty())
                    failure_ = "exception escaped model thread";
                aborting_ = true;
            }
            {
                std::lock_guard lock(m_);
                auto& th = threads_[static_cast<std::size_t>(tid)];
                th.state = ThreadState::kDone;
                if (turn_ == tid) turn_ = kController;
            }
            cv_.notify_all();
        }
    }

    // ---- reporting -------------------------------------------------------

    void trace_step(int tid, std::string what) {
        trace_.push_back("T" + std::to_string(tid) + " " + std::move(what));
    }

    static std::string loc_str(std::size_t loc) {
        return "a" + std::to_string(loc);
    }
    static std::string plain_str(std::size_t loc) {
        return "p" + std::to_string(loc);
    }

    std::string render_failure() const {
        std::ostringstream os;
        os << failure_;
        if (failure_tid_ >= 0) os << " (detected by T" << failure_tid_ << ")";
        os << "\ninterleaving (" << trace_.size() << " steps):\n";
        for (std::size_t i = 0; i < trace_.size(); ++i)
            os << "  #" << i << " " << trace_[i] << "\n";
        return os.str();
    }

    // ---- state -----------------------------------------------------------

    Options options_;

    // Engine coordination.
    std::mutex m_;
    std::condition_variable cv_;
    int turn_ = kController;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
    static thread_local int tls_tid;

    // Per-execution program state.
    std::array<ThreadRec, kMaxThreads> threads_;
    int next_tid_ = 1;
    std::vector<AtomicLoc> atomics_;
    std::vector<PlainLoc> plains_;
    std::array<std::vector<std::size_t>, kMaxThreads> views_;
    bool aborting_ = false;
    std::string failure_;
    int failure_tid_ = -1;
    std::vector<std::string> trace_;
    std::uint64_t exec_steps_ = 0;

    // DFS trail (persists across executions; truncated on backtrack).
    std::vector<Node> trail_;
    std::size_t pos_ = 0;
};

thread_local int Explorer::tls_tid = kController;

}  // namespace

Result check(const Options& options, const std::function<void()>& body) {
    Explorer explorer(options);
    return explorer.run(body);
}

namespace detail {

namespace {
Explorer& cur() {
    // A model cell or thread used outside a running check() body is a
    // programming error in the litmus unit itself.
    if (tls_explorer == nullptr)
        std::abort();
    return *tls_explorer;
}
}  // namespace

std::size_t ExecHandle::reg_atomic(std::uint64_t init) {
    return cur().reg_atomic(init);
}
std::size_t ExecHandle::reg_plain() { return cur().reg_plain(); }
std::uint64_t ExecHandle::atomic_load(std::size_t loc, int mo) {
    return cur().atomic_load(loc, mo);
}
void ExecHandle::atomic_store(std::size_t loc, std::uint64_t v, int mo) {
    cur().atomic_store(loc, v, mo);
}
std::uint64_t ExecHandle::rmw_add(std::size_t loc, std::uint64_t delta, int mo) {
    return cur().rmw_add(loc, delta, mo);
}
bool ExecHandle::cas(std::size_t loc, std::uint64_t& expected,
                     std::uint64_t desired, int mo) {
    return cur().cas(loc, expected, desired, mo);
}
void ExecHandle::atomic_wait(std::size_t loc, std::uint64_t old, int mo) {
    cur().atomic_wait(loc, old, mo);
}
void ExecHandle::plain_read(std::size_t loc) { cur().plain_read(loc); }
void ExecHandle::plain_write(std::size_t loc) { cur().plain_write(loc); }
int ExecHandle::spawn(std::function<void()> fn) {
    return cur().spawn(std::move(fn));
}
void ExecHandle::join(int tid) { cur().join(tid); }
void ExecHandle::fail(const std::string& msg) { cur().fail(msg); }

}  // namespace detail
}  // namespace htims::check
