// litmus.hpp — the litmus-unit registry shared by tests/test_model.cpp and
// tools/modelcheck.
//
// Each unit is a small concurrent program over the *production* protocol
// templates (SpscRing, OrderTurnstile, BasicTraceBuffer) instantiated with
// the model-checking atomics policy. Run through check(), a unit proves a
// protocol property over EVERY interleaving and every allowed weak-memory
// read. Units paired with a mutant policy (src/check/mutants.hpp) also act
// as soundness probes: the same body under the mutant must produce a
// failing interleaving, or the `model` gate fails.
//
// Litmus bodies make a bounded number of attempts (no unbounded spinning:
// a spin loop would give the DFS an unbounded schedule tree) and assert
// order/visibility properties conditionally on what an interleaving
// delivered. Visibility bugs surface as data races on the plain payload
// slots (model::var is vector-clock race checked), which is what lets a
// demoted release publish be caught even when every asserted *value* still
// comes out right.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "check/model.hpp"
#include "check/mutants.hpp"
#include "pipeline/mpmc_queue.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/turnstile.hpp"
#include "telemetry/trace.hpp"

namespace htims::check {

// ---- litmus bodies (templated over the atomics policy) --------------------

/// Single push/pop at capacity 2: slot handoff + FIFO for single-record ops.
template <typename P>
void litmus_ring_single_push_pop() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    thread producer([&] {
        MODEL_ASSERT(ring.try_push(11));  // empty ring: must fit
        MODEL_ASSERT(ring.try_push(22));  // one consumer pop at most: fits
    });
    std::uint64_t expect = 11;
    for (int attempt = 0; attempt < 2; ++attempt) {
        auto v = ring.try_pop();
        if (v.has_value()) {
            MODEL_ASSERT(*v == expect);
            expect += 11;
        }
    }
    producer.join();
}

/// push_batch/pop_batch across the wrap boundary at capacity 2: the batch
/// is published with one release store, so a concurrent pop_batch sees all
/// of it or none of it.
template <typename P>
void litmus_ring_batch_wrap() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    // Advance head to the wrap point single-threaded: the batch below then
    // spans slots [1, 0].
    MODEL_ASSERT(ring.try_push(1));
    MODEL_ASSERT(ring.try_pop().has_value());
    thread producer([&] {
        std::array<std::uint64_t, 2> in{7, 8};
        MODEL_ASSERT(ring.push_batch(std::span(in)) == 2);  // ring is empty
    });
    std::array<std::uint64_t, 2> out{};
    const std::size_t got = ring.pop_batch(std::span(out));
    MODEL_ASSERT(got == 0 || got == 2);  // single-store publish: no half batch
    if (got == 2) {
        MODEL_ASSERT(out[0] == 7);
        MODEL_ASSERT(out[1] == 8);
    }
    producer.join();
}

/// Mixed single/batch traffic at capacity 2: FIFO with no loss or
/// duplication whatever the interleaving delivers.
template <typename P>
void litmus_ring_mixed_ops() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    thread producer([&] {
        MODEL_ASSERT(ring.try_push(1));
        std::array<std::uint64_t, 2> in{2, 3};
        ring.push_batch(std::span(in));  // 0..2 fit depending on the consumer
    });
    std::uint64_t expect = 1;
    std::array<std::uint64_t, 2> out{};
    const std::size_t got = ring.pop_batch(std::span(out));
    for (std::size_t i = 0; i < got; ++i) {
        MODEL_ASSERT(out[i] == expect);
        ++expect;
    }
    auto v = ring.try_pop();
    if (v.has_value()) {
        MODEL_ASSERT(*v == expect);
        ++expect;
    }
    producer.join();
}

/// Cached-peer-index staleness: a full ring, a concurrent pop, and a third
/// push that can only proceed by refreshing the producer's tail cache —
/// the refresh must also acquire the consumer's read of the recycled slot.
template <typename P>
void litmus_ring_cached_peer_staleness() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    MODEL_ASSERT(ring.try_push(1));
    MODEL_ASSERT(ring.try_push(2));  // full: producer's tail cache is stale
    thread consumer([&] {
        auto v = ring.try_pop();
        MODEL_ASSERT(v.has_value() && *v == 1);
    });
    // Reuses slot 0 (which the consumer reads) iff the refreshed cache
    // proves the pop completed.
    const bool pushed = ring.try_push(3);
    consumer.join();
    auto a = ring.try_pop();
    MODEL_ASSERT(a.has_value() && *a == 2);
    auto b = ring.try_pop();
    MODEL_ASSERT(b.has_value() == pushed);
    if (pushed) MODEL_ASSERT(*b == 3);
}

/// N workers emit through the turnstile in frame order; a shared plain cell
/// written by each emission pins both the ordering and the inter-emission
/// happens-before edge (a demoted order turns it into a data race).
template <typename P>
void litmus_turnstile_ordered(std::size_t workers) {
    pipeline::OrderTurnstile<P> ts;
    typename P::template var<std::uint64_t> shared{0};
    std::vector<thread> pool;
    for (std::size_t i = 0; i < workers; ++i) {
        pool.emplace_back([&ts, &shared, i] {
            MODEL_ASSERT(ts.wait_turn(i));
            MODEL_ASSERT(shared.load_plain() == i);  // emissions in frame order
            shared.store_plain(i + 1);
            ts.advance();
        });
    }
    for (auto& t : pool) t.join();
    MODEL_ASSERT(shared.load_plain() == workers);
}

template <typename P>
void litmus_turnstile_ordered_2() {
    litmus_turnstile_ordered<P>(2);
}

template <typename P>
void litmus_turnstile_ordered_3() {
    litmus_turnstile_ordered<P>(3);
}

/// abort() releases a waiter blocked on a turn that will never come, and a
/// late advance() cannot resurrect the turnstile.
template <typename P>
void litmus_turnstile_abort() {
    pipeline::OrderTurnstile<P> ts;
    thread waiter([&] {
        MODEL_ASSERT(!ts.wait_turn(1));  // turn 1 is never granted
    });
    ts.abort();
    waiter.join();
    ts.advance();  // racing/late advance stays inside the aborted band
    MODEL_ASSERT(!ts.wait_turn(2));
}

/// Two turnstiles (two fleet streams) sharing a worker pool never
/// cross-release: each instance's waiter is released only by that
/// instance's advance, and the advance→observe edge carries the emitting
/// stream's payload writes across workers — per instance, even while the
/// other turnstile churns concurrently.
template <typename P>
void litmus_turnstile_per_stream_independence() {
    pipeline::OrderTurnstile<P> a;
    pipeline::OrderTurnstile<P> b;
    typename P::template var<std::uint64_t> a_val{0};
    typename P::template var<std::uint64_t> b_val{0};
    thread w1([&] {
        MODEL_ASSERT(a.wait_turn(0));
        a_val.store_plain(1);
        a.advance();
        MODEL_ASSERT(b.wait_turn(1));  // released only by w2's b.advance()
        MODEL_ASSERT(b_val.load_plain() == 1);
    });
    thread w2([&] {
        MODEL_ASSERT(b.wait_turn(0));
        b_val.store_plain(1);
        b.advance();
        MODEL_ASSERT(a.wait_turn(1));  // released only by w1's a.advance()
        MODEL_ASSERT(a_val.load_plain() == 1);
    });
    w1.join();
    w2.join();
}

/// MPMC dispatch: one producer hands one element to a concurrent consumer.
/// The consumer's payload move-out must be ordered after the producer's
/// payload write by the slot ticket alone (a demoted publish is a data race
/// on the payload slot).
template <typename P>
void litmus_mpmc_single_handoff() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    thread producer([&] { MODEL_ASSERT(q.try_push(7)); });
    for (int attempt = 0; attempt < 2; ++attempt) {
        auto v = q.try_pop();
        if (v.has_value()) {
            MODEL_ASSERT(*v == 7);
            break;
        }
    }
    producer.join();
}

/// The empty↔non-empty boundary: a concurrent pop either misses the push
/// (empty) or gets the whole element; after the join exactly one element
/// total was delivered, and the queue reads empty again.
template <typename P>
void litmus_mpmc_empty_boundary() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    thread producer([&] { MODEL_ASSERT(q.try_push(5)); });
    auto v1 = q.try_pop();  // concurrent: empty or {5}
    if (v1.has_value()) MODEL_ASSERT(*v1 == 5);
    producer.join();
    auto v2 = q.try_pop();
    MODEL_ASSERT(v1.has_value() != v2.has_value());  // exactly one delivery
    if (v2.has_value()) MODEL_ASSERT(*v2 == 5);
    MODEL_ASSERT(!q.try_pop().has_value());
}

/// The full↔free boundary across the slot-recycle edge: a full queue, a
/// concurrent pop, and a third push that can only land in the recycled
/// slot — the producer's ticket read must also acquire the consumer's
/// drain of that slot (mirrors ring_cached_peer_staleness).
template <typename P>
void litmus_mpmc_full_wrap() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    MODEL_ASSERT(q.try_push(1));
    MODEL_ASSERT(q.try_push(2));  // full
    thread consumer([&] {
        auto v = q.try_pop();
        MODEL_ASSERT(v.has_value() && *v == 1);
    });
    const bool pushed = q.try_push(3);  // lands iff slot 0 was recycled
    consumer.join();
    auto a = q.try_pop();
    MODEL_ASSERT(a.has_value() && *a == 2);  // FIFO preserved
    auto b = q.try_pop();
    MODEL_ASSERT(b.has_value() == pushed);
    if (pushed) MODEL_ASSERT(*b == 3);
}

/// Two concurrent producers: head-CAS arbitration gives each a distinct
/// slot — both elements arrive, neither is lost or duplicated, and the
/// queue is exactly drained afterwards (enqueue linearizability).
template <typename P>
void litmus_mpmc_two_producers() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    thread p1([&] { MODEL_ASSERT(q.try_push(1)); });
    thread p2([&] { MODEL_ASSERT(q.try_push(2)); });
    p1.join();
    p2.join();
    auto a = q.try_pop();
    auto b = q.try_pop();
    MODEL_ASSERT(a.has_value() && b.has_value());
    std::uint64_t seen = 0;
    seen |= std::uint64_t{1} << *a;
    seen |= std::uint64_t{1} << *b;
    MODEL_ASSERT(seen == 0b110);  // exactly {1, 2}, any order
    MODEL_ASSERT(!q.try_pop().has_value());
}

/// Two concurrent consumers over a pre-filled queue: tail-CAS arbitration
/// gives each a distinct element (dequeue linearizability — no element
/// vanishes, none is delivered twice).
template <typename P>
void litmus_mpmc_two_consumers() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    MODEL_ASSERT(q.try_push(1));
    MODEL_ASSERT(q.try_push(2));
    typename P::template var<std::uint64_t> got1{0};
    typename P::template var<std::uint64_t> got2{0};
    thread c1([&] {
        auto v = q.try_pop();
        if (v.has_value()) got1.store_plain(*v);
    });
    thread c2([&] {
        auto v = q.try_pop();
        if (v.has_value()) got2.store_plain(*v);
    });
    c1.join();
    c2.join();
    const std::uint64_t a = got1.load_plain();
    const std::uint64_t b = got2.load_plain();
    // Both elements were published before the consumers started, so each
    // pop wins a distinct one.
    MODEL_ASSERT(a != 0 && b != 0);
    MODEL_ASSERT(a + b == 3);
    MODEL_ASSERT(!q.try_pop().has_value());
}

/// Two producers against two consumers (main is the second consumer) at
/// capacity 2: whatever the interleaving, the multiset of delivered
/// elements is exactly the multiset pushed. One pop attempt per consumer —
/// enough for every push/pop pairing to interleave while keeping the state
/// space exhaustively explorable.
template <typename P>
void litmus_mpmc_two_producers_two_consumers() {
    pipeline::MpmcQueue<std::uint64_t, P> q(2);
    typename P::template var<std::uint64_t> got{0};
    thread p1([&] { MODEL_ASSERT(q.try_push(1)); });
    thread p2([&] { MODEL_ASSERT(q.try_push(2)); });
    thread c1([&] {
        auto v = q.try_pop();
        if (v.has_value()) got.store_plain(*v);
    });
    std::uint64_t mine = 0;
    if (auto v = q.try_pop()) mine = *v;
    p1.join();
    p2.join();
    c1.join();
    std::uint64_t sum = mine + got.load_plain();
    while (auto v = q.try_pop()) sum += *v;  // leftovers (bounded: <= 2)
    MODEL_ASSERT(sum == 3);
}

/// Two writers record spans while a reader snapshots mid-flight: the
/// snapshot sees only fully-published events, never a torn slot.
template <typename P>
void litmus_trace_snapshot_during_record() {
    telemetry::BasicTraceBuffer<P> buf(2);
    auto make_event = [](std::uint32_t k) {
        telemetry::SpanEvent ev;
        ev.name_id = k;
        ev.thread = k;
        ev.start_ns = k;
        ev.end_ns = k;
        return ev;
    };
    thread w1([&] { buf.record(make_event(1)); });
    thread w2([&] { buf.record(make_event(2)); });
    const auto mid = buf.events();  // concurrent with both writers
    MODEL_ASSERT(mid.size() <= 2);
    for (const auto& ev : mid)
        MODEL_ASSERT(ev.name_id >= 1 && ev.name_id <= 2 &&
                     ev.start_ns == ev.name_id);
    w1.join();
    w2.join();
    MODEL_ASSERT(buf.events().size() == 2);
    MODEL_ASSERT(buf.dropped() == 0);
}

/// Pins the audited conclusion that events() may read next_ relaxed: the
/// per-slot acquire flag alone carries the happens-before for the payload,
/// and a stale next_ can only undercount the scan. Exhaustive over one
/// writer vs one mid-flight snapshot.
template <typename P>
void litmus_trace_relaxed_next_audit() {
    telemetry::BasicTraceBuffer<P> buf(1);
    thread writer([&] {
        telemetry::SpanEvent ev;
        ev.name_id = 1;
        ev.start_ns = 1;
        ev.end_ns = 1;
        buf.record(ev);
    });
    const auto mid = buf.events();
    MODEL_ASSERT(mid.size() <= 1);
    if (!mid.empty()) MODEL_ASSERT(mid[0].name_id == 1 && mid[0].start_ns == 1);
    writer.join();
    MODEL_ASSERT(buf.events().size() == 1);
}

// ---- registry -------------------------------------------------------------

/// One registered litmus unit: the healthy body must PASS exhaustively; the
/// mutated body (when present) must produce a failing interleaving.
struct LitmusUnit {
    std::string name;
    std::string mutant;  ///< empty when the unit has no paired mutant
    std::function<void()> healthy;
    std::function<void()> mutated;  ///< null when the unit has no mutant
    /// Per-unit preemption-bound cap, applied on top of the driver's bound
    /// (the tighter one wins); -1 = follow the driver unchanged. Only for
    /// units whose full schedule tree is intractable (4+ threads): every
    /// seeded mutant in this registry is caught within 2 preemptions, so a
    /// cap of 3 still covers the bug class with headroom while keeping the
    /// exhaustive `model` stage minutes, not hours.
    int preemption_cap = -1;
};

/// The effective preemption bound for a unit: the tighter of the driver's
/// bound and the unit's cap (-1 = unbounded on either side).
inline int litmus_effective_bound(int driver_bound, int unit_cap) {
    if (unit_cap < 0) return driver_bound;
    if (driver_bound < 0) return unit_cap;
    return driver_bound < unit_cap ? driver_bound : unit_cap;
}

inline const std::vector<LitmusUnit>& litmus_units() {
    static const std::vector<LitmusUnit> units = {
        {"ring_single_push_pop", "ring_publish_relaxed",
         litmus_ring_single_push_pop<ModelAtomics>,
         litmus_ring_single_push_pop<MutantRingPublishRelaxed>},
        {"ring_batch_wrap", "ring_publish_relaxed",
         litmus_ring_batch_wrap<ModelAtomics>,
         litmus_ring_batch_wrap<MutantRingPublishRelaxed>},
        {"ring_mixed_ops", "",
         litmus_ring_mixed_ops<ModelAtomics>, nullptr},
        {"ring_cached_peer_staleness", "ring_peer_relaxed",
         litmus_ring_cached_peer_staleness<ModelAtomics>,
         litmus_ring_cached_peer_staleness<MutantRingPeerRelaxed>},
        {"turnstile_ordered_2", "turnstile_advance_relaxed",
         litmus_turnstile_ordered_2<ModelAtomics>,
         litmus_turnstile_ordered_2<MutantTurnstileAdvanceRelaxed>},
        {"turnstile_ordered_3", "turnstile_observe_relaxed",
         litmus_turnstile_ordered_3<ModelAtomics>,
         litmus_turnstile_ordered_3<MutantTurnstileObserveRelaxed>},
        {"turnstile_abort", "",
         litmus_turnstile_abort<ModelAtomics>, nullptr},
        {"turnstile_per_stream_independence", "",
         litmus_turnstile_per_stream_independence<ModelAtomics>, nullptr},
        {"mpmc_single_handoff", "mpmc_slot_publish_relaxed",
         litmus_mpmc_single_handoff<ModelAtomics>,
         litmus_mpmc_single_handoff<MutantMpmcSlotPublishRelaxed>},
        {"mpmc_empty_boundary", "mpmc_slot_acquire_relaxed",
         litmus_mpmc_empty_boundary<ModelAtomics>,
         litmus_mpmc_empty_boundary<MutantMpmcSlotAcquireRelaxed>},
        {"mpmc_full_wrap", "mpmc_slot_acquire_relaxed",
         litmus_mpmc_full_wrap<ModelAtomics>,
         litmus_mpmc_full_wrap<MutantMpmcSlotAcquireRelaxed>},
        {"mpmc_two_producers", "",
         litmus_mpmc_two_producers<ModelAtomics>, nullptr},
        {"mpmc_two_consumers", "",
         litmus_mpmc_two_consumers<ModelAtomics>, nullptr},
        {"mpmc_2p2c", "",
         litmus_mpmc_two_producers_two_consumers<ModelAtomics>, nullptr,
         /*preemption_cap=*/3},
        {"trace_snapshot_during_record", "trace_publish_relaxed",
         litmus_trace_snapshot_during_record<ModelAtomics>,
         litmus_trace_snapshot_during_record<MutantTracePublishRelaxed>},
        {"trace_relaxed_next_audit", "trace_acquire_relaxed",
         litmus_trace_relaxed_next_audit<ModelAtomics>,
         litmus_trace_relaxed_next_audit<MutantTraceAcquireRelaxed>},
    };
    return units;
}

}  // namespace htims::check
