// litmus.hpp — the litmus-unit registry shared by tests/test_model.cpp and
// tools/modelcheck.
//
// Each unit is a small concurrent program over the *production* protocol
// templates (SpscRing, OrderTurnstile, BasicTraceBuffer) instantiated with
// the model-checking atomics policy. Run through check(), a unit proves a
// protocol property over EVERY interleaving and every allowed weak-memory
// read. Units paired with a mutant policy (src/check/mutants.hpp) also act
// as soundness probes: the same body under the mutant must produce a
// failing interleaving, or the `model` gate fails.
//
// Litmus bodies make a bounded number of attempts (no unbounded spinning:
// a spin loop would give the DFS an unbounded schedule tree) and assert
// order/visibility properties conditionally on what an interleaving
// delivered. Visibility bugs surface as data races on the plain payload
// slots (model::var is vector-clock race checked), which is what lets a
// demoted release publish be caught even when every asserted *value* still
// comes out right.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "check/model.hpp"
#include "check/mutants.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/turnstile.hpp"
#include "telemetry/trace.hpp"

namespace htims::check {

// ---- litmus bodies (templated over the atomics policy) --------------------

/// Single push/pop at capacity 2: slot handoff + FIFO for single-record ops.
template <typename P>
void litmus_ring_single_push_pop() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    thread producer([&] {
        MODEL_ASSERT(ring.try_push(11));  // empty ring: must fit
        MODEL_ASSERT(ring.try_push(22));  // one consumer pop at most: fits
    });
    std::uint64_t expect = 11;
    for (int attempt = 0; attempt < 2; ++attempt) {
        auto v = ring.try_pop();
        if (v.has_value()) {
            MODEL_ASSERT(*v == expect);
            expect += 11;
        }
    }
    producer.join();
}

/// push_batch/pop_batch across the wrap boundary at capacity 2: the batch
/// is published with one release store, so a concurrent pop_batch sees all
/// of it or none of it.
template <typename P>
void litmus_ring_batch_wrap() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    // Advance head to the wrap point single-threaded: the batch below then
    // spans slots [1, 0].
    MODEL_ASSERT(ring.try_push(1));
    MODEL_ASSERT(ring.try_pop().has_value());
    thread producer([&] {
        std::array<std::uint64_t, 2> in{7, 8};
        MODEL_ASSERT(ring.push_batch(std::span(in)) == 2);  // ring is empty
    });
    std::array<std::uint64_t, 2> out{};
    const std::size_t got = ring.pop_batch(std::span(out));
    MODEL_ASSERT(got == 0 || got == 2);  // single-store publish: no half batch
    if (got == 2) {
        MODEL_ASSERT(out[0] == 7);
        MODEL_ASSERT(out[1] == 8);
    }
    producer.join();
}

/// Mixed single/batch traffic at capacity 2: FIFO with no loss or
/// duplication whatever the interleaving delivers.
template <typename P>
void litmus_ring_mixed_ops() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    thread producer([&] {
        MODEL_ASSERT(ring.try_push(1));
        std::array<std::uint64_t, 2> in{2, 3};
        ring.push_batch(std::span(in));  // 0..2 fit depending on the consumer
    });
    std::uint64_t expect = 1;
    std::array<std::uint64_t, 2> out{};
    const std::size_t got = ring.pop_batch(std::span(out));
    for (std::size_t i = 0; i < got; ++i) {
        MODEL_ASSERT(out[i] == expect);
        ++expect;
    }
    auto v = ring.try_pop();
    if (v.has_value()) {
        MODEL_ASSERT(*v == expect);
        ++expect;
    }
    producer.join();
}

/// Cached-peer-index staleness: a full ring, a concurrent pop, and a third
/// push that can only proceed by refreshing the producer's tail cache —
/// the refresh must also acquire the consumer's read of the recycled slot.
template <typename P>
void litmus_ring_cached_peer_staleness() {
    pipeline::SpscRing<std::uint64_t, P> ring(2);
    MODEL_ASSERT(ring.try_push(1));
    MODEL_ASSERT(ring.try_push(2));  // full: producer's tail cache is stale
    thread consumer([&] {
        auto v = ring.try_pop();
        MODEL_ASSERT(v.has_value() && *v == 1);
    });
    // Reuses slot 0 (which the consumer reads) iff the refreshed cache
    // proves the pop completed.
    const bool pushed = ring.try_push(3);
    consumer.join();
    auto a = ring.try_pop();
    MODEL_ASSERT(a.has_value() && *a == 2);
    auto b = ring.try_pop();
    MODEL_ASSERT(b.has_value() == pushed);
    if (pushed) MODEL_ASSERT(*b == 3);
}

/// N workers emit through the turnstile in frame order; a shared plain cell
/// written by each emission pins both the ordering and the inter-emission
/// happens-before edge (a demoted order turns it into a data race).
template <typename P>
void litmus_turnstile_ordered(std::size_t workers) {
    pipeline::OrderTurnstile<P> ts;
    typename P::template var<std::uint64_t> shared{0};
    std::vector<thread> pool;
    for (std::size_t i = 0; i < workers; ++i) {
        pool.emplace_back([&ts, &shared, i] {
            MODEL_ASSERT(ts.wait_turn(i));
            MODEL_ASSERT(shared.load_plain() == i);  // emissions in frame order
            shared.store_plain(i + 1);
            ts.advance();
        });
    }
    for (auto& t : pool) t.join();
    MODEL_ASSERT(shared.load_plain() == workers);
}

template <typename P>
void litmus_turnstile_ordered_2() {
    litmus_turnstile_ordered<P>(2);
}

template <typename P>
void litmus_turnstile_ordered_3() {
    litmus_turnstile_ordered<P>(3);
}

/// abort() releases a waiter blocked on a turn that will never come, and a
/// late advance() cannot resurrect the turnstile.
template <typename P>
void litmus_turnstile_abort() {
    pipeline::OrderTurnstile<P> ts;
    thread waiter([&] {
        MODEL_ASSERT(!ts.wait_turn(1));  // turn 1 is never granted
    });
    ts.abort();
    waiter.join();
    ts.advance();  // racing/late advance stays inside the aborted band
    MODEL_ASSERT(!ts.wait_turn(2));
}

/// Two writers record spans while a reader snapshots mid-flight: the
/// snapshot sees only fully-published events, never a torn slot.
template <typename P>
void litmus_trace_snapshot_during_record() {
    telemetry::BasicTraceBuffer<P> buf(2);
    auto make_event = [](std::uint32_t k) {
        telemetry::SpanEvent ev;
        ev.name_id = k;
        ev.thread = k;
        ev.start_ns = k;
        ev.end_ns = k;
        return ev;
    };
    thread w1([&] { buf.record(make_event(1)); });
    thread w2([&] { buf.record(make_event(2)); });
    const auto mid = buf.events();  // concurrent with both writers
    MODEL_ASSERT(mid.size() <= 2);
    for (const auto& ev : mid)
        MODEL_ASSERT(ev.name_id >= 1 && ev.name_id <= 2 &&
                     ev.start_ns == ev.name_id);
    w1.join();
    w2.join();
    MODEL_ASSERT(buf.events().size() == 2);
    MODEL_ASSERT(buf.dropped() == 0);
}

/// Pins the audited conclusion that events() may read next_ relaxed: the
/// per-slot acquire flag alone carries the happens-before for the payload,
/// and a stale next_ can only undercount the scan. Exhaustive over one
/// writer vs one mid-flight snapshot.
template <typename P>
void litmus_trace_relaxed_next_audit() {
    telemetry::BasicTraceBuffer<P> buf(1);
    thread writer([&] {
        telemetry::SpanEvent ev;
        ev.name_id = 1;
        ev.start_ns = 1;
        ev.end_ns = 1;
        buf.record(ev);
    });
    const auto mid = buf.events();
    MODEL_ASSERT(mid.size() <= 1);
    if (!mid.empty()) MODEL_ASSERT(mid[0].name_id == 1 && mid[0].start_ns == 1);
    writer.join();
    MODEL_ASSERT(buf.events().size() == 1);
}

// ---- registry -------------------------------------------------------------

/// One registered litmus unit: the healthy body must PASS exhaustively; the
/// mutated body (when present) must produce a failing interleaving.
struct LitmusUnit {
    std::string name;
    std::string mutant;  ///< empty when the unit has no paired mutant
    std::function<void()> healthy;
    std::function<void()> mutated;  ///< null when the unit has no mutant
};

inline const std::vector<LitmusUnit>& litmus_units() {
    static const std::vector<LitmusUnit> units = {
        {"ring_single_push_pop", "ring_publish_relaxed",
         litmus_ring_single_push_pop<ModelAtomics>,
         litmus_ring_single_push_pop<MutantRingPublishRelaxed>},
        {"ring_batch_wrap", "ring_publish_relaxed",
         litmus_ring_batch_wrap<ModelAtomics>,
         litmus_ring_batch_wrap<MutantRingPublishRelaxed>},
        {"ring_mixed_ops", "",
         litmus_ring_mixed_ops<ModelAtomics>, nullptr},
        {"ring_cached_peer_staleness", "ring_peer_relaxed",
         litmus_ring_cached_peer_staleness<ModelAtomics>,
         litmus_ring_cached_peer_staleness<MutantRingPeerRelaxed>},
        {"turnstile_ordered_2", "turnstile_advance_relaxed",
         litmus_turnstile_ordered_2<ModelAtomics>,
         litmus_turnstile_ordered_2<MutantTurnstileAdvanceRelaxed>},
        {"turnstile_ordered_3", "turnstile_observe_relaxed",
         litmus_turnstile_ordered_3<ModelAtomics>,
         litmus_turnstile_ordered_3<MutantTurnstileObserveRelaxed>},
        {"turnstile_abort", "",
         litmus_turnstile_abort<ModelAtomics>, nullptr},
        {"trace_snapshot_during_record", "trace_publish_relaxed",
         litmus_trace_snapshot_during_record<ModelAtomics>,
         litmus_trace_snapshot_during_record<MutantTracePublishRelaxed>},
        {"trace_relaxed_next_audit", "trace_acquire_relaxed",
         litmus_trace_relaxed_next_audit<ModelAtomics>,
         litmus_trace_relaxed_next_audit<MutantTraceAcquireRelaxed>},
    };
    return units;
}

}  // namespace htims::check
