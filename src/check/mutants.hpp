// mutants.hpp — seeded memory-order weakenings for the soundness gate.
//
// Each mutant policy derives from the healthy ModelAtomics and demotes
// exactly one named protocol order to relaxed. The `model` stage in
// scripts/check.sh runs every litmus unit against its paired mutant and
// requires the checker to report a FAILING interleaving — proving the
// harness can actually detect the class of bug it exists to prevent. (A
// demoted publish shows up as a *data race on the plain payload slot*, not
// just a wrong value, because model::var accesses are vector-clock race
// checked.)
//
// These types must never appear outside the model harness; the production
// policy lives in common/atomics_policy.hpp.
#pragma once

#include <atomic>

#include "check/model.hpp"

namespace htims::check {

/// Ring: producer's head publish (and consumer's tail publish) demoted —
/// slot contents may no longer be visible when the index is.
struct MutantRingPublishRelaxed : ModelAtomics {
    static constexpr std::memory_order ring_publish = std::memory_order_relaxed;
};

/// Ring: the cached-peer-index refresh demoted — the producer can reuse a
/// slot without having acquired the consumer's read of it (and vice versa).
struct MutantRingPeerRelaxed : ModelAtomics {
    static constexpr std::memory_order ring_peer_acquire = std::memory_order_relaxed;
};

/// Turnstile: the emitting worker's turn hand-off demoted — the next
/// emitter can see its turn without seeing the previous emission's writes.
struct MutantTurnstileAdvanceRelaxed : ModelAtomics {
    static constexpr std::memory_order turnstile_advance = std::memory_order_relaxed;
};

/// Turnstile: the waiter's observation of the turn counter demoted.
struct MutantTurnstileObserveRelaxed : ModelAtomics {
    static constexpr std::memory_order turnstile_observe = std::memory_order_relaxed;
};

/// MpmcQueue: the per-slot ticket publish demoted — a claimant can see the
/// ticket advance without the payload write (producer side) or the drain
/// (consumer side) that preceded it.
struct MutantMpmcSlotPublishRelaxed : ModelAtomics {
    static constexpr std::memory_order mpmc_slot_publish = std::memory_order_relaxed;
};

/// MpmcQueue: the claimant's ticket read demoted — the slot can be claimed
/// without acquiring the previous owner's payload traffic.
struct MutantMpmcSlotAcquireRelaxed : ModelAtomics {
    static constexpr std::memory_order mpmc_slot_acquire = std::memory_order_relaxed;
};

/// TraceBuffer: the per-slot ready-flag publish demoted — a snapshot can
/// copy a SpanEvent the writer has not finished filling.
struct MutantTracePublishRelaxed : ModelAtomics {
    static constexpr std::memory_order trace_publish = std::memory_order_relaxed;
};

/// TraceBuffer: the snapshot's ready-flag read demoted.
struct MutantTraceAcquireRelaxed : ModelAtomics {
    static constexpr std::memory_order trace_acquire = std::memory_order_relaxed;
};

}  // namespace htims::check
