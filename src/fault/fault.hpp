// fault.hpp — deterministic, seedable fault injection for the pipeline.
//
// The paper's hybrid node streams detector data continuously: a real
// LC-IMS-TOF run cannot abort mid-gradient because one frame arrived corrupt
// or the link briefly outran the decoder. The degraded-mode policies that
// make those events survivable (ring drop policies, frame_io skip-and-resync,
// bounded CPU-task retry, FPGA partial-frame overrun) need to be *testable
// deterministically* — that is this layer's job.
//
// Design:
//
//  * A FaultPlan names, per injection site, a Bernoulli probability and/or an
//    explicit schedule of event indices. Plans parse from a compact spec
//    string (the `htims_cli --faults=` grammar, see FaultPlan::parse).
//  * A FaultInjector evaluates the plan. The decision for event k at site s
//    is a *pure function* of (seed, site, event index) — no shared RNG
//    stream — so the fault pattern is reproducible from the single seed
//    regardless of thread interleaving, and two runs of the same plan over
//    the same event sequence inject byte-for-byte identical faults.
//  * Each site keeps atomic event/injected counters; Counts snapshots them
//    for run reports ("injected vs recovered" accounting).
//
// The fault layer is a leaf: it depends only on src/common. Pipeline stages
// hold a FaultInjector* (null = fault-free, zero overhead beyond one branch).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace htims::fault {

/// Injection sites, one per hook in the pipeline.
enum class Site : std::size_t {
    kFrameCorrupt = 0,  ///< frame_io: flip one byte of a serialized frame
    kFrameTruncate,     ///< frame_io: cut a serialized frame short
    kLinkJitter,        ///< hybrid producer: delay before pushing a record
    kLinkOverrun,       ///< hybrid producer: record arrives at a "full" link
    kFpgaOverrun,       ///< fpga: cycle budget exhausted -> partial frame
    kCpuFault,          ///< cpu backend: transient decode-task failure
    kStoreTornPage,     ///< frame store: a page of an appended frame never
                        ///< reaches disk (torn write across a power cut)
    kStoreIndexTorn,    ///< frame store: finalize crashes mid-index — the
                        ///< footer is partial or missing
};
inline constexpr std::size_t kSiteCount = 8;

/// Canonical dotted name of a site ("frame_io.corrupt", "link.overrun", ...).
std::string_view site_name(Site site);

/// Inverse of site_name; throws ConfigError for an unknown name.
Site site_from_name(std::string_view name);

/// Per-site fault specification.
struct SiteSpec {
    double probability = 0.0;             ///< Bernoulli chance per event
    std::vector<std::uint64_t> schedule;  ///< fire at these event indices too

    bool active() const { return probability > 0.0 || !schedule.empty(); }
};

/// A complete, serializable fault plan: one RNG seed plus one spec per site.
struct FaultPlan {
    std::uint64_t seed = 0;
    std::array<SiteSpec, kSiteCount> sites{};

    SiteSpec& site(Site s) { return sites[static_cast<std::size_t>(s)]; }
    const SiteSpec& site(Site s) const { return sites[static_cast<std::size_t>(s)]; }

    /// True when no site injects anything.
    bool empty() const;

    /// Parse the CLI spec grammar: comma-separated clauses, each either
    ///   seed=<u64>                  the plan seed
    ///   <site>=<prob>               Bernoulli probability in [0, 1]
    ///   <site>@<i>[:<i>...]         scheduled event indices
    /// Sites: frame_io.corrupt, frame_io.truncate, link.jitter,
    /// link.overrun, fpga.overrun, cpu.fail, store.torn_page,
    /// store.index_torn. Example:
    ///   "seed=42,frame_io.corrupt=0.01,link.overrun=0.01,cpu.fail@3:17"
    /// Throws ConfigError on malformed input.
    static FaultPlan parse(std::string_view spec);

    /// Round-trippable spec string (parse(to_string()) == *this).
    std::string to_string() const;
};

/// Snapshot of injector activity, plain data for run reports.
struct InjectionCounts {
    std::array<std::uint64_t, kSiteCount> events{};    ///< decisions taken
    std::array<std::uint64_t, kSiteCount> injected{};  ///< faults fired

    std::uint64_t events_at(Site s) const { return events[static_cast<std::size_t>(s)]; }
    std::uint64_t injected_at(Site s) const {
        return injected[static_cast<std::size_t>(s)];
    }
    std::uint64_t total_injected() const;

    bool operator==(const InjectionCounts&) const = default;
};

/// Evaluates a FaultPlan. Thread-safe: decisions are pure functions of
/// (seed, site, event) and the per-site counters are atomic, so concurrent
/// sites (producer vs consumer threads) stay independent and reproducible.
class FaultInjector {
public:
    explicit FaultInjector(FaultPlan plan);

    const FaultPlan& plan() const { return plan_; }

    /// Decide the next event at `site`: advances the site's event counter
    /// and returns whether the fault fires (counted when it does).
    bool should_fire(Site site);

    /// One decision with its event index attached — callers that need
    /// follow-up draws (which byte to corrupt, where to truncate) key them
    /// off the same event via draw_below(site, decision.event, ...).
    struct Decision {
        bool fire = false;
        std::uint64_t event = 0;
    };
    Decision decide(Site site);

    /// Pure decision for a specific event index; no counters touched.
    /// should_fire(s) == fires_at(s, <current event index>).
    bool fires_at(Site site, std::uint64_t event) const;

    /// Deterministic uniform draw in [0, n) tied to (site, event, salt) —
    /// used to pick *which* byte to corrupt, *where* to truncate, etc.
    /// Pure; requires n >= 1.
    std::uint64_t draw_below(Site site, std::uint64_t event, std::uint64_t n,
                             std::uint32_t salt = 0) const;

    /// Events examined / faults fired at one site so far.
    std::uint64_t events(Site site) const;
    std::uint64_t injected(Site site) const;

    /// Point-in-time snapshot of all counters.
    InjectionCounts counts() const;

    /// Zero the counters (the plan is untouched); a fresh run of the same
    /// event sequence then reproduces the same faults.
    void reset();

private:
    FaultPlan plan_;
    std::array<std::uint64_t, kSiteCount> thresholds_{};  ///< p as a u64 scale
    std::array<std::atomic<std::uint64_t>, kSiteCount> events_{};
    std::array<std::atomic<std::uint64_t>, kSiteCount> injected_{};
};

}  // namespace htims::fault
