#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace htims::fault {

namespace {

constexpr std::array<std::string_view, kSiteCount> kSiteNames = {
    "frame_io.corrupt", "frame_io.truncate", "link.jitter",
    "link.overrun",     "fpga.overrun",      "cpu.fail",
    "store.torn_page",  "store.index_torn",
};

/// Pure 64-bit mixer over (seed, site, event, salt): one splitmix64 step per
/// word keeps the decision a stateless function of its inputs, which is what
/// makes the injector reproducible under any thread interleaving.
std::uint64_t mix(std::uint64_t seed, std::size_t site, std::uint64_t event,
                  std::uint32_t salt) {
    SplitMix64 sm(seed);
    std::uint64_t h = sm.next();
    h ^= SplitMix64(0xA24BAED4963EE407ULL * (site + 1)).next();
    h ^= SplitMix64(0x9FB21C651E98DF25ULL ^ event).next();
    if (salt != 0) h ^= SplitMix64(0xD1B54A32D192ED03ULL ^ salt).next();
    return SplitMix64(h).next();
}

std::uint64_t probability_threshold(double p) {
    if (p <= 0.0) return 0;
    if (p >= 1.0) return ~0ULL;
    // p scaled to the u64 range; the decision is `mix(...) < threshold`.
    return static_cast<std::uint64_t>(std::ldexp(p, 64));
}

double parse_probability(std::string_view site, std::string_view text) {
    char* end = nullptr;
    const std::string copy(text);
    const double p = std::strtod(copy.c_str(), &end);
    if (end == copy.c_str() || *end != '\0' || !(p >= 0.0) || p > 1.0)
        throw ConfigError("fault spec: probability for '" + std::string(site) +
                          "' must be in [0, 1], got '" + copy + "'");
    return p;
}

std::uint64_t parse_u64(std::string_view what, std::string_view text) {
    char* end = nullptr;
    const std::string copy(text);
    const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
    if (end == copy.c_str() || *end != '\0')
        throw ConfigError("fault spec: bad integer for '" + std::string(what) +
                          "': '" + copy + "'");
    return v;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
    return s;
}

}  // namespace

std::string_view site_name(Site site) {
    const auto i = static_cast<std::size_t>(site);
    HTIMS_CHECK(i < kSiteCount, "fault site enumerator in range");
    return kSiteNames[i];
}

Site site_from_name(std::string_view name) {
    for (std::size_t i = 0; i < kSiteCount; ++i)
        if (kSiteNames[i] == name) return static_cast<Site>(i);
    throw ConfigError("fault spec: unknown site '" + std::string(name) + "'");
}

bool FaultPlan::empty() const {
    return std::none_of(sites.begin(), sites.end(),
                        [](const SiteSpec& s) { return s.active(); });
}

FaultPlan FaultPlan::parse(std::string_view spec) {
    FaultPlan plan;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string_view clause = trim(rest.substr(0, comma));
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (clause.empty()) continue;

        const std::size_t at = clause.find('@');
        const std::size_t eq = clause.find('=');
        if (at != std::string_view::npos && (eq == std::string_view::npos || at < eq)) {
            // <site>@i1[:i2...]
            const Site s = site_from_name(trim(clause.substr(0, at)));
            std::string_view list = clause.substr(at + 1);
            auto& sched = plan.site(s).schedule;
            while (!list.empty()) {
                const std::size_t colon = list.find(':');
                sched.push_back(parse_u64(site_name(s), trim(list.substr(0, colon))));
                list = colon == std::string_view::npos ? std::string_view{}
                                                       : list.substr(colon + 1);
            }
            std::sort(sched.begin(), sched.end());
            sched.erase(std::unique(sched.begin(), sched.end()), sched.end());
        } else if (eq != std::string_view::npos) {
            const std::string_view key = trim(clause.substr(0, eq));
            const std::string_view value = trim(clause.substr(eq + 1));
            if (key == "seed") {
                plan.seed = parse_u64("seed", value);
            } else {
                const Site s = site_from_name(key);
                plan.site(s).probability = parse_probability(key, value);
            }
        } else {
            throw ConfigError("fault spec: clause '" + std::string(clause) +
                              "' is neither key=value nor site@indices");
        }
    }
    return plan;
}

std::string FaultPlan::to_string() const {
    std::string out = "seed=" + std::to_string(seed);
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        const SiteSpec& s = sites[i];
        const std::string name(kSiteNames[i]);
        if (s.probability > 0.0) {
            char buf[48];
            std::snprintf(buf, sizeof buf, "%.17g", s.probability);
            out += "," + name + "=" + buf;
        }
        if (!s.schedule.empty()) {
            out += "," + name + "@";
            for (std::size_t k = 0; k < s.schedule.size(); ++k) {
                if (k > 0) out += ":";
                out += std::to_string(s.schedule[k]);
            }
        }
    }
    return out;
}

std::uint64_t InjectionCounts::total_injected() const {
    std::uint64_t total = 0;
    for (std::uint64_t v : injected) total += v;
    return total;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        auto& sched = plan_.sites[i].schedule;
        std::sort(sched.begin(), sched.end());
        thresholds_[i] = probability_threshold(plan_.sites[i].probability);
    }
}

bool FaultInjector::fires_at(Site site, std::uint64_t event) const {
    const auto i = static_cast<std::size_t>(site);
    HTIMS_CHECK(i < kSiteCount, "fault site enumerator in range");
    const SiteSpec& spec = plan_.sites[i];
    if (!spec.schedule.empty() &&
        std::binary_search(spec.schedule.begin(), spec.schedule.end(), event))
        return true;
    const std::uint64_t threshold = thresholds_[i];
    if (threshold == 0) return false;
    if (threshold == ~0ULL) return true;
    return mix(plan_.seed, i, event, /*salt=*/0) < threshold;
}

bool FaultInjector::should_fire(Site site) { return decide(site).fire; }

FaultInjector::Decision FaultInjector::decide(Site site) {
    const auto i = static_cast<std::size_t>(site);
    const std::uint64_t event =
        events_[i].fetch_add(1, std::memory_order_relaxed);
    const bool fire = fires_at(site, event);
    if (fire) injected_[i].fetch_add(1, std::memory_order_relaxed);
    return Decision{fire, event};
}

std::uint64_t FaultInjector::draw_below(Site site, std::uint64_t event,
                                        std::uint64_t n, std::uint32_t salt) const {
    HTIMS_EXPECTS(n >= 1);
    // A full xoshiro stream seeded from the pure mix gives an unbiased
    // Lemire draw while staying a function of (seed, site, event, salt).
    Rng rng(mix(plan_.seed, static_cast<std::size_t>(site), event, salt ^ 0x5A5A5A5Au));
    return rng.below(n);
}

std::uint64_t FaultInjector::events(Site site) const {
    return events_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(Site site) const {
    return injected_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

InjectionCounts FaultInjector::counts() const {
    InjectionCounts c;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        c.events[i] = events_[i].load(std::memory_order_relaxed);
        c.injected[i] = injected_[i].load(std::memory_order_relaxed);
    }
    return c;
}

void FaultInjector::reset() {
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        events_[i].store(0, std::memory_order_relaxed);
        injected_[i].store(0, std::memory_order_relaxed);
    }
}

}  // namespace htims::fault
