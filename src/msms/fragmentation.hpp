// fragmentation.hpp — synthetic peptide fragmentation for multiplexed MS/MS.
//
// The IMS-multiplexed CID-TOF mode (Baker et al., companion #18) fragments
// *all* mobility-separated precursors in an rf collision cell after the
// drift tube; fragments inherit their precursor's drift time, and the
// deconvolution problem becomes assigning fragment peaks back to precursors
// by matching drift profiles. This module provides the synthetic substrate:
// a deterministic pseudo-sequence for each precursor (drawn from residue
// masses so that b/y fragment ladders are self-consistent with the
// precursor mass) and CID fragment ions with realistic intensity spread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/ion.hpp"

namespace htims::msms {

/// Fragment ion series.
enum class FragmentKind { kB, kY };

/// One CID fragment of a precursor.
struct FragmentIon {
    FragmentKind kind = FragmentKind::kY;
    int index = 0;             ///< ladder position (b_i / y_i)
    double mz = 0.0;           ///< singly protonated fragment m/z
    double fraction = 0.0;     ///< fraction of fragmented precursor intensity
};

/// A precursor with its theoretical fragment ladder.
struct FragmentedPrecursor {
    instrument::IonSpecies precursor;
    std::vector<double> residues;     ///< pseudo-sequence residue masses
    std::vector<FragmentIon> fragments;
};

/// Build a deterministic pseudo-sequence whose residue masses sum to the
/// precursor's neutral mass (minus water), then derive the singly charged
/// b/y ladders with pseudo-random (seeded by the precursor name) intensity
/// fractions summing to 1. Fragments outside [mz_min, mz_max] are dropped
/// from the returned ladder (they would not be recorded).
FragmentedPrecursor fragment_peptide(const instrument::IonSpecies& precursor,
                                     double mz_min, double mz_max,
                                     std::uint64_t seed = 0);

/// Theoretical singly-charged b/y ladder masses of a residue chain (no
/// intensities); used to build decoy ladders for FDR estimation.
std::vector<double> ladder_mzs(const std::vector<double>& residues);

/// A decoy ladder: every fragment shifted by `shift_da` — mass-incorrect by
/// construction, used to estimate the false assignment rate.
std::vector<double> decoy_ladder(const std::vector<double>& ladder, double shift_da);

}  // namespace htims::msms
