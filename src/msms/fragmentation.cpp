#include "msms/fragmentation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "instrument/constants.hpp"

namespace htims::msms {

namespace {

// Monoisotopic residue masses of the standard amino acids (no I/L split).
constexpr double kResidues[] = {
    57.02146,  71.03711,  87.03203,  97.05276,  99.06841,  101.04768,
    103.00919, 113.08406, 114.04293, 115.02694, 128.05858, 128.09496,
    129.04259, 131.04049, 137.05891, 147.06841, 156.10111, 163.06333,
    186.07931,
};
constexpr double kWater = 18.010565;
constexpr double kProton = instrument::kProtonMassDa;

std::uint64_t name_seed(const std::string& name, std::uint64_t seed) {
    std::uint64_t h = 1469598103934665603ULL ^ seed;
    for (const char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return h;
}

}  // namespace

std::vector<double> ladder_mzs(const std::vector<double>& residues) {
    std::vector<double> mzs;
    if (residues.size() < 2) return mzs;
    double prefix = 0.0;
    double total = 0.0;
    for (const double r : residues) total += r;
    for (std::size_t i = 0; i + 1 < residues.size(); ++i) {
        prefix += residues[i];
        mzs.push_back(prefix + kProton);                    // b_{i+1}
        mzs.push_back(total - prefix + kWater + kProton);   // y_{n-i-1}
    }
    return mzs;
}

std::vector<double> decoy_ladder(const std::vector<double>& ladder, double shift_da) {
    std::vector<double> decoy(ladder);
    for (double& mz : decoy) mz += shift_da;
    return decoy;
}

FragmentedPrecursor fragment_peptide(const instrument::IonSpecies& precursor,
                                     double mz_min, double mz_max,
                                     std::uint64_t seed) {
    HTIMS_EXPECTS(mz_max > mz_min);
    FragmentedPrecursor result;
    result.precursor = precursor;

    const double target = precursor.neutral_mass() - kWater;
    if (target < 2.0 * kResidues[0])
        throw ConfigError("precursor too light to fragment: " + precursor.name);

    // Draw residues until within one residue of the target, then close the
    // chain with a synthetic residue that makes the masses exact (keeps the
    // ladder consistent with the precursor m/z).
    Rng rng(name_seed(precursor.name, seed));
    double sum = 0.0;
    while (target - sum > 200.0) {
        const double r = kResidues[rng.below(std::size(kResidues))];
        result.residues.push_back(r);
        sum += r;
    }
    result.residues.push_back(target - sum);  // closing residue, 57..200 Da
    if (result.residues.back() < 40.0) {
        // Merge an implausibly light closer into its neighbour.
        const double tail = result.residues.back();
        result.residues.pop_back();
        result.residues.back() += tail;
    }

    // Intensity fractions: y ions favoured over b (typical CID of tryptic
    // 2+/3+ precursors), mid-ladder favoured over the ends.
    const auto ladder = ladder_mzs(result.residues);
    const std::size_t n_cuts = result.residues.size() - 1;
    std::vector<double> raw(ladder.size(), 0.0);
    for (std::size_t cut = 0; cut < n_cuts; ++cut) {
        const double mid = 1.0 - std::abs(static_cast<double>(2 * cut + 1) /
                                              static_cast<double>(2 * n_cuts) -
                                          0.5);
        raw[2 * cut] = 0.4 * mid * rng.uniform(0.3, 1.0);      // b
        raw[2 * cut + 1] = 1.0 * mid * rng.uniform(0.3, 1.0);  // y
    }

    double kept = 0.0;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        if (ladder[i] < mz_min || ladder[i] >= mz_max) continue;
        kept += raw[i];
    }
    if (kept <= 0.0) return result;  // nothing in range

    for (std::size_t i = 0; i < ladder.size(); ++i) {
        if (ladder[i] < mz_min || ladder[i] >= mz_max) continue;
        FragmentIon frag;
        frag.kind = (i % 2 == 0) ? FragmentKind::kB : FragmentKind::kY;
        frag.index = static_cast<int>(i / 2) + 1;
        frag.mz = ladder[i];
        frag.fraction = raw[i] / kept;
        result.fragments.push_back(frag);
    }
    std::sort(result.fragments.begin(), result.fragments.end(),
              [](const FragmentIon& a, const FragmentIon& b) { return a.mz < b.mz; });
    return result;
}

}  // namespace htims::msms
