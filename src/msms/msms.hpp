// msms.hpp — multiplexed IMS-CID-MS/MS simulation and deconvolution.
//
// Reproduces the data-processing problem of the IMS-multiplexed
// CID-TOF instrument (companion #18): every mobility-separated precursor is
// fragmented in an rf collision cell after the drift tube, so one
// multiplexed record holds the fragments of *all* precursors. Fragments
// inherit their precursor's drift profile; the deconvolution assigns each
// fragment peak to a precursor by correlating drift profiles between the
// MS1 and MS2 frames, and an identification is claimed when enough
// assigned fragments also match the precursor's theoretical ladder masses.
// The false discovery rate is estimated with mass-shifted decoy ladders —
// the methodology that let the original instrument report peptide
// identifications at <1% FDR from a single IMS separation.
#pragma once

#include <vector>

#include "core/feature_finder.hpp"
#include "core/simulator.hpp"
#include "msms/fragmentation.hpp"
#include "pipeline/frame.hpp"

namespace htims::msms {

/// MS/MS stage parameters.
struct MsmsConfig {
    double cid_efficiency = 0.7;   ///< fraction of each precursor fragmented
    double min_correlation = 0.8;  ///< drift-profile correlation gate
    double mz_tolerance = 0.3;     ///< Th tolerance for ladder matching
    std::size_t min_fragments = 3; ///< matched fragments needed for an ID
    double min_peak_snr = 5.0;     ///< MS2 peak detection gate
    double decoy_shift_da = 7.77;  ///< decoy ladder mass shift
    std::uint64_t seed = 99;       ///< fragmentation randomness
};

/// One MS2 peak after precursor assignment.
struct FragmentAssignment {
    core::FramePeak peak;
    int precursor = -1;        ///< index into the precursor list; -1 = orphan
    double correlation = 0.0;  ///< drift-profile correlation with it
    bool mass_matched = false; ///< within tolerance of the assigned ladder
};

/// Per-precursor identification evidence.
struct PrecursorEvidence {
    std::string name;
    std::size_t assigned_peaks = 0;   ///< fragments assigned by profile
    std::size_t matched_fragments = 0;///< ... that also match the ladder
    std::size_t decoy_matches = 0;    ///< ... matching the decoy ladder
    bool identified = false;
};

/// Outcome of one multiplexed MS/MS round.
struct MsmsResult {
    pipeline::Frame ms2_truth;        ///< fragment-domain ground truth
    pipeline::Frame ms2_deconvolved;  ///< decoded fragment frame
    std::vector<FragmentAssignment> assignments;
    std::vector<PrecursorEvidence> evidence;
    std::size_t identified = 0;
    /// decoy matches / target matches over all precursors (FDR proxy).
    double fdr_estimate = 0.0;
};

/// Drives an MS1 acquisition (through core::Simulator) plus a simulated
/// CID/MS2 stage on the same gate program, then runs the assignment.
class MsmsExperiment {
public:
    MsmsExperiment(const core::SimulatorConfig& config,
                   instrument::SampleMixture precursors, const MsmsConfig& msms);

    const std::vector<FragmentedPrecursor>& precursors() const { return fragmented_; }

    /// One full MS1 + MS2 round.
    MsmsResult run();

private:
    core::SimulatorConfig config_;
    MsmsConfig msms_;
    core::Simulator simulator_;
    std::vector<FragmentedPrecursor> fragmented_;
};

}  // namespace htims::msms
