#include "msms/msms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "pipeline/cpu_backend.hpp"
#include "transform/enhanced.hpp"

namespace htims::msms {

MsmsExperiment::MsmsExperiment(const core::SimulatorConfig& config,
                               instrument::SampleMixture precursors,
                               const MsmsConfig& msms)
    : config_(config), msms_(msms), simulator_(config, precursors) {
    if (msms.cid_efficiency < 0.0 || msms.cid_efficiency > 1.0)
        throw ConfigError("CID efficiency must be in [0, 1]");
    fragmented_.reserve(precursors.species.size());
    for (const auto& sp : precursors.species)
        fragmented_.push_back(
            fragment_peptide(sp, config.tof.mz_min, config.tof.mz_max, msms.seed));
}

MsmsResult MsmsExperiment::run() {
    // ---- MS1: ordinary multiplexed acquisition --------------------------
    const core::RunResult ms1 = simulator_.run();
    const auto& layout = simulator_.layout();
    const std::size_t t = layout.drift_bins;
    const instrument::TofAnalyzer tof(config_.tof);

    MsmsResult result;
    result.ms2_truth = pipeline::Frame(layout);

    // ---- MS2 truth: fragments deposited at the precursor drift profile --
    // Fragmentation happens after the drift tube, so each fragment inherits
    // its precursor's arrival-time distribution exactly.
    AlignedVector<double> record(layout.mz_bins);
    for (std::size_t p = 0; p < fragmented_.size(); ++p) {
        // Locate this precursor's trace (traces are only present for
        // species that actually eluted).
        const pipeline::SpeciesTrace* trace = nullptr;
        for (const auto& tr : ms1.acquisition.traces)
            if (tr.name == fragmented_[p].precursor.name) trace = &tr;
        if (trace == nullptr || trace->expected_ions <= 0.0) continue;

        // Fragment m/z record for one released packet.
        std::fill(record.begin(), record.end(), 0.0);
        const double fragmented_ions = trace->expected_ions * msms_.cid_efficiency;
        for (const auto& frag : fragmented_[p].fragments) {
            instrument::IonSpecies ion;
            ion.name = fragmented_[p].precursor.name + "_f";
            ion.mz = frag.mz;
            ion.charge = 1;
            tof.deposit(ion, fragmented_ions * frag.fraction, 0.0, record);
        }
        // Surviving (unfragmented) precursor.
        tof.deposit(fragmented_[p].precursor,
                    trace->expected_ions * (1.0 - msms_.cid_efficiency), 0.0,
                    record);

        // Gaussian drift envelope, circular.
        const double sigma = std::max(trace->drift_sigma_bins, 1e-6);
        const auto half = static_cast<long long>(std::ceil(4.0 * sigma));
        double wsum = 0.0;
        for (long long b = -half; b <= half; ++b)
            wsum += std::exp(-0.5 * static_cast<double>(b) * static_cast<double>(b) /
                             (sigma * sigma));
        for (long long b = -half; b <= half; ++b) {
            const double w = std::exp(-0.5 * static_cast<double>(b) *
                                      static_cast<double>(b) / (sigma * sigma)) /
                             wsum;
            const std::size_t bin = static_cast<std::size_t>(
                (static_cast<long long>(trace->drift_bin) + b +
                 static_cast<long long>(t)) %
                static_cast<long long>(t));
            auto row = result.ms2_truth.record(bin);
            for (std::size_t m = 0; m < record.size(); ++m)
                if (record[m] != 0.0) row[m] += w * record[m];
        }
    }

    // ---- Multiplex, detect, decode --------------------------------------
    transform::EnhancedDeconvolver enc(simulator_.engine().sequence());
    auto ws = enc.make_workspace();
    pipeline::Frame expected(layout);
    AlignedVector<double> profile(t), encoded(t);
    for (std::size_t m = 0; m < layout.mz_bins; ++m) {
        result.ms2_truth.drift_profile(m, profile);
        bool any = false;
        for (double v : profile) any |= (v != 0.0);
        if (!any) continue;
        enc.encode_fast(profile, encoded, ws);
        expected.set_drift_profile(m, encoded);
    }
    pipeline::Frame ms2_raw(layout);
    instrument::Detector detector(config_.detector);
    Rng rng(msms_.seed ^ 0xABCDEF);
    detector.acquire_accumulated(expected.data(), config_.acquisition.averages,
                                 ms2_raw.data(), rng);
    pipeline::CpuBackend cpu(simulator_.engine().sequence(), layout,
                             config_.cpu_threads);
    result.ms2_deconvolved = cpu.deconvolve(ms2_raw);

    // ---- Assignment: correlate drift profiles ---------------------------
    core::FeatureFindOptions peak_opts;
    peak_opts.min_snr = msms_.min_peak_snr;
    const auto peaks = core::find_frame_peaks(result.ms2_deconvolved, tof, peak_opts);

    // MS1 reference profiles, one per precursor with a trace.
    std::vector<int> trace_of(fragmented_.size(), -1);
    std::vector<AlignedVector<double>> refs;
    std::vector<std::size_t> ref_precursor;
    for (std::size_t p = 0; p < fragmented_.size(); ++p) {
        for (std::size_t i = 0; i < ms1.acquisition.traces.size(); ++i)
            if (ms1.acquisition.traces[i].name == fragmented_[p].precursor.name)
                trace_of[p] = static_cast<int>(i);
        if (trace_of[p] < 0) continue;
        AlignedVector<double> ref(t);
        ms1.deconvolved.drift_profile(
            ms1.acquisition.traces[static_cast<std::size_t>(trace_of[p])].mz_bin, ref);
        refs.push_back(std::move(ref));
        ref_precursor.push_back(p);
    }

    result.evidence.resize(fragmented_.size());
    for (std::size_t p = 0; p < fragmented_.size(); ++p)
        result.evidence[p].name = fragmented_[p].precursor.name;

    // The achievable mass tolerance is bounded by the m/z bin width (the
    // centroid of a one-bin-wide fragment peak cannot be more accurate than
    // the grid); widen the configured tolerance accordingly.
    const double bin_width = tof.bin_center(1) - tof.bin_center(0);
    const double mz_tol = std::max(msms_.mz_tolerance, 1.2 * bin_width);

    AlignedVector<double> frag_profile(t);
    for (const auto& peak : peaks) {
        FragmentAssignment assignment;
        assignment.peak = peak;
        result.ms2_deconvolved.drift_profile(peak.mz_bin, frag_profile);
        double best = msms_.min_correlation;
        for (std::size_t r = 0; r < refs.size(); ++r) {
            const double c = correlation(frag_profile, refs[r]);
            if (c > best) {
                best = c;
                assignment.precursor = static_cast<int>(ref_precursor[r]);
                assignment.correlation = c;
            }
        }
        if (assignment.precursor >= 0) {
            const auto p = static_cast<std::size_t>(assignment.precursor);
            auto& ev = result.evidence[p];
            ++ev.assigned_peaks;
            const auto ladder = ladder_mzs(fragmented_[p].residues);
            for (const double mz : ladder)
                if (std::abs(peak.mz - mz) <= mz_tol) {
                    assignment.mass_matched = true;
                    break;
                }
            if (assignment.mass_matched) ++ev.matched_fragments;
            for (const double mz : decoy_ladder(ladder, msms_.decoy_shift_da))
                if (std::abs(peak.mz - mz) <= mz_tol) {
                    ++ev.decoy_matches;
                    break;
                }
        }
        result.assignments.push_back(assignment);
    }

    std::size_t target_total = 0, decoy_total = 0;
    for (auto& ev : result.evidence) {
        ev.identified = ev.matched_fragments >= msms_.min_fragments;
        if (ev.identified) ++result.identified;
        target_total += ev.matched_fragments;
        decoy_total += ev.decoy_matches;
    }
    result.fdr_estimate =
        target_total > 0
            ? static_cast<double>(decoy_total) / static_cast<double>(target_total)
            : 0.0;
    return result;
}

}  // namespace htims::msms
