// mass_calibration.hpp — mass measurement and internal calibration.
//
// The multiplexed platform quotes low-ppm mass measurement accuracy after
// internal calibration (#22: better than 5 ppm). This module measures the
// centroided monoisotopic m/z of known species in a deconvolved frame,
// fits a linear internal calibration from designated calibrant species,
// and reports the residual ppm errors — the workflow behind experiment
// E13 (bench_e13_mass_accuracy).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "instrument/tof.hpp"
#include "pipeline/acquisition.hpp"
#include "pipeline/frame.hpp"

namespace htims::core {

/// One species' mass measurement.
struct MassMeasurement {
    std::string name;
    double true_mz = 0.0;
    double measured_mz = 0.0;
    double intensity = 0.0;

    double ppm_error() const {
        return true_mz > 0.0 ? 1e6 * (measured_mz - true_mz) / true_mz : 0.0;
    }
};

/// Linear m/z correction: corrected = intercept + slope * measured.
struct MassCalibration {
    double intercept = 0.0;
    double slope = 1.0;
    double apply(double measured_mz) const { return intercept + slope * measured_mz; }
};

/// Centroid the monoisotopic peak of one trace in a deconvolved frame:
/// the m/z record is integrated over +-2 drift bins around the trace's
/// drift position, and the centroid is taken over +-`halfwidth` m/z bins
/// around the apex nearest the expected position. Returns nullopt when no
/// apex rises above the local background.
std::optional<MassMeasurement> measure_mass(const pipeline::Frame& frame,
                                            const instrument::TofAnalyzer& tof,
                                            const pipeline::SpeciesTrace& trace,
                                            double true_mz,
                                            std::size_t halfwidth = 3);

/// Measure every trace (true m/z taken from the paired species list; the
/// two spans must be index-aligned as produced by one acquisition).
std::vector<MassMeasurement> measure_masses(
    const pipeline::Frame& frame, const instrument::TofAnalyzer& tof,
    const std::vector<pipeline::SpeciesTrace>& traces,
    const std::vector<instrument::IonSpecies>& species);

/// Least-squares linear calibration from calibrant measurements (needs at
/// least two). With one calibrant, fits an offset only.
MassCalibration fit_calibration(const std::vector<MassMeasurement>& calibrants);

/// Summary of |ppm| errors over a measurement set, optionally after
/// applying a calibration.
struct PpmSummary {
    double mean_abs = 0.0;
    double max_abs = 0.0;
    double rms = 0.0;
    std::size_t count = 0;
};
PpmSummary summarize_ppm(const std::vector<MassMeasurement>& measurements,
                         const MassCalibration* calibration = nullptr);

}  // namespace htims::core
