#include "core/feature_finder.hpp"

#include <algorithm>
#include <cmath>

#include "common/statistics.hpp"
#include "core/peaks.hpp"
#include "instrument/constants.hpp"

namespace htims::core {

std::vector<FramePeak> find_frame_peaks(const pipeline::Frame& frame,
                                        const instrument::TofAnalyzer& tof,
                                        const FeatureFindOptions& options) {
    const std::size_t drift_bins = frame.drift_bins();
    const std::size_t mz_bins = frame.mz_bins();
    std::vector<FramePeak> peaks;

    // Per-channel robust baselines (computed once per m/z column).
    AlignedVector<double> profile(drift_bins);
    std::vector<Baseline> baselines(mz_bins);
    for (std::size_t m = 0; m < mz_bins; ++m) {
        frame.drift_profile(m, profile);
        baselines[m] = estimate_baseline(profile);
    }

    for (std::size_t d = 0; d < drift_bins; ++d) {
        const std::size_t dm = (d + drift_bins - 1) % drift_bins;
        const std::size_t dp = (d + 1) % drift_bins;
        for (std::size_t m = 0; m < mz_bins; ++m) {
            const double v = frame.at(d, m);
            const Baseline& base = baselines[m];
            const double height = v - base.level;
            if (height < options.min_intensity) continue;
            const double noise = base.sigma > 0.0 ? base.sigma : 1e-12;
            if (height < options.min_snr * noise) continue;
            // 3x3 local maximum (strict against later neighbours so plateaus
            // yield exactly one peak).
            bool is_max = true;
            for (const std::size_t dd : {dm, d, dp}) {
                const std::size_t m_lo = m > 0 ? m - 1 : m;
                const std::size_t m_hi = m + 1 < mz_bins ? m + 1 : m;
                for (std::size_t mm = m_lo; mm <= m_hi && is_max; ++mm) {
                    if (dd == d && mm == m) continue;
                    const double w = frame.at(dd, mm);
                    const bool later = dd > d || (dd == d && mm > m);
                    if (later ? w >= v : w > v) is_max = false;
                }
                if (!is_max) break;
            }
            if (!is_max) continue;

            FramePeak p;
            p.drift_bin = d;
            p.mz_bin = m;
            p.intensity = height;
            p.snr = height / noise;
            // Sub-bin m/z centroid over the +-1 neighbours in the record.
            double wsum = 0.0, wx = 0.0;
            for (std::size_t mm = (m > 0 ? m - 1 : m);
                 mm <= std::min(m + 1, mz_bins - 1); ++mm) {
                const double w = std::max(0.0, frame.at(d, mm) - baselines[mm].level);
                wsum += w;
                wx += w * tof.bin_center(mm);
            }
            p.mz = wsum > 0.0 ? wx / wsum : tof.bin_center(m);
            peaks.push_back(p);
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const FramePeak& a, const FramePeak& b) {
                  return a.intensity > b.intensity;
              });
    return peaks;
}

std::vector<Feature> group_isotopes(const std::vector<FramePeak>& peaks,
                                    const FeatureFindOptions& options) {
    std::vector<Feature> features;
    std::vector<bool> used(peaks.size(), false);

    auto drift_close = [&](std::size_t a, std::size_t b) {
        const std::size_t d = a > b ? a - b : b - a;
        return d <= options.drift_tolerance;
    };

    for (std::size_t seed = 0; seed < peaks.size(); ++seed) {
        if (used[seed]) continue;
        const FramePeak& anchor = peaks[seed];

        std::vector<std::size_t> best_series;
        int best_charge = 0;
        for (int z = options.max_charge; z >= 1; --z) {
            const double spacing =
                instrument::kIsotopeSpacingDa / static_cast<double>(z);
            std::vector<std::size_t> series{seed};
            double expect = anchor.mz + spacing;
            for (;;) {
                std::size_t next = peaks.size();
                double best_err = options.mz_tolerance;
                for (std::size_t j = 0; j < peaks.size(); ++j) {
                    if (used[j] || j == seed) continue;
                    bool in_series = false;
                    for (std::size_t s : series) in_series |= (s == j);
                    if (in_series) continue;
                    if (!drift_close(peaks[j].drift_bin, anchor.drift_bin)) continue;
                    const double err = std::abs(peaks[j].mz - expect);
                    if (err < best_err) {
                        best_err = err;
                        next = j;
                    }
                }
                if (next == peaks.size()) break;
                series.push_back(next);
                expect += spacing;
            }
            if (series.size() > best_series.size()) {
                best_series = series;
                best_charge = z;
            }
        }

        Feature f;
        if (best_series.size() >= options.min_isotopes) {
            f.charge = best_charge;
            f.isotope_count = best_series.size();
            f.monoisotopic_mz = anchor.mz;
            f.drift_bin = anchor.drift_bin;
            for (std::size_t j : best_series) {
                f.intensity += peaks[j].intensity;
                f.monoisotopic_mz = std::min(f.monoisotopic_mz, peaks[j].mz);
                used[j] = true;
            }
        } else {
            f.charge = 0;
            f.isotope_count = 1;
            f.monoisotopic_mz = anchor.mz;
            f.drift_bin = anchor.drift_bin;
            f.intensity = anchor.intensity;
            used[seed] = true;
        }
        features.push_back(f);
    }
    std::sort(features.begin(), features.end(),
              [](const Feature& a, const Feature& b) {
                  return a.intensity > b.intensity;
              });
    return features;
}

std::vector<Feature> find_features(const pipeline::Frame& frame,
                                   const instrument::TofAnalyzer& tof,
                                   const FeatureFindOptions& options) {
    return group_isotopes(find_frame_peaks(frame, tof, options), options);
}

}  // namespace htims::core
