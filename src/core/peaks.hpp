// peaks.hpp — peak detection and characterization on 1-D spectra.
//
// Used on deconvolved drift profiles and on TOF records: robust baseline
// and noise estimation (median/MAD), local-maximum picking above an SNR
// threshold, centroiding, FWHM estimation by linear interpolation at half
// maximum, and peak-to-trace matching for detection scoring.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace htims::core {

/// One detected peak.
struct Peak {
    std::size_t apex_bin = 0;   ///< index of the local maximum
    double centroid = 0.0;      ///< intensity-weighted center (bins)
    double height = 0.0;        ///< apex height above baseline
    double area = 0.0;          ///< background-subtracted integral
    double fwhm_bins = 0.0;     ///< full width at half maximum (bins)
    double snr = 0.0;           ///< height / noise sigma

    /// Resolving power at position t: t / fwhm (caller supplies units).
    double resolving_power(double position, double bin_width) const {
        return fwhm_bins > 0.0 ? position / (fwhm_bins * bin_width) : 0.0;
    }
};

/// Peak-picking parameters.
struct PeakPickOptions {
    double min_snr = 3.0;          ///< detection threshold in noise sigmas
    std::size_t min_separation = 2;  ///< minimum bins between apexes
    std::size_t centroid_halfwidth = 3;  ///< bins each side used to centroid
};

/// Robust baseline (median) and noise sigma (scaled MAD) of a spectrum.
struct Baseline {
    double level = 0.0;
    double sigma = 0.0;
};
Baseline estimate_baseline(std::span<const double> spectrum);

/// Detect peaks in a spectrum. Returns peaks sorted by descending height.
std::vector<Peak> pick_peaks(std::span<const double> spectrum,
                             const PeakPickOptions& options = {});

/// SNR of the largest peak inside [lo, hi) against the baseline estimated
/// from the rest of the spectrum; 0 if the window holds no local maximum.
double window_snr(std::span<const double> spectrum, std::size_t lo, std::size_t hi);

/// True if a peak with at least `min_snr` lies within +-tolerance bins of
/// `expected_bin` (circular distance, since drift records are periodic).
bool detected_near(const std::vector<Peak>& peaks, std::size_t expected_bin,
                   double tolerance_bins, double min_snr, std::size_t spectrum_len);

}  // namespace htims::core
