// feature_finder.hpp — 2-D feature detection in deconvolved frames.
//
// The downstream consumer of the pipeline's output is feature finding: the
// drift x m/z frame is searched for 2-D peaks, and peaks that line up as an
// isotope series (spacing 1.00335/z on the m/z axis at the same drift time)
// are grouped into one *feature* with an inferred charge state — the unit
// that an LC-IMS-MS proteomics pipeline accumulates into peptide
// observations (cf. the accurate-mass-and-time-tag workflow the PNNL
// platform feeds).
#pragma once

#include <vector>

#include "instrument/tof.hpp"
#include "pipeline/frame.hpp"

namespace htims::core {

/// One 2-D local maximum in a frame.
struct FramePeak {
    std::size_t drift_bin = 0;
    std::size_t mz_bin = 0;
    double mz = 0.0;          ///< centroided m/z (sub-bin)
    double intensity = 0.0;   ///< apex height above local baseline
    double snr = 0.0;
};

/// An isotope-grouped feature.
struct Feature {
    double monoisotopic_mz = 0.0;  ///< centroid of the lightest member
    int charge = 0;                ///< inferred from isotope spacing (0 = unknown)
    std::size_t drift_bin = 0;
    double intensity = 0.0;        ///< summed member intensity
    std::size_t isotope_count = 0; ///< members in the series
    double neutral_mass() const {
        return charge > 0
                   ? (monoisotopic_mz - 1.007276466) * static_cast<double>(charge)
                   : 0.0;
    }
};

/// Detection parameters.
struct FeatureFindOptions {
    double min_snr = 5.0;            ///< per-peak SNR gate
    double min_intensity = 0.0;      ///< absolute height floor (counts)
    int max_charge = 4;              ///< charge states tried for grouping
    double mz_tolerance = 0.05;      ///< Th tolerance on isotope spacing
    std::size_t drift_tolerance = 1; ///< drift bins members may differ by
    std::size_t min_isotopes = 2;    ///< members needed to assign a charge
};

/// Find all 2-D peaks: cells that are local maxima over their 3x3
/// neighbourhood (circular in drift), pass the SNR gate against their m/z
/// channel's robust noise, and exceed the absolute floor. Sorted by
/// descending intensity.
std::vector<FramePeak> find_frame_peaks(const pipeline::Frame& frame,
                                        const instrument::TofAnalyzer& tof,
                                        const FeatureFindOptions& options = {});

/// Group peaks into isotope features. Each peak joins at most one feature;
/// grouping is greedy from the most intense peak down, trying charges
/// max_charge..1 and extending the series upward in m/z. Ungrouped peaks
/// become single-isotope features with charge 0.
std::vector<Feature> group_isotopes(const std::vector<FramePeak>& peaks,
                                    const FeatureFindOptions& options = {});

/// Convenience: find_frame_peaks + group_isotopes.
std::vector<Feature> find_features(const pipeline::Frame& frame,
                                   const instrument::TofAnalyzer& tof,
                                   const FeatureFindOptions& options = {});

}  // namespace htims::core
