#include "core/simulator.hpp"

#include "common/timer.hpp"

namespace htims::core {

Simulator::Simulator(const SimulatorConfig& config, instrument::SampleMixture sample)
    : config_(config),
      engine_(config.cell, config.tof, config.detector, config.trap,
              instrument::EsiSource(std::move(sample), config.lc_mode),
              config.acquisition),
      cpu_(engine_.sequence(), engine_.layout(), config.cpu_threads) {
    if (!config_.fault_plan.empty()) {
        faults_.emplace(config_.fault_plan);
        cpu_.set_faults(&*faults_, config_.cpu_max_retries,
                        config_.cpu_retry_backoff_s);
    }
}

RunResult Simulator::run(double start_time_s) {
    auto& tel = telemetry::Registry::global();
    static const auto kStageRun = tel.intern("simulator.run");
    auto span = tel.span(kStageRun);

    RunResult result{.acquisition = engine_.acquire(start_time_s),
                     .deconvolved = pipeline::Frame(engine_.layout()),
                     .decode_seconds = 0.0,
                     .fpga = std::nullopt};

    if (config_.acquisition.mode == pipeline::AcquisitionMode::kSignalAveraging) {
        // Conventional IMS: the accumulated record is the drift spectrum.
        result.deconvolved = result.acquisition.raw;
        return result;
    }

    WallTimer timer;
    if (config_.backend == pipeline::BackendKind::kFpga) {
        pipeline::FpgaPipeline fpga(engine_.sequence(), engine_.layout(), config_.fpga);
        fpga.set_faults(faults());
        fpga.begin_frame();
        // Stream the accumulated frame as one period of (wide) samples —
        // the accumulation already happened in the acquisition model.
        std::vector<std::uint32_t> samples =
            pipeline::to_period_samples(result.acquisition.raw, 1);
        fpga.push_samples(samples);
        result.deconvolved = fpga.end_frame();
        result.fpga = fpga.report();
    } else {
        result.deconvolved = cpu_.deconvolve(result.acquisition.raw);
    }
    result.decode_seconds = timer.seconds();
    result.cpu_task_retries = cpu_.task_retries();
    if (faults_.has_value()) result.faults = faults_->counts();
    return result;
}

}  // namespace htims::core
