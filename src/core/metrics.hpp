// metrics.hpp — evaluation metrics shared by the experiment harness.
//
// Everything the reproduced tables/figures report is computed here so the
// bench binaries stay thin: per-species SNR in deconvolved frames,
// reconstruction fidelity against the acquisition ground truth, resolving
// power, and detection scoring against the known species traces.
#pragma once

#include <vector>

#include "core/peaks.hpp"
#include "pipeline/acquisition.hpp"
#include "pipeline/frame.hpp"

namespace htims::core {

/// SNR of one species in a deconvolved frame: the peak in its m/z channel's
/// drift profile within +-`window_sigmas` of the expected drift bin, against
/// the channel's robust noise.
double species_snr(const pipeline::Frame& deconvolved,
                   const pipeline::SpeciesTrace& trace, double window_sigmas = 4.0);

/// Reconstruction fidelity between a deconvolved frame and the acquisition
/// ground truth (both are compared after normalizing each to unit total,
/// since the decoder works in detector counts and the truth in ions).
struct Fidelity {
    double rmse = 0.0;         ///< normalized root-mean-square error
    double correlation = 0.0;  ///< Pearson correlation over all cells
    double artifact_level = 0.0;  ///< largest |residual| outside true peaks,
                                  ///< relative to the largest true peak
};
Fidelity frame_fidelity(const pipeline::Frame& deconvolved, const pipeline::Frame& truth);

/// Measured drift resolving power of one species: fit the drift-profile peak
/// and return t_centroid / fwhm. Returns 0 when no peak is found.
double measured_resolving_power(const pipeline::Frame& deconvolved,
                                const pipeline::SpeciesTrace& trace);

/// Detection scoring: how many traces have a drift peak with SNR >=
/// `min_snr` within +-`tolerance_sigmas` of the expected position.
struct DetectionScore {
    std::size_t detected = 0;
    std::size_t total = 0;
    double rate() const {
        return total ? static_cast<double>(detected) / static_cast<double>(total) : 0.0;
    }
};
DetectionScore score_detections(const pipeline::Frame& deconvolved,
                                const std::vector<pipeline::SpeciesTrace>& traces,
                                double min_snr = 3.0, double tolerance_sigmas = 3.0);

}  // namespace htims::core
