#include "core/ccs.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "instrument/constants.hpp"

namespace htims::core {

double k0_from_drift_time(const instrument::DriftCellConfig& cell,
                          double drift_time_s) {
    HTIMS_EXPECTS(drift_time_s > 0.0);
    const double k = cell.length_m * cell.length_m / (cell.voltage_v * drift_time_s);
    // Undo the STP scaling applied by DriftCell::mobility.
    const double scale = 1e-4 * (instrument::kStandardPressureTorr / cell.pressure_torr) *
                         (cell.temperature_k / instrument::kStandardTemperatureK);
    return k / scale;
}

double ccs_from_k0(double k0, double ion_mass_da, int charge,
                   const instrument::DriftCellConfig& cell, const BufferGas& gas) {
    HTIMS_EXPECTS(k0 > 0.0 && ion_mass_da > 0.0 && charge >= 1);
    // Mobility at cell conditions, SI.
    const double k = k0 * 1e-4 *
                     (instrument::kStandardPressureTorr / cell.pressure_torr) *
                     (cell.temperature_k / instrument::kStandardTemperatureK);
    // Buffer gas number density at cell conditions.
    const double pressure_pa = cell.pressure_torr * 133.32236842105263;
    const double n = pressure_pa / (instrument::kBoltzmann * cell.temperature_k);
    // Reduced mass.
    const double m_ion = ion_mass_da * instrument::kDaltonKg;
    const double m_gas = gas.mass_da * instrument::kDaltonKg;
    const double mu = m_ion * m_gas / (m_ion + m_gas);

    const double q = static_cast<double>(charge) * instrument::kElementaryCharge;
    const double omega =
        (3.0 * q / (16.0 * n)) *
        std::sqrt(2.0 * 3.14159265358979323846 /
                  (mu * instrument::kBoltzmann * cell.temperature_k)) /
        k;
    return omega * 1e20;  // m^2 -> Å^2
}

DriftCalibration fit_drift_calibration(const std::vector<DriftCalibrant>& calibrants) {
    HTIMS_EXPECTS(calibrants.size() >= 2);
    // Linear in 1/K0: t_d = slope * (1/K0) + intercept.
    std::vector<double> x, y;
    x.reserve(calibrants.size());
    y.reserve(calibrants.size());
    for (const auto& c : calibrants) {
        HTIMS_EXPECTS(c.known_k0 > 0.0);
        x.push_back(1.0 / c.known_k0);
        y.push_back(c.measured_drift_s);
    }
    const LinearFit fit = linear_fit(x, y);
    DriftCalibration cal;
    cal.slope = fit.slope;
    cal.intercept = fit.intercept;
    return cal;
}

}  // namespace htims::core
