#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/statistics.hpp"

namespace htims::core {

double species_snr(const pipeline::Frame& deconvolved,
                   const pipeline::SpeciesTrace& trace, double window_sigmas) {
    const std::size_t t = deconvolved.drift_bins();
    HTIMS_EXPECTS(trace.mz_bin < deconvolved.mz_bins());
    AlignedVector<double> profile(t);
    deconvolved.drift_profile(trace.mz_bin, profile);
    const auto half = static_cast<std::size_t>(
        std::ceil(window_sigmas * std::max(1.0, trace.drift_sigma_bins)));
    const std::size_t lo = trace.drift_bin >= half ? trace.drift_bin - half : 0;
    const std::size_t hi = std::min(t, trace.drift_bin + half + 1);
    if (lo >= hi) return 0.0;
    return region_snr(profile, lo, hi);
}

Fidelity frame_fidelity(const pipeline::Frame& deconvolved,
                        const pipeline::Frame& truth) {
    HTIMS_EXPECTS(deconvolved.layout() == truth.layout());
    Fidelity f;
    const double total_d = deconvolved.total();
    const double total_t = truth.total();
    if (total_d <= 0.0 || total_t <= 0.0) return f;

    const auto d = deconvolved.data();
    const auto t = truth.data();
    const double sd = 1.0 / total_d;
    const double st = 1.0 / total_t;

    double peak_true = 0.0;
    for (double v : t) peak_true = std::max(peak_true, v * st);

    // The artifact census runs over the whole frame: a ghost peak anywhere
    // is a demultiplexing failure. RMSE and correlation, by contrast, are
    // computed over *active channels only* (m/z channels that carry any true
    // signal): with thousands of empty channels the statistics would
    // otherwise measure nothing but detector noise.
    const std::size_t mz_bins = truth.mz_bins();
    const std::size_t drift_bins = truth.drift_bins();
    std::vector<std::uint8_t> active(mz_bins, 0);
    for (std::size_t m = 0; m < mz_bins; ++m)
        for (std::size_t dd = 0; dd < drift_bins; ++dd)
            if (truth.at(dd, m) > 0.0) {
                active[m] = 1;
                break;
            }

    double worst_artifact = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        const double tv = t[i] * st;
        // "Outside true peaks": cells whose true value is below 1% of the
        // true maximum; any signal there is a demultiplexing artifact.
        if (tv < 0.01 * peak_true)
            worst_artifact = std::max(worst_artifact, std::abs(d[i] * sd - tv));
    }
    f.artifact_level = peak_true > 0.0 ? worst_artifact / peak_true : 0.0;

    AlignedVector<double> dn, tn;
    dn.reserve(d.size());
    tn.reserve(t.size());
    for (std::size_t dd = 0; dd < drift_bins; ++dd)
        for (std::size_t m = 0; m < mz_bins; ++m) {
            if (!active[m]) continue;
            dn.push_back(deconvolved.at(dd, m) * sd);
            tn.push_back(truth.at(dd, m) * st);
        }
    if (dn.empty()) return f;
    f.rmse = rmse(dn, tn);
    f.correlation = correlation(dn, tn);
    return f;
}

double measured_resolving_power(const pipeline::Frame& deconvolved,
                                const pipeline::SpeciesTrace& trace) {
    const std::size_t t = deconvolved.drift_bins();
    HTIMS_EXPECTS(trace.mz_bin < deconvolved.mz_bins());
    AlignedVector<double> profile(t);
    deconvolved.drift_profile(trace.mz_bin, profile);
    auto peaks = pick_peaks(profile);
    for (const Peak& p : peaks) {
        const auto d = p.apex_bin > trace.drift_bin ? p.apex_bin - trace.drift_bin
                                                    : trace.drift_bin - p.apex_bin;
        const std::size_t circ = std::min(d, t - d);
        if (static_cast<double>(circ) <=
            3.0 * std::max(1.0, trace.drift_sigma_bins)) {
            return p.fwhm_bins > 0.0 ? p.centroid / p.fwhm_bins : 0.0;
        }
    }
    return 0.0;
}

DetectionScore score_detections(const pipeline::Frame& deconvolved,
                                const std::vector<pipeline::SpeciesTrace>& traces,
                                double min_snr, double tolerance_sigmas) {
    DetectionScore score;
    score.total = traces.size();
    const std::size_t t = deconvolved.drift_bins();
    AlignedVector<double> profile(t);
    for (const auto& trace : traces) {
        if (trace.mz_bin >= deconvolved.mz_bins()) continue;
        deconvolved.drift_profile(trace.mz_bin, profile);
        const auto peaks = pick_peaks(profile, PeakPickOptions{min_snr, 2, 3});
        const double tol = tolerance_sigmas * std::max(1.0, trace.drift_sigma_bins);
        if (detected_near(peaks, trace.drift_bin, tol, min_snr, t)) ++score.detected;
    }
    return score;
}

}  // namespace htims::core
