#include "core/mass_calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace htims::core {

std::optional<MassMeasurement> measure_mass(const pipeline::Frame& frame,
                                            const instrument::TofAnalyzer& tof,
                                            const pipeline::SpeciesTrace& trace,
                                            double true_mz, std::size_t halfwidth) {
    HTIMS_EXPECTS(trace.mz_bin < frame.mz_bins());
    HTIMS_EXPECTS(halfwidth >= 1);
    const std::size_t t = frame.drift_bins();
    const std::size_t m_bins = frame.mz_bins();

    // Integrate the record over +-2 drift bins around the trace.
    AlignedVector<double> record(m_bins, 0.0);
    for (long long dd = -2; dd <= 2; ++dd) {
        const std::size_t d =
            static_cast<std::size_t>((static_cast<long long>(trace.drift_bin) + dd +
                                      static_cast<long long>(t)) %
                                     static_cast<long long>(t));
        const auto row = frame.record(d);
        for (std::size_t m = 0; m < m_bins; ++m) record[m] += row[m];
    }

    // Apex search within +-(halfwidth+2) bins of the expected position.
    const std::size_t lo =
        trace.mz_bin > halfwidth + 2 ? trace.mz_bin - halfwidth - 2 : 0;
    const std::size_t hi = std::min(m_bins - 1, trace.mz_bin + halfwidth + 2);
    std::size_t apex = lo;
    for (std::size_t m = lo; m <= hi; ++m)
        if (record[m] > record[apex]) apex = m;

    // Local background from the window edges.
    const double background = 0.5 * (record[lo] + record[hi]);
    if (record[apex] - background <= 0.0) return std::nullopt;

    MassMeasurement meas;
    meas.name = trace.name;
    meas.true_mz = true_mz;
    meas.intensity = record[apex] - background;

    // Sub-bin position: log-parabolic (Gaussian) interpolation through the
    // apex and its two neighbours — exact for a noise-free Gaussian peak
    // and an order of magnitude more accurate than a windowed centroid when
    // the peak spans only a few bins. Fall back to the weighted centroid
    // when a neighbour is non-positive.
    const double bin_width = tof.bin_center(1) - tof.bin_center(0);
    if (apex > 0 && apex + 1 < m_bins) {
        const double i0 = record[apex - 1] - background;
        const double i1 = record[apex] - background;
        const double i2 = record[apex + 1] - background;
        if (i0 > 0.0 && i1 > 0.0 && i2 > 0.0 && i1 >= i0 && i1 >= i2) {
            const double l0 = std::log(i0), l1 = std::log(i1), l2 = std::log(i2);
            const double denom = l0 - 2.0 * l1 + l2;
            if (denom < 0.0) {
                const double delta = 0.5 * (l0 - l2) / denom;
                meas.measured_mz = tof.bin_center(apex) + delta * bin_width;
                return meas;
            }
        }
    }
    double wsum = 0.0, wx = 0.0;
    const std::size_t c_lo = apex > halfwidth ? apex - halfwidth : 0;
    const std::size_t c_hi = std::min(m_bins - 1, apex + halfwidth);
    for (std::size_t m = c_lo; m <= c_hi; ++m) {
        const double w = std::max(0.0, record[m] - background);
        wsum += w;
        wx += w * tof.bin_center(m);
    }
    if (wsum <= 0.0) return std::nullopt;
    meas.measured_mz = wx / wsum;
    return meas;
}

std::vector<MassMeasurement> measure_masses(
    const pipeline::Frame& frame, const instrument::TofAnalyzer& tof,
    const std::vector<pipeline::SpeciesTrace>& traces,
    const std::vector<instrument::IonSpecies>& species) {
    std::vector<MassMeasurement> out;
    for (const auto& trace : traces) {
        const instrument::IonSpecies* match = nullptr;
        for (const auto& sp : species)
            if (sp.name == trace.name) match = &sp;
        if (match == nullptr) continue;
        if (auto m = measure_mass(frame, tof, trace, match->mz)) out.push_back(*m);
    }
    return out;
}

MassCalibration fit_calibration(const std::vector<MassMeasurement>& calibrants) {
    HTIMS_EXPECTS(!calibrants.empty());
    MassCalibration cal;
    if (calibrants.size() == 1) {
        cal.slope = 1.0;
        cal.intercept = calibrants[0].true_mz - calibrants[0].measured_mz;
        return cal;
    }
    std::vector<double> x, y;
    x.reserve(calibrants.size());
    y.reserve(calibrants.size());
    for (const auto& c : calibrants) {
        x.push_back(c.measured_mz);
        y.push_back(c.true_mz);
    }
    const LinearFit fit = linear_fit(x, y);
    cal.intercept = fit.intercept;
    cal.slope = fit.slope;
    return cal;
}

PpmSummary summarize_ppm(const std::vector<MassMeasurement>& measurements,
                         const MassCalibration* calibration) {
    PpmSummary s;
    double sum_abs = 0.0, sum_sq = 0.0;
    for (const auto& m : measurements) {
        const double corrected =
            calibration ? calibration->apply(m.measured_mz) : m.measured_mz;
        const double ppm = 1e6 * (corrected - m.true_mz) / m.true_mz;
        sum_abs += std::abs(ppm);
        sum_sq += ppm * ppm;
        s.max_abs = std::max(s.max_abs, std::abs(ppm));
        ++s.count;
    }
    if (s.count) {
        s.mean_abs = sum_abs / static_cast<double>(s.count);
        s.rms = std::sqrt(sum_sq / static_cast<double>(s.count));
    }
    return s;
}

}  // namespace htims::core
