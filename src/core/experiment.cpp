#include "core/experiment.hpp"

#include <cmath>

#include "common/statistics.hpp"

namespace htims::core {

SimulatorConfig default_config() {
    SimulatorConfig config;
    config.cell.length_m = 0.9;
    config.cell.voltage_v = 4000.0;
    config.cell.pressure_torr = 4.0;
    config.cell.temperature_k = 300.0;
    config.cell.gate_width_s = 100e-6;

    config.tof.mz_min = 100.0;
    config.tof.mz_max = 3200.0;
    config.tof.bins = 2048;
    config.tof.resolving_power = 8000.0;

    config.detector.gain = 1.0;
    config.detector.gain_spread = 0.35;
    config.detector.noise_sigma = 0.4;
    config.detector.dark_rate = 0.02;
    config.detector.adc_bits = 8;

    config.trap.capacity_charges = 3.0e7;
    config.trap.transmission = 0.9;

    config.acquisition.mode = pipeline::AcquisitionMode::kMultiplexed;
    config.acquisition.sequence_order = 8;
    config.acquisition.oversampling = 2;
    config.acquisition.gate_mode = prs::GateMode::kPulsed;
    config.acquisition.averages = 4;
    config.acquisition.use_trap = true;
    return config;
}

double mean_species_snr(const RunResult& result) {
    if (result.acquisition.traces.empty()) return 0.0;
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& trace : result.acquisition.traces) {
        const double snr = species_snr(result.deconvolved, trace);
        if (std::isfinite(snr)) {
            total += snr;
            ++counted;
        }
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

SnrSummary replicate_snr(Simulator& simulator, int replicates, double start_time_s) {
    SnrSummary summary;
    summary.replicates = replicates;
    RunningStats stats;
    for (int r = 0; r < replicates; ++r) {
        const RunResult result = simulator.run(start_time_s);
        stats.add(mean_species_snr(result));
    }
    summary.mean = stats.mean();
    summary.stddev = stats.stddev();
    return summary;
}

}  // namespace htims::core
