// simulator.hpp — the top-level facade: instrument + gate program +
// processing backend in one object.
//
// This is the public entry point a downstream user starts from (see
// examples/quickstart.cpp): configure the instrument once, pick an
// acquisition program and a processing backend, call run(), and get the
// deconvolved drift/m-z frame with ground truth and timing attached.
#pragma once

#include <optional>

#include "core/metrics.hpp"
#include "fault/fault.hpp"
#include "instrument/detector.hpp"
#include "instrument/ion_trap.hpp"
#include "instrument/mobility.hpp"
#include "instrument/tof.hpp"
#include "pipeline/acquisition.hpp"
#include "pipeline/cpu_backend.hpp"
#include "pipeline/fpga.hpp"
#include "pipeline/hybrid.hpp"
#include "telemetry/registry.hpp"

namespace htims::core {

/// Complete simulator configuration with instrument defaults matching a
/// PNNL-style 1-m atmospheric-interface drift tube with oa-TOF detection.
struct SimulatorConfig {
    instrument::DriftCellConfig cell{};
    instrument::TofConfig tof{};
    instrument::DetectorConfig detector{};
    instrument::IonTrapConfig trap{};
    pipeline::AcquisitionConfig acquisition{};
    pipeline::BackendKind backend = pipeline::BackendKind::kCpu;
    pipeline::FpgaConfig fpga{};
    std::size_t cpu_threads = 0;
    bool lc_mode = false;  ///< gate species currents by LC retention time

    /// Deterministic fault injection; an empty plan (the default) keeps the
    /// pipeline on the fault-free fast path.
    fault::FaultPlan fault_plan{};
    int cpu_max_retries = 4;            ///< retry budget for transient CPU faults
    double cpu_retry_backoff_s = 50e-6; ///< initial retry backoff (doubles)
};

/// One simulated acquisition + processing round.
struct RunResult {
    pipeline::AcquisitionResult acquisition;
    pipeline::Frame deconvolved;
    double decode_seconds = 0.0;
    std::optional<pipeline::FpgaCycleReport> fpga;  ///< set for FPGA backend
    fault::InjectionCounts faults{};  ///< injector counters after this run
    std::uint64_t cpu_task_retries = 0;  ///< transient CPU faults retried

    /// Detection scoring against the acquisition's ground-truth traces.
    DetectionScore score(double min_snr = 3.0) const {
        return score_detections(deconvolved, acquisition.traces, min_snr);
    }
};

/// End-to-end simulator.
class Simulator {
public:
    Simulator(const SimulatorConfig& config, instrument::SampleMixture sample);

    const SimulatorConfig& config() const { return config_; }
    const pipeline::AcquisitionEngine& engine() const { return engine_; }
    const pipeline::FrameLayout& layout() const { return engine_.layout(); }

    /// The process-wide telemetry registry the pipeline layers record into
    /// during run(). Snapshot it for run reports, or set_enabled(false) to
    /// switch instrumentation off at runtime.
    telemetry::Registry& telemetry() const { return telemetry::Registry::global(); }

    /// The fault injector built from config().fault_plan, or nullptr when
    /// the plan is empty. Stable for the simulator's lifetime.
    fault::FaultInjector* faults() {
        return faults_.has_value() ? &*faults_ : nullptr;
    }

    /// Acquire one frame at experiment time t and deconvolve it. In
    /// signal-averaging mode the raw frame already is the drift-domain
    /// record, so deconvolution is the identity.
    RunResult run(double start_time_s = 0.0);

private:
    SimulatorConfig config_;
    std::optional<fault::FaultInjector> faults_;
    pipeline::AcquisitionEngine engine_;
    pipeline::CpuBackend cpu_;
};

}  // namespace htims::core
