// htims.hpp — umbrella header for the htims library.
//
// htims is an end-to-end simulation of data capture and signal processing
// for a Hadamard-transform ion mobility mass spectrometer, reproducing
// Chavarría-Miranda, Clowers, Anderson & Belov, "Simulating data processing
// for an advanced ion mobility mass spectrometer" (SC 2007).
//
// Layering (each header is independently includable):
//   common/     — buffers, RNG, fixed point, statistics, threading, tables
//   prs/        — LFSRs, m-sequences, simplex matrices, oversampled PRS
//   transform/  — FWHT, simplex deconvolution, weighted & enhanced decoders
//   instrument/ — drift cell, TOF, ESI source, funnel trap, detector,
//                 synthetic peptide libraries
//   telemetry/  — counters, histograms, span tracing, registry, JSON/CSV
//                 run reports
//   pipeline/   — frames, acquisition engine, FPGA model, CPU backend,
//                 SPSC streaming, hybrid orchestrator
//   core/       — Simulator facade, peaks, metrics, experiment scaffolding
#pragma once

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/ccs.hpp"
#include "core/experiment.hpp"
#include "core/feature_finder.hpp"
#include "core/mass_calibration.hpp"
#include "core/metrics.hpp"
#include "core/peaks.hpp"
#include "core/simulator.hpp"
#include "instrument/detector.hpp"
#include "instrument/esi_source.hpp"
#include "instrument/ion.hpp"
#include "instrument/ion_trap.hpp"
#include "instrument/mobility.hpp"
#include "instrument/peptide_library.hpp"
#include "instrument/tof.hpp"
#include "msms/fragmentation.hpp"
#include "msms/msms.hpp"
#include "pipeline/acquisition.hpp"
#include "pipeline/cpu_backend.hpp"
#include "pipeline/fpga.hpp"
#include "pipeline/frame.hpp"
#include "pipeline/frame_io.hpp"
#include "pipeline/hybrid.hpp"
#include "pipeline/spsc_ring.hpp"
#include "prs/lfsr.hpp"
#include "prs/oversampled.hpp"
#include "prs/polynomials.hpp"
#include "prs/sequence.hpp"
#include "telemetry/telemetry.hpp"
#include "transform/circulant.hpp"
#include "transform/deconvolver.hpp"
#include "transform/enhanced.hpp"
#include "transform/filters.hpp"
#include "transform/fwht.hpp"
#include "transform/weighted.hpp"
