// ccs.hpp — collision cross sections from drift times.
//
// The scientific quantity an IMS measurement reports is the ion-neutral
// momentum-transfer collision cross section (CCS, Ω). The Mason–Schamp
// equation links it to the measured mobility:
//
//   K = (3 q / 16 N) sqrt(2 pi / (mu kB T)) / Omega
//
// with N the buffer-gas number density and mu the reduced mass. This module
// converts measured drift times back to K0 and Ω, and provides the
// single-point drift-time calibration (t_d = beta / K0 + t0) instruments
// use to absorb the fixed flight time outside the drift region.
#pragma once

#include <vector>

#include "instrument/mobility.hpp"

namespace htims::core {

/// Buffer gas description for the reduced-mass term.
struct BufferGas {
    double mass_da = 28.0134;  ///< N2 by default
};

/// Reduced mobility K0 (cm^2 V^-1 s^-1) from a measured drift time through
/// a cell of known geometry: inverts t_d = L^2 / (K V) and rescales to STP.
double k0_from_drift_time(const instrument::DriftCellConfig& cell, double drift_time_s);

/// Momentum-transfer collision cross section (in Å^2) from a reduced
/// mobility, ion mass (Da) and charge, for the given buffer gas at the
/// cell temperature.
double ccs_from_k0(double k0, double ion_mass_da, int charge,
                   const instrument::DriftCellConfig& cell,
                   const BufferGas& gas = {});

/// Linear drift-time calibration t_d = slope / K0 + intercept, fitted from
/// calibrant species with known K0 and measured drift times. The intercept
/// absorbs time spent outside the drift region.
struct DriftCalibration {
    double slope = 0.0;      ///< seconds * (cm^2 V^-1 s^-1)
    double intercept = 0.0;  ///< seconds

    /// Invert the calibration: measured drift time -> K0.
    double k0(double drift_time_s) const {
        const double t = drift_time_s - intercept;
        return t > 0.0 ? slope / t : 0.0;
    }
};

/// One calibrant: known K0 and the drift time observed for it.
struct DriftCalibrant {
    double known_k0 = 0.0;
    double measured_drift_s = 0.0;
};

/// Least-squares fit of the linear calibration (needs >= 2 calibrants).
DriftCalibration fit_drift_calibration(const std::vector<DriftCalibrant>& calibrants);

}  // namespace htims::core
