// experiment.hpp — shared scaffolding for the evaluation harness.
//
// The bench binaries (bench/e*.cpp) regenerate the paper's tables and
// figures; this header centralizes the default instrument configuration
// and the replicate/summary helpers so every experiment runs against the
// same physical baseline.
#pragma once

#include "core/simulator.hpp"
#include "instrument/peptide_library.hpp"

namespace htims::core {

/// The default instrument used across experiments: ~1 m drift tube at
/// 4 Torr, oa-TOF with 8-bit detection, 3e7-charge funnel trap, order-8
/// pulsed modified PRS with oversampling 2.
SimulatorConfig default_config();

/// Mean SNR over every species trace of a run.
double mean_species_snr(const RunResult& result);

/// Mean/stddev over technical replicates of the per-run mean species SNR.
struct SnrSummary {
    double mean = 0.0;
    double stddev = 0.0;
    int replicates = 0;
};
SnrSummary replicate_snr(Simulator& simulator, int replicates, double start_time_s = 0.0);

}  // namespace htims::core
