#include "core/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace htims::core {

Baseline estimate_baseline(std::span<const double> spectrum) {
    Baseline b;
    if (spectrum.empty()) return b;
    std::vector<double> tmp(spectrum.begin(), spectrum.end());
    const auto mid = tmp.begin() + static_cast<std::ptrdiff_t>(tmp.size() / 2);
    std::nth_element(tmp.begin(), mid, tmp.end());
    b.level = *mid;
    b.sigma = mad_sigma(spectrum);
    // Sparse records (zero-clamped ADC baselines with mostly-zero bins)
    // collapse the MAD to zero; fall back to the plain standard deviation so
    // isolated dark counts do not become infinite-SNR "peaks".
    if (b.sigma <= 0.0) b.sigma = stddev(spectrum);
    return b;
}

namespace {

/// FWHM by linear interpolation at half maximum on both flanks.
double fwhm_at(std::span<const double> s, std::size_t apex, double baseline) {
    const double half = baseline + 0.5 * (s[apex] - baseline);
    // Left flank.
    double left = static_cast<double>(apex);
    for (std::size_t i = apex; i > 0; --i) {
        if (s[i - 1] < half) {
            const double denom = s[i] - s[i - 1];
            const double frac = denom != 0.0 ? (s[i] - half) / denom : 0.0;
            left = static_cast<double>(i) - frac;
            break;
        }
        if (i == 1) left = 0.0;
    }
    // Right flank.
    double right = static_cast<double>(apex);
    for (std::size_t i = apex; i + 1 < s.size(); ++i) {
        if (s[i + 1] < half) {
            const double denom = s[i] - s[i + 1];
            const double frac = denom != 0.0 ? (s[i] - half) / denom : 0.0;
            right = static_cast<double>(i) + frac;
            break;
        }
        if (i + 2 == s.size()) right = static_cast<double>(s.size() - 1);
    }
    return std::max(0.0, right - left);
}

}  // namespace

std::vector<Peak> pick_peaks(std::span<const double> spectrum,
                             const PeakPickOptions& options) {
    std::vector<Peak> peaks;
    if (spectrum.size() < 3) return peaks;
    const Baseline base = estimate_baseline(spectrum);
    const double noise = base.sigma > 0.0 ? base.sigma : 1e-12;
    const double threshold = base.level + options.min_snr * noise;

    for (std::size_t i = 1; i + 1 < spectrum.size(); ++i) {
        if (spectrum[i] < threshold) continue;
        if (spectrum[i] < spectrum[i - 1] || spectrum[i] <= spectrum[i + 1]) continue;
        Peak p;
        p.apex_bin = i;
        p.height = spectrum[i] - base.level;
        p.snr = p.height / noise;

        const std::size_t lo = i >= options.centroid_halfwidth
                                   ? i - options.centroid_halfwidth
                                   : 0;
        const std::size_t hi =
            std::min(spectrum.size() - 1, i + options.centroid_halfwidth);
        double wsum = 0.0, wx = 0.0, area = 0.0;
        for (std::size_t b = lo; b <= hi; ++b) {
            const double v = std::max(0.0, spectrum[b] - base.level);
            wsum += v;
            wx += v * static_cast<double>(b);
            area += v;
        }
        p.centroid = wsum > 0.0 ? wx / wsum : static_cast<double>(i);
        p.area = area;
        p.fwhm_bins = fwhm_at(spectrum, i, base.level);
        peaks.push_back(p);
    }

    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.height > b.height; });

    // Enforce minimum separation, keeping the taller peak.
    if (options.min_separation > 0) {
        std::vector<Peak> kept;
        for (const Peak& p : peaks) {
            bool close = false;
            for (const Peak& k : kept) {
                const auto d = p.apex_bin > k.apex_bin ? p.apex_bin - k.apex_bin
                                                       : k.apex_bin - p.apex_bin;
                if (d < options.min_separation) {
                    close = true;
                    break;
                }
            }
            if (!close) kept.push_back(p);
        }
        peaks = std::move(kept);
    }
    return peaks;
}

double window_snr(std::span<const double> spectrum, std::size_t lo, std::size_t hi) {
    HTIMS_EXPECTS(lo < hi && hi <= spectrum.size());
    return region_snr(spectrum, lo, hi);
}

bool detected_near(const std::vector<Peak>& peaks, std::size_t expected_bin,
                   double tolerance_bins, double min_snr, std::size_t spectrum_len) {
    HTIMS_EXPECTS(spectrum_len > 0);
    for (const Peak& p : peaks) {
        if (p.snr < min_snr) continue;
        const auto d = p.apex_bin > expected_bin ? p.apex_bin - expected_bin
                                                 : expected_bin - p.apex_bin;
        const std::size_t circ = std::min(d, spectrum_len - d);
        if (static_cast<double>(circ) <= tolerance_bins) return true;
    }
    return false;
}

}  // namespace htims::core
