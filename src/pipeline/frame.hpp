// frame.hpp — the IMS-TOF data unit flowing through the pipeline.
//
// One frame is a full multiplexing period: drift_bins x mz_bins accumulated
// detector counts. Drift is the slow axis (one TOF record per drift bin),
// matching the instrument's nested acquisition. Storage is row-major with
// drift as the row index, so a "TOF record" is one contiguous row and a
// per-m/z drift profile is a strided column.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned_buffer.hpp"

namespace htims::pipeline {

/// Dimensions and time base of a frame.
struct FrameLayout {
    std::size_t drift_bins = 0;     ///< fine-grid drift bins per period
    std::size_t mz_bins = 0;        ///< m/z channels per TOF record
    double drift_bin_width_s = 0.0; ///< wall-clock duration of one drift bin

    std::size_t cells() const { return drift_bins * mz_bins; }
    /// Duration of one full frame (one multiplexing period).
    double period_s() const { return static_cast<double>(drift_bins) * drift_bin_width_s; }
    /// Raw detector sample rate implied by the layout (samples/s): one m/z
    /// record per drift bin.
    double sample_rate() const {
        return drift_bin_width_s > 0.0
                   ? static_cast<double>(mz_bins) / drift_bin_width_s
                   : 0.0;
    }

    bool operator==(const FrameLayout&) const = default;
};

/// Dense drift x m/z intensity frame.
class Frame {
public:
    Frame() = default;
    explicit Frame(const FrameLayout& layout);

    const FrameLayout& layout() const { return layout_; }
    std::size_t drift_bins() const { return layout_.drift_bins; }
    std::size_t mz_bins() const { return layout_.mz_bins; }

    double& at(std::size_t drift, std::size_t mz);
    double at(std::size_t drift, std::size_t mz) const;

    /// One TOF record (contiguous row).
    std::span<double> record(std::size_t drift);
    std::span<const double> record(std::size_t drift) const;

    /// Copy the drift profile of one m/z channel into `out`
    /// (out.size() == drift_bins()).
    void drift_profile(std::size_t mz, std::span<double> out) const;

    /// Write a drift profile back into one m/z channel.
    void set_drift_profile(std::size_t mz, std::span<const double> profile);

    /// Transpose the `lanes`-wide m/z column group starting at `mz0` into a
    /// lane-interleaved (AoSoA) tile: out[d * lanes + l] = at(d, mz0 + l),
    /// out.size() == drift_bins() * lanes. One streaming pass over the rows
    /// — each row contributes `lanes` contiguous doubles (a full cache line
    /// at lanes = 8) instead of the single double per row-sized stride a
    /// per-channel drift_profile() copy touches, which is what amortizes the
    /// transpose across a whole deconvolution tile.
    void gather_tile(std::size_t mz0, std::size_t lanes, std::span<double> out) const;

    /// Inverse of gather_tile: write a lane-interleaved tile back into the
    /// `lanes` m/z columns starting at `mz0`.
    void scatter_tile(std::size_t mz0, std::size_t lanes, std::span<const double> tile);

    /// Total ion current per drift bin (sum over m/z), appended into `out`.
    void total_ion_current(std::span<double> out) const;

    /// Sum of all cells.
    double total() const;

    std::span<double> data() { return data_; }
    std::span<const double> data() const { return data_; }

    void fill(double value);
    /// Element-wise add another frame of identical layout.
    void accumulate(const Frame& other);
    /// Multiply every cell by a scalar.
    void scale(double factor);

private:
    FrameLayout layout_{};
    AlignedVector<double> data_;
};

}  // namespace htims::pipeline
