#include "pipeline/frame.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::pipeline {

Frame::Frame(const FrameLayout& layout) : layout_(layout) {
    if (layout.drift_bins == 0 || layout.mz_bins == 0)
        throw ConfigError("frame layout must have nonzero dimensions");
    HTIMS_CHECK(layout.mz_bins <= std::numeric_limits<std::size_t>::max() / layout.drift_bins,
                "frame cell count overflows size_t");
    data_.assign(layout.cells(), 0.0);
    HTIMS_CHECK(data_.size() == layout.cells(), "frame storage matches layout");
}

// at() is the per-cell accessor on the FPGA decode hot path: its bounds
// check is a debug/sanitizer-tier contract (HTIMS_DCHECK), not a throwing
// precondition — out-of-range indices here are library bugs, not caller
// configuration errors, and the release build must not pay for the check.
double& Frame::at(std::size_t drift, std::size_t mz) {
    HTIMS_DCHECK(drift < layout_.drift_bins && mz < layout_.mz_bins,
                 "frame cell index out of range");
    return data_[drift * layout_.mz_bins + mz];
}

double Frame::at(std::size_t drift, std::size_t mz) const {
    HTIMS_DCHECK(drift < layout_.drift_bins && mz < layout_.mz_bins,
                 "frame cell index out of range");
    return data_[drift * layout_.mz_bins + mz];
}

std::span<double> Frame::record(std::size_t drift) {
    HTIMS_EXPECTS(drift < layout_.drift_bins);
    return std::span(data_).subspan(drift * layout_.mz_bins, layout_.mz_bins);
}

std::span<const double> Frame::record(std::size_t drift) const {
    HTIMS_EXPECTS(drift < layout_.drift_bins);
    return std::span(data_).subspan(drift * layout_.mz_bins, layout_.mz_bins);
}

void Frame::drift_profile(std::size_t mz, std::span<double> out) const {
    HTIMS_EXPECTS(mz < layout_.mz_bins);
    HTIMS_EXPECTS(out.size() == layout_.drift_bins);
    for (std::size_t d = 0; d < layout_.drift_bins; ++d)
        out[d] = data_[d * layout_.mz_bins + mz];
}

void Frame::set_drift_profile(std::size_t mz, std::span<const double> profile) {
    HTIMS_EXPECTS(mz < layout_.mz_bins);
    HTIMS_EXPECTS(profile.size() == layout_.drift_bins);
    for (std::size_t d = 0; d < layout_.drift_bins; ++d)
        data_[d * layout_.mz_bins + mz] = profile[d];
}

void Frame::gather_tile(std::size_t mz0, std::size_t lanes, std::span<double> out) const {
    HTIMS_EXPECTS(lanes > 0 && mz0 + lanes <= layout_.mz_bins);
    HTIMS_EXPECTS(out.size() == layout_.drift_bins * lanes);
    const double* src = data_.data() + mz0;
    double* dst = out.data();
    for (std::size_t d = 0; d < layout_.drift_bins; ++d) {
        std::copy_n(src, lanes, dst);
        src += layout_.mz_bins;
        dst += lanes;
    }
}

void Frame::scatter_tile(std::size_t mz0, std::size_t lanes, std::span<const double> tile) {
    HTIMS_EXPECTS(lanes > 0 && mz0 + lanes <= layout_.mz_bins);
    HTIMS_EXPECTS(tile.size() == layout_.drift_bins * lanes);
    const double* src = tile.data();
    double* dst = data_.data() + mz0;
    for (std::size_t d = 0; d < layout_.drift_bins; ++d) {
        std::copy_n(src, lanes, dst);
        src += lanes;
        dst += layout_.mz_bins;
    }
}

void Frame::total_ion_current(std::span<double> out) const {
    HTIMS_EXPECTS(out.size() == layout_.drift_bins);
    for (std::size_t d = 0; d < layout_.drift_bins; ++d) {
        double s = 0.0;
        const double* row = &data_[d * layout_.mz_bins];
        for (std::size_t m = 0; m < layout_.mz_bins; ++m) s += row[m];
        out[d] = s;
    }
}

double Frame::total() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
}

void Frame::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Frame::accumulate(const Frame& other) {
    HTIMS_EXPECTS(other.layout_ == layout_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Frame::scale(double factor) {
    for (double& v : data_) v *= factor;
}

}  // namespace htims::pipeline
