// frame_io.hpp — binary serialization of frames.
//
// The platform's companion work on efficient MS data formats (Shah et al.,
// #17) motivates a compact binary container for frames: fixed 64-byte
// header (magic, version, layout, payload CRC32) followed by the row-major
// float64 payload. Little-endian on-disk layout; integrity is verified on
// read. Used by the CLI example to persist acquisitions and by replay
// tooling to feed the pipeline from disk.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "pipeline/frame.hpp"

namespace htims::pipeline {

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer; the integrity check of
/// the frame container. Exposed for tests and other containers.
std::uint32_t crc32(const void* data, std::size_t bytes);

/// Serialize a frame (header + payload) to a stream. Throws htims::Error on
/// stream failure.
void write_frame(std::ostream& os, const Frame& frame);

/// Deserialize a frame written by write_frame. Throws htims::Error on bad
/// magic, unsupported version, truncated payload, or CRC mismatch.
Frame read_frame(std::istream& is);

/// Convenience file wrappers.
void save_frame(const std::string& path, const Frame& frame);
Frame load_frame(const std::string& path);

}  // namespace htims::pipeline
