// frame_io.hpp — binary serialization of frames, with degraded-mode reads.
//
// The platform's companion work on efficient MS data formats (Shah et al.,
// #17) motivates a compact binary container for frames: fixed 64-byte
// header (magic, version, layout, payload CRC32, header CRC32) followed by
// the row-major float64 payload. Little-endian on-disk layout; integrity is
// verified on read. Used by the CLI example to persist acquisitions and by
// replay tooling to feed the pipeline from disk.
//
// Container v2 adds a header CRC (over the header bytes with the CRC field
// zeroed), so *every* single-byte flip anywhere in a stream is detectable —
// including flips in fields the payload CRC never covered. The corruption
// sweep test pins that property down exhaustively.
//
// Degraded-mode reading: a real replay cannot abort a whole LC gradient
// because one frame arrived corrupt. FrameStreamReader reads a
// concatenated-frame stream and, in kResync mode, treats a corrupt or
// truncated frame as a *loss*, scanning forward for the next plausible
// frame header instead of throwing — every detection/recovery is counted in
// its stats and mirrored into telemetry (frame_io.crc_failures,
// frame_io.frames_resynced, frame_io.bytes_skipped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "pipeline/frame.hpp"

namespace htims::fault {
class FaultInjector;
}

namespace htims::pipeline {

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer; the integrity check of
/// the frame container. Exposed for tests and other containers.
std::uint32_t crc32(const void* data, std::size_t bytes);

/// FNV-1a 64-bit hash of a byte buffer; the digest primitive golden
/// regression fixtures pin in-source.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ULL);

/// Order-sensitive digest of a frame: layout dimensions plus every cell
/// quantized as llround(value * quantization). Built on exact integer
/// arithmetic so it is bit-stable across build types for pipelines whose
/// cell values are exactly representable (integer-count domains).
std::uint64_t frame_digest(const Frame& frame, double quantization = 256.0);

/// Exact byte size of a frame (or layout) in the v2 container: the fixed
/// 64-byte header plus the row-major float64 payload.
std::size_t frame_container_bytes(const FrameLayout& layout);
std::size_t frame_container_bytes(const Frame& frame);

/// Serialize header + payload directly into `dst` (one pass, no intermediate
/// buffer) — the primitive both stream writes and the mmap frame store share;
/// the store hands in a view of its mapping, so frames are written in place.
/// `seq` is an application sequence tag carried in a header reserved word
/// (covered by the header CRC, ignored by readers that don't ask for it).
/// Requires dst.size() >= frame_container_bytes(frame); returns bytes written.
std::size_t serialize_frame(const Frame& frame, std::span<std::byte> dst,
                            std::uint64_t seq = 0);

/// Validate and decode one v2 container at the start of `bytes`. Throws
/// htims::Error on bad magic, unsupported version, header CRC mismatch,
/// implausible layout, truncated payload, or payload CRC mismatch. On
/// success `*consumed` receives the container byte count and, when non-null,
/// `*seq` the sequence tag the frame was written with.
Frame parse_frame(std::span<const std::byte> bytes, std::size_t* consumed,
                  std::uint64_t* seq = nullptr);

/// Serialize a frame (header + payload) to a stream. Throws htims::Error on
/// stream failure.
void write_frame(std::ostream& os, const Frame& frame);

/// Fault-injected variant: serializes, then applies any kFrameCorrupt
/// (single-byte XOR at a plan-determined offset) and kFrameTruncate
/// (plan-determined cut) faults before writing — the deterministic stand-in
/// for a lossy transport. `faults` may be null (plain write).
void write_frame(std::ostream& os, const Frame& frame,
                 fault::FaultInjector* faults);

/// Deserialize a frame written by write_frame. Throws htims::Error on bad
/// magic, unsupported version, header CRC mismatch, implausible layout,
/// truncated payload, or payload CRC mismatch.
Frame read_frame(std::istream& is);

/// Convenience file wrappers.
void save_frame(const std::string& path, const Frame& frame);
Frame load_frame(const std::string& path);

/// What a FrameStreamReader does when a frame fails validation.
enum class RecoveryMode {
    kThrow,   ///< propagate the error (read_frame semantics)
    kResync,  ///< count the loss, scan to the next frame header, continue
};

/// Activity counters for one reader.
struct FrameStreamStats {
    std::uint64_t frames_ok = 0;       ///< frames decoded and verified
    std::uint64_t frames_lost = 0;     ///< corrupt/truncated frames skipped
    std::uint64_t resyncs = 0;         ///< losses recovered by re-locking
    std::uint64_t bytes_skipped = 0;   ///< bytes discarded while scanning
};

/// Sequential reader over a stream of concatenated frames with optional
/// skip-and-resync recovery. The zero-copy constructor scans a caller-owned
/// region in place (how the mmap frame store recovers a stored run without
/// ever copying it); the slurp constructors delegate to it after buffering
/// streams whose bytes the caller doesn't hold.
class FrameStreamReader {
public:
    /// Zero-copy: scan `bytes` in place. The region must outlive the reader.
    explicit FrameStreamReader(std::span<const std::byte> bytes,
                               RecoveryMode mode = RecoveryMode::kResync);
    explicit FrameStreamReader(std::istream& is,
                               RecoveryMode mode = RecoveryMode::kResync);
    explicit FrameStreamReader(std::string bytes,
                               RecoveryMode mode = RecoveryMode::kResync);

    /// Next verified frame, or nullopt at end of stream. In kThrow mode a
    /// bad frame throws htims::Error; in kResync mode it is counted and
    /// skipped (so nullopt means "no more recoverable frames").
    std::optional<Frame> next();

    /// True once the reader has consumed or discarded every byte.
    bool exhausted() const { return pos_ >= view_.size(); }

    /// Byte offset of the next unconsumed byte — after a successful next(),
    /// the returned frame's container ends exactly here (its start is
    /// offset() - frame_container_bytes(frame)), which is how the frame
    /// store rebuilds an index from a resync scan.
    std::size_t offset() const { return pos_; }

    /// Sequence tag of the last frame next() returned (0 before the first).
    std::uint64_t last_seq() const { return last_seq_; }

    const FrameStreamStats& stats() const { return stats_; }

private:
    std::string owned_;                 ///< backing bytes for slurp ctors
    std::span<const std::byte> view_;   ///< the region being scanned
    std::size_t pos_ = 0;
    RecoveryMode mode_;
    std::uint64_t last_seq_ = 0;
    FrameStreamStats stats_;
};

}  // namespace htims::pipeline
