// frame_io.hpp — binary serialization of frames, with degraded-mode reads.
//
// The platform's companion work on efficient MS data formats (Shah et al.,
// #17) motivates a compact binary container for frames: fixed 64-byte
// header (magic, version, layout, payload CRC32, header CRC32) followed by
// the row-major float64 payload. Little-endian on-disk layout; integrity is
// verified on read. Used by the CLI example to persist acquisitions and by
// replay tooling to feed the pipeline from disk.
//
// Container v2 adds a header CRC (over the header bytes with the CRC field
// zeroed), so *every* single-byte flip anywhere in a stream is detectable —
// including flips in fields the payload CRC never covered. The corruption
// sweep test pins that property down exhaustively.
//
// Degraded-mode reading: a real replay cannot abort a whole LC gradient
// because one frame arrived corrupt. FrameStreamReader reads a
// concatenated-frame stream and, in kResync mode, treats a corrupt or
// truncated frame as a *loss*, scanning forward for the next plausible
// frame header instead of throwing — every detection/recovery is counted in
// its stats and mirrored into telemetry (frame_io.crc_failures,
// frame_io.frames_resynced, frame_io.bytes_skipped).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "pipeline/frame.hpp"

namespace htims::fault {
class FaultInjector;
}

namespace htims::pipeline {

/// CRC-32 (IEEE 802.3, reflected) of a byte buffer; the integrity check of
/// the frame container. Exposed for tests and other containers.
std::uint32_t crc32(const void* data, std::size_t bytes);

/// FNV-1a 64-bit hash of a byte buffer; the digest primitive golden
/// regression fixtures pin in-source.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ULL);

/// Order-sensitive digest of a frame: layout dimensions plus every cell
/// quantized as llround(value * quantization). Built on exact integer
/// arithmetic so it is bit-stable across build types for pipelines whose
/// cell values are exactly representable (integer-count domains).
std::uint64_t frame_digest(const Frame& frame, double quantization = 256.0);

/// Serialize a frame (header + payload) to a stream. Throws htims::Error on
/// stream failure.
void write_frame(std::ostream& os, const Frame& frame);

/// Fault-injected variant: serializes, then applies any kFrameCorrupt
/// (single-byte XOR at a plan-determined offset) and kFrameTruncate
/// (plan-determined cut) faults before writing — the deterministic stand-in
/// for a lossy transport. `faults` may be null (plain write).
void write_frame(std::ostream& os, const Frame& frame,
                 fault::FaultInjector* faults);

/// Deserialize a frame written by write_frame. Throws htims::Error on bad
/// magic, unsupported version, header CRC mismatch, implausible layout,
/// truncated payload, or payload CRC mismatch.
Frame read_frame(std::istream& is);

/// Convenience file wrappers.
void save_frame(const std::string& path, const Frame& frame);
Frame load_frame(const std::string& path);

/// What a FrameStreamReader does when a frame fails validation.
enum class RecoveryMode {
    kThrow,   ///< propagate the error (read_frame semantics)
    kResync,  ///< count the loss, scan to the next frame header, continue
};

/// Activity counters for one reader.
struct FrameStreamStats {
    std::uint64_t frames_ok = 0;       ///< frames decoded and verified
    std::uint64_t frames_lost = 0;     ///< corrupt/truncated frames skipped
    std::uint64_t resyncs = 0;         ///< losses recovered by re-locking
    std::uint64_t bytes_skipped = 0;   ///< bytes discarded while scanning
};

/// Sequential reader over a stream of concatenated frames with optional
/// skip-and-resync recovery. The stream is slurped at construction (replay
/// files are modest; in-memory scanning keeps resync O(bytes) with no
/// seekability requirement on the istream).
class FrameStreamReader {
public:
    explicit FrameStreamReader(std::istream& is,
                               RecoveryMode mode = RecoveryMode::kResync);
    explicit FrameStreamReader(std::string bytes,
                               RecoveryMode mode = RecoveryMode::kResync);

    /// Next verified frame, or nullopt at end of stream. In kThrow mode a
    /// bad frame throws htims::Error; in kResync mode it is counted and
    /// skipped (so nullopt means "no more recoverable frames").
    std::optional<Frame> next();

    /// True once the reader has consumed or discarded every byte.
    bool exhausted() const { return pos_ >= bytes_.size(); }

    const FrameStreamStats& stats() const { return stats_; }

private:
    std::string bytes_;
    std::size_t pos_ = 0;
    RecoveryMode mode_;
    FrameStreamStats stats_;
};

}  // namespace htims::pipeline
