// stream_link.hpp — the per-stream ingest protocol shared by the hybrid
// orchestrator and the fleet runner.
//
// One instrument stream is: a producer thread replaying a RecordSource into
// a bounded SPSC ring (batch-staged, line-rate paced, fault-injected, with
// the ring-full policy machinery), and a consumer loop that drains the ring
// in batches, closes frames by watching the sequence tags, and accounts
// drops/degradation. HybridPipeline::run() drives exactly one of these;
// FleetRunner drives N of them over a shared decode pool. The protocol
// bodies live here as templates so both orchestrators run byte-identical
// transport logic — the fleet-parity digest matrix in tests/test_fleet.cpp
// pins that a stream behaves bit-identically whether it runs solo or in a
// fleet.
//
// Telemetry and report accounting stay at the call site: the templates take
// small hook bundles (aggregate-initialized structs of callables, fully
// inlined) so the hybrid path keeps its global registry counters and the
// fleet path its per-stream sharded counters without either paying for the
// other's bookkeeping.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "pipeline/hybrid.hpp"
#include "pipeline/spsc_ring.hpp"

namespace htims::pipeline {

/// One streamed block: a view into the record source's backing storage,
/// tagged with its global record index so the consumer can close frames
/// correctly even when records were dropped upstream. `end` marks the
/// stream sentinel the producer always delivers (never dropped).
struct Block {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
    std::uint64_t seq = 0;
    bool end = false;
};

/// The per-stream transport parameters both protocol bodies share.
struct LinkParams {
    std::size_t record_len = 0;           ///< samples per TOF record (mz_bins)
    std::size_t records_per_period = 0;   ///< drift_bins
    std::uint64_t records_total = 0;      ///< frames x averages x drift_bins
    std::uint64_t records_per_frame = 0;  ///< averages x drift_bins
    std::size_t frames = 0;
    std::size_t batch_cap = 1;    ///< producer staging batch (records)
    std::size_t consume_cap = 1;  ///< consumer pop batch (records)
    RingFullPolicy policy = RingFullPolicy::kBlock;
    double ring_timeout_s = 0.0;
    fault::FaultInjector* faults = nullptr;
};

/// Producer-side accounting hooks; both callables must be cheap and
/// thread-confined to the producer thread.
template <typename OnStall, typename OnJitter>
struct ProducerHooks {
    OnStall stall;    ///< stall(seconds): blocked on a full ring once
    OnJitter jitter;  ///< jitter(): one injected link-jitter event
};
template <typename OnStall, typename OnJitter>
ProducerHooks(OnStall, OnJitter) -> ProducerHooks<OnStall, OnJitter>;

/// Consumer-side accounting hooks; thread-confined to the consumer.
template <typename OnIdle, typename OnPopped, typename OnRecord,
          typename OnDropped, typename OnDegraded>
struct ConsumerHooks {
    OnIdle idle;              ///< idle(seconds): starved on an empty ring
    OnPopped popped;          ///< popped(got): one pop_batch round trip
    OnRecord record;          ///< record(): one record accumulated
    OnDropped dropped;        ///< dropped(n): n records lost on the link
    OnDegraded frame_degraded;///< frame_degraded(): a frame closed short
};
template <typename OnIdle, typename OnPopped, typename OnRecord,
          typename OnDropped, typename OnDegraded>
ConsumerHooks(OnIdle, OnPopped, OnRecord, OnDropped, OnDegraded)
    -> ConsumerHooks<OnIdle, OnPopped, OnRecord, OnDropped, OnDegraded>;

/// What the consumer loop counted; `frames_closed` equals params.frames on
/// a complete run (the orchestrators' postcondition).
struct ConsumeTotals {
    std::uint64_t records_dropped = 0;
    std::uint64_t frames_degraded = 0;
    std::uint64_t frames_closed = 0;
};

/// The producer body: stream every record of `source` into `ring`, batch-
/// staged and line-rate paced, with the fault-injection and ring-full
/// policy semantics of the per-record transport, then deliver the end
/// sentinel (always, whatever the policy). Runs on the producer thread;
/// `drop_credits` is the kDropOldest credit channel to the consumer.
template <typename Hooks>
void produce_stream(SpscRing<Block>& ring, RecordSource& source,
                    const LinkParams& p,
                    std::atomic<std::uint64_t>& drop_credits, Hooks hooks) {
    // Blocking push with stall accounting; returns false if the bounded
    // wait expired (kBlock with a timeout).
    const auto push_blocking = [&](Block block) {
        WallTimer stall;
        const bool bounded = p.ring_timeout_s > 0.0 && !block.end;
        while (!ring.try_push(Block{block})) {
            if (bounded && stall.seconds() > p.ring_timeout_s) {
                hooks.stall(stall.seconds());
                return false;
            }
            std::this_thread::yield();
        }
        const double stalled = stall.seconds();
        if (stalled > 0.0) hooks.stall(stalled);
        return true;
    };

    // Per-record slow path: a record that met a full (or fault-forced
    // "full") link goes through the configured policy.
    const auto push_policy = [&](const Block& block) {
        switch (p.policy) {
            case RingFullPolicy::kBlock:
                push_blocking(block);  // timeout expiry drops the record;
                                       // the consumer sees the seq gap
                break;
            case RingFullPolicy::kDropNewest:
                // dropped; accounted by the consumer via seq gap
                break;
            case RingFullPolicy::kDropOldest:
                drop_credits.fetch_add(1, std::memory_order_release);
                if (!push_blocking(block)) {
                    // The bounded wait expired too: this record is lost to
                    // the timeout (the consumer sees the seq gap), so
                    // revoke the credit if it is still unspent — otherwise
                    // the consumer would later discard a live record that
                    // displaced nothing, dropping two records for one
                    // overrun.
                    std::uint64_t credits =
                        drop_credits.load(std::memory_order_acquire);
                    while (credits > 0 &&
                           !drop_credits.compare_exchange_weak(
                               credits, credits - 1,
                               std::memory_order_acq_rel)) {
                    }
                }
                break;
        }
    };

    // Batch staging: consecutive unpaced, unfaulted records accumulate here
    // and publish with one ring operation (one release-store).
    std::vector<Block> stage;
    stage.reserve(p.batch_cap);
    const auto flush_stage = [&] {
        std::size_t off = 0;
        while (off < stage.size()) {
            const std::size_t pushed =
                ring.push_batch(std::span(stage).subspan(off));
            if (pushed == 0) break;
            off += pushed;
        }
        // Records that met a full ring fall back to the per-record policy
        // machinery, so drop/block semantics are identical to per-record
        // transport.
        for (; off < stage.size(); ++off) {
            if (ring.try_push(Block{stage[off]})) continue;
            push_policy(stage[off]);
        }
        stage.clear();
    };

    WallTimer stream_clock;  // release_ns pacing is relative to here
    std::uint64_t seq = 0;
    while (seq < p.records_total) {
        // Line-rate pacing: sleep off the bulk of the wait, then spin the
        // sub-scheduler-quantum tail so release jitter stays small. Earlier
        // records must reach the link before this one waits.
        const std::uint64_t release = source.release_ns(seq);
        if (release > 0) {
            flush_stage();
            for (;;) {
                const double remain_s =
                    static_cast<double>(release) * 1e-9 - stream_clock.seconds();
                if (remain_s <= 0.0) break;
                if (remain_s > 200e-6)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(remain_s - 100e-6));
                else
                    std::this_thread::yield();
            }
        }

        if (p.faults != nullptr) {
            // Faulted runs take the record-at-a-time path so the injector's
            // per-record event order is exactly the per-record transport's.
            const auto jitter = p.faults->decide(fault::Site::kLinkJitter);
            if (jitter.fire) {
                // A short, plan-determined transport hiccup (10..80 us).
                const auto us = 10 * (1 + p.faults->draw_below(
                                              fault::Site::kLinkJitter,
                                              jitter.event, 8));
                std::this_thread::sleep_for(std::chrono::microseconds(us));
                hooks.jitter();
            }
            const auto row = source.record(seq);
            HTIMS_DCHECK(row.size() == p.record_len,
                         "record source rows span the m/z axis");
            const Block block{row.data(), row.size(), seq, false};
            ++seq;
            if (p.faults->should_fire(fault::Site::kLinkOverrun)) {
                // Forced overrun: straight to the policy, behind everything
                // staged before it.
                flush_stage();
                push_policy(block);
            } else {
                stage.push_back(block);
                if (stage.size() >= p.batch_cap ||
                    seq % p.records_per_frame == 0)
                    flush_stage();
            }
            continue;
        }

        // Fault-free fast path: stage a contiguous run of records, cut at
        // the batch size and the frame boundary (publications stay frame-
        // local). Batch a run only when its *last* record releases
        // immediately — release times are non-decreasing, so the whole run
        // does; paced streams fall back to record-at-a-time with the wait
        // above.
        std::uint64_t want =
            static_cast<std::uint64_t>(p.batch_cap - stage.size());
        const std::uint64_t frame_end =
            (seq / p.records_per_frame + 1) * p.records_per_frame;
        want = std::min(want, frame_end - seq);
        if (want > 1 && source.release_ns(seq + want - 1) > 0) want = 1;
        const auto rows = source.record_block(seq, static_cast<std::size_t>(want));
        const std::size_t k = rows.size() / p.record_len;
        HTIMS_DCHECK(k >= 1 && k <= want && rows.size() == k * p.record_len,
                     "record_block returns 1..max_records whole rows");
        for (std::size_t j = 0; j < k; ++j)
            stage.push_back(Block{rows.data() + j * p.record_len, p.record_len,
                                  seq + j, false});
        seq += k;
        if (stage.size() >= p.batch_cap || seq % p.records_per_frame == 0)
            flush_stage();
    }
    flush_stage();
    // Stream-end sentinel: always delivered, whatever the policy.
    push_blocking(Block{nullptr, 0, p.records_total, true});
}

/// The consumer body: drain the ring in batches until the end sentinel,
/// folding records with `accumulate(block)` and finishing frames with
/// `close_frame(index, more_frames)`. Frames are closed by watching the
/// sequence tags, so frames whose trailing records were dropped still close
/// (as degraded frames); kDropOldest credits from the producer discard the
/// oldest queued record. `stream_done` is an out-flag (set when the
/// sentinel is seen) rather than part of the totals so a caller unwinding
/// from an exception mid-consume can still tell whether the link needs
/// draining for the producer to finish.
template <typename Accumulate, typename CloseFrame, typename Hooks>
ConsumeTotals consume_stream(SpscRing<Block>& ring, const LinkParams& p,
                             std::atomic<std::uint64_t>& drop_credits,
                             bool& stream_done, Accumulate&& accumulate,
                             CloseFrame&& close_frame, Hooks hooks) {
    ConsumeTotals totals;
    std::uint64_t next_seq = 0;  // next record index expected

    // Per-frame degradation flags (a frame is degraded when at least one of
    // its records was dropped anywhere on the link).
    std::vector<std::uint8_t> degraded(p.frames, 0);
    const auto mark_dropped_range = [&](std::uint64_t first, std::uint64_t last) {
        // Records in [first, last) were lost; mark their frames.
        totals.records_dropped += last - first;
        hooks.dropped(last - first);
        for (std::uint64_t f = first / p.records_per_frame;
             f <= (last - 1) / p.records_per_frame; ++f)
            degraded[static_cast<std::size_t>(f)] = 1;
    };
    const auto close_through = [&](std::uint64_t frame_limit) {
        while (totals.frames_closed < frame_limit) {
            close_frame(static_cast<std::size_t>(totals.frames_closed),
                        totals.frames_closed < p.frames - 1);
            if (degraded[static_cast<std::size_t>(totals.frames_closed)] != 0) {
                ++totals.frames_degraded;
                hooks.frame_degraded();
            }
            ++totals.frames_closed;
        }
    };

    // Batch pop: drain up to consume_cap blocks per protocol round trip;
    // the per-block bookkeeping below is unchanged from per-record.
    std::vector<Block> popped(p.consume_cap);
    bool saw_end = false;
    while (!saw_end) {
        std::size_t got = ring.pop_batch(std::span(popped));
        if (got == 0) {
            WallTimer idle;
            while ((got = ring.pop_batch(std::span(popped))) == 0)
                std::this_thread::yield();
            hooks.idle(idle.seconds());
        }
        hooks.popped(got);
        for (std::size_t b = 0; b < got; ++b) {
            const Block& block = popped[b];
            if (block.end) {
                // The sentinel is the stream's last block by construction;
                // nothing follows it in this batch.
                stream_done = true;
                saw_end = true;
                break;
            }
            if (block.seq > next_seq) mark_dropped_range(next_seq, block.seq);
            next_seq = block.seq + 1;
            close_through(block.seq / p.records_per_frame);

            // kDropOldest credits: this record is the oldest still queued —
            // discard it (counts as dropped, degrades its frame).
            std::uint64_t credits = drop_credits.load(std::memory_order_acquire);
            bool discard = false;
            while (credits > 0) {
                if (drop_credits.compare_exchange_weak(
                        credits, credits - 1, std::memory_order_acq_rel)) {
                    discard = true;
                    break;
                }
            }
            if (discard) {
                mark_dropped_range(block.seq, block.seq + 1);
                continue;
            }
            hooks.record();
            accumulate(block);
        }
    }
    if (next_seq < p.records_total) mark_dropped_range(next_seq, p.records_total);
    close_through(p.frames);
    return totals;
}

/// Handoff between a stream's consumer and the decode side: a pool of
/// reusable buffers ("free") and a FIFO of closed frames awaiting decode
/// ("work"). The hybrid orchestrator uses both halves with its private
/// worker pool; the fleet runner uses the free half per stream (closed
/// frames travel through the shared MPMC dispatch queue instead) — the
/// free list is what bounds each stream's frames in flight. close()
/// releases workers once the stream ends; abort() releases a consumer
/// blocked on pop_free() when a worker dies mid-run (no buffer would ever
/// return).
template <typename Job>
class DecodeChannel {
public:
    void push_free(Job job) {
        {
            std::lock_guard lock(mutex_);
            free_.push_back(std::move(job));
        }
        cv_free_.notify_one();
    }

    /// Blocks until a spent buffer comes back; nullopt after abort().
    std::optional<Job> pop_free() {
        std::unique_lock lock(mutex_);
        cv_free_.wait(lock, [&] { return !free_.empty() || aborted_; });
        if (free_.empty()) return std::nullopt;
        Job job = std::move(free_.front());
        free_.pop_front();
        return job;
    }

    /// Queue a closed frame; returns the queue depth just after the push.
    std::size_t push_work(Job job) {
        std::size_t depth = 0;
        {
            std::lock_guard lock(mutex_);
            work_.push_back(std::move(job));
            depth = work_.size();
        }
        cv_work_.notify_one();
        return depth;
    }

    /// Blocks for the next closed frame; nullopt once closed and drained.
    std::optional<Job> pop_work() {
        std::unique_lock lock(mutex_);
        cv_work_.wait(lock, [&] { return !work_.empty() || closed_; });
        if (work_.empty()) return std::nullopt;
        Job job = std::move(work_.front());
        work_.pop_front();
        return job;
    }

    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        cv_work_.notify_all();
    }

    void abort() {
        {
            std::lock_guard lock(mutex_);
            aborted_ = true;
        }
        cv_free_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_free_;
    std::condition_variable cv_work_;
    std::deque<Job> free_;
    std::deque<Job> work_;
    bool closed_ = false;
    bool aborted_ = false;
};

}  // namespace htims::pipeline
