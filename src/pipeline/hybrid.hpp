// hybrid.hpp — the hybrid CPU↔processing-element orchestrator.
//
// Models the paper's Cray XD1 arrangement: a software producer streams raw
// detector records over a bounded link (the SPSC ring standing in for the
// RapidArray interconnect) to a processing component — either the FPGA
// model or the CPU software backend — one TOF record per block. The run
// report captures what the paper's evaluation cares about: achieved
// streaming throughput, producer backpressure (link/processing too slow),
// consumer idle time (source too slow), and whether the pipeline sustains
// the instrument's native data rate.
#pragma once

#include <cstdint>
#include <vector>

#include "pipeline/cpu_backend.hpp"
#include "pipeline/fpga.hpp"
#include "pipeline/frame.hpp"
#include "pipeline/spsc_ring.hpp"
#include "telemetry/registry.hpp"

namespace htims::pipeline {

/// Which processing component consumes the stream.
enum class BackendKind { kFpga, kCpu };

/// Hybrid run parameters.
struct HybridConfig {
    BackendKind backend = BackendKind::kFpga;
    std::size_t frames = 8;         ///< frames to stream
    std::size_t averages = 1;       ///< periods accumulated per frame
    std::size_t ring_records = 256; ///< link depth, in TOF records
    std::size_t cpu_threads = 0;    ///< CPU backend worker count (0 = auto)
    FpgaConfig fpga{};              ///< FPGA model parameters
};

/// Outcome of a hybrid streaming run.
struct HybridReport {
    std::uint64_t frames = 0;
    std::uint64_t samples = 0;
    double wall_seconds = 0.0;
    double producer_stall_seconds = 0.0;  ///< time blocked on a full ring
    double consumer_idle_seconds = 0.0;   ///< time starved on an empty ring
    double sample_rate = 0.0;             ///< achieved samples/second
    FpgaCycleReport fpga{};               ///< last frame (FPGA backend only)
    Frame last_frame;                     ///< last deconvolved frame
    telemetry::Snapshot telemetry;        ///< registry snapshot at run end
                                          ///< (empty when telemetry is off)

    /// Ratio of achieved throughput to the instrument's native rate; >= 1
    /// means the pipeline keeps up in real time. A non-positive
    /// `instrument_sample_rate` is a configuration without a meaningful
    /// native rate: the sentinel 0.0 is returned ("no real-time claim"),
    /// deliberately reading as *not* keeping up rather than dividing by
    /// zero or signalling success.
    double realtime_factor(double instrument_sample_rate) const {
        return instrument_sample_rate > 0.0 ? sample_rate / instrument_sample_rate : 0.0;
    }
};

/// The orchestrator. Owns both threads for the duration of run().
class HybridPipeline {
public:
    /// `period_samples` is one period of digitized detector output in frame
    /// order (drift-major), length == layout.cells(); the producer streams
    /// it repeatedly (averages x frames times).
    HybridPipeline(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                   std::vector<std::uint32_t> period_samples, const HybridConfig& config);

    const FrameLayout& layout() const { return layout_; }

    /// Execute the streaming run; blocking.
    HybridReport run();

private:
    prs::OversampledPrs sequence_;
    FrameLayout layout_;
    std::vector<std::uint32_t> period_samples_;
    HybridConfig config_;
};

/// Helper: reduce an accumulated raw frame back to one representative
/// period of ADC words (raw / averages, rounded and clamped to the 32-bit
/// sample domain) — the stream template the producer replays.
std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages);

}  // namespace htims::pipeline
