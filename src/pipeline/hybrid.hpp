// hybrid.hpp — the hybrid CPU↔processing-element orchestrator.
//
// Models the paper's Cray XD1 arrangement: a software producer streams raw
// detector records over a bounded link (the SPSC ring standing in for the
// RapidArray interconnect) to a processing component — either the FPGA
// model or the CPU software backend — one TOF record per block. The run
// report captures what the paper's evaluation cares about: achieved
// streaming throughput, producer backpressure (link/processing too slow),
// consumer idle time (source too slow), and whether the pipeline sustains
// the instrument's native data rate.
//
// Degraded-mode operation: a real instrument run cannot abort mid-gradient
// because the link briefly outran the decoder. The ring-full policy decides
// what the producer does when the link is saturated (block as before, drop
// the arriving record, or sacrifice the oldest queued record), records are
// sequence-tagged so the consumer closes every configured frame even when
// records were lost, and an optional FaultInjector drives deterministic
// link jitter / forced-overrun / transient-CPU-failure scenarios. Every
// drop is counted (hybrid.records_dropped, hybrid.frames_degraded) and
// surfaced in the HybridReport next to the injector's own counts.
//
// Overlapped decode (overlap_decode): by default the consumer deconvolves
// each closed frame inline, so ring pops pause for the decode and the
// producer stalls exactly when the paper's architecture says it shouldn't.
// With overlap on, the consumer hands each closed frame to a pool of
// decode workers (decode_workers, default 1) and immediately resumes
// popping into a recycled buffer — capture and deconvolution overlap as on
// the real XD1. Workers decode concurrently but emit through a
// sequence-ordered turnstile, so results still complete in frame order,
// bit-identical to the synchronous path.
//
// Batch transport (batch_records): the producer stages up to a frame's
// worth of consecutive records and publishes them with one ring operation,
// and the consumer pops in batches — the acquire/release protocol cost is
// paid per span instead of per ~32-byte record. Pacing, fault-injection
// event order, and ring-full policy semantics are all per record exactly as
// before: paced or faulted records take the one-at-a-time path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "pipeline/cpu_backend.hpp"
#include "pipeline/fpga.hpp"
#include "pipeline/frame.hpp"
#include "pipeline/spsc_ring.hpp"
#include "telemetry/registry.hpp"

namespace htims::analysis {
class AnalysisStage;
}

namespace htims::pipeline {

/// Which processing component consumes the stream.
enum class BackendKind { kFpga, kCpu };

/// Where the producer's records come from. The built-in source replays a
/// fixed period template (the simulated live instrument); the frame store's
/// ReplaySource serves an archived run back through the same ring. The
/// producer thread is the only caller of record(); sources need no locking.
class RecordSource {
public:
    virtual ~RecordSource() = default;

    /// Total records the stream delivers (must equal the run's
    /// frames x averages x drift_bins).
    virtual std::uint64_t total_records() const = 0;

    /// One TOF record (mz_bins samples) for global record index `seq`.
    /// The span must stay valid until `window` more records (see
    /// set_window) have been requested — blocks queued in the ring still
    /// point at it.
    virtual std::span<const std::uint32_t> record(std::uint64_t seq) = 0;

    /// Up to `max_records` consecutive records starting at `seq`, returned
    /// as one contiguous span (k * mz_bins samples for some 1 <= k <=
    /// max_records). Sources return as many rows as are contiguous in their
    /// backing storage; the default forwards to record(). The producer
    /// stages the rows as individual ring blocks, so the set_window
    /// retention contract is unchanged.
    virtual std::span<const std::uint32_t> record_block(std::uint64_t seq,
                                                        std::size_t max_records) {
        (void)max_records;
        return record(seq);
    }

    /// Earliest release time for `seq`, in nanoseconds after stream start
    /// (0 = release immediately). A replay paces the recorded line rate
    /// here; the producer busy-waits the residual. Must be non-decreasing
    /// in `seq` — the producer batches a run of records only after proving
    /// the run's *last* record releases immediately, which implies the
    /// whole run does.
    virtual std::uint64_t release_ns(std::uint64_t /*seq*/) const {
        return 0;
    }

    /// The pipeline's guarantee to the source: at most `records` record
    /// spans are outstanding (queued in the ring) at any moment. Called
    /// once before streaming starts; sources that recycle backing buffers
    /// size their retention window from it.
    virtual void set_window(std::size_t records) { (void)records; }
};

/// The default source: one period of samples streamed repeatedly
/// (averages x frames times), rows addressed by seq modulo the period.
class PeriodTemplateSource final : public RecordSource {
public:
    PeriodTemplateSource(std::vector<std::uint32_t> period_samples,
                         const FrameLayout& layout, std::uint64_t frames,
                         std::uint64_t averages);

    std::uint64_t total_records() const override { return total_records_; }
    std::span<const std::uint32_t> record(std::uint64_t seq) override;
    std::span<const std::uint32_t> record_block(std::uint64_t seq,
                                                std::size_t max_records) override;

private:
    std::vector<std::uint32_t> period_samples_;
    std::size_t record_len_ = 0;
    std::size_t records_per_period_ = 0;
    std::uint64_t total_records_ = 0;
};

/// What the producer does when a record arrives at a full ring.
enum class RingFullPolicy {
    kBlock,       ///< wait for space (optionally bounded by ring_timeout_s)
    kDropNewest,  ///< discard the arriving record
    kDropOldest,  ///< discard the oldest queued record, keep the new one
};

/// Hybrid run parameters.
struct HybridConfig {
    BackendKind backend = BackendKind::kFpga;
    std::size_t frames = 8;         ///< frames to stream
    std::size_t averages = 1;       ///< periods accumulated per frame
    std::size_t ring_records = 256; ///< link depth, in TOF records
    std::size_t batch_records = 32; ///< records staged per ring publication
                                    ///< (clamped to the ring depth; 1 =
                                    ///< per-record transport as before)
    std::size_t cpu_threads = 0;    ///< CPU backend worker count (0 = auto)
    FpgaConfig fpga{};              ///< FPGA model parameters

    RingFullPolicy ring_policy = RingFullPolicy::kBlock;
    double ring_timeout_s = 0.0;    ///< kBlock: max wait per record (0 = forever);
                                    ///< on expiry the record is dropped
    int cpu_max_retries = 4;        ///< retry budget for transient CPU faults
    double cpu_retry_backoff_s = 50e-6;  ///< initial retry backoff (doubles)

    bool overlap_decode = false;    ///< decode frame k on a worker thread
                                    ///< while frame k+1 streams in
    std::size_t decode_buffers = 2; ///< frames in flight with overlap on
                                    ///< (one accumulating + the rest queued
                                    ///< or decoding); must be >= 2 and is
                                    ///< raised to decode_workers + 1 so
                                    ///< every worker can hold a frame
    std::size_t decode_workers = 1; ///< decode worker threads with overlap
                                    ///< on; results are reassembled in
                                    ///< sequence order whatever the count

    /// Optional per-frame sink, called once per decoded frame with its
    /// index. Runs on a decode worker in overlap mode and on the consumer
    /// otherwise; the call sequence is frame order in both (multi-worker
    /// emission is serialized through the order turnstile).
    std::function<void(std::size_t, const Frame&)> frame_sink;

    /// Optional streaming analysis stage, invoked from the same ordered
    /// emission point as frame_sink (right after it) with stream id 0 —
    /// the fleet runner passes its own per-stream ids instead. The ordered
    /// call sequence is what makes the stage's greedy clustering
    /// deterministic across decode-worker counts. Not owned.
    analysis::AnalysisStage* analysis = nullptr;

    fault::FaultInjector* faults = nullptr;  ///< optional fault injection
};

/// Outcome of a hybrid streaming run.
struct HybridReport {
    std::uint64_t frames = 0;
    std::uint64_t samples = 0;
    double wall_seconds = 0.0;
    double producer_stall_seconds = 0.0;  ///< time blocked on a full ring
    double consumer_idle_seconds = 0.0;   ///< time starved on an empty ring
    double decode_wait_seconds = 0.0;     ///< overlap mode: consumer time
                                          ///< blocked on a free decode buffer
    double sample_rate = 0.0;             ///< achieved samples/second
    FpgaCycleReport fpga{};               ///< last frame (FPGA backend only)
    Frame last_frame;                     ///< last deconvolved frame
    telemetry::Snapshot telemetry;        ///< registry snapshot at run end
                                          ///< (empty when telemetry is off)

    std::uint64_t records_dropped = 0;  ///< records lost to policy/overrun
    std::uint64_t frames_degraded = 0;  ///< frames missing >= 1 record
    std::uint64_t cpu_task_retries = 0; ///< transient CPU faults retried
    fault::InjectionCounts faults{};    ///< injector counters at run end

    /// Ratio of achieved throughput to the instrument's native rate; >= 1
    /// means the pipeline keeps up in real time. A non-positive
    /// `instrument_sample_rate` is a configuration without a meaningful
    /// native rate: the sentinel 0.0 is returned ("no real-time claim"),
    /// deliberately reading as *not* keeping up rather than dividing by
    /// zero or signalling success.
    double realtime_factor(double instrument_sample_rate) const {
        return instrument_sample_rate > 0.0 ? sample_rate / instrument_sample_rate : 0.0;
    }
};

/// The orchestrator. Owns both threads for the duration of run().
class HybridPipeline {
public:
    /// `period_samples` is one period of digitized detector output in frame
    /// order (drift-major), length == layout.cells(); the producer streams
    /// it repeatedly (averages x frames times).
    HybridPipeline(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                   std::vector<std::uint32_t> period_samples, const HybridConfig& config);

    /// Stream from an external record source instead (e.g. the frame
    /// store's ReplaySource). `source` must outlive the pipeline and
    /// deliver exactly frames x averages x drift_bins records.
    HybridPipeline(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                   RecordSource& source, const HybridConfig& config);

    const FrameLayout& layout() const { return layout_; }

    /// Execute the streaming run; blocking.
    HybridReport run();

private:
    prs::OversampledPrs sequence_;
    FrameLayout layout_;
    std::optional<PeriodTemplateSource> template_source_;
    RecordSource* source_ = nullptr;
    HybridConfig config_;
};

/// Helper: reduce an accumulated raw frame back to one representative
/// period of ADC words (raw / averages, rounded and clamped to the 32-bit
/// sample domain) — the stream template the producer replays.
std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages);

}  // namespace htims::pipeline
