// fleet.hpp — multi-stream fleet orchestrator over a shared decode pool.
//
// A production deployment runs many instruments against one processing
// host. FleetRunner models that: N independent streams — each with its own
// layout, configuration, seed, fault plan, and record source (live period
// template or frame-store replay) — ingest concurrently through per-stream
// SPSC rings, and every closed frame travels through ONE bounded lock-free
// MPMC dispatch queue (pipeline/mpmc_queue.hpp) to a shared pool of M
// decode workers. Per-stream ordered-emission turnstiles
// (pipeline/turnstile.hpp) restore frame order within each stream, so each
// stream's output is bit-identical to the same configuration run solo
// through HybridPipeline — the fleet-parity digest matrix in
// tests/test_fleet.cpp pins exactly that, across mixed CPU/FPGA backends,
// mixed live/replay sources, and worker counts.
//
// Identity comes from structure, not luck:
//   * the ingest protocol bodies (produce_stream / consume_stream in
//     pipeline/stream_link.hpp) are the very templates HybridPipeline runs,
//     so transport semantics — batching, pacing, ring-full policies, fault
//     event order — are shared code, not a reimplementation;
//   * frames are dispatched in frame order per stream and the MPMC queue is
//     FIFO, so the lowest undecoded frame index of a stream is always held
//     by some worker — ordered emission never deadlocks;
//   * decode is a pure function of the closed frame (established for both
//     backends by the overlap-decode digest tests), so which worker decodes
//     a frame cannot change its bits.
//
// Failure isolation: a fault plan on stream k degrades (or, on a terminal
// error, fails) stream k alone; other streams' digests and counters are
// untouched. Telemetry is sharded per stream (cache-line-padded shards, no
// cross-stream false sharing) and aggregated into the FleetReport, whose
// JSON rendering (fleet_report_json) carries per-stream and aggregate p99
// frame latency — the E16 bench protocol's scaling evidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/frame.hpp"
#include "pipeline/hybrid.hpp"
#include "telemetry/histogram.hpp"

namespace htims::pipeline {

/// One instrument stream of a fleet. `config` is a full HybridConfig; the
/// fleet honours everything the solo orchestrator does except the decode-
/// overlap knobs (`overlap_decode`, `decode_workers`) — decode is always
/// overlapped through the shared pool, with `decode_buffers` still bounding
/// this stream's frames in flight.
struct FleetStream {
    prs::OversampledPrs sequence;  ///< this stream's PRS (seed included)
    FrameLayout layout;
    HybridConfig config;
    /// Live source: one period of samples replayed averages x frames times
    /// (ignored when `source` is set).
    std::vector<std::uint32_t> period_samples;
    /// External source (e.g. store::ReplaySource); must outlive run() and
    /// deliver exactly frames x averages x drift_bins records.
    RecordSource* source = nullptr;
};

/// Fleet-wide knobs.
struct FleetConfig {
    std::size_t decode_workers = 2;  ///< shared decode pool size (>= 1)
    /// Dispatch queue depth in frames; 0 sizes it so a queue-full condition
    /// is impossible (the per-stream buffer pools bound the in-flight total).
    /// Smaller values exercise dispatch backpressure: a stream whose frames
    /// meet a full queue stalls its consumer, which fills its ring and
    /// stalls its producer — never its neighbours'.
    std::size_t dispatch_depth = 0;
};

/// Per-stream outcome: the solo-compatible report plus the stream's
/// close-to-emission frame latency distribution.
struct FleetStreamReport {
    HybridReport report;
    telemetry::HistogramSummary frame_latency;  ///< ns, dispatch -> emission
};

/// Fleet outcome: per-stream reports and the cross-stream aggregates.
struct FleetReport {
    std::vector<FleetStreamReport> streams;
    double wall_seconds = 0.0;         ///< whole-fleet wall time
    std::uint64_t frames = 0;          ///< frames closed, all streams
    std::uint64_t samples = 0;         ///< samples streamed, all streams
    double sample_rate = 0.0;          ///< aggregate samples/second
    std::uint64_t records_dropped = 0;
    std::uint64_t frames_degraded = 0;
    telemetry::HistogramSummary frame_latency;  ///< ns, all streams pooled
};

/// Render a fleet report as a standalone JSON document (schema
/// "htims.fleet.v1"): aggregate scalars plus one entry per stream with its
/// throughput, degradation counters, and p50/p95/p99 frame latency.
std::string fleet_report_json(const FleetReport& report);

/// The fleet orchestrator. Owns every thread for the duration of run():
/// one producer + one consumer per stream, plus the shared decode pool.
class FleetRunner {
public:
    /// Validates every stream's configuration eagerly (ConfigError on a bad
    /// one, naming the stream).
    explicit FleetRunner(std::vector<FleetStream> streams,
                         const FleetConfig& config = {});

    std::size_t stream_count() const { return streams_.size(); }

    /// Execute all streams to completion; blocking. A terminal error on one
    /// stream still runs every other stream to completion, then rethrows
    /// the first failure (fleet-level decode-pool failures take precedence).
    FleetReport run();

private:
    std::vector<FleetStream> streams_;
    FleetConfig config_;
};

}  // namespace htims::pipeline
