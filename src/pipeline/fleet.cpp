#include "pipeline/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/stage.hpp"
#include "common/aligned_buffer.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "pipeline/mpmc_queue.hpp"
#include "pipeline/stream_link.hpp"
#include "pipeline/turnstile.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"

namespace htims::pipeline {

namespace {

/// One closed frame in flight from a stream consumer to the decode pool.
/// Exactly one of `frame` (CPU backend: the accumulated raw frame) and
/// `capture` (FPGA backend: the detached capture) is live — the stream's
/// backend says which.
struct DispatchJob {
    std::uint32_t stream = 0;
    std::size_t index = 0;         ///< frame index within the stream
    std::uint64_t dispatch_ns = 0; ///< when the consumer dispatched it
    Frame frame;
    FpgaCapture capture;
};

/// Per-stream telemetry shard. Cache-line-aligned so neighbouring streams'
/// hot emission counters never share a line (SNIPPETS.md's sharded-counter
/// lesson: unsharded fleet counters collapse under worker contention).
struct alignas(kCacheLine) StreamShard {
    explicit StreamShard(const std::atomic<bool>* enabled) : latency(enabled) {}
    telemetry::LogHistogram latency;  ///< ns, dispatch -> ordered emission
    std::atomic<std::uint64_t> frames_emitted{0};
};

/// Everything one stream owns for the duration of run(). Heap-held (the
/// shard and ring are neither movable nor copyable); thread roles:
/// the producer thread writes producer_stall_s; the consumer thread owns
/// totals/stream_done/decode_wait_s/consumer_idle_s/failure; last_frame /
/// fpga / last_emit_ns are written only inside the turnstile-serialized
/// emission section (the release-advance/acquire-observe edge orders them
/// worker-to-worker, and the final join publishes them to the caller).
struct StreamState {
    StreamState(const FleetStream& s, std::uint32_t index,
                const std::atomic<bool>* stats)
        : spec(s), id(index), ring(s.config.ring_records), shard(stats) {}

    const FleetStream& spec;
    const std::uint32_t id;
    SpscRing<Block> ring;
    std::optional<PeriodTemplateSource> template_source;
    RecordSource* source = nullptr;
    LinkParams link{};
    std::size_t buffers = 2;  ///< this stream's frames-in-flight bound

    OrderTurnstile<> turnstile;
    DecodeChannel<DispatchJob> free_pool;  ///< free half only; work travels
                                           ///< through the shared MPMC queue
    StreamShard shard;
    alignas(kCacheLine) std::atomic<std::uint64_t> drop_credits{0};

    // Producer-thread-owned.
    double producer_stall_s = 0.0;

    // Consumer-thread-owned (read by the caller after the joins).
    double consumer_idle_s = 0.0;
    double decode_wait_s = 0.0;
    ConsumeTotals totals{};
    bool stream_done = false;
    std::exception_ptr failure;

    // Emission-section-owned (turnstile-serialized).
    Frame last_frame;
    FpgaCycleReport fpga{};
    std::uint64_t last_emit_ns = 0;
};

void validate_fleet(const std::vector<FleetStream>& streams,
                    const FleetConfig& config) {
    if (streams.empty())
        throw ConfigError("a fleet needs at least one stream");
    if (config.decode_workers == 0)
        throw ConfigError("fleet decode_workers must be >= 1");
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const std::string tag = "fleet stream " + std::to_string(i);
        const auto& spec = streams[i];
        const auto& cfg = spec.config;
        if (cfg.frames == 0 || cfg.averages == 0)
            throw ConfigError(tag + " needs frames >= 1 and averages >= 1");
        if (cfg.ring_timeout_s < 0.0)
            throw ConfigError(tag + ": ring_timeout_s cannot be negative");
        if (cfg.cpu_max_retries < 0)
            throw ConfigError(tag + ": cpu_max_retries cannot be negative");
        if (cfg.batch_records == 0)
            throw ConfigError(tag + ": batch_records must be >= 1");
        if (spec.layout.mz_bins == 0 || spec.layout.drift_bins == 0)
            throw ConfigError(tag + ": stream layout is empty");
        const std::uint64_t expected = static_cast<std::uint64_t>(cfg.frames) *
                                       cfg.averages * spec.layout.drift_bins;
        if (spec.source != nullptr) {
            if (spec.source->total_records() != expected)
                throw ConfigError(tag + ": record source delivers " +
                                  std::to_string(spec.source->total_records()) +
                                  " records; the configured run streams " +
                                  std::to_string(expected));
        } else if (spec.period_samples.size() != spec.layout.cells()) {
            throw ConfigError(tag +
                              ": period sample template must have "
                              "layout.cells() entries");
        }
    }
}

telemetry::JsonValue summary_json(const telemetry::HistogramSummary& s) {
    telemetry::JsonValue v{telemetry::JsonValue::Object{}};
    v.set("count", s.count);
    v.set("min", s.min);
    v.set("max", s.max);
    v.set("mean", s.mean);
    v.set("p50", s.p50);
    v.set("p95", s.p95);
    v.set("p99", s.p99);
    return v;
}

}  // namespace

std::string fleet_report_json(const FleetReport& report) {
    using telemetry::JsonValue;
    JsonValue root{JsonValue::Object{}};
    root.set("schema", "htims.fleet.v1");

    JsonValue aggregate{JsonValue::Object{}};
    aggregate.set("streams", static_cast<std::uint64_t>(report.streams.size()));
    aggregate.set("wall_seconds", report.wall_seconds);
    aggregate.set("frames", report.frames);
    aggregate.set("samples", report.samples);
    aggregate.set("sample_rate", report.sample_rate);
    aggregate.set("records_dropped", report.records_dropped);
    aggregate.set("frames_degraded", report.frames_degraded);
    aggregate.set("frame_latency_ns", summary_json(report.frame_latency));
    root.set("aggregate", std::move(aggregate));

    JsonValue::Array streams;
    streams.reserve(report.streams.size());
    for (std::size_t i = 0; i < report.streams.size(); ++i) {
        const auto& sr = report.streams[i];
        JsonValue entry{JsonValue::Object{}};
        entry.set("index", static_cast<std::uint64_t>(i));
        entry.set("frames", sr.report.frames);
        entry.set("samples", sr.report.samples);
        entry.set("wall_seconds", sr.report.wall_seconds);
        entry.set("sample_rate", sr.report.sample_rate);
        entry.set("records_dropped", sr.report.records_dropped);
        entry.set("frames_degraded", sr.report.frames_degraded);
        entry.set("cpu_task_retries", sr.report.cpu_task_retries);
        entry.set("producer_stall_seconds", sr.report.producer_stall_seconds);
        entry.set("consumer_idle_seconds", sr.report.consumer_idle_seconds);
        entry.set("decode_wait_seconds", sr.report.decode_wait_seconds);
        entry.set("frame_latency_ns", summary_json(sr.frame_latency));
        streams.push_back(std::move(entry));
    }
    root.set("streams", JsonValue(std::move(streams)));
    return root.dump(2);
}

FleetRunner::FleetRunner(std::vector<FleetStream> streams,
                         const FleetConfig& config)
    : streams_(std::move(streams)), config_(config) {
    validate_fleet(streams_, config_);
}

FleetReport FleetRunner::run() {
    const std::size_t n = streams_.size();
    const std::size_t workers_n = config_.decode_workers;
    std::atomic<bool> stats_on{true};
    telemetry::LogHistogram agg_latency(&stats_on);

    // --- Per-stream setup -------------------------------------------------
    std::vector<std::unique_ptr<StreamState>> states;
    states.reserve(n);
    std::size_t inflight_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        auto& spec = streams_[i];
        const auto& cfg = spec.config;
        auto st = std::make_unique<StreamState>(
            spec, static_cast<std::uint32_t>(i), &stats_on);

        const std::size_t record_len = spec.layout.mz_bins;
        const std::size_t records_per_period = spec.layout.drift_bins;
        const std::uint64_t records_total =
            static_cast<std::uint64_t>(cfg.frames) * cfg.averages *
            records_per_period;
        if (spec.source != nullptr) {
            st->source = spec.source;
        } else {
            st->template_source.emplace(spec.period_samples, spec.layout,
                                        cfg.frames, cfg.averages);
            st->source = &*st->template_source;
        }

        // Same batch sizing and retention window as the solo orchestrator:
        // transport behaviour (and therefore the digests) must match it.
        const std::size_t batch_cap = std::max<std::size_t>(
            1, std::min(cfg.batch_records, st->ring.capacity()));
        st->source->set_window(st->ring.capacity() + 2 * batch_cap + 2);
        st->link = LinkParams{record_len,
                              records_per_period,
                              records_total,
                              static_cast<std::uint64_t>(cfg.averages) *
                                  records_per_period,
                              cfg.frames,
                              batch_cap,
                              batch_cap,
                              cfg.ring_policy,
                              cfg.ring_timeout_s,
                              cfg.faults};

        // decode_buffers bounds this stream's frames in flight: one
        // accumulating at the consumer plus buffers-1 queued or decoding.
        st->buffers = std::max<std::size_t>(cfg.decode_buffers, 2);
        for (std::size_t b = 0; b + 1 < st->buffers; ++b) {
            if (cfg.backend == BackendKind::kFpga)
                st->free_pool.push_free(DispatchJob{});  // bins allocated on
                                                         // first recycle
            else
                st->free_pool.push_free(
                    DispatchJob{0, 0, 0, Frame(spec.layout), {}});
        }
        inflight_total += st->buffers - 1;
        states.push_back(std::move(st));
    }

    // The auto-sized dispatch queue can hold every frame that can possibly
    // be in flight at once, so a full queue (consumer-side backpressure)
    // only happens when the caller asked for a smaller dispatch_depth.
    const std::size_t depth = config_.dispatch_depth > 0
                                  ? config_.dispatch_depth
                                  : std::max<std::size_t>(2, inflight_total);
    MpmcQueue<DispatchJob> queue(depth);

    // Consumers still running; workers exit once this hits zero AND the
    // queue is drained. Each consumer decrements with release after its
    // last enqueue, so a worker's acquire read of zero also sees every
    // published slot ticket — no job can be missed.
    std::atomic<std::size_t> active{n};
    std::mutex failure_mutex;
    std::exception_ptr pool_failure;
    std::atomic<bool> decode_down{false};

    WallTimer wall;
    const std::uint64_t run_start_ns = telemetry::now_ns();

    // --- Producers --------------------------------------------------------
    std::vector<std::thread> producers;
    producers.reserve(n);
    for (auto& stp : states) {
        producers.emplace_back([st = stp.get()] {
            produce_stream(st->ring, *st->source, st->link, st->drop_credits,
                           ProducerHooks{
                               [st](double stalled) {
                                   st->producer_stall_s += stalled;
                               },
                               [] {},
                           });
        });
    }

    // --- Consumers --------------------------------------------------------
    std::vector<std::thread> consumers;
    consumers.reserve(n);
    for (auto& stp : states) {
        consumers.emplace_back([st = stp.get(), &queue, &active] {
            const auto& cfg = st->spec.config;
            // Blocking enqueue: a full dispatch queue stalls only this
            // stream (its ring then fills and its producer stalls — the
            // backpressure chain stays stream-local).
            const auto dispatch = [&](DispatchJob job) {
                job.dispatch_ns = telemetry::now_ns();
                if (!queue.try_push(std::move(job))) {
                    WallTimer wait;
                    do {
                        std::this_thread::yield();
                    } while (!queue.try_push(std::move(job)));
                    st->decode_wait_s += wait.seconds();
                }
            };
            const auto hooks = ConsumerHooks{
                [st](double idled) { st->consumer_idle_s += idled; },
                [](std::size_t) {},
                [] {},
                [](std::uint64_t) {},
                [] {},
            };
            try {
                bool down = false;  // decode pool died; drain without dispatch
                if (cfg.backend == BackendKind::kFpga) {
                    FpgaPipeline fpga(st->spec.sequence, st->spec.layout,
                                      cfg.fpga);
                    if (cfg.faults != nullptr) fpga.set_faults(cfg.faults);
                    fpga.begin_frame();
                    st->totals = consume_stream(
                        st->ring, st->link, st->drop_credits, st->stream_done,
                        [&](const Block& block) {
                            if (down) return;
                            fpga.push_samples(std::span(block.data, block.size));
                        },
                        [&](std::size_t index, bool /*more_frames*/) {
                            if (down) return;
                            WallTimer wait;
                            auto spent = st->free_pool.pop_free();
                            st->decode_wait_s += wait.seconds();
                            if (!spent) {
                                down = true;
                                return;
                            }
                            dispatch(DispatchJob{
                                st->id, index, 0, {},
                                fpga.capture_frame(std::move(spent->capture))});
                        },
                        hooks);
                } else {
                    Frame accum(st->spec.layout);
                    const std::size_t records_per_period =
                        st->link.records_per_period;
                    st->totals = consume_stream(
                        st->ring, st->link, st->drop_credits, st->stream_done,
                        [&](const Block& block) {
                            if (down) return;  // accum was handed off
                            const std::size_t record_in_period =
                                static_cast<std::size_t>(block.seq %
                                                         records_per_period);
                            auto row = accum.record(record_in_period);
                            for (std::size_t i = 0; i < block.size; ++i)
                                row[i] += static_cast<double>(block.data[i]);
                        },
                        [&](std::size_t index, bool more_frames) {
                            if (down) return;
                            dispatch(DispatchJob{st->id, index, 0,
                                                 std::move(accum), {}});
                            if (!more_frames) return;
                            WallTimer wait;
                            auto spent = st->free_pool.pop_free();
                            st->decode_wait_s += wait.seconds();
                            if (!spent) {
                                down = true;
                                return;
                            }
                            accum = std::move(spent->frame);
                        },
                        hooks);
                }
            } catch (...) {
                st->failure = std::current_exception();
                // The producer only exits after delivering the sentinel:
                // drain this stream's link (discarding records) so it can.
                if (!st->stream_done) {
                    for (;;) {
                        auto block = st->ring.try_pop();
                        if (!block) {
                            std::this_thread::yield();
                            continue;
                        }
                        if (block->end) break;
                    }
                }
            }
            active.fetch_sub(1, std::memory_order_release);
        });
    }

    // --- Shared decode pool -----------------------------------------------
    // Per-(worker, stream) decoders, created lazily on the first frame a
    // worker sees from a stream. Decode is a pure function of the closed
    // frame for both backends, so worker routing cannot change a stream's
    // bits; only retry/cycle accounting is per-decoder (summed per stream
    // after the joins).
    struct WorkerDecoders {
        std::vector<std::unique_ptr<CpuBackend>> cpu;
        std::vector<std::unique_ptr<FpgaPipeline>> fpga;
    };
    std::vector<WorkerDecoders> decoders(workers_n);
    for (auto& d : decoders) {
        d.cpu.resize(n);
        d.fpga.resize(n);
    }

    const auto recycle = [&states](DispatchJob job) {
        StreamState& st = *states[job.stream];
        if (st.spec.config.backend != BackendKind::kFpga) job.frame.fill(0.0);
        st.free_pool.push_free(std::move(job));
    };

    std::vector<std::thread> workers;
    workers.reserve(workers_n);
    for (std::size_t w = 0; w < workers_n; ++w) {
        workers.emplace_back([&, w] {
            WorkerDecoders& local = decoders[w];
            try {
                for (;;) {
                    auto job = queue.try_pop();
                    if (!job) {
                        if (active.load(std::memory_order_acquire) == 0) {
                            // Every consumer has finished; one more pop
                            // cannot miss a job (see the `active` comment).
                            job = queue.try_pop();
                            if (!job) break;
                        } else {
                            std::this_thread::yield();
                            continue;
                        }
                    }
                    StreamState& st = *states[job->stream];
                    const auto& cfg = st.spec.config;
                    if (decode_down.load(std::memory_order_relaxed)) {
                        recycle(std::move(*job));
                        continue;
                    }
                    Frame decoded;
                    const FpgaCycleReport* fpga_report = nullptr;
                    if (cfg.backend == BackendKind::kFpga) {
                        auto& dec = local.fpga[job->stream];
                        if (!dec)
                            dec = std::make_unique<FpgaPipeline>(
                                st.spec.sequence, st.spec.layout, cfg.fpga);
                        decoded = dec->finalize_frame(job->capture);
                        fpga_report = &dec->report();
                    } else {
                        auto& dec = local.cpu[job->stream];
                        if (!dec) {
                            dec = std::make_unique<CpuBackend>(
                                st.spec.sequence, st.spec.layout, 1);
                            if (cfg.faults != nullptr)
                                dec->set_faults(cfg.faults, cfg.cpu_max_retries,
                                                cfg.cpu_retry_backoff_s);
                        }
                        decoded = dec->deconvolve(job->frame);
                    }
                    if (st.turnstile.wait_turn(job->index)) {
                        if (fpga_report != nullptr) st.fpga = *fpga_report;
                        if (cfg.frame_sink)
                            cfg.frame_sink(job->index, decoded);
                        if (cfg.analysis)
                            cfg.analysis->analyze(job->stream, job->index,
                                                  decoded);
                        st.last_frame = std::move(decoded);
                        const std::uint64_t now = telemetry::now_ns();
                        const std::uint64_t lat = now - job->dispatch_ns;
                        st.shard.latency.observe(lat);
                        agg_latency.observe(lat);
                        st.shard.frames_emitted.fetch_add(
                            1, std::memory_order_relaxed);
                        st.last_emit_ns = now;
                        st.turnstile.advance();
                    }
                    recycle(std::move(*job));
                }
            } catch (...) {
                {
                    std::lock_guard lock(failure_mutex);
                    if (!pool_failure) pool_failure = std::current_exception();
                }
                decode_down.store(true, std::memory_order_relaxed);
                // Release every stream: waiters get a false turn, consumers
                // blocked on pop_free wake with nullopt and stop
                // dispatching. Then keep recycling so in-flight buffers
                // return and the queue drains.
                for (auto& s : states) {
                    s->turnstile.abort();
                    s->free_pool.abort();
                }
                for (;;) {
                    if (auto job = queue.try_pop()) {
                        recycle(std::move(*job));
                        continue;
                    }
                    if (active.load(std::memory_order_acquire) == 0) {
                        if (auto job = queue.try_pop()) {
                            recycle(std::move(*job));
                            continue;
                        }
                        break;
                    }
                    std::this_thread::yield();
                }
            }
        });
    }

    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();
    for (auto& t : workers) t.join();

    // Fleet-level (decode pool) failures take precedence: they explain any
    // per-stream fallout. Otherwise the first failing stream's error.
    if (pool_failure) std::rethrow_exception(pool_failure);
    for (const auto& st : states)
        if (st->failure) std::rethrow_exception(st->failure);

    // --- Report -----------------------------------------------------------
    FleetReport out;
    out.wall_seconds = wall.seconds();
    out.frame_latency = agg_latency.summarize();
    out.streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        StreamState& st = *states[i];
        const auto& cfg = st.spec.config;
        // Lossless-handoff postconditions per stream, degraded-mode aware
        // (mirrors the solo orchestrator's).
        HTIMS_CHECK(st.ring.empty(), "fleet stream fully drained at end of run");
        HTIMS_CHECK(st.totals.frames_closed == cfg.frames,
                    "every configured frame of every stream was closed");
        HTIMS_CHECK(st.shard.frames_emitted.load(std::memory_order_relaxed) ==
                        cfg.frames,
                    "every closed frame was decoded and emitted exactly once");

        FleetStreamReport sr;
        HybridReport& r = sr.report;
        r.frames = st.totals.frames_closed;
        r.samples = st.link.records_total * st.link.record_len;
        r.records_dropped = st.totals.records_dropped;
        r.frames_degraded = st.totals.frames_degraded;
        r.producer_stall_seconds = st.producer_stall_s;
        r.consumer_idle_seconds = st.consumer_idle_s;
        r.decode_wait_seconds = st.decode_wait_s;
        r.last_frame = std::move(st.last_frame);
        r.fpga = st.fpga;
        // A stream's wall clock runs to its last ordered emission.
        r.wall_seconds = st.last_emit_ns > run_start_ns
                             ? static_cast<double>(st.last_emit_ns - run_start_ns) * 1e-9
                             : out.wall_seconds;
        r.sample_rate = r.wall_seconds > 0.0
                            ? static_cast<double>(r.samples) / r.wall_seconds
                            : 0.0;
        for (const auto& d : decoders)
            if (d.cpu[i]) r.cpu_task_retries += d.cpu[i]->task_retries();
        if (cfg.faults != nullptr) r.faults = cfg.faults->counts();
        sr.frame_latency = st.shard.latency.summarize();

        out.frames += r.frames;
        out.samples += r.samples;
        out.records_dropped += r.records_dropped;
        out.frames_degraded += r.frames_degraded;
        out.streams.push_back(std::move(sr));
    }
    out.sample_rate = out.wall_seconds > 0.0
                          ? static_cast<double>(out.samples) / out.wall_seconds
                          : 0.0;
    return out;
}

}  // namespace htims::pipeline
