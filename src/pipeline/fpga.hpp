// fpga.hpp — software model of the FPGA data-capture + deconvolution stage.
//
// The paper implements data capture, spectrum accumulation and the enhanced
// Hadamard deconvolution on the Cray XD1's Xilinx FPGA. This model answers
// the same engineering questions in software, with explicit hardware
// semantics:
//
//  * capture/accumulation: one ADC word per cycle streams into
//    BRAM-modelled accumulation bins with *saturating* integer adds of a
//    configurable word width (overflow pressure is reported, not hidden);
//  * deconvolution: the simplex inverse runs entirely in integer/fixed
//    point. Because N + 1 is a power of two, the 2/(N+1) normalization is
//    an exact shift — the FWHT butterflies are adds/subtracts only, so the
//    whole decoder maps to adder fabric with no multipliers. Results are
//    quantized into a configurable Q-format at the output boundary;
//  * cycle accounting: every stage charges cycles under a configurable
//    clock and number of parallel butterfly units / deconvolution engines,
//    yielding the sustained-throughput numbers experiment E3 compares with
//    the instrument's raw data rate;
//  * BRAM budget: the accumulation store and transform scratch must fit the
//    configured on-chip memory; the report says whether they do.
//
// Numerical fidelity of this model against the double-precision software
// decoder is the subject of experiment E8.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.hpp"
#include "pipeline/frame.hpp"
#include "prs/oversampled.hpp"
#include "transform/deconvolver.hpp"

namespace htims::fault {
class FaultInjector;
}

namespace htims::pipeline {

/// Hardware-model parameters.
struct FpgaConfig {
    double clock_hz = 100e6;        ///< fabric clock
    int accumulator_bits = 32;      ///< BRAM accumulation word width
    QFormat output_format{24, 6};   ///< fixed-point output quantization
    std::size_t bram_bytes = 4 * 1024 * 1024;  ///< on-chip memory budget
    int samples_per_cycle = 1;      ///< capture ingest rate
    int butterflies_per_cycle = 2;  ///< parallel FWHT butterfly units
    int deconv_engines = 4;         ///< parallel per-channel decode engines
};

/// Cycle/resource accounting for one processed frame.
struct FpgaCycleReport {
    std::uint64_t capture_cycles = 0;
    std::uint64_t deconv_cycles = 0;
    std::uint64_t cycle_budget = 0;  ///< cycles the frame's real-time window
                                     ///< affords at the configured clock
    std::uint64_t accumulator_saturations = 0;
    std::size_t bram_bytes_used = 0;
    bool fits_bram = true;
    bool budget_overrun = false;       ///< cycle budget ran out mid-decode
    std::size_t channels_decoded = 0;  ///< m/z channels actually decoded;
                                       ///< < mz_bins only on budget_overrun

    std::uint64_t total_cycles() const { return capture_cycles + deconv_cycles; }
    double seconds(double clock_hz) const {
        return clock_hz > 0.0 ? static_cast<double>(total_cycles()) / clock_hz : 0.0;
    }
    /// Budget / spent; > 1 means the frame fits its real-time window.
    double headroom() const {
        return total_cycles() > 0
                   ? static_cast<double>(cycle_budget) /
                         static_cast<double>(total_cycles())
                   : 0.0;
    }
};

/// Accumulation state of one captured frame, detached from the pipeline so
/// a decode worker can finalize it while the next frame streams in.
/// Produced by FpgaPipeline::capture_frame(), consumed by finalize_frame();
/// a spent capture can be passed back to capture_frame() to recycle its bin
/// storage.
struct FpgaCapture {
    std::vector<SaturatingAccumulator> bins;
    std::uint64_t capture_cycles = 0;
    std::uint64_t frame_samples = 0;
    /// Decode-window fault, drawn at capture time so the injector's event
    /// order is always frame order even when several workers finalize
    /// captures concurrently. When set, finalize decodes only the first
    /// `channel_limit` m/z channels (a partial frame).
    bool budget_overrun = false;
    std::size_t channel_limit = 0;
};

/// The FPGA pipeline model: stream in ADC words, get a deconvolved frame.
class FpgaPipeline {
public:
    FpgaPipeline(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                 const FpgaConfig& config);

    const FpgaConfig& config() const { return config_; }
    const FrameLayout& layout() const { return layout_; }

    /// Reset accumulators and cycle counters for a new frame. report() is
    /// untouched: it keeps the last finalized frame's accounting.
    void begin_frame();

    /// Stream a block of digitized samples in frame order (drift-major:
    /// sample index = drift * mz_bins + mz, wrapping across periods so the
    /// same cell accumulates over repeated periods).
    void push_samples(std::span<const std::uint32_t> samples);

    /// Finish the frame: run the fixed-point enhanced deconvolution over
    /// every m/z channel and return the result (converted to doubles in
    /// detector-count units). Equivalent to finalize_frame(capture_frame()).
    Frame end_frame();

    /// Detach the accumulated frame so capture of the next one can start
    /// immediately (no begin_frame() needed): returns the bins and cycle
    /// counters streamed so far and resets the capture state. `reuse`
    /// donates the bin storage of a finalized capture, avoiding a
    /// reallocation per frame.
    FpgaCapture capture_frame(FpgaCapture reuse = {});

    /// Decode a detached capture. Touches only decode scratch and report(),
    /// never the capture state: safe to run on a different thread than
    /// push_samples()/capture_frame(), one finalize at a time.
    Frame finalize_frame(const FpgaCapture& capture);

    /// Accounting for the last finalized frame.
    const FpgaCycleReport& report() const { return report_; }

    /// Attach a fault injector. A fired fault::Site::kFpgaOverrun models a
    /// cycle-budget overrun: the decode stops at a plan-determined channel,
    /// leaving the remaining channels zero (a *partial* frame, flagged in
    /// the report and counted as fpga.budget_overruns). The decision is
    /// drawn in capture_frame() — once per frame, in frame order — and
    /// carried in the FpgaCapture to finalize. Pass nullptr to detach.
    void set_faults(fault::FaultInjector* faults) { faults_ = faults; }

    /// Samples/second the model sustains at the configured clock, for
    /// frames of this layout processed `averages` periods per frame.
    /// Averages the deconvolution cost over every frame finalized so far
    /// (frames can differ — a budget overrun decodes fewer channels); with
    /// no finalized frame yet it falls back to a nominal one-frame estimate.
    double sustained_sample_rate(std::size_t averages) const;

private:
    void decode_channel_pulsed(const std::vector<SaturatingAccumulator>& bins,
                               std::size_t mz, Frame& out);
    void decode_channel_stretched(const std::vector<SaturatingAccumulator>& bins,
                                  std::size_t mz, Frame& out);

    /// One integer simplex decode: input in acc units, output scaled by
    /// 2^(order-1) (i.e. w = -(N+1)/2 * x, exact in int64).
    void integer_decode(const std::vector<std::int64_t>& y, std::vector<std::int64_t>& w_out);

    prs::OversampledPrs sequence_;
    transform::Deconvolver base_;
    FrameLayout layout_;
    FpgaConfig config_;
    int order_;

    fault::FaultInjector* faults_ = nullptr;
    std::vector<SaturatingAccumulator> bins_;
    std::size_t stream_pos_ = 0;
    std::uint64_t frame_samples_ = 0;   ///< samples streamed into this frame
    std::uint64_t capture_cycles_ = 0;  ///< ingest cycles charged this frame
    std::size_t bram_bytes_used_ = 0;   ///< fixed at construction
    bool fits_bram_ = true;             ///< fixed at construction
    FpgaCycleReport report_;
    std::uint64_t total_deconv_cycles_ = 0;  ///< across all finalized frames
    std::uint64_t frames_finalized_ = 0;     ///< frames finalize_frame() ran

    // Integer scratch.
    std::vector<std::int64_t> chan_;       // one phase, length N
    std::vector<long long> pad_;           // FWHT buffer, length N + 1
    std::vector<std::int64_t> w_;          // decode output, length N
    std::vector<std::int64_t> zstack_;     // stretched mode Z_r stack, F * N
};

}  // namespace htims::pipeline
