// turnstile.hpp — sequence-ordered emission turnstile for multi-worker
// decode.
//
// Workers decode frames concurrently, then emit (report fields, frame_sink,
// the frame marker) one at a time in frame order: wait_turn(i) blocks until
// every emission before frame i has advanced the turnstile. The protocol is
// a single monotonic atomic turn counter:
//
//   * advance() publishes with a release fetch_add, so the *next* emitter's
//     acquire observation of the new turn value synchronizes-with it — every
//     write the previous emission made to shared report state is visible to
//     the next emitter without further locking (the happens-before edge the
//     old mutex hand-off provided, now carried by the counter itself);
//   * waiting uses C++20 atomic wait/notify, so a worker whose turn is far
//     off sleeps in the kernel instead of burning a core while earlier
//     frames are still decoding;
//   * abort() jumps the counter into a terminal "aborted" band (>= half the
//     index space, unreachable by real frame indices), which both wakes
//     every waiter through the same futex and keeps a racing advance()
//     harmless — an increment of an aborted counter stays in the band.
//
// Templatized over the atomics policy (common/atomics_policy.hpp) so the
// model checker instantiates this exact protocol; litmus units
// `turnstile_*` in src/check/litmus.hpp exhaustively verify the ordered-
// emission and abort paths, and the seeded mutants demote the two named
// orders below. Note one model limitation documented in DESIGN.md: the
// checker treats wait() as value-watching, so a *missing* notify (a lost-
// wakeup bug) is outside its scope — the TSan stress suite covers that
// path with real futexes.
#pragma once

#include <cstddef>
#include <limits>

#include "common/atomics_policy.hpp"
#include "common/contracts.hpp"

namespace htims::pipeline {

/// Sequence-ordered reassembly turnstile. Turn indices are dense from 0;
/// any number of threads may wait, one waiter per index, and each index is
/// advanced exactly once (by the thread that emitted it). abort() may be
/// called by any thread, more than once.
///
/// One turnstile serves ONE stream: the dense-from-0 contract means frame
/// indices of different streams must never share an instance (stream B's
/// frame 0 would wait forever behind stream A's). The fleet layer
/// (pipeline/fleet.cpp) therefore keeps one turnstile per stream, and
/// workers from the shared decode pool route each job to its stream's
/// instance; wait_turn detects the misrouting signature (a turn that has
/// already passed, which would otherwise dead-block the waiter) with a
/// debug check. The litmus unit `turnstile_per_stream_independence` pins
/// that two instances on a shared pool never cross-release.
template <typename Atomics = common::StdAtomics>
class OrderTurnstile {
public:
    /// Turn values at or past this floor mean "aborted"; real frame indices
    /// can never reach it (it would take half the index space of frames).
    static constexpr std::size_t kAbortFloor =
        (std::numeric_limits<std::size_t>::max() >> 1) + 1;

    /// Returns true when it is index's turn to emit; false after abort()
    /// (skip emission, still recycle the buffer).
    bool wait_turn(std::size_t index) {
        std::size_t cur = next_.load(Atomics::turnstile_observe);
        while (cur != index) {
            if (cur >= kAbortFloor) return false;
            // A turn that already passed can never come again: either two
            // waiters claimed the same index, or a job from another stream
            // was routed to this turnstile (each stream must own its own
            // instance — see the class comment).
            HTIMS_DCHECK(cur < index,
                         "turn already passed: duplicate index or a job "
                         "misrouted across streams");
            next_.wait(cur, Atomics::turnstile_observe);
            cur = next_.load(Atomics::turnstile_observe);
        }
        return true;
    }

    /// Hand the turn to the next index. Only the thread whose wait_turn just
    /// returned true may call this (once).
    void advance() {
        next_.fetch_add(1, Atomics::turnstile_advance);
        next_.notify_all();
    }

    /// Release every waiter (present and future) with a false return.
    void abort() {
        std::size_t cur = next_.load(std::memory_order_relaxed);
        while (cur < kAbortFloor &&
               !next_.compare_exchange_weak(cur, kAbortFloor,
                                            std::memory_order_acq_rel)) {
        }
        next_.notify_all();
    }

private:
    typename Atomics::template atomic<std::size_t> next_{0};
};

}  // namespace htims::pipeline
