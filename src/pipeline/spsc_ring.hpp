// spsc_ring.hpp — bounded lock-free single-producer/single-consumer queue.
//
// Models the CPU→FPGA streaming link of the hybrid node (the Cray XD1's
// RapidArray path): the software component pushes blocks of raw detector
// samples, the processing component pops them; a full ring exerts
// backpressure on the producer, which the hybrid orchestrator counts as
// stall time. Classic Lamport ring with C++11 acquire/release ordering and
// cache-line-separated indices, extended two ways for the hot path:
//
//  * batch transfer — push_batch/pop_batch move a contiguous span of
//    elements (split across at most two segments at the wrap point) and
//    publish with a single release-store, so the protocol cost is paid
//    once per batch instead of once per ~32-byte record;
//  * cached peer indices — each side keeps a local copy of the other
//    side's index and only re-reads the shared atomic when the cached
//    distance can no longer prove space (producer) or data (consumer).
//    A push/pop that the cache can prove does zero atomic loads.
//
// The ring is templatized over an atomics policy (common/atomics_policy.hpp)
// so the exhaustive model checker in src/check/ can instantiate the *same*
// protocol logic with shadow atomics and verify every interleaving under the
// simulated C++11 memory model; the default policy is std::atomic with the
// canonical orders and compiles to the untemplatized code exactly. The
// happens-before argument lives in DESIGN.md ("Memory model"); the litmus
// units live in src/check/litmus.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/atomics_policy.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::pipeline {

/// Bounded SPSC queue of movable elements. Exactly one producer thread may
/// call try_push/push_batch and exactly one consumer thread may call
/// try_pop/pop_batch.
///
/// Ownership and shutdown rule: the ring does not own either thread. The
/// scope that created producer and consumer must join *both* before the ring
/// is destroyed — destruction is not synchronized and a late try_push/try_pop
/// is a use-after-free. (HybridPipeline::run() satisfies this by joining its
/// producer before the ring leaves scope; the consumer is run()'s own
/// thread.) The TSan gate's shutdown stress test pins this ordering down.
template <typename T, typename Atomics = common::StdAtomics>
class SpscRing {
public:
    /// Largest accepted capacity: one more doubling would wrap size_t.
    static constexpr std::size_t kMaxCapacity =
        (std::numeric_limits<std::size_t>::max() >> 1) + 1;

    /// `capacity` is rounded up to a power of two (minimum 2). Capacities
    /// past kMaxCapacity are rejected up front — the round-up loop would
    /// otherwise wrap to zero before any allocation failed.
    explicit SpscRing(std::size_t capacity) {
        if (capacity > kMaxCapacity)
            throw ConfigError("ring capacity " + std::to_string(capacity) +
                              " exceeds the addressable maximum");
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        HTIMS_CHECK(cap >= capacity && cap >= 2, "ring capacity overflowed size_t");
        mask_ = cap - 1;
        slots_.resize(cap);
    }

    std::size_t capacity() const { return mask_ + 1; }

    /// Producer side: returns false when the ring is full.
    bool try_push(T&& value) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head - tail_cache_ > mask_) {
            tail_cache_ = tail_.load(Atomics::ring_peer_acquire);
            // tail can only trail head from the producer's view; a fill level
            // past capacity means a second producer (or a torn shutdown).
            HTIMS_DCHECK(head - tail_cache_ <= mask_ + 1,
                         "SPSC fill level exceeds capacity");
            if (head - tail_cache_ > mask_) return false;
        }
        slots_[head & mask_].store_plain(std::move(value));
        head_.store(head + 1, Atomics::ring_publish);
        return true;
    }

    /// Producer side: move as many leading elements of `items` into the ring
    /// as fit, as one publication (a single release-store however many
    /// elements transfer). Returns the number moved; elements beyond it are
    /// untouched. The copy spans at most two segments around the wrap point.
    std::size_t push_batch(std::span<T> items) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t free_slots = mask_ + 1 - (head - tail_cache_);
        if (free_slots < items.size()) {
            tail_cache_ = tail_.load(Atomics::ring_peer_acquire);
            HTIMS_DCHECK(head - tail_cache_ <= mask_ + 1,
                         "SPSC fill level exceeds capacity");
            free_slots = mask_ + 1 - (head - tail_cache_);
        }
        const std::size_t n = std::min(items.size(), free_slots);
        if (n == 0) return 0;
        const std::size_t start = head & mask_;
        const std::size_t first = std::min(n, mask_ + 1 - start);
        for (std::size_t i = 0; i < first; ++i)
            slots_[start + i].store_plain(std::move(items[i]));
        for (std::size_t i = first; i < n; ++i)
            slots_[i - first].store_plain(std::move(items[i]));
        head_.store(head + n, Atomics::ring_publish);
        return n;
    }

    /// Consumer side: returns nullopt when the ring is empty.
    std::optional<T> try_pop() {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_cache_) {
            head_cache_ = head_.load(Atomics::ring_peer_acquire);
            HTIMS_DCHECK(head_cache_ - tail <= mask_ + 1,
                         "SPSC fill level exceeds capacity");
            if (tail == head_cache_) return std::nullopt;
        }
        T value = slots_[tail & mask_].take_plain();
        tail_.store(tail + 1, Atomics::ring_publish);
        return value;
    }

    /// Consumer side: move up to `out.size()` queued elements into `out`
    /// (front-first), releasing their slots with a single store. Returns the
    /// number moved — 0 when the ring is empty, less than out.size() when it
    /// drained first.
    std::size_t pop_batch(std::span<T> out) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t available = head_cache_ - tail;
        if (available < out.size()) {
            head_cache_ = head_.load(Atomics::ring_peer_acquire);
            HTIMS_DCHECK(head_cache_ - tail <= mask_ + 1,
                         "SPSC fill level exceeds capacity");
            available = head_cache_ - tail;
        }
        const std::size_t n = std::min(out.size(), available);
        if (n == 0) return 0;
        const std::size_t start = tail & mask_;
        const std::size_t first = std::min(n, mask_ + 1 - start);
        for (std::size_t i = 0; i < first; ++i)
            out[i] = slots_[start + i].take_plain();
        for (std::size_t i = first; i < n; ++i)
            out[i] = slots_[i - first].take_plain();
        tail_.store(tail + n, Atomics::ring_publish);
        return n;
    }

    /// Snapshot of the current fill level (approximate under concurrency).
    std::size_t size() const {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

private:
    using AtomicIndex = typename Atomics::template atomic<std::size_t>;

    std::vector<typename Atomics::template var<T>> slots_;
    std::size_t mask_ = 0;
    // Producer-owned line: the published head plus the producer's private
    // view of the consumer's tail. Consumer-owned line symmetric.
    alignas(kCacheLine) AtomicIndex head_{0};
    std::size_t tail_cache_ = 0;
    alignas(kCacheLine) AtomicIndex tail_{0};
    std::size_t head_cache_ = 0;
};

}  // namespace htims::pipeline
