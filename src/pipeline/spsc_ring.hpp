// spsc_ring.hpp — bounded lock-free single-producer/single-consumer queue.
//
// Models the CPU→FPGA streaming link of the hybrid node (the Cray XD1's
// RapidArray path): the software component pushes blocks of raw detector
// samples, the processing component pops them; a full ring exerts
// backpressure on the producer, which the hybrid orchestrator counts as
// stall time. Classic Lamport ring with C++11 acquire/release ordering and
// cache-line-separated indices.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::pipeline {

/// Bounded SPSC queue of movable elements. Exactly one producer thread may
/// call try_push and exactly one consumer thread may call try_pop.
///
/// Ownership and shutdown rule: the ring does not own either thread. The
/// scope that created producer and consumer must join *both* before the ring
/// is destroyed — destruction is not synchronized and a late try_push/try_pop
/// is a use-after-free. (HybridPipeline::run() satisfies this by joining its
/// producer before the ring leaves scope; the consumer is run()'s own
/// thread.) The TSan gate's shutdown stress test pins this ordering down.
template <typename T>
class SpscRing {
public:
    /// `capacity` is rounded up to a power of two (minimum 2).
    explicit SpscRing(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        HTIMS_CHECK(cap >= capacity && cap >= 2, "ring capacity overflowed size_t");
        mask_ = cap - 1;
        slots_.resize(cap);
    }

    std::size_t capacity() const { return mask_ + 1; }

    /// Producer side: returns false when the ring is full.
    bool try_push(T&& value) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        // tail can only trail head from the producer's view; a fill level
        // past capacity means a second producer (or a torn shutdown).
        HTIMS_DCHECK(head - tail <= mask_ + 1, "SPSC fill level exceeds capacity");
        if (head - tail > mask_) return false;
        slots_[head & mask_] = std::move(value);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: returns nullopt when the ring is empty.
    std::optional<T> try_pop() {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        HTIMS_DCHECK(head - tail <= mask_ + 1, "SPSC fill level exceeds capacity");
        if (tail == head) return std::nullopt;
        T value = std::move(slots_[tail & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return value;
    }

    /// Snapshot of the current fill level (approximate under concurrency).
    std::size_t size() const {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(kCacheLine) std::atomic<std::size_t> head_{0};
    alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace htims::pipeline
