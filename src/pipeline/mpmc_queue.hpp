// mpmc_queue.hpp — bounded lock-free multi-producer/multi-consumer queue.
//
// The fleet dispatch layer: N stream consumers enqueue closed frames, M
// shared decode workers dequeue them. This is the bounded-array variant of
// the Michael–Scott two-ended queue idiom — instead of linked nodes with
// hazard-pointer reclamation, each slot carries a monotonically advancing
// *ticket* that encodes whose turn the slot is (Vyukov's bounded MPMC):
//
//   * a slot whose ticket equals the head position is free for the producer
//     that wins the head CAS; after writing the payload it publishes by
//     storing ticket = position + 1;
//   * a slot whose ticket equals position + 1 is full for the consumer that
//     wins the tail CAS; after moving the payload out it recycles the slot
//     by storing ticket = position + capacity (its next producer turn).
//
// The head/tail counters only arbitrate *which* thread owns a slot (their
// CAS is relaxed); the per-slot ticket carries the happens-before edge for
// the payload in both directions — producer→consumer (the payload write
// precedes the release publish, the consumer's acquire ticket load precedes
// the payload move-out) and consumer→producer (the move-out precedes the
// release recycle, the producer's acquire load precedes the slot reuse).
// The two named orders (`mpmc_slot_publish`/`mpmc_slot_acquire` on the
// atomics policy) are that edge; demoting either is a data race on the
// payload slot, which is exactly how the seeded mutants in
// src/check/mutants.hpp are caught. Litmus units `mpmc_*` in
// src/check/litmus.hpp verify the protocol exhaustively; the happens-before
// argument lives in DESIGN.md ("Memory model").
//
// The queue never blocks: try_push fails on full, try_pop on empty; the
// fleet layer turns "full" into consumer-side backpressure (which in turn
// fills that stream's SPSC ring and stalls its producer) and "empty" into a
// worker yield loop. Destruction is not synchronized — join every producer
// and consumer first (undrained payloads are destroyed with the slots).
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/atomics_policy.hpp"
#include "common/error.hpp"

namespace htims::pipeline {

/// Bounded MPMC queue of movable elements. Any number of threads may call
/// try_push and any number may call try_pop, concurrently.
template <typename T, typename Atomics = common::StdAtomics>
class MpmcQueue {
public:
    /// Largest accepted capacity: tickets must stay a small signed distance
    /// from positions, so keep the capacity far away from the wrap point.
    static constexpr std::size_t kMaxCapacity =
        (std::numeric_limits<std::size_t>::max() >> 2) + 1;

    /// `capacity` is rounded up to a power of two (minimum 2).
    explicit MpmcQueue(std::size_t capacity) {
        if (capacity > kMaxCapacity)
            throw ConfigError("mpmc capacity " + std::to_string(capacity) +
                              " exceeds the addressable maximum");
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        mask_ = cap - 1;
        slots_ = std::make_unique<Slot[]>(cap);
        // Single-threaded setup: slot i's first producer turn is position i.
        for (std::size_t i = 0; i < cap; ++i)
            slots_[i].ticket.store(i, std::memory_order_relaxed);
    }

    std::size_t capacity() const { return mask_ + 1; }

    /// Returns false when the queue is full. On false, `value` is untouched.
    bool try_push(T&& value) {
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot& slot = slots_[pos & mask_];
            const std::size_t ticket = slot.ticket.load(Atomics::mpmc_slot_acquire);
            const auto turn = static_cast<std::ptrdiff_t>(ticket - pos);
            if (turn == 0) {
                // The slot is free at this position; claim it. The CAS is
                // relaxed — it only arbitrates ownership, the ticket stores
                // carry the payload ordering.
                if (head_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
                    slot.value.store_plain(std::move(value));
                    slot.ticket.store(pos + 1, Atomics::mpmc_slot_publish);
                    return true;
                }
            } else if (turn < 0) {
                // Ticket behind the position: the slot still holds an
                // unconsumed payload a full lap back — the queue is full.
                return false;
            } else {
                // Another producer claimed this position; catch up.
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /// Returns nullopt when the queue is empty.
    std::optional<T> try_pop() {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Slot& slot = slots_[pos & mask_];
            const std::size_t ticket = slot.ticket.load(Atomics::mpmc_slot_acquire);
            const auto turn = static_cast<std::ptrdiff_t>(ticket - (pos + 1));
            if (turn == 0) {
                if (tail_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
                    T value = slot.value.take_plain();
                    // Recycle: the slot's next producer turn is one lap on.
                    slot.ticket.store(pos + mask_ + 1, Atomics::mpmc_slot_publish);
                    return value;
                }
            } else if (turn < 0) {
                // No payload published at this position yet — empty.
                return std::nullopt;
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /// Approximate fill level (racy snapshot, monitoring only). Reading
    /// tail first keeps the difference non-negative under concurrency.
    std::size_t size() const {
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        const std::size_t head = head_.load(std::memory_order_acquire);
        return head - tail;
    }

    bool empty() const { return size() == 0; }

private:
    struct Slot {
        typename Atomics::template atomic<std::size_t> ticket{0};
        typename Atomics::template var<T> value;
    };

    std::unique_ptr<Slot[]> slots_;
    std::size_t mask_ = 0;
    // Producers and consumers each contend on their own counter line.
    alignas(kCacheLine) typename Atomics::template atomic<std::size_t> head_{0};
    alignas(kCacheLine) typename Atomics::template atomic<std::size_t> tail_{0};
};

}  // namespace htims::pipeline
