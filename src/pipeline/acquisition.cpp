#include "pipeline/acquisition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "telemetry/telemetry.hpp"
#include "transform/enhanced.hpp"

namespace htims::pipeline {

namespace {

/// Slowest (lowest-K0) species determines the drift period.
double min_reduced_mobility(const instrument::EsiSource& source) {
    double k0 = std::numeric_limits<double>::max();
    for (const auto& sp : source.mixture().species)
        k0 = std::min(k0, sp.reduced_mobility);
    if (k0 == std::numeric_limits<double>::max())
        throw ConfigError("acquisition requires at least one species");
    return k0;
}

}  // namespace

AcquisitionEngine::AcquisitionEngine(const instrument::DriftCellConfig& cell,
                                     const instrument::TofConfig& tof,
                                     const instrument::DetectorConfig& detector,
                                     const instrument::IonTrapConfig& trap,
                                     instrument::EsiSource source,
                                     const AcquisitionConfig& config)
    : cell_(cell),
      tof_(tof),
      detector_(detector),
      trap_(trap),
      source_(std::move(source)),
      config_(config),
      sequence_(config.sequence_order, config.oversampling, config.gate_mode),
      rng_(config.seed) {
    if (config.averages == 0) throw ConfigError("averages must be >= 1");
    if (config.period_margin < 1.0) throw ConfigError("period margin must be >= 1");
    if (config.gate_amplitude_jitter < 0.0)
        throw ConfigError("gate amplitude jitter must be non-negative");

    layout_.drift_bins = sequence_.length();
    layout_.mz_bins = tof_.bins();
    const double slowest = cell_.drift_time(min_reduced_mobility(source_));
    layout_.drift_bin_width_s =
        config.period_margin * slowest / static_cast<double>(layout_.drift_bins);

    // Gate events: rising edges of the fine-grid gate waveform (multiplexed)
    // or the single injection at bin 0 (signal averaging).
    if (config_.mode == AcquisitionMode::kMultiplexed) {
        const auto gate = sequence_.gate();
        const std::size_t t = gate.size();
        for (std::size_t i = 0; i < t; ++i)
            if (gate[i] && !gate[(i + t - 1) % t]) pulse_bins_.push_back(i);
    } else {
        pulse_bins_.push_back(0);
    }
    // Internal invariant, not caller error: an m-sequence always has a
    // rising edge, so an empty gate program means the PRS machinery broke.
    HTIMS_CHECK(!pulse_bins_.empty(), "gate program has at least one pulse");
    HTIMS_CHECK(layout_.drift_bin_width_s > 0.0, "drift bin width is positive");
}

void AcquisitionEngine::deposit_species(const instrument::IonSpecies& ion,
                                        double ions_per_release, double packet_charges,
                                        Frame& truth,
                                        std::vector<SpeciesTrace>& traces) const {
    if (ions_per_release <= 0.0) return;
    const auto drift = cell_.transit(ion, packet_charges);
    const std::size_t t = layout_.drift_bins;
    const double bin_w = layout_.drift_bin_width_s;
    const double center_bin = drift.drift_time_s / bin_w;
    const double sigma_bins = std::max(drift.sigma_s / bin_w, 1e-6);

    // Render the m/z record of one released packet once. The analyzer's
    // configured systematic calibration error is applied here; the mass
    // calibration module (core/mass_calibration.hpp) removes it downstream.
    AlignedVector<double> record(layout_.mz_bins, 0.0);
    tof_.deposit(ion, ions_per_release, tof_.config().mass_error_ppm, record);

    // Gaussian arrival-time distribution across +-4 sigma of drift bins,
    // wrapped circularly (the multiplexed record is periodic by design).
    const auto lo = static_cast<long long>(std::floor(center_bin - 4.0 * sigma_bins));
    const auto hi = static_cast<long long>(std::ceil(center_bin + 4.0 * sigma_bins));
    double weight_sum = 0.0;
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(hi - lo + 1));
    for (long long b = lo; b <= hi; ++b) {
        const double d = (static_cast<double>(b) - center_bin) / sigma_bins;
        const double w = std::exp(-0.5 * d * d);
        weights.push_back(w);
        weight_sum += w;
    }
    HTIMS_DCHECK(weights.size() == static_cast<std::size_t>(hi - lo + 1),
                 "one weight per rendered drift bin");
    if (weight_sum <= 0.0) return;
    for (long long b = lo; b <= hi; ++b) {
        const double w = weights[static_cast<std::size_t>(b - lo)] / weight_sum;
        const std::size_t bin = static_cast<std::size_t>(((b % static_cast<long long>(t)) +
                                                          static_cast<long long>(t)) %
                                                         static_cast<long long>(t));
        auto row = truth.record(bin);
        for (std::size_t m = 0; m < record.size(); ++m)
            if (record[m] != 0.0) row[m] += w * record[m];
    }

    SpeciesTrace trace;
    trace.name = ion.name;
    trace.drift_bin = static_cast<std::size_t>(std::llround(center_bin)) % t;
    trace.drift_sigma_bins = sigma_bins;
    trace.mz_bin = tof_.bin_of(ion.mz);
    trace.expected_ions = ions_per_release;
    traces.push_back(trace);
}

AcquisitionResult AcquisitionEngine::acquire(double start_time_s) {
    auto& tel = telemetry::Registry::global();
    static const auto kStageAcquire = tel.intern("acquisition.acquire");
    auto tel_span = tel.span(kStageAcquire);

    const std::size_t t = layout_.drift_bins;
    const double bin_w = layout_.drift_bin_width_s;
    const double period = layout_.period_s();
    const auto& species = source_.mixture().species;

    AcquisitionResult result;
    result.raw = Frame(layout_);
    result.truth = Frame(layout_);
    result.gate_weights.assign(t, 0.0);
    result.duration_s = static_cast<double>(config_.averages) * period;

    // Instantaneous per-species currents (assumed constant over one frame;
    // LC peaks are much wider than a frame).
    AlignedVector<double> currents(species.size());
    source_.currents(start_time_s, currents);
    double total_current = 0.0;
    double total_charge_current = 0.0;
    for (std::size_t i = 0; i < species.size(); ++i) {
        total_current += currents[i];
        total_charge_current += currents[i] * static_cast<double>(species[i].charge);
    }
    result.ions_available = total_current * result.duration_s;

    // ---- Gate program: per-pulse accumulation times -----------------------
    const bool stretched_continuous =
        config_.mode == AcquisitionMode::kMultiplexed &&
        config_.gate_mode == prs::GateMode::kStretched;
    const bool trap_active = config_.use_trap && !stretched_continuous;

    // Gap (seconds) preceding each pulse, circular.
    std::vector<double> gaps(pulse_bins_.size());
    if (pulse_bins_.size() == 1) {
        gaps[0] = period;
    } else {
        for (std::size_t p = 0; p < pulse_bins_.size(); ++p) {
            const std::size_t prev = p == 0 ? pulse_bins_.size() - 1 : p - 1;
            const auto dbins = static_cast<double>(
                (pulse_bins_[p] + t - pulse_bins_[prev]) % t);
            gaps[p] = (dbins == 0.0 ? static_cast<double>(t) : dbins) * bin_w;
        }
    }
    const double min_gap = *std::min_element(gaps.begin(), gaps.end());

    std::vector<double> fill_times(pulse_bins_.size());
    if (!trap_active) {
        // Beam passes only while the gate is open: one fine bin per pulse
        // (pulsed/SA) or handled per open bin (stretched, below).
        std::fill(fill_times.begin(), fill_times.end(), bin_w);
    } else if (config_.release_mode == TrapReleaseMode::kVariableGap) {
        fill_times = gaps;
    } else {
        double fill = std::min(min_gap, trap_.config().max_fill_time_s);
        if (config_.agc)
            fill = std::min(fill, trap_.agc_fill_time(total_charge_current));
        std::fill(fill_times.begin(), fill_times.end(), fill);
    }

    // Nominal (mean) release: defines the ground-truth packet and the
    // per-pulse weights.
    HTIMS_DCHECK(fill_times.size() == pulse_bins_.size(), "one fill time per pulse");
    double mean_fill = 0.0;
    for (double f : fill_times) mean_fill += f;
    mean_fill /= static_cast<double>(fill_times.size());
    HTIMS_DCHECK(mean_fill >= 0.0, "mean fill time cannot be negative");

    instrument::TrapFill nominal;
    if (trap_active) {
        nominal = trap_.accumulate(currents, species, mean_fill);
        result.trap_saturated = nominal.saturated;
    } else {
        nominal.ions.resize(species.size());
        nominal.total_charges = 0.0;
        for (std::size_t i = 0; i < species.size(); ++i) {
            nominal.ions[i] = currents[i] * mean_fill;
            nominal.total_charges +=
                nominal.ions[i] * static_cast<double>(species[i].charge);
        }
        nominal.fill_time_s = mean_fill;
    }
    result.mean_packet_charges = nominal.total_charges;

    // ---- Ground truth: expected drift frame of one nominal release --------
    for (std::size_t i = 0; i < species.size(); ++i)
        deposit_species(species[i], nominal.ions[i], nominal.total_charges,
                        result.truth, result.traces);

    // ---- Per-pulse weights (trap dynamics + gate jitter) -------------------
    std::vector<double> pulse_weights(pulse_bins_.size(), 1.0);
    bool uniform = true;
    for (std::size_t p = 0; p < pulse_bins_.size(); ++p) {
        double w = mean_fill > 0.0 ? fill_times[p] / mean_fill : 1.0;
        if (trap_active && config_.release_mode == TrapReleaseMode::kVariableGap) {
            // Capacity saturation applies per release.
            const double incoming = total_charge_current * fill_times[p];
            if (incoming > trap_.config().capacity_charges) {
                w *= trap_.config().capacity_charges / incoming;
                result.trap_saturated = true;
            }
        }
        if (config_.gate_amplitude_jitter > 0.0)
            w *= std::max(0.0, 1.0 + config_.gate_amplitude_jitter * rng_.gaussian());
        pulse_weights[p] = w;
        if (std::abs(w - 1.0) > 1e-12) uniform = false;
    }

    if (stretched_continuous) {
        // Continuous gating: every open fine bin admits one bin-width of
        // beam; the nominal release was computed with mean_fill == bin_w.
        const auto gate = sequence_.gate();
        for (std::size_t o = 0; o < t; ++o)
            if (gate[o]) result.gate_weights[o] = 1.0;
    } else {
        for (std::size_t p = 0; p < pulse_bins_.size(); ++p)
            result.gate_weights[pulse_bins_[p]] = pulse_weights[p];
    }

    // ---- Expected multiplexed record (per active m/z channel) -------------
    Frame expected(layout_);
    std::vector<std::uint8_t> active(layout_.mz_bins, 0);
    {
        AlignedVector<double> profile(t);
        for (std::size_t m = 0; m < layout_.mz_bins; ++m) {
            bool any = false;
            for (std::size_t d = 0; d < t && !any; ++d)
                any = result.truth.at(d, m) != 0.0;
            active[m] = any ? 1 : 0;
        }
        if (config_.mode == AcquisitionMode::kSignalAveraging) {
            expected = result.truth;  // single injection at bin 0
        } else if (uniform && !stretched_continuous &&
                   config_.gate_mode == prs::GateMode::kPulsed) {
            // Fast path: binary pulsed gate -> Hadamard encode per channel.
            transform::EnhancedDeconvolver enc(sequence_);
            auto ws = enc.make_workspace();
            AlignedVector<double> encoded(t);
            for (std::size_t m = 0; m < layout_.mz_bins; ++m) {
                if (!active[m]) continue;
                result.truth.drift_profile(m, profile);
                enc.encode_fast(profile, encoded, ws);
                expected.set_drift_profile(m, encoded);
            }
        } else {
            // General path: weighted sparse kernel.
            AlignedVector<double> encoded(t);
            std::vector<std::pair<std::size_t, double>> taps;
            for (std::size_t o = 0; o < t; ++o)
                if (result.gate_weights[o] != 0.0) taps.emplace_back(o, result.gate_weights[o]);
            for (std::size_t m = 0; m < layout_.mz_bins; ++m) {
                if (!active[m]) continue;
                result.truth.drift_profile(m, profile);
                std::fill(encoded.begin(), encoded.end(), 0.0);
                for (const auto& [o, w] : taps) {
                    const std::size_t split = t - o;
                    for (std::size_t k = 0; k < split; ++k)
                        encoded[k + o] += w * profile[k];
                    for (std::size_t k = split; k < t; ++k)
                        encoded[k + o - t] += w * profile[k];
                }
                expected.set_drift_profile(m, encoded);
            }
        }
    }

    // ---- Bookkeeping -------------------------------------------------------
    double injected_per_period = 0.0;
    for (std::size_t p = 0; p < pulse_bins_.size(); ++p) {
        double packet = 0.0;
        for (double ions : nominal.ions) packet += ions;
        injected_per_period += packet * pulse_weights[p];
    }
    if (stretched_continuous) {
        double packet = 0.0;
        for (double ions : nominal.ions) packet += ions;
        injected_per_period = packet * static_cast<double>(sequence_.gate().size()) *
                              sequence_.open_fraction();
    }
    result.ions_sampled = injected_per_period * static_cast<double>(config_.averages);

    if (stretched_continuous) {
        result.duty_cycle = sequence_.open_fraction();
    } else if (trap_active) {
        double filled = 0.0;
        for (std::size_t p = 0; p < fill_times.size(); ++p)
            filled += std::min(fill_times[p], gaps[p]);
        result.duty_cycle = filled / period;
    } else {
        result.duty_cycle =
            static_cast<double>(pulse_bins_.size()) * bin_w / period;
    }

    // ---- Detection: Poisson + multiplier + noise + ADC over `averages` ----
    detector_.acquire_accumulated(expected.data(), config_.averages,
                                  result.raw.data(), rng_);

    static auto& c_frames = tel.counter("acquisition.frames");
    static auto& c_pulses = tel.counter("acquisition.gate_pulses");
    static auto& c_sat = tel.counter("acquisition.trap_saturations");
    static auto& h_packet = tel.histogram("acquisition.packet_charges");
    c_frames.increment();
    c_pulses.add(static_cast<std::int64_t>(pulse_bins_.size()) *
                 static_cast<std::int64_t>(config_.averages));
    if (result.trap_saturated) c_sat.increment();
    h_packet.observe(result.mean_packet_charges > 0.0
                         ? static_cast<std::uint64_t>(
                               std::llround(result.mean_packet_charges))
                         : 0);
    return result;
}

}  // namespace htims::pipeline
