// cpu_backend.hpp — the software deconvolution component.
//
// The paper's CPU side streams data and collects results, but it is also
// the natural fallback when no FPGA is present; this backend is the
// double-precision software deconvolver, parallelised across m/z channels
// (channels are independent, so the decomposition is embarrassingly
// parallel with uniform per-channel work — static chunking suffices).
// Experiment E3 compares its sustained throughput against the FPGA model,
// and E4 measures its strong scaling.
#pragma once

#include <cstddef>

#include "common/thread_pool.hpp"
#include "pipeline/frame.hpp"
#include "prs/oversampled.hpp"
#include "transform/enhanced.hpp"

namespace htims::pipeline {

/// Multithreaded software deconvolution backend.
class CpuBackend {
public:
    /// `threads` == 0 selects hardware concurrency.
    CpuBackend(const prs::OversampledPrs& sequence, const FrameLayout& layout,
               std::size_t threads = 0);

    const FrameLayout& layout() const { return layout_; }
    std::size_t threads() const { return pool_.size(); }

    /// Deconvolve every m/z channel of `raw`; returns the drift-domain frame.
    Frame deconvolve(const Frame& raw);

    /// Wall time of the last deconvolve() call (seconds).
    double last_seconds() const { return last_seconds_; }

    /// Raw-sample throughput implied by the last call for a frame that
    /// accumulated `averages` periods: samples processed / decode time.
    double sustained_sample_rate(std::size_t averages) const;

private:
    transform::EnhancedDeconvolver decon_;
    FrameLayout layout_;
    ThreadPool pool_;
    double last_seconds_ = 0.0;
};

}  // namespace htims::pipeline
