// cpu_backend.hpp — the software deconvolution component.
//
// The paper's CPU side streams data and collects results, but it is also
// the natural fallback when no FPGA is present; this backend is the
// double-precision software deconvolver, parallelised across m/z channels
// (channels are independent, so the decomposition is embarrassingly
// parallel with uniform per-channel work — static chunking suffices).
// Experiment E3 compares its sustained throughput against the FPGA model,
// and E4 measures its strong scaling.
//
// Two decode paths share the same math:
//  * batched (default) — m/z channels are processed L lanes per tile: a
//    cache-friendly tile transpose (Frame::gather_tile) feeds
//    EnhancedDeconvolver::decode_batch, whose butterflies run one SIMD
//    register wide (common/simd.hpp picks L and the kernel tier at
//    runtime). Channels beyond the last full tile take the scalar path.
//  * scalar — the original one-channel-at-a-time decode, kept as the
//    reference oracle and for A/B benchmarking (deconvolve_scalar, or
//    set_batch_lanes(1)).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/thread_pool.hpp"
#include "pipeline/frame.hpp"
#include "prs/oversampled.hpp"
#include "transform/enhanced.hpp"

namespace htims::fault {
class FaultInjector;
}

namespace htims::pipeline {

/// Multithreaded software deconvolution backend.
class CpuBackend {
public:
    /// `threads` == 0 selects hardware concurrency.
    CpuBackend(const prs::OversampledPrs& sequence, const FrameLayout& layout,
               std::size_t threads = 0);

    const FrameLayout& layout() const { return layout_; }
    std::size_t threads() const { return pool_.size(); }

    /// Lanes per tile of the batched path (1 = batching disabled).
    std::size_t batch_lanes() const { return lanes_; }
    /// Override the tile width: 0 restores the machine default
    /// (htims::batch_lanes()), 1 forces the scalar path.
    void set_batch_lanes(std::size_t lanes);

    /// Attach a fault injector for transient decode-task failures
    /// (fault::Site::kCpuFault). A firing fault makes the next deconvolve()
    /// attempt fail transiently; the backend retries with exponential
    /// backoff up to `max_retries` times (counted in cpu.task_retries)
    /// before giving up with htims::Error. Pass nullptr to detach.
    void set_faults(fault::FaultInjector* faults, int max_retries = 4,
                    double backoff_s = 50e-6);

    /// Transient task failures retried since construction.
    std::uint64_t task_retries() const {
        return task_retries_.load(std::memory_order_relaxed);
    }

    /// Deconvolve every m/z channel of `raw`; returns the drift-domain
    /// frame. Uses the batched tile path unless batch_lanes() == 1.
    ///
    /// Thread safety: one deconvolve at a time, but the calling thread may
    /// change between calls (the hybrid orchestrator moves decode onto a
    /// worker in overlapped mode). Retry/backoff state is per-call; the
    /// stats below are synchronized so any thread reads consistent values.
    Frame deconvolve(const Frame& raw);

    /// Reference path: one channel at a time, regardless of batch_lanes().
    Frame deconvolve_scalar(const Frame& raw);

    /// Wall time of the last deconvolve() call (seconds).
    double last_seconds() const {
        std::lock_guard lock(stats_mutex_);
        return last_seconds_;
    }
    /// Total decode wall time across all frames since construction.
    double total_seconds() const {
        std::lock_guard lock(stats_mutex_);
        return total_seconds_;
    }
    /// Frames deconvolved since construction.
    std::size_t frames_decoded() const {
        std::lock_guard lock(stats_mutex_);
        return total_frames_;
    }

    /// Raw-sample throughput averaged over every frame deconvolved since
    /// construction, for frames that each accumulated `averages` periods:
    /// total samples processed / total decode time. (A single slow frame no
    /// longer defines the figure — E3's steady-state number comes from the
    /// whole run.)
    double sustained_sample_rate(std::size_t averages) const;

private:
    Frame run(const Frame& raw, std::size_t lanes);

    transform::EnhancedDeconvolver decon_;
    FrameLayout layout_;
    ThreadPool pool_;
    std::size_t lanes_;
    mutable std::mutex stats_mutex_;  ///< guards the decode-time stats
    double last_seconds_ = 0.0;
    double total_seconds_ = 0.0;
    std::size_t total_frames_ = 0;
    fault::FaultInjector* faults_ = nullptr;
    int max_retries_ = 4;
    double backoff_s_ = 50e-6;
    std::atomic<std::uint64_t> task_retries_{0};
};

}  // namespace htims::pipeline
