#include "pipeline/cpu_backend.hpp"

#include <chrono>
#include <thread>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

CpuBackend::CpuBackend(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                       std::size_t threads)
    : decon_(sequence), layout_(layout), pool_(threads), lanes_(htims::batch_lanes()) {
    if (layout.drift_bins != sequence.length())
        throw ConfigError("frame drift bins must equal the sequence fine-grid length");
}

void CpuBackend::set_batch_lanes(std::size_t lanes) {
    lanes_ = lanes == 0 ? htims::batch_lanes() : lanes;
}

void CpuBackend::set_faults(fault::FaultInjector* faults, int max_retries,
                            double backoff_s) {
    HTIMS_EXPECTS(max_retries >= 0);
    HTIMS_EXPECTS(backoff_s >= 0.0);
    faults_ = faults;
    max_retries_ = max_retries;
    backoff_s_ = backoff_s;
}

Frame CpuBackend::deconvolve(const Frame& raw) {
    if (faults_ == nullptr) return run(raw, lanes_);
    // A fired kCpuFault models a transient task failure (lost worker, ECC
    // retry, preempted node): the attempt is abandoned and retried after an
    // exponential backoff. The injector's per-site event counter advances
    // per attempt, so a persistent fault plan (probability 1.0) exhausts the
    // retry budget deterministically.
    static auto& c_retries =
        telemetry::Registry::global().counter("cpu.task_retries");
    int attempt = 0;
    while (faults_->should_fire(fault::Site::kCpuFault)) {
        if (attempt >= max_retries_)
            throw Error("cpu backend: persistent task failure after " +
                        std::to_string(attempt) + " retries");
        ++attempt;
        task_retries_.fetch_add(1, std::memory_order_relaxed);
        c_retries.increment();
        const double backoff = backoff_s_ * static_cast<double>(1 << (attempt - 1));
        if (backoff > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    return run(raw, lanes_);
}

Frame CpuBackend::deconvolve_scalar(const Frame& raw) { return run(raw, 1); }

Frame CpuBackend::run(const Frame& raw, std::size_t lanes) {
    HTIMS_EXPECTS(raw.layout() == layout_);
    auto& tel = telemetry::Registry::global();
    static const auto kStageDecode = tel.intern("cpu.deconvolve");
    static auto& c_frames = tel.counter("cpu.frames");
    static auto& c_channels = tel.counter("cpu.channels");
    static auto& c_tiles = tel.counter("cpu.tiles");
    static auto& c_batched = tel.counter("cpu.batched_channels");
    static auto& c_tail = tel.counter("cpu.scalar_channels");
    static auto& g_tier = tel.gauge("cpu.simd_tier");
    static auto& g_lanes = tel.gauge("cpu.batch_lanes");
    static auto& h_decode = tel.histogram("cpu.decode_ns");
    static auto& h_tile = tel.histogram("cpu.tile_ns");
    auto span = tel.span(kStageDecode);

    Frame out(layout_);
    WallTimer timer;
    HTIMS_CHECK(lanes >= 1, "batch lane count must be at least 1");
    const std::size_t tiles = lanes > 1 ? layout_.mz_bins / lanes : 0;
    const std::size_t tail_begin = tiles * lanes;
    HTIMS_DCHECK(tail_begin <= layout_.mz_bins, "tiles cover at most the frame");
    const bool trace_tiles = telemetry::kCompiledIn && tel.enabled();
    if (tiles > 0) {
        // Tile-granular: one grain = one L-lane decode, already far coarser
        // than a dispatch, so grain 1 keeps small frames parallel too.
        pool_.parallel_for(
            tiles,
            [&](std::size_t lo, std::size_t hi) {
                auto ws = decon_.make_batch_workspace(lanes);
                AlignedVector<double> in(layout_.drift_bins * lanes);
                AlignedVector<double> result(layout_.drift_bins * lanes);
                for (std::size_t tile = lo; tile < hi; ++tile) {
                    const std::uint64_t t0 = trace_tiles ? telemetry::now_ns() : 0;
                    raw.gather_tile(tile * lanes, lanes, in);
                    decon_.decode_batch(in, result, ws);
                    out.scatter_tile(tile * lanes, lanes, result);
                    if (trace_tiles) h_tile.observe(telemetry::now_ns() - t0);
                }
            },
            /*grain=*/1);
    }
    if (tail_begin < layout_.mz_bins) {
        // Ragged tail (mz_bins % lanes), or the whole frame on the scalar
        // path — the original per-channel decomposition.
        pool_.parallel_for(layout_.mz_bins - tail_begin, [&](std::size_t lo,
                                                             std::size_t hi) {
            auto ws = decon_.make_workspace();
            AlignedVector<double> in(layout_.drift_bins);
            AlignedVector<double> result(layout_.drift_bins);
            for (std::size_t m = tail_begin + lo; m < tail_begin + hi; ++m) {
                raw.drift_profile(m, in);
                decon_.decode(in, result, ws);
                out.set_drift_profile(m, result);
            }
        });
    }
    const double elapsed = timer.seconds();
    {
        std::lock_guard lock(stats_mutex_);
        last_seconds_ = elapsed;
        total_seconds_ += elapsed;
        ++total_frames_;
    }
    c_frames.increment();
    c_channels.add(static_cast<std::int64_t>(layout_.mz_bins));
    c_tiles.add(static_cast<std::int64_t>(tiles));
    c_batched.add(static_cast<std::int64_t>(tail_begin));
    c_tail.add(static_cast<std::int64_t>(layout_.mz_bins - tail_begin));
    g_tier.set(static_cast<std::int64_t>(simd_tier()));
    g_lanes.set(static_cast<std::int64_t>(lanes));
    h_decode.observe(static_cast<std::uint64_t>(elapsed * 1e9));
    return out;
}

double CpuBackend::sustained_sample_rate(std::size_t averages) const {
    double seconds = 0.0;
    std::size_t frames = 0;
    {
        std::lock_guard lock(stats_mutex_);
        seconds = total_seconds_;
        frames = total_frames_;
    }
    if (seconds <= 0.0 || frames == 0) return 0.0;
    const double samples = static_cast<double>(averages) *
                           static_cast<double>(layout_.cells()) *
                           static_cast<double>(frames);
    return samples / seconds;
}

}  // namespace htims::pipeline
