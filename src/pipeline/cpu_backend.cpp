#include "pipeline/cpu_backend.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

CpuBackend::CpuBackend(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                       std::size_t threads)
    : decon_(sequence), layout_(layout), pool_(threads) {
    if (layout.drift_bins != sequence.length())
        throw ConfigError("frame drift bins must equal the sequence fine-grid length");
}

Frame CpuBackend::deconvolve(const Frame& raw) {
    HTIMS_EXPECTS(raw.layout() == layout_);
    auto& tel = telemetry::Registry::global();
    static const auto kStageDecode = tel.intern("cpu.deconvolve");
    static auto& c_frames = tel.counter("cpu.frames");
    static auto& c_channels = tel.counter("cpu.channels");
    static auto& h_decode = tel.histogram("cpu.decode_ns");
    auto span = tel.span(kStageDecode);

    Frame out(layout_);
    WallTimer timer;
    pool_.parallel_for(layout_.mz_bins, [&](std::size_t lo, std::size_t hi) {
        auto ws = decon_.make_workspace();
        AlignedVector<double> in(layout_.drift_bins);
        AlignedVector<double> result(layout_.drift_bins);
        for (std::size_t m = lo; m < hi; ++m) {
            raw.drift_profile(m, in);
            decon_.decode(in, result, ws);
            out.set_drift_profile(m, result);
        }
    });
    last_seconds_ = timer.seconds();
    c_frames.increment();
    c_channels.add(static_cast<std::int64_t>(layout_.mz_bins));
    h_decode.observe(static_cast<std::uint64_t>(last_seconds_ * 1e9));
    return out;
}

double CpuBackend::sustained_sample_rate(std::size_t averages) const {
    if (last_seconds_ <= 0.0) return 0.0;
    const double samples =
        static_cast<double>(averages) * static_cast<double>(layout_.cells());
    return samples / last_seconds_;
}

}  // namespace htims::pipeline
