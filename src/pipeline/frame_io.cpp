#include "pipeline/frame_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace htims::pipeline {

namespace {

constexpr std::uint32_t kMagic = 0x48544D53;  // "HTMS"
constexpr std::uint32_t kVersion = 1;

// 64-byte fixed header, all fields little-endian. Explicitly packed by
// construction (only fixed-width members, naturally aligned).
struct Header {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t drift_bins;
    std::uint64_t mz_bins;
    double drift_bin_width_s;
    std::uint32_t payload_crc;
    std::uint32_t reserved0;
    std::uint64_t reserved1[3];
};
static_assert(sizeof(Header) == 64, "frame header must be 64 bytes");

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    const auto& table = crc_table();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < bytes; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void write_frame(std::ostream& os, const Frame& frame) {
    const auto payload = frame.data();
    const std::size_t payload_bytes = payload.size() * sizeof(double);

    Header header{};
    header.magic = kMagic;
    header.version = kVersion;
    header.drift_bins = frame.layout().drift_bins;
    header.mz_bins = frame.layout().mz_bins;
    header.drift_bin_width_s = frame.layout().drift_bin_width_s;
    header.payload_crc = crc32(payload.data(), payload_bytes);

    os.write(reinterpret_cast<const char*>(&header), sizeof(header));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload_bytes));
    if (!os) throw Error("frame write failed");
}

Frame read_frame(std::istream& is) {
    Header header{};
    is.read(reinterpret_cast<char*>(&header), sizeof(header));
    if (!is) throw Error("frame read failed: truncated header");
    if (header.magic != kMagic) throw Error("frame read failed: bad magic");
    if (header.version != kVersion)
        throw Error("frame read failed: unsupported version " +
                    std::to_string(header.version));
    if (header.drift_bins == 0 || header.mz_bins == 0 ||
        header.drift_bins > (1u << 24) || header.mz_bins > (1u << 24))
        throw Error("frame read failed: implausible layout");

    FrameLayout layout{.drift_bins = static_cast<std::size_t>(header.drift_bins),
                       .mz_bins = static_cast<std::size_t>(header.mz_bins),
                       .drift_bin_width_s = header.drift_bin_width_s};
    Frame frame(layout);
    HTIMS_DCHECK(frame.data().size() == layout.cells(),
                 "decoded frame storage matches the validated header");
    const std::size_t payload_bytes = frame.data().size() * sizeof(double);
    is.read(reinterpret_cast<char*>(frame.data().data()),
            static_cast<std::streamsize>(payload_bytes));
    if (!is || static_cast<std::size_t>(is.gcount()) != payload_bytes)
        throw Error("frame read failed: truncated payload");
    if (crc32(frame.data().data(), payload_bytes) != header.payload_crc)
        throw Error("frame read failed: payload CRC mismatch");
    return frame;
}

void save_frame(const std::string& path, const Frame& frame) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw Error("cannot open " + path + " for writing");
    write_frame(os, frame);
}

Frame load_frame(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw Error("cannot open " + path + " for reading");
    return read_frame(is);
}

}  // namespace htims::pipeline
