#include "pipeline/frame_io.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "fault/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

namespace {

constexpr std::uint32_t kMagic = 0x48544D53;  // "HTMS"
constexpr std::uint32_t kVersion = 2;         // v2: header_crc added

// 64-byte fixed header, all fields little-endian. Explicitly packed by
// construction (only fixed-width members, naturally aligned). header_crc is
// the CRC-32 of the header bytes with the header_crc field zeroed, so a flip
// in *any* header byte — including reserved padding — is detectable.
struct Header {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t drift_bins;
    std::uint64_t mz_bins;
    double drift_bin_width_s;
    std::uint32_t payload_crc;
    std::uint32_t header_crc;
    std::uint64_t reserved1[3];
};
static_assert(sizeof(Header) == 64, "frame header must be 64 bytes");

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::uint32_t header_crc_of(Header header) {
    header.header_crc = 0;
    return crc32(&header, sizeof(header));
}

Header make_header(const Frame& frame, std::uint64_t seq) {
    const auto payload = frame.data();
    Header header{};
    header.magic = kMagic;
    header.version = kVersion;
    header.drift_bins = frame.layout().drift_bins;
    header.mz_bins = frame.layout().mz_bins;
    header.drift_bin_width_s = frame.layout().drift_bin_width_s;
    header.payload_crc = crc32(payload.data(), payload.size() * sizeof(double));
    header.reserved1[0] = seq;  // covered by the header CRC below
    header.header_crc = header_crc_of(header);
    return header;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    const auto& table = crc_table();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < bytes; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(const void* data, std::size_t bytes, std::uint64_t seed) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::uint64_t frame_digest(const Frame& frame, double quantization) {
    HTIMS_EXPECTS(quantization > 0.0);
    const std::uint64_t dims[2] = {frame.layout().drift_bins,
                                   frame.layout().mz_bins};
    std::uint64_t h = fnv1a64(dims, sizeof(dims));
    for (double v : frame.data()) {
        const std::int64_t q = std::llround(v * quantization);
        h = fnv1a64(&q, sizeof(q), h);
    }
    return h;
}

std::size_t frame_container_bytes(const FrameLayout& layout) {
    return sizeof(Header) + layout.cells() * sizeof(double);
}

std::size_t frame_container_bytes(const Frame& frame) {
    return frame_container_bytes(frame.layout());
}

std::size_t serialize_frame(const Frame& frame, std::span<std::byte> dst,
                            std::uint64_t seq) {
    const std::size_t total = frame_container_bytes(frame);
    HTIMS_EXPECTS(dst.size() >= total);
    const Header header = make_header(frame, seq);
    const auto payload = frame.data();
    std::memcpy(dst.data(), &header, sizeof(header));
    std::memcpy(dst.data() + sizeof(header), payload.data(),
                payload.size() * sizeof(double));
    return total;
}

Frame parse_frame(std::span<const std::byte> bytes, std::size_t* consumed,
                  std::uint64_t* seq) {
    if (bytes.size() < sizeof(Header))
        throw Error("frame read failed: truncated header");
    Header header{};
    std::memcpy(&header, bytes.data(), sizeof(header));
    if (header.magic != kMagic) throw Error("frame read failed: bad magic");
    if (header.version != kVersion)
        throw Error("frame read failed: unsupported version " +
                    std::to_string(header.version));
    if (header_crc_of(header) != header.header_crc)
        throw Error("frame read failed: header CRC mismatch");
    if (header.drift_bins == 0 || header.mz_bins == 0 ||
        header.drift_bins > (1u << 24) || header.mz_bins > (1u << 24))
        throw Error("frame read failed: implausible layout");

    FrameLayout layout{.drift_bins = static_cast<std::size_t>(header.drift_bins),
                       .mz_bins = static_cast<std::size_t>(header.mz_bins),
                       .drift_bin_width_s = header.drift_bin_width_s};
    Frame frame(layout);
    HTIMS_DCHECK(frame.data().size() == layout.cells(),
                 "decoded frame storage matches the validated header");
    const std::size_t payload_bytes = frame.data().size() * sizeof(double);
    if (bytes.size() - sizeof(Header) < payload_bytes)
        throw Error("frame read failed: truncated payload");
    std::memcpy(frame.data().data(), bytes.data() + sizeof(Header), payload_bytes);
    if (crc32(frame.data().data(), payload_bytes) != header.payload_crc)
        throw Error("frame read failed: payload CRC mismatch");
    *consumed = sizeof(Header) + payload_bytes;
    if (seq != nullptr) *seq = header.reserved1[0];
    return frame;
}

void write_frame(std::ostream& os, const Frame& frame) {
    const Header header = make_header(frame, 0);
    const auto payload = frame.data();
    os.write(reinterpret_cast<const char*>(&header), sizeof(header));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size() * sizeof(double)));
    if (!os) throw Error("frame write failed");
}

void write_frame(std::ostream& os, const Frame& frame,
                 fault::FaultInjector* faults) {
    if (faults == nullptr ||
        (!faults->plan().site(fault::Site::kFrameCorrupt).active() &&
         !faults->plan().site(fault::Site::kFrameTruncate).active())) {
        // No injector, or one with neither frame site armed: serialize
        // header + payload in one pass with no intermediate buffer.
        write_frame(os, frame);
        return;
    }
    std::string bytes(frame_container_bytes(frame), '\0');
    serialize_frame(frame,
                    std::span(reinterpret_cast<std::byte*>(bytes.data()),
                              bytes.size()));

    const auto corrupt = faults->decide(fault::Site::kFrameCorrupt);
    if (corrupt.fire) {
        const std::uint64_t offset = faults->draw_below(
            fault::Site::kFrameCorrupt, corrupt.event, bytes.size());
        const auto mask = static_cast<char>(1 + faults->draw_below(
            fault::Site::kFrameCorrupt, corrupt.event, 255, /*salt=*/1));
        bytes[static_cast<std::size_t>(offset)] ^= mask;
    }
    const auto truncate = faults->decide(fault::Site::kFrameTruncate);
    if (truncate.fire) {
        const std::uint64_t keep = faults->draw_below(
            fault::Site::kFrameTruncate, truncate.event, bytes.size());
        bytes.resize(static_cast<std::size_t>(keep));
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) throw Error("frame write failed");
}

Frame read_frame(std::istream& is) {
    std::array<char, sizeof(Header)> header_bytes{};
    is.read(header_bytes.data(), sizeof(Header));
    if (!is) throw Error("frame read failed: truncated header");
    Header header{};
    std::memcpy(&header, header_bytes.data(), sizeof(header));
    if (header.magic != kMagic) throw Error("frame read failed: bad magic");
    if (header.version != kVersion)
        throw Error("frame read failed: unsupported version " +
                    std::to_string(header.version));
    if (header_crc_of(header) != header.header_crc)
        throw Error("frame read failed: header CRC mismatch");
    if (header.drift_bins == 0 || header.mz_bins == 0 ||
        header.drift_bins > (1u << 24) || header.mz_bins > (1u << 24))
        throw Error("frame read failed: implausible layout");

    FrameLayout layout{.drift_bins = static_cast<std::size_t>(header.drift_bins),
                       .mz_bins = static_cast<std::size_t>(header.mz_bins),
                       .drift_bin_width_s = header.drift_bin_width_s};
    Frame frame(layout);
    const std::size_t payload_bytes = frame.data().size() * sizeof(double);
    is.read(reinterpret_cast<char*>(frame.data().data()),
            static_cast<std::streamsize>(payload_bytes));
    if (!is || static_cast<std::size_t>(is.gcount()) != payload_bytes)
        throw Error("frame read failed: truncated payload");
    if (crc32(frame.data().data(), payload_bytes) != header.payload_crc)
        throw Error("frame read failed: payload CRC mismatch");
    return frame;
}

namespace {

/// The one open/validate path both convenience wrappers (and any future
/// file-level helper) go through: binary mode, failure surfaced as Error.
template <typename StreamT>
StreamT open_binary(const std::string& path, const char* what) {
    StreamT stream(path, std::ios::binary);
    if (!stream) throw Error("cannot open " + path + " for " + what);
    return stream;
}

}  // namespace

void save_frame(const std::string& path, const Frame& frame) {
    auto os = open_binary<std::ofstream>(path, "writing");
    write_frame(os, frame);
}

Frame load_frame(const std::string& path) {
    auto is = open_binary<std::ifstream>(path, "reading");
    return read_frame(is);
}

FrameStreamReader::FrameStreamReader(std::span<const std::byte> bytes,
                                     RecoveryMode mode)
    : view_(bytes), mode_(mode) {}

FrameStreamReader::FrameStreamReader(std::istream& is, RecoveryMode mode)
    : mode_(mode) {
    std::ostringstream slurp;
    slurp << is.rdbuf();
    owned_ = std::move(slurp).str();
    view_ = std::span(reinterpret_cast<const std::byte*>(owned_.data()),
                      owned_.size());
}

FrameStreamReader::FrameStreamReader(std::string bytes, RecoveryMode mode)
    : owned_(std::move(bytes)), mode_(mode) {
    view_ = std::span(reinterpret_cast<const std::byte*>(owned_.data()),
                      owned_.size());
}

std::optional<Frame> FrameStreamReader::next() {
    auto& tel = telemetry::Registry::global();
    static auto& c_crc = tel.counter("frame_io.crc_failures");
    static auto& c_resync = tel.counter("frame_io.frames_resynced");
    static auto& c_skipped = tel.counter("frame_io.bytes_skipped");

    if (pos_ >= view_.size()) return std::nullopt;
    std::size_t consumed = 0;
    try {
        Frame frame = parse_frame(view_.subspan(pos_), &consumed, &last_seq_);
        pos_ += consumed;
        ++stats_.frames_ok;
        return frame;
    } catch (const Error&) {
        if (mode_ == RecoveryMode::kThrow) throw;
    }

    // Recovery: the bytes at pos_ are not a valid frame. Count one loss,
    // then scan forward for the next magic that parses clean. Overlapping
    // candidates are fine — a candidate that fails validation just moves
    // the scan one byte past its magic.
    ++stats_.frames_lost;
    c_crc.increment();
    static const std::array<char, 4> kMagicBytes = {0x53, 0x4D, 0x54, 0x48};
    const std::size_t lost_at = pos_;
    std::size_t scan = pos_ + 1;
    while (scan + kMagicBytes.size() <= view_.size()) {
        const auto* hit = static_cast<const std::byte*>(
            std::memchr(view_.data() + scan,
                        static_cast<unsigned char>(kMagicBytes[0]),
                        view_.size() - scan));
        if (hit == nullptr) break;
        const auto candidate = static_cast<std::size_t>(hit - view_.data());
        if (candidate + kMagicBytes.size() > view_.size()) break;
        if (std::memcmp(hit, kMagicBytes.data(), kMagicBytes.size()) == 0) {
            try {
                Frame frame = parse_frame(view_.subspan(candidate), &consumed,
                                          &last_seq_);
                stats_.bytes_skipped += candidate - lost_at;
                c_skipped.add(static_cast<std::int64_t>(candidate - lost_at));
                ++stats_.resyncs;
                c_resync.increment();
                ++stats_.frames_ok;
                pos_ = candidate + consumed;
                return frame;
            } catch (const Error&) {
                // Spurious or damaged header; keep scanning.
            }
        }
        scan = candidate + 1;
    }
    // No recoverable frame remains; the tail is discarded.
    stats_.bytes_skipped += view_.size() - lost_at;
    c_skipped.add(static_cast<std::int64_t>(view_.size() - lost_at));
    pos_ = view_.size();
    return std::nullopt;
}

}  // namespace htims::pipeline
