#include "pipeline/hybrid.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "pipeline/turnstile.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

namespace {

/// One streamed block: a view into the replayed period template, tagged
/// with its global record index so the consumer can close frames correctly
/// even when records were dropped upstream. `end` marks the stream
/// sentinel the producer always delivers (never dropped).
struct Block {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
    std::uint64_t seq = 0;
    bool end = false;
};

/// Handoff between the consumer and the decode workers in overlapped-decode
/// mode: a pool of reusable buffers ("free") and a FIFO of closed frames
/// awaiting decode ("work"). One or more workers drain the FIFO; with
/// several, each takes the next frame in sequence and the OrderTurnstile
/// (pipeline/turnstile.hpp) restores frame order at emission — its
/// release-advance/acquire-observe edge also makes each emission's writes
/// to the shared report and frame marker visible to the next emitter, so
/// they need no further synchronization. close() releases the workers
/// once the stream ends; abort() releases a consumer blocked on pop_free()
/// when a worker dies mid-run (no buffer would ever return).
template <typename Job>
class DecodeChannel {
public:
    void push_free(Job job) {
        {
            std::lock_guard lock(mutex_);
            free_.push_back(std::move(job));
        }
        cv_free_.notify_one();
    }

    /// Blocks until a spent buffer comes back; nullopt after abort().
    std::optional<Job> pop_free() {
        std::unique_lock lock(mutex_);
        cv_free_.wait(lock, [&] { return !free_.empty() || aborted_; });
        if (free_.empty()) return std::nullopt;
        Job job = std::move(free_.front());
        free_.pop_front();
        return job;
    }

    /// Queue a closed frame; returns the queue depth just after the push.
    std::size_t push_work(Job job) {
        std::size_t depth = 0;
        {
            std::lock_guard lock(mutex_);
            work_.push_back(std::move(job));
            depth = work_.size();
        }
        cv_work_.notify_one();
        return depth;
    }

    /// Blocks for the next closed frame; nullopt once closed and drained.
    std::optional<Job> pop_work() {
        std::unique_lock lock(mutex_);
        cv_work_.wait(lock, [&] { return !work_.empty() || closed_; });
        if (work_.empty()) return std::nullopt;
        Job job = std::move(work_.front());
        work_.pop_front();
        return job;
    }

    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        cv_work_.notify_all();
    }

    void abort() {
        {
            std::lock_guard lock(mutex_);
            aborted_ = true;
        }
        cv_free_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_free_;
    std::condition_variable cv_work_;
    std::deque<Job> free_;
    std::deque<Job> work_;
    bool closed_ = false;
    bool aborted_ = false;
};

}  // namespace

PeriodTemplateSource::PeriodTemplateSource(std::vector<std::uint32_t> period_samples,
                                           const FrameLayout& layout,
                                           std::uint64_t frames,
                                           std::uint64_t averages)
    : period_samples_(std::move(period_samples)),
      record_len_(layout.mz_bins),
      records_per_period_(layout.drift_bins),
      total_records_(frames * averages * layout.drift_bins) {
    if (period_samples_.size() != layout.cells())
        throw ConfigError("period sample template must have layout.cells() entries");
}

std::span<const std::uint32_t> PeriodTemplateSource::record(std::uint64_t seq) {
    const std::size_t record_in_period =
        static_cast<std::size_t>(seq % records_per_period_);
    return std::span(period_samples_.data() + record_in_period * record_len_,
                     record_len_);
}

std::span<const std::uint32_t> PeriodTemplateSource::record_block(
    std::uint64_t seq, std::size_t max_records) {
    // Rows are contiguous until the template wraps at the period boundary.
    const std::size_t record_in_period =
        static_cast<std::size_t>(seq % records_per_period_);
    const std::size_t k =
        std::min(max_records, records_per_period_ - record_in_period);
    return std::span(period_samples_.data() + record_in_period * record_len_,
                     k * record_len_);
}

std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages) {
    HTIMS_EXPECTS(averages >= 1);
    std::vector<std::uint32_t> samples(raw.data().size());
    const double inv = 1.0 / static_cast<double>(averages);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double v = std::max(0.0, raw.data()[i] * inv);
        samples[i] = static_cast<std::uint32_t>(std::llround(v));
    }
    return samples;
}

namespace {

void validate_hybrid_config(const HybridConfig& config) {
    if (config.frames == 0 || config.averages == 0)
        throw ConfigError("hybrid run needs frames >= 1 and averages >= 1");
    if (config.ring_timeout_s < 0.0)
        throw ConfigError("ring_timeout_s cannot be negative");
    if (config.cpu_max_retries < 0)
        throw ConfigError("cpu_max_retries cannot be negative");
    if (config.overlap_decode && config.decode_buffers < 2)
        throw ConfigError("overlap_decode needs decode_buffers >= 2");
    if (config.batch_records == 0)
        throw ConfigError("batch_records must be >= 1");
    if (config.decode_workers == 0)
        throw ConfigError("decode_workers must be >= 1");
}

}  // namespace

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout,
                               std::vector<std::uint32_t> period_samples,
                               const HybridConfig& config)
    : sequence_(sequence), layout_(layout), config_(config) {
    validate_hybrid_config(config);
    template_source_.emplace(std::move(period_samples), layout,
                             config.frames, config.averages);
    source_ = &*template_source_;
}

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout, RecordSource& source,
                               const HybridConfig& config)
    : sequence_(sequence), layout_(layout), source_(&source), config_(config) {
    validate_hybrid_config(config);
    const std::uint64_t expected = static_cast<std::uint64_t>(config.frames) *
                                   config.averages * layout.drift_bins;
    if (source.total_records() != expected)
        throw ConfigError("record source delivers " +
                          std::to_string(source.total_records()) +
                          " records; the configured run streams " +
                          std::to_string(expected));
}

HybridReport HybridPipeline::run() {
    const std::size_t record_len = layout_.mz_bins;
    const std::size_t records_per_period = layout_.drift_bins;
    const std::uint64_t records_total = static_cast<std::uint64_t>(config_.frames) *
                                        config_.averages * records_per_period;
    HTIMS_CHECK(record_len > 0 && records_per_period > 0, "stream layout is non-empty");
    HTIMS_CHECK(records_total > 0, "a hybrid run streams at least one record");

    auto& tel = telemetry::Registry::global();
    static auto& c_records = tel.counter("hybrid.records");
    static auto& c_frames = tel.counter("hybrid.frames");
    static auto& c_stalls = tel.counter("hybrid.producer_stalls");
    static auto& c_idles = tel.counter("hybrid.consumer_idles");
    static auto& c_rec_dropped = tel.counter("hybrid.records_dropped");
    static auto& c_frames_degraded = tel.counter("hybrid.frames_degraded");
    static auto& c_jitter = tel.counter("hybrid.link_jitter_events");
    static auto& g_ring = tel.gauge("hybrid.ring_occupancy");
    static auto& g_decode_q = tel.gauge("hybrid.decode_queue_depth");
    static auto& h_ring = tel.histogram("hybrid.ring_occupancy");
    static auto& h_decode_q = tel.histogram("hybrid.decode_queue_depth");
    static auto& h_stall = tel.histogram("hybrid.producer_stall_ns");
    static auto& h_idle = tel.histogram("hybrid.consumer_idle_ns");
    static auto& h_frame = tel.histogram("hybrid.frame_ns");
    static auto& h_overlap = tel.histogram("hybrid.decode_overlap_ns");
    static auto& h_dwait = tel.histogram("hybrid.decode_wait_ns");
    static auto& h_batch = tel.histogram("hybrid.batch_size");
    static const auto kStageRun = tel.intern("hybrid.run");
    static const auto kStageFrame = tel.intern("hybrid.frame");
    static const auto kStageDecode = tel.intern("hybrid.decode_worker");
    const bool tel_on = telemetry::kCompiledIn && tel.enabled();
    auto run_span = tel.span(kStageRun);

    SpscRing<Block> ring(config_.ring_records);
    HybridReport report;
    report.last_frame = Frame(layout_);
    HTIMS_CHECK(source_ != nullptr && source_->total_records() == records_total,
                "record source matches the configured stream");
    // Batch sizing: the producer stages up to batch_cap records per ring
    // publication and the consumer pops the same amount per protocol round
    // trip. batch_records = 1 restores the per-record transport exactly —
    // including its backpressure granularity (the consumer never holds
    // popped-but-unprocessed records).
    const std::size_t batch_cap =
        std::max<std::size_t>(1, std::min(config_.batch_records, ring.capacity()));
    const std::size_t consume_cap = batch_cap;
    // Ring capacity (rounded up to a power of two) + the producer's staged
    // batch + the consumer's popped batch + the blocks in either thread's
    // hands: the most record spans ever outstanding at once.
    source_->set_window(ring.capacity() + batch_cap + consume_cap + 2);

    fault::FaultInjector* faults = config_.faults;
    // kDropOldest: the producer cannot pop an SPSC ring, so it grants the
    // consumer a "drop credit" instead — the consumer discards its next
    // (i.e. oldest queued) record per credit, which is exactly the record
    // that has waited longest on the link.
    alignas(kCacheLine) std::atomic<std::uint64_t> drop_credits{0};

    const std::uint64_t records_per_frame =
        static_cast<std::uint64_t>(config_.averages) * records_per_period;

    double producer_stall = 0.0;
    std::thread producer([&] {
        // Blocking push with stall accounting; returns false if the
        // bounded wait expired (kBlock with a timeout).
        const auto push_blocking = [&](Block block) {
            WallTimer stall;
            const bool bounded = config_.ring_timeout_s > 0.0 && !block.end;
            while (!ring.try_push(Block{block})) {
                if (bounded && stall.seconds() > config_.ring_timeout_s) {
                    const double stalled = stall.seconds();
                    producer_stall += stalled;
                    if (tel_on) {
                        c_stalls.increment();
                        h_stall.observe(static_cast<std::uint64_t>(stalled * 1e9));
                    }
                    return false;
                }
                std::this_thread::yield();
            }
            const double stalled = stall.seconds();
            if (stalled > 0.0) {
                producer_stall += stalled;
                if (tel_on) {
                    c_stalls.increment();
                    h_stall.observe(static_cast<std::uint64_t>(stalled * 1e9));
                }
            }
            return true;
        };

        // Per-record slow path: a record that met a full (or fault-forced
        // "full") link goes through the configured policy.
        const auto push_policy = [&](const Block& block) {
            switch (config_.ring_policy) {
                case RingFullPolicy::kBlock:
                    push_blocking(block);  // timeout expiry drops the record;
                                           // the consumer sees the seq gap
                    break;
                case RingFullPolicy::kDropNewest:
                    // dropped; accounted by the consumer via seq gap
                    break;
                case RingFullPolicy::kDropOldest:
                    drop_credits.fetch_add(1, std::memory_order_release);
                    if (!push_blocking(block)) {
                        // The bounded wait expired too: this record is lost
                        // to the timeout (the consumer sees the seq gap), so
                        // revoke the credit if it is still unspent —
                        // otherwise the consumer would later discard a live
                        // record that displaced nothing, dropping two
                        // records for one overrun.
                        std::uint64_t credits =
                            drop_credits.load(std::memory_order_acquire);
                        while (credits > 0 &&
                               !drop_credits.compare_exchange_weak(
                                   credits, credits - 1,
                                   std::memory_order_acq_rel)) {
                        }
                    }
                    break;
            }
        };

        // Batch staging: consecutive unpaced, unfaulted records accumulate
        // here and publish with one ring operation (one release-store).
        std::vector<Block> stage;
        stage.reserve(batch_cap);
        const auto flush_stage = [&] {
            std::size_t off = 0;
            while (off < stage.size()) {
                const std::size_t pushed =
                    ring.push_batch(std::span(stage).subspan(off));
                if (pushed == 0) break;
                off += pushed;
            }
            // Records that met a full ring fall back to the per-record
            // policy machinery, so drop/block semantics are identical to
            // per-record transport.
            for (; off < stage.size(); ++off) {
                if (ring.try_push(Block{stage[off]})) continue;
                push_policy(stage[off]);
            }
            stage.clear();
        };

        WallTimer stream_clock;  // release_ns pacing is relative to here
        std::uint64_t seq = 0;
        while (seq < records_total) {
            // Line-rate pacing: sleep off the bulk of the wait, then spin
            // the sub-scheduler-quantum tail so release jitter stays small.
            // Earlier records must reach the link before this one waits.
            const std::uint64_t release = source_->release_ns(seq);
            if (release > 0) {
                flush_stage();
                for (;;) {
                    const double remain_s =
                        static_cast<double>(release) * 1e-9 - stream_clock.seconds();
                    if (remain_s <= 0.0) break;
                    if (remain_s > 200e-6)
                        std::this_thread::sleep_for(std::chrono::duration<double>(
                            remain_s - 100e-6));
                    else
                        std::this_thread::yield();
                }
            }

            if (faults != nullptr) {
                // Faulted runs take the record-at-a-time path so the
                // injector's per-record event order is exactly the
                // per-record transport's.
                const auto jitter = faults->decide(fault::Site::kLinkJitter);
                if (jitter.fire) {
                    // A short, plan-determined transport hiccup (10..80 us).
                    const auto us = 10 * (1 + faults->draw_below(
                                             fault::Site::kLinkJitter,
                                             jitter.event, 8));
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(us));
                    if (tel_on) c_jitter.increment();
                }
                const auto row = source_->record(seq);
                HTIMS_DCHECK(row.size() == record_len,
                             "record source rows span the m/z axis");
                const Block block{row.data(), row.size(), seq, false};
                ++seq;
                if (faults->should_fire(fault::Site::kLinkOverrun)) {
                    // Forced overrun: straight to the policy, behind
                    // everything staged before it.
                    flush_stage();
                    push_policy(block);
                } else {
                    stage.push_back(block);
                    if (stage.size() >= batch_cap ||
                        seq % records_per_frame == 0)
                        flush_stage();
                }
                continue;
            }

            // Fault-free fast path: stage a contiguous run of records, cut
            // at the batch size and the frame boundary (publications stay
            // frame-local). Batch a run only when its *last* record
            // releases immediately — release times are non-decreasing, so
            // the whole run does; paced streams fall back to record-at-a-
            // time with the wait above.
            std::uint64_t want = static_cast<std::uint64_t>(batch_cap - stage.size());
            const std::uint64_t frame_end =
                (seq / records_per_frame + 1) * records_per_frame;
            want = std::min(want, frame_end - seq);
            if (want > 1 && source_->release_ns(seq + want - 1) > 0) want = 1;
            const auto rows =
                source_->record_block(seq, static_cast<std::size_t>(want));
            const std::size_t k = rows.size() / record_len;
            HTIMS_DCHECK(k >= 1 && k <= want && rows.size() == k * record_len,
                         "record_block returns 1..max_records whole rows");
            for (std::size_t j = 0; j < k; ++j)
                stage.push_back(Block{rows.data() + j * record_len, record_len,
                                      seq + j, false});
            seq += k;
            if (stage.size() >= batch_cap || seq % records_per_frame == 0)
                flush_stage();
        }
        flush_stage();
        // Stream-end sentinel: always delivered, whatever the policy.
        push_blocking(Block{nullptr, 0, records_total, true});
    });

    WallTimer wall;

    // Per-frame degradation flags (a frame is degraded when at least one of
    // its records was dropped anywhere on the link).
    std::vector<std::uint8_t> degraded(config_.frames, 0);
    const auto mark_dropped_range = [&](std::uint64_t first, std::uint64_t last) {
        // Records in [first, last) were lost; mark their frames.
        report.records_dropped += last - first;
        if (tel_on) c_rec_dropped.add(static_cast<std::int64_t>(last - first));
        for (std::uint64_t f = first / records_per_frame;
             f <= (last - 1) / records_per_frame; ++f)
            degraded[static_cast<std::size_t>(f)] = 1;
    };

    // Frame-completion telemetry mark. Whichever thread finishes decodes
    // owns one instance (the consumer synchronously, the decode worker in
    // overlap mode); each instance measures the gap between its own calls.
    const auto make_frame_marker = [&] {
        return [&, start_ns = tel_on ? telemetry::now_ns() : 0]() mutable {
            if (!tel_on) return;
            c_frames.increment();
            const std::uint64_t now = telemetry::now_ns();
            h_frame.observe(now - start_ns);
            tel.trace().record(telemetry::SpanEvent{
                kStageFrame, telemetry::thread_slot(), 1, start_ns, now});
            start_ns = now;
        };
    };

    // Backend-agnostic consumer: `accumulate` folds one record in,
    // `close_frame(index, more_frames)` finishes the frame currently being
    // assembled. Frames are closed by watching the sequence tags, so frames
    // whose trailing records were dropped still close (as degraded frames).
    // The consumer samples ring occupancy as it pops — the reading the
    // paper's backpressure argument cares about.
    bool stream_done = false;  // consumer saw the end sentinel
    const auto consume = [&](auto&& accumulate, auto&& close_frame) {
        std::uint64_t next_seq = 0;       // next record index expected
        std::uint64_t frames_closed = 0;  // frames finished so far
        const auto close_through = [&](std::uint64_t frame_limit) {
            while (frames_closed < frame_limit) {
                close_frame(static_cast<std::size_t>(frames_closed),
                            frames_closed < config_.frames - 1);
                ++report.frames;
                if (degraded[static_cast<std::size_t>(frames_closed)] != 0) {
                    ++report.frames_degraded;
                    if (tel_on) c_frames_degraded.increment();
                }
                ++frames_closed;
            }
        };
        // Batch pop: drain up to consume_cap blocks per protocol round
        // trip; the per-block bookkeeping below is unchanged.
        std::vector<Block> popped(consume_cap);
        bool saw_end = false;
        while (!saw_end) {
            std::size_t got = ring.pop_batch(std::span(popped));
            if (got == 0) {
                WallTimer idle;
                while ((got = ring.pop_batch(std::span(popped))) == 0)
                    std::this_thread::yield();
                const double idled = idle.seconds();
                report.consumer_idle_seconds += idled;
                if (tel_on) {
                    c_idles.increment();
                    h_idle.observe(static_cast<std::uint64_t>(idled * 1e9));
                }
            }
            if (tel_on) {
                const auto depth = static_cast<std::int64_t>(ring.size());
                g_ring.set(depth);
                h_ring.observe(static_cast<std::uint64_t>(depth));
                h_batch.observe(got);
            }
            for (std::size_t b = 0; b < got; ++b) {
                const Block& block = popped[b];
                if (block.end) {
                    // The sentinel is the stream's last block by
                    // construction; nothing follows it in this batch.
                    stream_done = true;
                    saw_end = true;
                    break;
                }
                if (block.seq > next_seq) mark_dropped_range(next_seq, block.seq);
                next_seq = block.seq + 1;
                close_through(block.seq / records_per_frame);

                // kDropOldest credits: this record is the oldest still
                // queued — discard it (counts as dropped, degrades its
                // frame).
                std::uint64_t credits =
                    drop_credits.load(std::memory_order_acquire);
                bool discard = false;
                while (credits > 0) {
                    if (drop_credits.compare_exchange_weak(
                            credits, credits - 1, std::memory_order_acq_rel)) {
                        discard = true;
                        break;
                    }
                }
                if (discard) {
                    mark_dropped_range(block.seq, block.seq + 1);
                    continue;
                }
                if (tel_on) c_records.increment();
                accumulate(block);
            }
        }
        if (next_seq < records_total) mark_dropped_range(next_seq, records_total);
        close_through(config_.frames);
    };

    // Any consumer-side failure must still join the producer before it
    // propagates, and an overlap decode worker must be joined before its
    // channel leaves scope — hence the try blocks below.
    std::exception_ptr failure;
    try {
        if (config_.backend == BackendKind::kFpga) {
            FpgaPipeline fpga(sequence_, layout_, config_.fpga);
            if (faults != nullptr) fpga.set_faults(faults);
            fpga.begin_frame();
            if (!config_.overlap_decode) {
                auto frame_mark = make_frame_marker();
                consume(
                    [&](const Block& block) {
                        fpga.push_samples(std::span(block.data, block.size));
                    },
                    [&](std::size_t index, bool more_frames) {
                        report.last_frame = fpga.end_frame();
                        report.fpga = fpga.report();
                        if (config_.frame_sink)
                            config_.frame_sink(index, report.last_frame);
                        frame_mark();
                        if (more_frames) fpga.begin_frame();
                    });
            } else {
                // Overlapped decode: each closed frame's capture detaches
                // from the pipeline so finalize (the whole fixed-point
                // decode) runs on a worker while the next frame's samples
                // stream into fresh bins. With decode_workers > 1 the
                // finalizes run concurrently on private pipelines (same
                // config → bit-identical integer decode) and the emitter
                // turnstile restores frame order.
                struct Job {
                    std::size_t index = 0;
                    FpgaCapture capture;
                };
                DecodeChannel<Job> channel;
                const std::size_t workers_n = config_.decode_workers;
                const std::size_t buffers =
                    std::max(config_.decode_buffers, workers_n + 1);
                for (std::size_t i = 0; i + 1 < buffers; ++i)
                    channel.push_free(Job{});  // bins allocated on first recycle

                OrderTurnstile<> emitter;
                auto frame_mark = make_frame_marker();  // shared: called only
                                                        // inside the ordered
                                                        // emission section
                std::mutex failure_mutex;
                std::exception_ptr worker_failure;
                std::vector<std::thread> workers;
                workers.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    workers.emplace_back([&] {
                        try {
                            // Extra workers finalize on private pipelines;
                            // the single-worker path keeps using the shared
                            // one (finalize is thread-safe against the
                            // consumer's capture, one finalize at a time).
                            std::optional<FpgaPipeline> local;
                            FpgaPipeline* decoder = &fpga;
                            if (workers_n > 1) {
                                local.emplace(sequence_, layout_, config_.fpga);
                                decoder = &*local;
                            }
                            while (auto job = channel.pop_work()) {
                                const std::uint64_t t0 =
                                    tel_on ? telemetry::now_ns() : 0;
                                Frame decoded;
                                {
                                    auto decode_span = tel.span(kStageDecode);
                                    decoded = decoder->finalize_frame(job->capture);
                                }
                                if (tel_on)
                                    h_overlap.observe(telemetry::now_ns() - t0);
                                if (emitter.wait_turn(job->index)) {
                                    report.fpga = decoder->report();
                                    if (config_.frame_sink)
                                        config_.frame_sink(job->index, decoded);
                                    report.last_frame = std::move(decoded);
                                    frame_mark();
                                    emitter.advance();
                                }
                                channel.push_free(std::move(*job));
                            }
                        } catch (...) {
                            {
                                std::lock_guard lock(failure_mutex);
                                if (!worker_failure)
                                    worker_failure = std::current_exception();
                            }
                            emitter.abort();  // release peers waiting a turn
                            channel.abort();  // wake a consumer stuck in pop_free
                            while (channel.pop_work()) {
                            }  // drain handoffs until the consumer closes
                        }
                    });
                }
                bool decode_down = false;
                try {
                    consume(
                        [&](const Block& block) {
                            if (decode_down) return;
                            fpga.push_samples(std::span(block.data, block.size));
                        },
                        [&](std::size_t index, bool /*more_frames*/) {
                            if (decode_down) return;
                            WallTimer wait;
                            auto spent = channel.pop_free();
                            const double waited = wait.seconds();
                            report.decode_wait_seconds += waited;
                            if (tel_on)
                                h_dwait.observe(
                                    static_cast<std::uint64_t>(waited * 1e9));
                            if (!spent) {
                                decode_down = true;  // worker died; keep draining
                                return;
                            }
                            const std::size_t depth = channel.push_work(Job{
                                index, fpga.capture_frame(std::move(spent->capture))});
                            if (tel_on) {
                                g_decode_q.set(static_cast<std::int64_t>(depth));
                                h_decode_q.observe(depth);
                            }
                        });
                } catch (...) {
                    channel.close();
                    for (auto& worker : workers) worker.join();
                    throw;
                }
                channel.close();
                for (auto& worker : workers) worker.join();
                if (worker_failure) std::rethrow_exception(worker_failure);
            }
        } else {
            if (!config_.overlap_decode) {
                CpuBackend cpu(sequence_, layout_, config_.cpu_threads);
                if (faults != nullptr)
                    cpu.set_faults(faults, config_.cpu_max_retries,
                                   config_.cpu_retry_backoff_s);
                auto frame_mark = make_frame_marker();
                Frame accum(layout_);
                consume(
                    [&](const Block& block) {
                        const std::size_t record_in_period =
                            static_cast<std::size_t>(block.seq % records_per_period);
                        auto row = accum.record(record_in_period);
                        for (std::size_t i = 0; i < block.size; ++i)
                            row[i] += static_cast<double>(block.data[i]);
                    },
                    [&](std::size_t index, bool /*more_frames*/) {
                        report.last_frame = cpu.deconvolve(accum);
                        if (config_.frame_sink)
                            config_.frame_sink(index, report.last_frame);
                        frame_mark();
                        accum.fill(0.0);
                    });
                report.cpu_task_retries = cpu.task_retries();
            } else {
                // Overlapped decode: the consumer hands the accumulated
                // frame off and resumes popping into a recycled buffer.
                // Each worker deconvolves on its own backend (deconvolve is
                // one-frame-at-a-time per backend; the output is a pure
                // function of the frame, so any worker count is
                // bit-identical) and the emitter turnstile keeps results in
                // frame order.
                struct Job {
                    std::size_t index = 0;
                    Frame frame;
                };
                DecodeChannel<Job> channel;
                const std::size_t workers_n = config_.decode_workers;
                const std::size_t buffers =
                    std::max(config_.decode_buffers, workers_n + 1);
                for (std::size_t i = 0; i + 1 < buffers; ++i)
                    channel.push_free(Job{0, Frame(layout_)});
                Frame accum(layout_);

                // Split the decode thread budget across the workers; a
                // single worker keeps the exact configured count.
                const std::size_t total_threads =
                    config_.cpu_threads > 0
                        ? config_.cpu_threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
                const std::size_t per_worker =
                    workers_n > 1
                        ? std::max<std::size_t>(1, total_threads / workers_n)
                        : config_.cpu_threads;
                std::vector<std::unique_ptr<CpuBackend>> decoders;
                decoders.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    decoders.push_back(std::make_unique<CpuBackend>(
                        sequence_, layout_, per_worker));
                    if (faults != nullptr)
                        decoders.back()->set_faults(faults,
                                                    config_.cpu_max_retries,
                                                    config_.cpu_retry_backoff_s);
                }

                OrderTurnstile<> emitter;
                auto frame_mark = make_frame_marker();  // shared: called only
                                                        // inside the ordered
                                                        // emission section
                std::mutex failure_mutex;
                std::exception_ptr worker_failure;
                std::vector<std::thread> workers;
                workers.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    workers.emplace_back([&, w] {
                        try {
                            CpuBackend& decoder = *decoders[w];
                            while (auto job = channel.pop_work()) {
                                const std::uint64_t t0 =
                                    tel_on ? telemetry::now_ns() : 0;
                                Frame decoded;
                                {
                                    auto decode_span = tel.span(kStageDecode);
                                    decoded = decoder.deconvolve(job->frame);
                                }
                                if (tel_on)
                                    h_overlap.observe(telemetry::now_ns() - t0);
                                if (emitter.wait_turn(job->index)) {
                                    if (config_.frame_sink)
                                        config_.frame_sink(job->index, decoded);
                                    report.last_frame = std::move(decoded);
                                    frame_mark();
                                    emitter.advance();
                                }
                                job->frame.fill(0.0);
                                channel.push_free(std::move(*job));
                            }
                        } catch (...) {
                            {
                                std::lock_guard lock(failure_mutex);
                                if (!worker_failure)
                                    worker_failure = std::current_exception();
                            }
                            emitter.abort();
                            channel.abort();
                            while (channel.pop_work()) {
                            }
                        }
                    });
                }
                bool decode_down = false;
                try {
                    consume(
                        [&](const Block& block) {
                            if (decode_down) return;  // accum was handed off
                            const std::size_t record_in_period =
                                static_cast<std::size_t>(block.seq %
                                                         records_per_period);
                            auto row = accum.record(record_in_period);
                            for (std::size_t i = 0; i < block.size; ++i)
                                row[i] += static_cast<double>(block.data[i]);
                        },
                        [&](std::size_t index, bool more_frames) {
                            if (decode_down) return;
                            const std::size_t depth =
                                channel.push_work(Job{index, std::move(accum)});
                            if (tel_on) {
                                g_decode_q.set(static_cast<std::int64_t>(depth));
                                h_decode_q.observe(depth);
                            }
                            if (!more_frames) return;
                            WallTimer wait;
                            auto spent = channel.pop_free();
                            const double waited = wait.seconds();
                            report.decode_wait_seconds += waited;
                            if (tel_on)
                                h_dwait.observe(
                                    static_cast<std::uint64_t>(waited * 1e9));
                            if (!spent) {
                                decode_down = true;
                                return;
                            }
                            accum = std::move(spent->frame);
                        });
                } catch (...) {
                    channel.close();
                    for (auto& worker : workers) worker.join();
                    throw;
                }
                channel.close();
                for (auto& worker : workers) worker.join();
                if (worker_failure) std::rethrow_exception(worker_failure);
                for (const auto& decoder : decoders)
                    report.cpu_task_retries += decoder->task_retries();
            }
        }
    } catch (...) {
        failure = std::current_exception();
        // The producer only exits after delivering the sentinel: drain the
        // link (discarding records) so it can, then join it below.
        if (!stream_done) {
            for (;;) {
                auto block = ring.try_pop();
                if (!block) {
                    std::this_thread::yield();
                    continue;
                }
                if (block->end) break;
            }
        }
    }

    producer.join();
    if (failure) std::rethrow_exception(failure);
    // Lossless-handoff postconditions, degraded-mode aware: the ring fully
    // drained, every configured frame was closed, and nothing was dropped
    // unless a drop policy or an injected fault was in play.
    HTIMS_CHECK(ring.empty(), "stream fully drained at end of run");
    HTIMS_CHECK(report.frames == config_.frames, "every configured frame was closed");
    HTIMS_CHECK(report.records_dropped == 0 ||
                    config_.ring_policy != RingFullPolicy::kBlock ||
                    config_.ring_timeout_s > 0.0 || faults != nullptr,
                "unbounded Block policy without faults never drops records");
    report.wall_seconds = wall.seconds();
    report.producer_stall_seconds = producer_stall;
    report.samples = records_total * record_len;
    report.sample_rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.samples) / report.wall_seconds
            : 0.0;
    if (faults != nullptr) report.faults = faults->counts();
    if (tel_on) report.telemetry = tel.snapshot();
    return report;
}

}  // namespace htims::pipeline
