#include "pipeline/hybrid.hpp"

#include <cmath>
#include <thread>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

namespace {

/// One streamed block: a view into the replayed period template.
struct Block {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
};

}  // namespace

std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages) {
    HTIMS_EXPECTS(averages >= 1);
    std::vector<std::uint32_t> samples(raw.data().size());
    const double inv = 1.0 / static_cast<double>(averages);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double v = std::max(0.0, raw.data()[i] * inv);
        samples[i] = static_cast<std::uint32_t>(std::llround(v));
    }
    return samples;
}

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout,
                               std::vector<std::uint32_t> period_samples,
                               const HybridConfig& config)
    : sequence_(sequence),
      layout_(layout),
      period_samples_(std::move(period_samples)),
      config_(config) {
    if (period_samples_.size() != layout.cells())
        throw ConfigError("period sample template must have layout.cells() entries");
    if (config.frames == 0 || config.averages == 0)
        throw ConfigError("hybrid run needs frames >= 1 and averages >= 1");
}

HybridReport HybridPipeline::run() {
    const std::size_t record_len = layout_.mz_bins;
    const std::size_t records_per_period = layout_.drift_bins;
    const std::uint64_t records_total = static_cast<std::uint64_t>(config_.frames) *
                                        config_.averages * records_per_period;
    HTIMS_CHECK(record_len > 0 && records_per_period > 0, "stream layout is non-empty");
    HTIMS_CHECK(records_total > 0, "a hybrid run streams at least one record");

    auto& tel = telemetry::Registry::global();
    static auto& c_records = tel.counter("hybrid.records");
    static auto& c_frames = tel.counter("hybrid.frames");
    static auto& c_stalls = tel.counter("hybrid.producer_stalls");
    static auto& c_idles = tel.counter("hybrid.consumer_idles");
    static auto& g_ring = tel.gauge("hybrid.ring_occupancy");
    static auto& h_ring = tel.histogram("hybrid.ring_occupancy");
    static auto& h_stall = tel.histogram("hybrid.producer_stall_ns");
    static auto& h_idle = tel.histogram("hybrid.consumer_idle_ns");
    static auto& h_frame = tel.histogram("hybrid.frame_ns");
    static const auto kStageRun = tel.intern("hybrid.run");
    static const auto kStageFrame = tel.intern("hybrid.frame");
    const bool tel_on = telemetry::kCompiledIn && tel.enabled();
    auto run_span = tel.span(kStageRun);

    SpscRing<Block> ring(config_.ring_records);
    HybridReport report;
    report.last_frame = Frame(layout_);

    double producer_stall = 0.0;
    std::thread producer([&] {
        std::uint64_t sent = 0;
        while (sent < records_total) {
            const std::size_t record_in_period =
                static_cast<std::size_t>(sent % records_per_period);
            Block block{period_samples_.data() + record_in_period * record_len,
                        record_len};
            if (ring.try_push(std::move(block))) {
                ++sent;
            } else {
                WallTimer stall;
                do {
                    std::this_thread::yield();
                } while (!ring.try_push(Block{period_samples_.data() +
                                                  record_in_period * record_len,
                                              record_len}));
                const double stalled = stall.seconds();
                producer_stall += stalled;
                if (tel_on) {
                    c_stalls.increment();
                    h_stall.observe(static_cast<std::uint64_t>(stalled * 1e9));
                }
                ++sent;
            }
        }
    });

    WallTimer wall;
    const std::uint64_t records_per_frame =
        static_cast<std::uint64_t>(config_.averages) * records_per_period;

    // The consumer samples ring occupancy as it pops (the reading the
    // paper's backpressure argument cares about) and closes a stage span
    // per completed frame.
    std::uint64_t frame_start_ns = tel_on ? telemetry::now_ns() : 0;
    const auto frame_done = [&] {
        ++report.frames;
        if (!tel_on) return;
        c_frames.increment();
        const std::uint64_t now = telemetry::now_ns();
        h_frame.observe(now - frame_start_ns);
        tel.trace().record(telemetry::SpanEvent{
            kStageFrame, telemetry::thread_slot(), 1, frame_start_ns, now});
        frame_start_ns = now;
    };

    if (config_.backend == BackendKind::kFpga) {
        FpgaPipeline fpga(sequence_, layout_, config_.fpga);
        fpga.begin_frame();
        std::uint64_t received = 0;
        while (received < records_total) {
            auto block = ring.try_pop();
            if (!block) {
                WallTimer idle;
                while (!(block = ring.try_pop())) std::this_thread::yield();
                const double idled = idle.seconds();
                report.consumer_idle_seconds += idled;
                if (tel_on) {
                    c_idles.increment();
                    h_idle.observe(static_cast<std::uint64_t>(idled * 1e9));
                }
            }
            if (tel_on) {
                const auto depth = static_cast<std::int64_t>(ring.size());
                g_ring.set(depth);
                h_ring.observe(static_cast<std::uint64_t>(depth));
                c_records.increment();
            }
            fpga.push_samples(std::span(block->data, block->size));
            ++received;
            if (received % records_per_frame == 0) {
                report.last_frame = fpga.end_frame();
                report.fpga = fpga.report();
                frame_done();
                if (received < records_total) fpga.begin_frame();
            }
        }
    } else {
        CpuBackend cpu(sequence_, layout_, config_.cpu_threads);
        Frame accum(layout_);
        std::uint64_t received = 0;
        while (received < records_total) {
            auto block = ring.try_pop();
            if (!block) {
                WallTimer idle;
                while (!(block = ring.try_pop())) std::this_thread::yield();
                const double idled = idle.seconds();
                report.consumer_idle_seconds += idled;
                if (tel_on) {
                    c_idles.increment();
                    h_idle.observe(static_cast<std::uint64_t>(idled * 1e9));
                }
            }
            if (tel_on) {
                const auto depth = static_cast<std::int64_t>(ring.size());
                g_ring.set(depth);
                h_ring.observe(static_cast<std::uint64_t>(depth));
                c_records.increment();
            }
            const std::size_t record_in_period =
                static_cast<std::size_t>(received % records_per_period);
            auto row = accum.record(record_in_period);
            for (std::size_t i = 0; i < block->size; ++i)
                row[i] += static_cast<double>(block->data[i]);
            ++received;
            if (received % records_per_frame == 0) {
                report.last_frame = cpu.deconvolve(accum);
                accum.fill(0.0);
                frame_done();
            }
        }
    }

    producer.join();
    // Lossless-handoff postconditions: the consumer saw every record the
    // producer sent (the ring drained) and closed every configured frame.
    HTIMS_CHECK(ring.empty(), "stream fully drained at end of run");
    HTIMS_CHECK(report.frames == config_.frames, "every configured frame was closed");
    report.wall_seconds = wall.seconds();
    report.producer_stall_seconds = producer_stall;
    report.samples = records_total * record_len;
    report.sample_rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.samples) / report.wall_seconds
            : 0.0;
    if (tel_on) report.telemetry = tel.snapshot();
    return report;
}

}  // namespace htims::pipeline
