#include "pipeline/hybrid.hpp"

#include <algorithm>

#include "analysis/stage.hpp"
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "pipeline/stream_link.hpp"
#include "pipeline/turnstile.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::pipeline {

PeriodTemplateSource::PeriodTemplateSource(std::vector<std::uint32_t> period_samples,
                                           const FrameLayout& layout,
                                           std::uint64_t frames,
                                           std::uint64_t averages)
    : period_samples_(std::move(period_samples)),
      record_len_(layout.mz_bins),
      records_per_period_(layout.drift_bins),
      total_records_(frames * averages * layout.drift_bins) {
    if (period_samples_.size() != layout.cells())
        throw ConfigError("period sample template must have layout.cells() entries");
}

std::span<const std::uint32_t> PeriodTemplateSource::record(std::uint64_t seq) {
    const std::size_t record_in_period =
        static_cast<std::size_t>(seq % records_per_period_);
    return std::span(period_samples_.data() + record_in_period * record_len_,
                     record_len_);
}

std::span<const std::uint32_t> PeriodTemplateSource::record_block(
    std::uint64_t seq, std::size_t max_records) {
    // Rows are contiguous until the template wraps at the period boundary.
    const std::size_t record_in_period =
        static_cast<std::size_t>(seq % records_per_period_);
    const std::size_t k =
        std::min(max_records, records_per_period_ - record_in_period);
    return std::span(period_samples_.data() + record_in_period * record_len_,
                     k * record_len_);
}

std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages) {
    HTIMS_EXPECTS(averages >= 1);
    std::vector<std::uint32_t> samples(raw.data().size());
    const double inv = 1.0 / static_cast<double>(averages);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double v = std::max(0.0, raw.data()[i] * inv);
        samples[i] = static_cast<std::uint32_t>(std::llround(v));
    }
    return samples;
}

namespace {

void validate_hybrid_config(const HybridConfig& config) {
    if (config.frames == 0 || config.averages == 0)
        throw ConfigError("hybrid run needs frames >= 1 and averages >= 1");
    if (config.ring_timeout_s < 0.0)
        throw ConfigError("ring_timeout_s cannot be negative");
    if (config.cpu_max_retries < 0)
        throw ConfigError("cpu_max_retries cannot be negative");
    if (config.overlap_decode && config.decode_buffers < 2)
        throw ConfigError("overlap_decode needs decode_buffers >= 2");
    if (config.batch_records == 0)
        throw ConfigError("batch_records must be >= 1");
    if (config.decode_workers == 0)
        throw ConfigError("decode_workers must be >= 1");
}

}  // namespace

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout,
                               std::vector<std::uint32_t> period_samples,
                               const HybridConfig& config)
    : sequence_(sequence), layout_(layout), config_(config) {
    validate_hybrid_config(config);
    template_source_.emplace(std::move(period_samples), layout,
                             config.frames, config.averages);
    source_ = &*template_source_;
}

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout, RecordSource& source,
                               const HybridConfig& config)
    : sequence_(sequence), layout_(layout), source_(&source), config_(config) {
    validate_hybrid_config(config);
    const std::uint64_t expected = static_cast<std::uint64_t>(config.frames) *
                                   config.averages * layout.drift_bins;
    if (source.total_records() != expected)
        throw ConfigError("record source delivers " +
                          std::to_string(source.total_records()) +
                          " records; the configured run streams " +
                          std::to_string(expected));
}

HybridReport HybridPipeline::run() {
    const std::size_t record_len = layout_.mz_bins;
    const std::size_t records_per_period = layout_.drift_bins;
    const std::uint64_t records_total = static_cast<std::uint64_t>(config_.frames) *
                                        config_.averages * records_per_period;
    HTIMS_CHECK(record_len > 0 && records_per_period > 0, "stream layout is non-empty");
    HTIMS_CHECK(records_total > 0, "a hybrid run streams at least one record");

    auto& tel = telemetry::Registry::global();
    static auto& c_records = tel.counter("hybrid.records");
    static auto& c_frames = tel.counter("hybrid.frames");
    static auto& c_stalls = tel.counter("hybrid.producer_stalls");
    static auto& c_idles = tel.counter("hybrid.consumer_idles");
    static auto& c_rec_dropped = tel.counter("hybrid.records_dropped");
    static auto& c_frames_degraded = tel.counter("hybrid.frames_degraded");
    static auto& c_jitter = tel.counter("hybrid.link_jitter_events");
    static auto& g_ring = tel.gauge("hybrid.ring_occupancy");
    static auto& g_decode_q = tel.gauge("hybrid.decode_queue_depth");
    static auto& h_ring = tel.histogram("hybrid.ring_occupancy");
    static auto& h_decode_q = tel.histogram("hybrid.decode_queue_depth");
    static auto& h_stall = tel.histogram("hybrid.producer_stall_ns");
    static auto& h_idle = tel.histogram("hybrid.consumer_idle_ns");
    static auto& h_frame = tel.histogram("hybrid.frame_ns");
    static auto& h_overlap = tel.histogram("hybrid.decode_overlap_ns");
    static auto& h_dwait = tel.histogram("hybrid.decode_wait_ns");
    static auto& h_batch = tel.histogram("hybrid.batch_size");
    static const auto kStageRun = tel.intern("hybrid.run");
    static const auto kStageFrame = tel.intern("hybrid.frame");
    static const auto kStageDecode = tel.intern("hybrid.decode_worker");
    const bool tel_on = telemetry::kCompiledIn && tel.enabled();
    auto run_span = tel.span(kStageRun);

    SpscRing<Block> ring(config_.ring_records);
    HybridReport report;
    report.last_frame = Frame(layout_);
    HTIMS_CHECK(source_ != nullptr && source_->total_records() == records_total,
                "record source matches the configured stream");
    // Batch sizing: the producer stages up to batch_cap records per ring
    // publication and the consumer pops the same amount per protocol round
    // trip. batch_records = 1 restores the per-record transport exactly —
    // including its backpressure granularity (the consumer never holds
    // popped-but-unprocessed records).
    const std::size_t batch_cap =
        std::max<std::size_t>(1, std::min(config_.batch_records, ring.capacity()));
    const std::size_t consume_cap = batch_cap;
    // Ring capacity (rounded up to a power of two) + the producer's staged
    // batch + the consumer's popped batch + the blocks in either thread's
    // hands: the most record spans ever outstanding at once.
    source_->set_window(ring.capacity() + batch_cap + consume_cap + 2);

    fault::FaultInjector* faults = config_.faults;
    // kDropOldest: the producer cannot pop an SPSC ring, so it grants the
    // consumer a "drop credit" instead — the consumer discards its next
    // (i.e. oldest queued) record per credit, which is exactly the record
    // that has waited longest on the link.
    alignas(kCacheLine) std::atomic<std::uint64_t> drop_credits{0};

    const std::uint64_t records_per_frame =
        static_cast<std::uint64_t>(config_.averages) * records_per_period;

    // The transport protocol bodies live in pipeline/stream_link.hpp, shared
    // verbatim with the fleet runner; only the accounting hooks differ (the
    // hybrid path feeds the global telemetry registry and its report).
    const LinkParams link{record_len,
                          records_per_period,
                          records_total,
                          records_per_frame,
                          config_.frames,
                          batch_cap,
                          consume_cap,
                          config_.ring_policy,
                          config_.ring_timeout_s,
                          faults};

    double producer_stall = 0.0;
    std::thread producer([&] {
        produce_stream(ring, *source_, link, drop_credits,
                       ProducerHooks{
                           [&](double stalled) {
                               producer_stall += stalled;
                               if (tel_on) {
                                   c_stalls.increment();
                                   h_stall.observe(static_cast<std::uint64_t>(
                                       stalled * 1e9));
                               }
                           },
                           [&] {
                               if (tel_on) c_jitter.increment();
                           },
                       });
    });

    WallTimer wall;

    // Frame-completion telemetry mark. Whichever thread finishes decodes
    // owns one instance (the consumer synchronously, the decode worker in
    // overlap mode); each instance measures the gap between its own calls.
    const auto make_frame_marker = [&] {
        return [&, start_ns = tel_on ? telemetry::now_ns() : 0]() mutable {
            if (!tel_on) return;
            c_frames.increment();
            const std::uint64_t now = telemetry::now_ns();
            h_frame.observe(now - start_ns);
            tel.trace().record(telemetry::SpanEvent{
                kStageFrame, telemetry::thread_slot(), 1, start_ns, now});
            start_ns = now;
        };
    };

    // Backend-agnostic consumer: `accumulate` folds one record in,
    // `close_frame(index, more_frames)` finishes the frame currently being
    // assembled. The protocol body (consume_stream) lives in
    // pipeline/stream_link.hpp, shared with the fleet runner; the hooks
    // sample ring occupancy as it pops — the reading the paper's
    // backpressure argument cares about.
    bool stream_done = false;  // consumer saw the end sentinel
    const auto consume = [&](auto&& accumulate, auto&& close_frame) {
        const ConsumeTotals totals = consume_stream(
            ring, link, drop_credits, stream_done,
            std::forward<decltype(accumulate)>(accumulate),
            std::forward<decltype(close_frame)>(close_frame),
            ConsumerHooks{
                [&](double idled) {
                    report.consumer_idle_seconds += idled;
                    if (tel_on) {
                        c_idles.increment();
                        h_idle.observe(static_cast<std::uint64_t>(idled * 1e9));
                    }
                },
                [&](std::size_t got) {
                    if (tel_on) {
                        const auto depth = static_cast<std::int64_t>(ring.size());
                        g_ring.set(depth);
                        h_ring.observe(static_cast<std::uint64_t>(depth));
                        h_batch.observe(got);
                    }
                },
                [&] {
                    if (tel_on) c_records.increment();
                },
                [&](std::uint64_t n) {
                    if (tel_on) c_rec_dropped.add(static_cast<std::int64_t>(n));
                },
                [&] {
                    if (tel_on) c_frames_degraded.increment();
                },
            });
        report.frames += totals.frames_closed;
        report.records_dropped += totals.records_dropped;
        report.frames_degraded += totals.frames_degraded;
    };

    // Any consumer-side failure must still join the producer before it
    // propagates, and an overlap decode worker must be joined before its
    // channel leaves scope — hence the try blocks below.
    std::exception_ptr failure;
    try {
        if (config_.backend == BackendKind::kFpga) {
            FpgaPipeline fpga(sequence_, layout_, config_.fpga);
            if (faults != nullptr) fpga.set_faults(faults);
            fpga.begin_frame();
            if (!config_.overlap_decode) {
                auto frame_mark = make_frame_marker();
                consume(
                    [&](const Block& block) {
                        fpga.push_samples(std::span(block.data, block.size));
                    },
                    [&](std::size_t index, bool more_frames) {
                        report.last_frame = fpga.end_frame();
                        report.fpga = fpga.report();
                        if (config_.frame_sink)
                            config_.frame_sink(index, report.last_frame);
                        if (config_.analysis)
                            config_.analysis->analyze(0, index,
                                                      report.last_frame);
                        frame_mark();
                        if (more_frames) fpga.begin_frame();
                    });
            } else {
                // Overlapped decode: each closed frame's capture detaches
                // from the pipeline so finalize (the whole fixed-point
                // decode) runs on a worker while the next frame's samples
                // stream into fresh bins. With decode_workers > 1 the
                // finalizes run concurrently on private pipelines (same
                // config → bit-identical integer decode) and the emitter
                // turnstile restores frame order.
                struct Job {
                    std::size_t index = 0;
                    FpgaCapture capture;
                };
                DecodeChannel<Job> channel;
                const std::size_t workers_n = config_.decode_workers;
                const std::size_t buffers =
                    std::max(config_.decode_buffers, workers_n + 1);
                for (std::size_t i = 0; i + 1 < buffers; ++i)
                    channel.push_free(Job{});  // bins allocated on first recycle

                OrderTurnstile<> emitter;
                auto frame_mark = make_frame_marker();  // shared: called only
                                                        // inside the ordered
                                                        // emission section
                std::mutex failure_mutex;
                std::exception_ptr worker_failure;
                std::vector<std::thread> workers;
                workers.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    workers.emplace_back([&] {
                        try {
                            // Extra workers finalize on private pipelines;
                            // the single-worker path keeps using the shared
                            // one (finalize is thread-safe against the
                            // consumer's capture, one finalize at a time).
                            std::optional<FpgaPipeline> local;
                            FpgaPipeline* decoder = &fpga;
                            if (workers_n > 1) {
                                local.emplace(sequence_, layout_, config_.fpga);
                                decoder = &*local;
                            }
                            while (auto job = channel.pop_work()) {
                                const std::uint64_t t0 =
                                    tel_on ? telemetry::now_ns() : 0;
                                Frame decoded;
                                {
                                    auto decode_span = tel.span(kStageDecode);
                                    decoded = decoder->finalize_frame(job->capture);
                                }
                                if (tel_on)
                                    h_overlap.observe(telemetry::now_ns() - t0);
                                if (emitter.wait_turn(job->index)) {
                                    report.fpga = decoder->report();
                                    if (config_.frame_sink)
                                        config_.frame_sink(job->index, decoded);
                                    if (config_.analysis)
                                        config_.analysis->analyze(
                                            0, job->index, decoded);
                                    report.last_frame = std::move(decoded);
                                    frame_mark();
                                    emitter.advance();
                                }
                                channel.push_free(std::move(*job));
                            }
                        } catch (...) {
                            {
                                std::lock_guard lock(failure_mutex);
                                if (!worker_failure)
                                    worker_failure = std::current_exception();
                            }
                            emitter.abort();  // release peers waiting a turn
                            channel.abort();  // wake a consumer stuck in pop_free
                            while (channel.pop_work()) {
                            }  // drain handoffs until the consumer closes
                        }
                    });
                }
                bool decode_down = false;
                try {
                    consume(
                        [&](const Block& block) {
                            if (decode_down) return;
                            fpga.push_samples(std::span(block.data, block.size));
                        },
                        [&](std::size_t index, bool /*more_frames*/) {
                            if (decode_down) return;
                            WallTimer wait;
                            auto spent = channel.pop_free();
                            const double waited = wait.seconds();
                            report.decode_wait_seconds += waited;
                            if (tel_on)
                                h_dwait.observe(
                                    static_cast<std::uint64_t>(waited * 1e9));
                            if (!spent) {
                                decode_down = true;  // worker died; keep draining
                                return;
                            }
                            const std::size_t depth = channel.push_work(Job{
                                index, fpga.capture_frame(std::move(spent->capture))});
                            if (tel_on) {
                                g_decode_q.set(static_cast<std::int64_t>(depth));
                                h_decode_q.observe(depth);
                            }
                        });
                } catch (...) {
                    channel.close();
                    for (auto& worker : workers) worker.join();
                    throw;
                }
                channel.close();
                for (auto& worker : workers) worker.join();
                if (worker_failure) std::rethrow_exception(worker_failure);
            }
        } else {
            if (!config_.overlap_decode) {
                CpuBackend cpu(sequence_, layout_, config_.cpu_threads);
                if (faults != nullptr)
                    cpu.set_faults(faults, config_.cpu_max_retries,
                                   config_.cpu_retry_backoff_s);
                auto frame_mark = make_frame_marker();
                Frame accum(layout_);
                consume(
                    [&](const Block& block) {
                        const std::size_t record_in_period =
                            static_cast<std::size_t>(block.seq % records_per_period);
                        auto row = accum.record(record_in_period);
                        for (std::size_t i = 0; i < block.size; ++i)
                            row[i] += static_cast<double>(block.data[i]);
                    },
                    [&](std::size_t index, bool /*more_frames*/) {
                        report.last_frame = cpu.deconvolve(accum);
                        if (config_.frame_sink)
                            config_.frame_sink(index, report.last_frame);
                        if (config_.analysis)
                            config_.analysis->analyze(0, index,
                                                      report.last_frame);
                        frame_mark();
                        accum.fill(0.0);
                    });
                report.cpu_task_retries = cpu.task_retries();
            } else {
                // Overlapped decode: the consumer hands the accumulated
                // frame off and resumes popping into a recycled buffer.
                // Each worker deconvolves on its own backend (deconvolve is
                // one-frame-at-a-time per backend; the output is a pure
                // function of the frame, so any worker count is
                // bit-identical) and the emitter turnstile keeps results in
                // frame order.
                struct Job {
                    std::size_t index = 0;
                    Frame frame;
                };
                DecodeChannel<Job> channel;
                const std::size_t workers_n = config_.decode_workers;
                const std::size_t buffers =
                    std::max(config_.decode_buffers, workers_n + 1);
                for (std::size_t i = 0; i + 1 < buffers; ++i)
                    channel.push_free(Job{0, Frame(layout_)});
                Frame accum(layout_);

                // Split the decode thread budget across the workers; a
                // single worker keeps the exact configured count.
                const std::size_t total_threads =
                    config_.cpu_threads > 0
                        ? config_.cpu_threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency());
                const std::size_t per_worker =
                    workers_n > 1
                        ? std::max<std::size_t>(1, total_threads / workers_n)
                        : config_.cpu_threads;
                std::vector<std::unique_ptr<CpuBackend>> decoders;
                decoders.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    decoders.push_back(std::make_unique<CpuBackend>(
                        sequence_, layout_, per_worker));
                    if (faults != nullptr)
                        decoders.back()->set_faults(faults,
                                                    config_.cpu_max_retries,
                                                    config_.cpu_retry_backoff_s);
                }

                OrderTurnstile<> emitter;
                auto frame_mark = make_frame_marker();  // shared: called only
                                                        // inside the ordered
                                                        // emission section
                std::mutex failure_mutex;
                std::exception_ptr worker_failure;
                std::vector<std::thread> workers;
                workers.reserve(workers_n);
                for (std::size_t w = 0; w < workers_n; ++w) {
                    workers.emplace_back([&, w] {
                        try {
                            CpuBackend& decoder = *decoders[w];
                            while (auto job = channel.pop_work()) {
                                const std::uint64_t t0 =
                                    tel_on ? telemetry::now_ns() : 0;
                                Frame decoded;
                                {
                                    auto decode_span = tel.span(kStageDecode);
                                    decoded = decoder.deconvolve(job->frame);
                                }
                                if (tel_on)
                                    h_overlap.observe(telemetry::now_ns() - t0);
                                if (emitter.wait_turn(job->index)) {
                                    if (config_.frame_sink)
                                        config_.frame_sink(job->index, decoded);
                                    if (config_.analysis)
                                        config_.analysis->analyze(
                                            0, job->index, decoded);
                                    report.last_frame = std::move(decoded);
                                    frame_mark();
                                    emitter.advance();
                                }
                                job->frame.fill(0.0);
                                channel.push_free(std::move(*job));
                            }
                        } catch (...) {
                            {
                                std::lock_guard lock(failure_mutex);
                                if (!worker_failure)
                                    worker_failure = std::current_exception();
                            }
                            emitter.abort();
                            channel.abort();
                            while (channel.pop_work()) {
                            }
                        }
                    });
                }
                bool decode_down = false;
                try {
                    consume(
                        [&](const Block& block) {
                            if (decode_down) return;  // accum was handed off
                            const std::size_t record_in_period =
                                static_cast<std::size_t>(block.seq %
                                                         records_per_period);
                            auto row = accum.record(record_in_period);
                            for (std::size_t i = 0; i < block.size; ++i)
                                row[i] += static_cast<double>(block.data[i]);
                        },
                        [&](std::size_t index, bool more_frames) {
                            if (decode_down) return;
                            const std::size_t depth =
                                channel.push_work(Job{index, std::move(accum)});
                            if (tel_on) {
                                g_decode_q.set(static_cast<std::int64_t>(depth));
                                h_decode_q.observe(depth);
                            }
                            if (!more_frames) return;
                            WallTimer wait;
                            auto spent = channel.pop_free();
                            const double waited = wait.seconds();
                            report.decode_wait_seconds += waited;
                            if (tel_on)
                                h_dwait.observe(
                                    static_cast<std::uint64_t>(waited * 1e9));
                            if (!spent) {
                                decode_down = true;
                                return;
                            }
                            accum = std::move(spent->frame);
                        });
                } catch (...) {
                    channel.close();
                    for (auto& worker : workers) worker.join();
                    throw;
                }
                channel.close();
                for (auto& worker : workers) worker.join();
                if (worker_failure) std::rethrow_exception(worker_failure);
                for (const auto& decoder : decoders)
                    report.cpu_task_retries += decoder->task_retries();
            }
        }
    } catch (...) {
        failure = std::current_exception();
        // The producer only exits after delivering the sentinel: drain the
        // link (discarding records) so it can, then join it below.
        if (!stream_done) {
            for (;;) {
                auto block = ring.try_pop();
                if (!block) {
                    std::this_thread::yield();
                    continue;
                }
                if (block->end) break;
            }
        }
    }

    producer.join();
    if (failure) std::rethrow_exception(failure);
    // Lossless-handoff postconditions, degraded-mode aware: the ring fully
    // drained, every configured frame was closed, and nothing was dropped
    // unless a drop policy or an injected fault was in play.
    HTIMS_CHECK(ring.empty(), "stream fully drained at end of run");
    HTIMS_CHECK(report.frames == config_.frames, "every configured frame was closed");
    HTIMS_CHECK(report.records_dropped == 0 ||
                    config_.ring_policy != RingFullPolicy::kBlock ||
                    config_.ring_timeout_s > 0.0 || faults != nullptr,
                "unbounded Block policy without faults never drops records");
    report.wall_seconds = wall.seconds();
    report.producer_stall_seconds = producer_stall;
    report.samples = records_total * record_len;
    report.sample_rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.samples) / report.wall_seconds
            : 0.0;
    if (faults != nullptr) report.faults = faults->counts();
    if (tel_on) report.telemetry = tel.snapshot();
    return report;
}

}  // namespace htims::pipeline
