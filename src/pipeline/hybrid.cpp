#include "pipeline/hybrid.hpp"

#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace htims::pipeline {

namespace {

/// One streamed block: a view into the replayed period template.
struct Block {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
};

}  // namespace

std::vector<std::uint32_t> to_period_samples(const Frame& raw, std::size_t averages) {
    HTIMS_EXPECTS(averages >= 1);
    std::vector<std::uint32_t> samples(raw.data().size());
    const double inv = 1.0 / static_cast<double>(averages);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double v = std::max(0.0, raw.data()[i] * inv);
        samples[i] = static_cast<std::uint32_t>(std::llround(v));
    }
    return samples;
}

HybridPipeline::HybridPipeline(const prs::OversampledPrs& sequence,
                               const FrameLayout& layout,
                               std::vector<std::uint32_t> period_samples,
                               const HybridConfig& config)
    : sequence_(sequence),
      layout_(layout),
      period_samples_(std::move(period_samples)),
      config_(config) {
    if (period_samples_.size() != layout.cells())
        throw ConfigError("period sample template must have layout.cells() entries");
    if (config.frames == 0 || config.averages == 0)
        throw ConfigError("hybrid run needs frames >= 1 and averages >= 1");
}

HybridReport HybridPipeline::run() {
    const std::size_t record_len = layout_.mz_bins;
    const std::size_t records_per_period = layout_.drift_bins;
    const std::uint64_t records_total = static_cast<std::uint64_t>(config_.frames) *
                                        config_.averages * records_per_period;

    SpscRing<Block> ring(config_.ring_records);
    HybridReport report;
    report.last_frame = Frame(layout_);

    double producer_stall = 0.0;
    std::thread producer([&] {
        std::uint64_t sent = 0;
        while (sent < records_total) {
            const std::size_t record_in_period =
                static_cast<std::size_t>(sent % records_per_period);
            Block block{period_samples_.data() + record_in_period * record_len,
                        record_len};
            if (ring.try_push(std::move(block))) {
                ++sent;
            } else {
                WallTimer stall;
                do {
                    std::this_thread::yield();
                } while (!ring.try_push(Block{period_samples_.data() +
                                                  record_in_period * record_len,
                                              record_len}));
                producer_stall += stall.seconds();
                ++sent;
            }
        }
    });

    WallTimer wall;
    const std::uint64_t records_per_frame =
        static_cast<std::uint64_t>(config_.averages) * records_per_period;

    if (config_.backend == BackendKind::kFpga) {
        FpgaPipeline fpga(sequence_, layout_, config_.fpga);
        fpga.begin_frame();
        std::uint64_t received = 0;
        while (received < records_total) {
            auto block = ring.try_pop();
            if (!block) {
                WallTimer idle;
                while (!(block = ring.try_pop())) std::this_thread::yield();
                report.consumer_idle_seconds += idle.seconds();
            }
            fpga.push_samples(std::span(block->data, block->size));
            ++received;
            if (received % records_per_frame == 0) {
                report.last_frame = fpga.end_frame();
                report.fpga = fpga.report();
                ++report.frames;
                if (received < records_total) fpga.begin_frame();
            }
        }
    } else {
        CpuBackend cpu(sequence_, layout_, config_.cpu_threads);
        Frame accum(layout_);
        std::uint64_t received = 0;
        while (received < records_total) {
            auto block = ring.try_pop();
            if (!block) {
                WallTimer idle;
                while (!(block = ring.try_pop())) std::this_thread::yield();
                report.consumer_idle_seconds += idle.seconds();
            }
            const std::size_t record_in_period =
                static_cast<std::size_t>(received % records_per_period);
            auto row = accum.record(record_in_period);
            for (std::size_t i = 0; i < block->size; ++i)
                row[i] += static_cast<double>(block->data[i]);
            ++received;
            if (received % records_per_frame == 0) {
                report.last_frame = cpu.deconvolve(accum);
                accum.fill(0.0);
                ++report.frames;
            }
        }
    }

    producer.join();
    report.wall_seconds = wall.seconds();
    report.producer_stall_seconds = producer_stall;
    report.samples = records_total * record_len;
    report.sample_rate =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.samples) / report.wall_seconds
            : 0.0;
    return report;
}

}  // namespace htims::pipeline
