#include "pipeline/fpga.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "fault/fault.hpp"
#include "telemetry/telemetry.hpp"
#include "transform/fwht.hpp"

namespace htims::pipeline {

FpgaPipeline::FpgaPipeline(const prs::OversampledPrs& sequence, const FrameLayout& layout,
                           const FpgaConfig& config)
    : sequence_(sequence),
      base_(sequence.base()),
      layout_(layout),
      config_(config),
      order_(sequence.base().order()) {
    if (layout.drift_bins != sequence.length())
        throw ConfigError("frame drift bins must equal the sequence fine-grid length");
    if (config.clock_hz <= 0.0) throw ConfigError("FPGA clock must be positive");
    if (config.samples_per_cycle < 1 || config.butterflies_per_cycle < 1 ||
        config.deconv_engines < 1)
        throw ConfigError("FPGA parallelism parameters must be >= 1");
    validate(config.output_format);

    bins_.assign(layout.cells(), SaturatingAccumulator(config.accumulator_bits));
    const std::size_t n = base_.length();
    chan_.resize(n);
    pad_.resize(n + 1);
    w_.resize(n);
    if (sequence_.mode() == prs::GateMode::kStretched && sequence_.factor() > 1)
        zstack_.resize(sequence_.length());

    bram_bytes_used_ =
        layout.cells() * static_cast<std::size_t>(config.accumulator_bits) / 8 +
        static_cast<std::size_t>(config.deconv_engines) * (n + 1) * sizeof(std::int64_t);
    fits_bram_ = bram_bytes_used_ <= config.bram_bytes;
    report_.bram_bytes_used = bram_bytes_used_;
    report_.fits_bram = fits_bram_;

    HTIMS_CHECK(bins_.size() == layout.cells(), "one accumulator bin per frame cell");
    HTIMS_CHECK(n > 0 && pad_.size() == n + 1, "deconvolution scratch sized to sequence");
}

void FpgaPipeline::begin_frame() {
    for (auto& b : bins_) b.reset();
    stream_pos_ = 0;
    frame_samples_ = 0;
    capture_cycles_ = 0;
}

void FpgaPipeline::push_samples(std::span<const std::uint32_t> samples) {
    const std::size_t cells = bins_.size();
    HTIMS_DCHECK(stream_pos_ < cells, "stream cursor within the frame");
    for (std::uint32_t s : samples) {
        bins_[stream_pos_].add(static_cast<std::int64_t>(s));
        if (++stream_pos_ == cells) stream_pos_ = 0;  // next period, same map
    }
    frame_samples_ += samples.size();
    capture_cycles_ += (samples.size() +
                        static_cast<std::size_t>(config_.samples_per_cycle) - 1) /
                       static_cast<std::size_t>(config_.samples_per_cycle);
}

FpgaCapture FpgaPipeline::capture_frame(FpgaCapture reuse) {
    FpgaCapture capture;
    capture.bins = std::move(bins_);
    capture.capture_cycles = capture_cycles_;
    capture.frame_samples = frame_samples_;
    // A fired kFpgaOverrun models the decode window closing early. The
    // decision is drawn here — on the capture thread, once per frame, in
    // frame order — so the injector's per-site event sequence is identical
    // whether one or many workers run finalize, and identical to the
    // synchronous path (end_frame captures then finalizes).
    if (faults_ != nullptr) {
        const auto overrun = faults_->decide(fault::Site::kFpgaOverrun);
        if (overrun.fire) {
            capture.budget_overrun = true;
            capture.channel_limit = static_cast<std::size_t>(faults_->draw_below(
                fault::Site::kFpgaOverrun, overrun.event, layout_.mz_bins));
            auto& tel = telemetry::Registry::global();
            static auto& c_overruns = tel.counter("fpga.budget_overruns");
            c_overruns.increment();
        }
    }
    if (reuse.bins.size() == layout_.cells()) {
        bins_ = std::move(reuse.bins);
        for (auto& b : bins_) b.reset();
    } else {
        bins_.assign(layout_.cells(), SaturatingAccumulator(config_.accumulator_bits));
    }
    stream_pos_ = 0;
    frame_samples_ = 0;
    capture_cycles_ = 0;
    return capture;
}

void FpgaPipeline::integer_decode(const std::vector<std::int64_t>& y,
                                  std::vector<std::int64_t>& w_out) {
    const std::size_t n = base_.length();
    std::fill(pad_.begin(), pad_.end(), 0LL);
    const auto scatter = base_.scatter_index();
    const auto gather = base_.gather_index();
    for (std::size_t t = 0; t < n; ++t) pad_[scatter[t]] = y[t];
    transform::fwht_i64(pad_);
    for (std::size_t k = 0; k < n; ++k) w_out[k] = -pad_[gather[k]];
}

namespace {

/// Convert w = 2^(order-1) * x (exact integer) into the output Q-format,
/// with round-to-nearest and saturation — the output-register boundary.
double quantize_out(std::int64_t w, int order, const QFormat& fmt) {
    const int shift = order - 1;
    const double value = static_cast<double>(w) / static_cast<double>(1LL << shift);
    return Fixed(value, fmt).to_double();
}

}  // namespace

void FpgaPipeline::decode_channel_pulsed(const std::vector<SaturatingAccumulator>& bins,
                                         std::size_t mz, Frame& out) {
    const std::size_t n = base_.length();
    const auto f = static_cast<std::size_t>(sequence_.factor());
    const std::size_t m = layout_.mz_bins;
    // Hoisted bound for every bin index the phase loops touch below.
    HTIMS_DCHECK(f >= 1 && mz < m && (f * (n - 1) + (f - 1)) * m + mz < bins.size(),
                 "channel decode reads inside the bin array");
    for (std::size_t r = 0; r < f; ++r) {
        for (std::size_t q = 0; q < n; ++q)
            chan_[q] = bins[(f * q + r) * m + mz].value();
        integer_decode(chan_, w_);
        for (std::size_t p = 0; p < n; ++p)
            out.at(f * p + r, mz) = quantize_out(w_[p], order_, config_.output_format);
    }
}

void FpgaPipeline::decode_channel_stretched(
    const std::vector<SaturatingAccumulator>& bins, std::size_t mz, Frame& out) {
    const std::size_t n = base_.length();
    const auto f = static_cast<std::size_t>(sequence_.factor());
    const std::size_t m = layout_.mz_bins;
    HTIMS_DCHECK(f >= 1 && mz < m && (f * (n - 1) + (f - 1)) * m + mz < bins.size(),
                 "channel decode reads inside the bin array");
    HTIMS_DCHECK(zstack_.size() == f * n, "phase stack sized to F chip profiles");

    // Z_r in w-units (exact integers).
    for (std::size_t r = 0; r < f; ++r) {
        for (std::size_t q = 0; q < n; ++q)
            chan_[q] = bins[(f * q + r) * m + mz].value();
        integer_decode(chan_, w_);
        std::copy(w_.begin(), w_.end(), zstack_.begin() + static_cast<std::ptrdiff_t>(r * n));
    }
    const std::int64_t* w_total = zstack_.data() + (f - 1) * n;  // Z_{F-1}

    // Quiet-chip anchor.
    std::size_t q0 = 0;
    for (std::size_t q = 1; q < n; ++q)
        if (w_total[q] < w_total[q0]) q0 = q;

    // Integrate the circular difference equations per phase.
    std::vector<std::int64_t> d(n), p_r(n);
    std::int64_t sum_w = 0;
    for (std::size_t q = 0; q < n; ++q) sum_w += w_total[q];
    std::int64_t sum_p = 0;
    for (std::size_t r = 0; r < f; ++r) {
        const std::int64_t* zr = zstack_.data() + r * n;
        if (r == 0) {
            for (std::size_t q = 0; q < n; ++q) d[q] = zr[q] - w_total[(q + n - 1) % n];
        } else {
            const std::int64_t* zp = zstack_.data() + (r - 1) * n;
            for (std::size_t q = 0; q < n; ++q) d[q] = zr[q] - zp[q];
        }
        p_r[q0] = 0;
        for (std::size_t s = 1; s < n; ++s) {
            const std::size_t q = (q0 + s) % n;
            p_r[q] = p_r[(q0 + s - 1) % n] + d[q];
        }
        for (std::size_t p = 0; p < n; ++p) {
            // Stash the unanchored integral; constant added after the loop.
            out.at(f * p + r, mz) = static_cast<double>(p_r[p]);
            sum_p += p_r[p];
        }
    }
    // Distribute the constant so sum_r X_r matches W in the mean.
    const double alpha =
        static_cast<double>(sum_w - sum_p) / static_cast<double>(n * f);
    for (std::size_t p = 0; p < n; ++p)
        for (std::size_t r = 0; r < f; ++r) {
            const double w_val = out.at(f * p + r, mz) + alpha;
            out.at(f * p + r, mz) = quantize_out(
                static_cast<std::int64_t>(std::llround(w_val)), order_,
                config_.output_format);
        }
}

Frame FpgaPipeline::end_frame() { return finalize_frame(capture_frame()); }

Frame FpgaPipeline::finalize_frame(const FpgaCapture& capture) {
    auto& tel = telemetry::Registry::global();
    static const auto kStageFrame = tel.intern("fpga.end_frame");
    auto span = tel.span(kStageFrame);

    Frame out(layout_);
    const std::size_t n = base_.length();
    const auto f = static_cast<std::size_t>(sequence_.factor());
    const bool stretched = sequence_.mode() == prs::GateMode::kStretched && f > 1;

    FpgaCycleReport report{};
    report.bram_bytes_used = bram_bytes_used_;
    report.fits_bram = fits_bram_;
    report.capture_cycles = capture.capture_cycles;

    // A capture-time kFpgaOverrun means the decode window closed early: the
    // engine emits the frame with only the first `channels` m/z channels
    // decoded (the rest stay zero) rather than stalling capture of the next
    // frame. Cycle accounting below charges only the decoded channels.
    std::size_t channels = layout_.mz_bins;
    if (capture.budget_overrun) {
        channels = capture.channel_limit;
        report.budget_overrun = true;
    }
    report.channels_decoded = channels;

    for (std::size_t mz = 0; mz < channels; ++mz) {
        if (stretched)
            decode_channel_stretched(capture.bins, mz, out);
        else
            decode_channel_pulsed(capture.bins, mz, out);
    }

    // Saturation census.
    for (const auto& b : capture.bins) report.accumulator_saturations += b.saturations();

    // Cycle model: per channel, per phase: scatter N + gather N + butterflies;
    // stretched adds ~3 F N integer adds for the phase recombination.
    const std::uint64_t butterflies =
        static_cast<std::uint64_t>((n + 1) / 2) * static_cast<std::uint64_t>(order_);
    std::uint64_t per_phase = 2 * n + butterflies /
                                          static_cast<std::uint64_t>(
                                              config_.butterflies_per_cycle);
    std::uint64_t per_channel = per_phase * f;
    if (stretched) per_channel += 3 * f * n;
    HTIMS_DCHECK(per_channel > 0, "cycle model must charge every channel");
    report.deconv_cycles = per_channel * channels /
                           static_cast<std::uint64_t>(config_.deconv_engines);

    // Real-time cycle budget: the streamed periods occupy wall time
    // periods * period_s on the instrument; the fabric clock affords that
    // many cycles to capture and decode the frame.
    const double periods = layout_.cells() > 0
                               ? static_cast<double>(capture.frame_samples) /
                                     static_cast<double>(layout_.cells())
                               : 0.0;
    HTIMS_DCHECK(periods >= 0.0, "streamed period count cannot be negative");
    report.cycle_budget = static_cast<std::uint64_t>(
        periods * layout_.period_s() * config_.clock_hz);
    report_ = report;
    // Whole-run accounting for sustained_sample_rate(): frames differ (a
    // budget overrun decodes fewer channels), so the sustained figure must
    // average deconv cycles over every finalized frame, not quote the last.
    total_deconv_cycles_ += report.deconv_cycles;
    ++frames_finalized_;

    static auto& c_frames = tel.counter("fpga.frames");
    static auto& c_capture = tel.counter("fpga.capture_cycles");
    static auto& c_deconv = tel.counter("fpga.deconv_cycles");
    static auto& c_budget = tel.counter("fpga.cycle_budget");
    static auto& c_sat = tel.counter("fpga.accumulator_saturations");
    static auto& g_bram = tel.gauge("fpga.bram_bytes_used");
    c_frames.increment();
    c_capture.add(static_cast<std::int64_t>(report_.capture_cycles));
    c_deconv.add(static_cast<std::int64_t>(report_.deconv_cycles));
    c_budget.add(static_cast<std::int64_t>(report_.cycle_budget));
    c_sat.add(static_cast<std::int64_t>(report_.accumulator_saturations));
    g_bram.set(static_cast<std::int64_t>(report_.bram_bytes_used));
    return out;
}

double FpgaPipeline::sustained_sample_rate(std::size_t averages) const {
    const std::uint64_t per_frame =
        static_cast<std::uint64_t>(averages) * layout_.cells();
    const std::uint64_t capture_per_frame =
        (per_frame + static_cast<std::uint64_t>(config_.samples_per_cycle) - 1) /
        static_cast<std::uint64_t>(config_.samples_per_cycle);
    // The capture term covers `averages` periods of EVERY frame, so the
    // deconv term must cover the same frames. Quoting only the last frame's
    // report_.deconv_cycles overstated the sustained rate whenever an
    // earlier frame decoded more channels (e.g. the run ended on a
    // budget-overrun partial frame). With homogeneous frames the per-frame
    // terms cancel and the figure is unchanged.
    const std::uint64_t frames = std::max<std::uint64_t>(frames_finalized_, 1);
    const std::uint64_t deconv =
        frames_finalized_ > 0 ? total_deconv_cycles_ : report_.deconv_cycles;
    const std::uint64_t samples = per_frame * frames;
    const std::uint64_t total = capture_per_frame * frames + deconv;
    if (total == 0) return 0.0;
    return static_cast<double>(samples) * config_.clock_hz / static_cast<double>(total);
}

}  // namespace htims::pipeline
