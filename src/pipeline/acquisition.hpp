// acquisition.hpp — the data-capture simulation: instrument physics in,
// accumulated multiplexed frames out.
//
// This stage plays the role of the real instrument front-end feeding the
// hybrid pipeline. It composes the instrument models (ESI source, ion
// funnel trap, drift cell, TOF, detector) with a gate program — either
// conventional signal averaging (one packet per period) or a PRS-driven
// multiplexed program — and produces:
//   * the accumulated raw frame (detector counts, drift x m/z), and
//   * the noise-free ground-truth drift frame (what a perfect instrument
//     and decoder would recover), plus the effective per-bin gate weights,
// so every downstream experiment can measure fidelity, SNR and utilization
// against the same physical truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "instrument/detector.hpp"
#include "instrument/esi_source.hpp"
#include "instrument/ion_trap.hpp"
#include "instrument/mobility.hpp"
#include "instrument/tof.hpp"
#include "pipeline/frame.hpp"
#include "prs/oversampled.hpp"

namespace htims::pipeline {

/// Gate program family.
enum class AcquisitionMode {
    kSignalAveraging,  ///< one injection per drift period (conventional IMS)
    kMultiplexed,      ///< PRS-driven injections (HT-IMS)
};

/// How the funnel trap is emptied at each gate event.
enum class TrapReleaseMode {
    kFixedFill,    ///< constant accumulation time per release; uniform packets
    kVariableGap,  ///< release everything accumulated since the previous
                   ///< pulse; maximal utilization, non-uniform packets
};

/// Parameters of one acquisition program.
struct AcquisitionConfig {
    AcquisitionMode mode = AcquisitionMode::kMultiplexed;
    int sequence_order = 8;          ///< PRS order n (N = 2^n - 1 chips)
    int oversampling = 1;            ///< fine bins per chip (modified PRS if > 1)
    prs::GateMode gate_mode = prs::GateMode::kPulsed;
    std::size_t averages = 1;        ///< periods accumulated into one frame
    bool use_trap = true;            ///< accumulate in the funnel trap
    TrapReleaseMode release_mode = TrapReleaseMode::kFixedFill;
    bool agc = false;                ///< automated gain control of fill time
    double gate_amplitude_jitter = 0.0;  ///< relative sigma of per-pulse amplitude
    double period_margin = 1.15;     ///< drift period / slowest drift time
    std::uint64_t seed = 1234;
};

/// Where one species should appear after deconvolution — used by detection
/// scoring in the experiments.
struct SpeciesTrace {
    std::string name;
    std::size_t drift_bin = 0;   ///< centroid fine drift bin
    double drift_sigma_bins = 0.0;
    std::size_t mz_bin = 0;      ///< monoisotopic peak m/z bin
    double expected_ions = 0.0;  ///< ions per release packet
};

/// Output of one acquisition.
struct AcquisitionResult {
    Frame raw;    ///< accumulated detector counts (multiplexed domain)
    Frame truth;  ///< expected per-release drift frame (ion units, noise-free)
    AlignedVector<double> gate_weights;  ///< effective kernel amplitude per fine
                                         ///< bin (1 = nominal packet); zero at
                                         ///< closed-gate bins
    std::vector<SpeciesTrace> traces;
    double duration_s = 0.0;        ///< wall time consumed (averages x period)
    double ions_sampled = 0.0;      ///< expected ions injected per frame
    double ions_available = 0.0;    ///< beam ions emitted during duration
    double duty_cycle = 0.0;        ///< injected-time fraction of the period
    double mean_packet_charges = 0.0;
    bool trap_saturated = false;

    double utilization() const {
        return ions_available > 0.0 ? ions_sampled / ions_available : 0.0;
    }
};

/// The acquisition engine. One engine owns a fixed instrument configuration
/// and gate program; acquire() may be called repeatedly (technical
/// replicates advance the RNG stream; LC time is an argument).
class AcquisitionEngine {
public:
    AcquisitionEngine(const instrument::DriftCellConfig& cell,
                      const instrument::TofConfig& tof,
                      const instrument::DetectorConfig& detector,
                      const instrument::IonTrapConfig& trap,
                      instrument::EsiSource source, const AcquisitionConfig& config);

    const FrameLayout& layout() const { return layout_; }
    const AcquisitionConfig& config() const { return config_; }
    const prs::OversampledPrs& sequence() const { return sequence_; }
    const instrument::EsiSource& source() const { return source_; }
    const instrument::DriftCell& cell() const { return cell_; }
    const instrument::TofAnalyzer& tof() const { return tof_; }

    /// Drift period chosen to contain the slowest species (seconds).
    double period_s() const { return layout_.period_s(); }

    /// Run one accumulated acquisition starting at experiment time t.
    AcquisitionResult acquire(double start_time_s = 0.0);

private:
    void deposit_species(const instrument::IonSpecies& ion, double ions_per_release,
                         double packet_charges, Frame& truth,
                         std::vector<SpeciesTrace>& traces) const;

    instrument::DriftCell cell_;
    instrument::TofAnalyzer tof_;
    instrument::Detector detector_;
    instrument::IonFunnelTrap trap_;
    instrument::EsiSource source_;
    AcquisitionConfig config_;
    prs::OversampledPrs sequence_;
    FrameLayout layout_;
    std::vector<std::size_t> pulse_bins_;  ///< fine-bin indices of gate events
    Rng rng_;
};

}  // namespace htims::pipeline
