#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace htims {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double RunningStats::variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s2 = 0.0;
    for (double x : xs) s2 += (x - m) * (x - m);
    return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double rmse(std::span<const double> a, std::span<const double> b) {
    HTIMS_EXPECTS(a.size() == b.size());
    if (a.empty()) return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return std::sqrt(s / static_cast<double>(a.size()));
}

double percentile(std::span<const double> xs, double p) {
    HTIMS_EXPECTS(p >= 0.0 && p <= 100.0);
    if (xs.empty()) return 0.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double mad_sigma(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    std::vector<double> tmp(xs.begin(), xs.end());
    const auto mid = tmp.begin() + static_cast<std::ptrdiff_t>(tmp.size() / 2);
    std::nth_element(tmp.begin(), mid, tmp.end());
    const double med = *mid;
    for (double& t : tmp) t = std::abs(t - med);
    std::nth_element(tmp.begin(), mid, tmp.end());
    return 1.4826 * *mid;
}

namespace {
double spectrum_median(std::span<const double> xs) {
    std::vector<double> tmp(xs.begin(), xs.end());
    const auto mid = tmp.begin() + static_cast<std::ptrdiff_t>(tmp.size() / 2);
    std::nth_element(tmp.begin(), mid, tmp.end());
    return *mid;
}
}  // namespace

namespace {
// Noise estimate for SNR purposes: the scaled MAD is the first choice (robust
// against peaks), but on sparse records — e.g. zero-clamped ADC baselines
// where more than half the samples are exactly zero — the MAD collapses to 0
// and would inflate the SNR without bound. Fall back to the plain standard
// deviation in that case, which still sees sparse Poisson spikes.
double noise_sigma_for_snr(std::span<const double> xs) {
    const double robust = mad_sigma(xs);
    if (robust > 0.0) return robust;
    return stddev(xs);
}
}  // namespace

double spectrum_snr(std::span<const double> spectrum) {
    if (spectrum.empty()) return 0.0;
    const double baseline = spectrum_median(spectrum);
    const double noise = noise_sigma_for_snr(spectrum);
    const double peak = *std::max_element(spectrum.begin(), spectrum.end());
    if (noise <= 0.0) return peak > baseline ? std::numeric_limits<double>::infinity() : 0.0;
    return (peak - baseline) / noise;
}

double region_snr(std::span<const double> spectrum, std::size_t lo, std::size_t hi) {
    HTIMS_EXPECTS(lo < hi && hi <= spectrum.size());
    std::vector<double> outside;
    outside.reserve(spectrum.size() - (hi - lo));
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        if (i < lo || i >= hi) outside.push_back(spectrum[i]);
    const double baseline = outside.empty() ? 0.0 : spectrum_median(outside);
    const double noise = outside.empty() ? 0.0 : noise_sigma_for_snr(outside);
    double peak = spectrum[lo];
    for (std::size_t i = lo; i < hi; ++i) peak = std::max(peak, spectrum[i]);
    if (noise <= 0.0) return peak > baseline ? std::numeric_limits<double>::infinity() : 0.0;
    return (peak - baseline) / noise;
}

double correlation(std::span<const double> a, std::span<const double> b) {
    HTIMS_EXPECTS(a.size() == b.size());
    if (a.size() < 2) return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0) return 0.0;
    return sab / std::sqrt(saa * sbb);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
    HTIMS_EXPECTS(x.size() == y.size());
    HTIMS_EXPECTS(x.size() >= 2);
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
    }
    LinearFit fit;
    fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
    fit.intercept = my - fit.slope * mx;
    return fit;
}

}  // namespace htims
