// table.hpp — ASCII table and CSV emitters for the experiment harness.
//
// Every bench binary prints the rows/series of one paper table or figure;
// this keeps the formatting consistent and lets EXPERIMENTS.md be assembled
// by copy-paste from the bench output.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace htims {

/// A table cell: string, integer, or floating point (printed with the
/// column's precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned ASCII table with an optional title, emitted to any stream.
class Table {
public:
    explicit Table(std::string title = {}) : title_(std::move(title)) {}

    /// Set the header row. Must be called before adding rows.
    void set_header(std::vector<std::string> header);

    /// Set the number of digits printed after the decimal point for doubles
    /// (default 3).
    void set_precision(int digits) { precision_ = digits; }

    void add_row(std::vector<Cell> row);

    std::size_t rows() const { return rows_.size(); }

    /// Render as an aligned ASCII table.
    void print(std::ostream& os) const;

    /// Render as CSV (header + rows).
    void print_csv(std::ostream& os) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<Cell>> rows_;
    int precision_ = 3;
};

/// Format a double with fixed precision into a string (helper shared with
/// bench binaries that print free-form lines).
std::string format_double(double v, int precision = 3);

}  // namespace htims
