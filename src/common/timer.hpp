// timer.hpp — wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace htims {

/// Simple steady-clock stopwatch.
class WallTimer {
public:
    WallTimer() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }
    double millis() const { return seconds() * 1e3; }
    double micros() const { return seconds() * 1e6; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Items-per-second helper for throughput reporting.
inline double rate_per_second(std::uint64_t items, double seconds) {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
}

}  // namespace htims
