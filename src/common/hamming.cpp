// hamming.cpp — runtime-dispatched XOR-popcount (Hamming distance) kernels.
//
// The hyperdimensional analysis stage compares D-bit binary hypervectors
// (D/64 packed words) millions of times per screening run; the whole search
// is one XOR-popcount reduction per candidate. The kernels below follow
// fwht_batch.cpp's dispatch idiom: explicit AVX2 / AVX-512 / NEON variants
// behind one function pointer selected per process from common/simd.hpp's
// detected tier, plus a portable std::popcount kernel and a deliberately
// de-vectorized SWAR oracle.
//
// Every tier computes the exact same integer — popcount has no rounding —
// so cross-tier parity is structural, not coincidental. The AVX-512 variant
// needs the VPOPCNTQ extension (avx512vpopcntdq), which the repo's kAvx512
// tier (f/dq/vl) does not imply; hosts without it run that tier through the
// AVX2 nibble-LUT kernel.
#include "common/simd.hpp"

#include <bit>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#define HTIMS_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define HTIMS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace htims {

namespace {

using HammingKernel = std::uint64_t (*)(const std::uint64_t*,
                                        const std::uint64_t*, std::size_t);

// Portable kernel: std::popcount lowers to the hardware POPCNT instruction
// where available. Unrolled x4 so the loads pipeline.
std::uint64_t hamming_generic(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) {
    std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        t0 += static_cast<std::uint64_t>(std::popcount(a[i + 0] ^ b[i + 0]));
        t1 += static_cast<std::uint64_t>(std::popcount(a[i + 1] ^ b[i + 1]));
        t2 += static_cast<std::uint64_t>(std::popcount(a[i + 2] ^ b[i + 2]));
        t3 += static_cast<std::uint64_t>(std::popcount(a[i + 3] ^ b[i + 3]));
    }
    for (; i < words; ++i)
        t0 += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return t0 + t1 + t2 + t3;
}

#if HTIMS_SIMD_X86

// Mula's nibble-LUT popcount: pshufb maps each 4-bit half-byte to its bit
// count, psadbw horizontally sums the 32 byte counts into four u64 lanes.
__attribute__((target("avx2"))) std::uint64_t hamming_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i x = _mm256_xor_si256(va, vb);
        const __m256i lo = _mm256_and_si256(x, low_mask);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi16(x, 4), low_mask);
        const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                               _mm256_shuffle_epi8(lut, hi));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < words; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

// Native 64-bit vector popcount: one VPOPCNTQ per eight words.
__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
hamming_avx512(const std::uint64_t* a, const std::uint64_t* b,
               std::size_t words) {
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= words; i += 8) {
        const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                           _mm512_loadu_si512(b + i));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    // Not _mm512_reduce_add_epi64: its GCC expansion goes through
    // _mm256_undefined_si256(), which -Werror=uninitialized rejects.
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    std::uint64_t total = 0;
    for (const std::uint64_t lane : lanes) total += lane;
    for (; i < words; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

#endif  // HTIMS_SIMD_X86

#if HTIMS_SIMD_NEON

// vcnt counts per byte; the widening pairwise-add ladder folds 16 byte
// counts into two u64 lanes without leaving the register file.
std::uint64_t hamming_neon(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 2 <= words; i += 2) {
        const uint8x16_t x =
            veorq_u8(vreinterpretq_u8_u64(vld1q_u64(a + i)),
                     vreinterpretq_u8_u64(vld1q_u64(b + i)));
        acc = vaddq_u64(
            acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(x)))));
    }
    std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < words; ++i)
        total += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
    return total;
}

#endif  // HTIMS_SIMD_NEON

HammingKernel kernel_for(SimdTier tier) {
    switch (tier) {
#if HTIMS_SIMD_X86
        case SimdTier::kAvx512:
            // The repo's kAvx512 tier is f/dq/vl; VPOPCNTQ ships separately
            // (Ice Lake+). Without it the AVX2 LUT kernel is the best fit.
            if (__builtin_cpu_supports("avx512vpopcntdq"))
                return hamming_avx512;
            return hamming_avx2;
        case SimdTier::kAvx2:
            return hamming_avx2;
#endif
#if HTIMS_SIMD_NEON
        case SimdTier::kNeon:
            return hamming_neon;
#endif
        default:
            return hamming_generic;
    }
}

}  // namespace

std::uint64_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words) {
    static const HammingKernel kernel = kernel_for(simd_tier());
    return kernel(a, b, words);
}

// SWAR popcount (no POPCNT instruction, no vector unit): the reference the
// kernels above are measured against. GCC would happily auto-vectorize this
// loop at -O2, which would make the "scalar" baseline a vector kernel in
// disguise — hence the per-function opt-out.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
std::uint64_t
hamming_distance_scalar(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t words) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < words; ++i) {
        std::uint64_t v = a[i] ^ b[i];
        v -= (v >> 1) & 0x5555555555555555ULL;
        v = (v & 0x3333333333333333ULL) + ((v >> 2) & 0x3333333333333333ULL);
        v = (v + (v >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
        total += (v * 0x0101010101010101ULL) >> 56;
    }
    return total;
}

std::optional<std::uint64_t> hamming_distance_at_tier(SimdTier tier,
                                                      const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      std::size_t words) {
    switch (tier) {
        case SimdTier::kGeneric:
            return hamming_generic(a, b, words);
#if HTIMS_SIMD_X86
        case SimdTier::kAvx2:
            if (!__builtin_cpu_supports("avx2")) return std::nullopt;
            return hamming_avx2(a, b, words);
        case SimdTier::kAvx512:
            if (!__builtin_cpu_supports("avx512f") ||
                !__builtin_cpu_supports("avx512vpopcntdq"))
                return std::nullopt;
            return hamming_avx512(a, b, words);
#endif
#if HTIMS_SIMD_NEON
        case SimdTier::kNeon:
            return hamming_neon(a, b, words);
#endif
        default:
            return std::nullopt;
    }
}

}  // namespace htims
