// statistics.hpp — descriptive statistics and signal-quality metrics.
//
// Used throughout the evaluation harness: SNR estimation from deconvolved
// drift spectra, reconstruction RMSE, percentiles for latency reporting, and
// Welford-style running moments for streaming use.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace htims {

/// Numerically stable running mean/variance (Welford). Suitable for long
/// streaming accumulations where naive sum-of-squares would lose precision.
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Arithmetic mean of a span (0 for empty input).
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two values.
double stddev(std::span<const double> xs);

/// Root-mean-square difference between two equal-length signals.
double rmse(std::span<const double> a, std::span<const double> b);

/// Linear interpolation percentile, p in [0,100]. Copies and sorts.
double percentile(std::span<const double> xs, double p);

/// Median absolute deviation scaled to estimate sigma for Gaussian noise
/// (x1.4826). Robust baseline-noise estimator for spectra containing peaks.
double mad_sigma(std::span<const double> xs);

/// Peak signal-to-noise ratio of a spectrum: (max - baseline) / noise_sigma,
/// where the baseline and noise sigma are estimated robustly (median and
/// MAD) over the whole spectrum. This mirrors how IMS papers quote SNR for
/// a known analyte peak.
double spectrum_snr(std::span<const double> spectrum);

/// SNR of a specific region: peak height above baseline at [lo, hi) divided
/// by the robust noise sigma of everything outside the region.
double region_snr(std::span<const double> spectrum, std::size_t lo, std::size_t hi);

/// Pearson correlation of two equal-length signals; 0 if degenerate.
double correlation(std::span<const double> a, std::span<const double> b);

/// Simple ordinary least squares fit y = a + b x; returns {a, b}.
struct LinearFit {
    double intercept = 0.0;
    double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace htims
