// aligned_buffer.hpp — cache-line / SIMD aligned contiguous storage.
//
// Spectra and frames are large flat arrays that are streamed through tight
// accumulation loops; 64-byte alignment keeps them friendly to vectorized
// code paths and avoids false sharing when threads own disjoint slices.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace htims {

inline constexpr std::size_t kCacheLine = 64;

/// Minimal allocator providing kCacheLine-aligned storage for std::vector.
template <typename T>
struct AlignedAllocator {
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

    T* allocate(std::size_t n) {
        if (n == 0) return nullptr;
        void* p = ::operator new(n * sizeof(T), std::align_val_t(kCacheLine));
        return static_cast<T*>(p);
    }

    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t(kCacheLine));
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U>&) const noexcept {
        return true;
    }
    template <typename U>
    bool operator!=(const AlignedAllocator<U>&) const noexcept {
        return false;
    }
};

/// Cache-aligned vector used for all hot-path numeric arrays.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace htims
