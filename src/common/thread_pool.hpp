// thread_pool.hpp — a small task pool with a blocked-range parallel_for.
//
// The CPU software component of the pipeline parallelises deconvolution over
// independent m/z channels; that decomposition needs nothing more exotic
// than a fork-join parallel_for with static chunking (the per-channel work
// is uniform). The pool is created once and reused so thread-creation cost
// never appears inside timed regions — the same discipline an OpenMP runtime
// applies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace htims {

/// Fixed-size worker pool. Tasks are std::function<void()>; wait_idle()
/// provides the join point for fork-join use.
class ThreadPool {
public:
    /// Create `threads` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueue one task.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.
    void wait_idle();

    /// Run fn(begin, end) over [0, n) split into roughly equal chunks, one
    /// per worker, and wait for completion. Runs inline when the pool has a
    /// single worker or n is small, so the call is always safe to nest in
    /// tests.
    void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

}  // namespace htims
