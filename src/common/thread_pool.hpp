// thread_pool.hpp — a small task pool with a blocked-range parallel_for.
//
// The CPU software component of the pipeline parallelises deconvolution over
// independent m/z channels; that decomposition needs nothing more exotic
// than a fork-join parallel_for with static chunking (the per-channel work
// is uniform). The pool is created once and reused so thread-creation cost
// never appears inside timed regions — the same discipline an OpenMP runtime
// applies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace htims {

/// Fixed-size worker pool. Tasks are std::function<void()>; wait_idle()
/// provides the join point for fork-join use.
///
/// Ownership and shutdown rule: the destructor drains the queue (it runs
/// every already-submitted task, then joins all workers), so a ThreadPool
/// member must be declared *after* any state its tasks touch — members are
/// destroyed in reverse declaration order, and the pool must die first.
/// Submitting from another thread concurrently with destruction is a caller
/// bug: there is no handshake that makes "submit vs. begin-shutdown" a race
/// the pool could win. Fork-join callers (parallel_for) never see this —
/// the call joins before returning.
class ThreadPool {
public:
    /// Create `threads` workers (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueue one task.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished.
    void wait_idle();

    /// Non-owning reference to a `void(std::size_t, std::size_t)` range
    /// body. parallel_for's template front-end erases the callable into this
    /// two-pointer view, so dispatching a loop costs no heap allocation and
    /// no std::function indirection per chunk. The referenced callable must
    /// outlive the parallel_for call (it always does — the call joins).
    class RangeBody {
    public:
        template <typename Fn>
            requires(!std::is_same_v<std::remove_cvref_t<Fn>, RangeBody>)
        explicit RangeBody(Fn& fn)
            : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
              invoke_([](void* obj, std::size_t begin, std::size_t end) {
                  (*static_cast<Fn*>(obj))(begin, end);
              }) {}

        void operator()(std::size_t begin, std::size_t end) const {
            invoke_(obj_, begin, end);
        }

    private:
        void* obj_;
        void (*invoke_)(void*, std::size_t, std::size_t);
    };

    /// Run fn(begin, end) over [0, n) and wait for completion. `grain` is
    /// the minimum number of indices per chunk: 0 (the default) balances
    /// chunks across workers and runs inline when n is too small to be worth
    /// a dispatch; an explicit grain declares "one grain of indices is
    /// already a task's worth of work" — chunks never shrink below it (so
    /// tile-granular loops don't over-chunk) and the loop is dispatched even
    /// for small n. Workers pull chunks from an atomic cursor through a
    /// fixed set of tasks, one per worker, so per-chunk cost is one
    /// fetch_add. Safe to nest: the single-worker/inline path recurses
    /// without touching the queue.
    template <typename Fn>
    void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
        RangeBody body(fn);
        parallel_for_impl(n, grain, body);
    }

private:
    void parallel_for_impl(std::size_t n, std::size_t grain, RangeBody body);
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

}  // namespace htims
