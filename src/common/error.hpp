// error.hpp — contract-checking macros and the library exception hierarchy.
//
// Follows the C++ Core Guidelines (I.6/I.8, E.x): preconditions are stated at
// the interface and violations surface as typed exceptions rather than UB.
#pragma once

#include <stdexcept>
#include <string>

namespace htims {

/// Base class for all htims errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
public:
    explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed (library bug or numeric breakdown).
class InvariantError : public Error {
public:
    explicit InvariantError(const std::string& what) : Error(what) {}
};

/// A configuration value is out of the supported range.
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* cond, const char* file, int line) {
    throw PreconditionError(std::string("precondition failed: ") + cond + " at " + file +
                            ":" + std::to_string(line));
}
[[noreturn]] inline void fail_ensures(const char* cond, const char* file, int line) {
    throw InvariantError(std::string("invariant failed: ") + cond + " at " + file + ":" +
                         std::to_string(line));
}
}  // namespace detail

}  // namespace htims

/// Check a documented precondition; throws htims::PreconditionError on failure.
#define HTIMS_EXPECTS(cond) \
    ((cond) ? void(0) : ::htims::detail::fail_expects(#cond, __FILE__, __LINE__))

/// Check an internal invariant; throws htims::InvariantError on failure.
#define HTIMS_ENSURES(cond) \
    ((cond) ? void(0) : ::htims::detail::fail_ensures(#cond, __FILE__, __LINE__))
