// fixed_point.hpp — software model of FPGA fixed-point (Q-format) arithmetic.
//
// The paper's FPGA component performs data capture, accumulation and
// deconvolution in fixed point. To answer the same questions the authors
// asked on the Cray XD1 — does the algorithm fit the word widths a Virtex-II
// Pro offers, and what precision penalty does fixed point incur? — we model
// Q(total_bits, frac_bits) two's-complement arithmetic with explicit,
// *saturating* overflow behaviour, exactly as a DSP48/BRAM datapath would be
// configured. The representation is runtime-parameterised (rather than a
// template on the widths) because the precision sweep in experiment E8 needs
// to iterate over formats.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace htims {

/// Describes a signed two's-complement Q-format: `total_bits` including the
/// sign bit, of which `frac_bits` are fractional.
struct QFormat {
    int total_bits = 32;
    int frac_bits = 16;

    constexpr double scale() const { return static_cast<double>(std::int64_t{1} << frac_bits); }
    constexpr std::int64_t max_raw() const { return (std::int64_t{1} << (total_bits - 1)) - 1; }
    constexpr std::int64_t min_raw() const { return -(std::int64_t{1} << (total_bits - 1)); }
    constexpr double max_value() const { return static_cast<double>(max_raw()) / scale(); }
    constexpr double min_value() const { return static_cast<double>(min_raw()) / scale(); }
    /// Quantization step (value of one LSB).
    constexpr double lsb() const { return 1.0 / scale(); }

    constexpr bool operator==(const QFormat&) const = default;
};

/// Validate that a format is representable in our 64-bit raw carrier.
inline void validate(const QFormat& q) {
    if (q.total_bits < 2 || q.total_bits > 63)
        throw ConfigError("QFormat total_bits must be in [2, 63]");
    if (q.frac_bits < 0 || q.frac_bits >= q.total_bits)
        throw ConfigError("QFormat frac_bits must be in [0, total_bits)");
}

/// A fixed-point value carried in 64 bits of raw integer, interpreted under
/// a QFormat. All operations saturate (never wrap), matching the saturating
/// accumulator configuration used for spectrum accumulation on the FPGA.
class Fixed {
public:
    Fixed() = default;
    Fixed(double v, QFormat q) : fmt_(q), raw_(quantize(v, q)) {}

    static Fixed from_raw(std::int64_t raw, QFormat q) {
        Fixed f;
        f.fmt_ = q;
        f.raw_ = clamp_raw(raw, q);
        return f;
    }

    QFormat format() const { return fmt_; }
    std::int64_t raw() const { return raw_; }
    double to_double() const { return static_cast<double>(raw_) / fmt_.scale(); }

    /// True if the value sits at either saturation rail.
    bool saturated() const { return raw_ == fmt_.max_raw() || raw_ == fmt_.min_raw(); }

    Fixed operator+(const Fixed& other) const {
        HTIMS_EXPECTS(fmt_ == other.fmt_);
        // 64-bit raw + 63-bit-max magnitudes cannot overflow int64 for
        // total_bits <= 62; for 63 we detect via __int128.
        const __int128 sum = static_cast<__int128>(raw_) + other.raw_;
        return from_raw(clamp128(sum, fmt_), fmt_);
    }

    Fixed operator-(const Fixed& other) const {
        HTIMS_EXPECTS(fmt_ == other.fmt_);
        const __int128 diff = static_cast<__int128>(raw_) - other.raw_;
        return from_raw(clamp128(diff, fmt_), fmt_);
    }

    /// Full-precision multiply then round-to-nearest rescale, as a DSP block
    /// with a wide product register followed by a shift would do.
    Fixed operator*(const Fixed& other) const {
        HTIMS_EXPECTS(fmt_ == other.fmt_);
        __int128 prod = static_cast<__int128>(raw_) * other.raw_;
        const int shift = fmt_.frac_bits;
        // round to nearest (add half LSB before shifting)
        const __int128 half = shift > 0 ? (static_cast<__int128>(1) << (shift - 1)) : 0;
        prod = (prod + (prod >= 0 ? half : -half)) >> shift;
        return from_raw(clamp128(prod, fmt_), fmt_);
    }

    bool operator==(const Fixed& other) const {
        return fmt_ == other.fmt_ && raw_ == other.raw_;
    }

private:
    static std::int64_t quantize(double v, QFormat q) {
        const double scaled = v * q.scale();
        if (std::isnan(scaled)) return 0;
        if (scaled >= static_cast<double>(q.max_raw())) return q.max_raw();
        if (scaled <= static_cast<double>(q.min_raw())) return q.min_raw();
        return static_cast<std::int64_t>(std::llround(scaled));
    }

    static std::int64_t clamp_raw(std::int64_t raw, QFormat q) {
        if (raw > q.max_raw()) return q.max_raw();
        if (raw < q.min_raw()) return q.min_raw();
        return raw;
    }

    static std::int64_t clamp128(__int128 v, QFormat q) {
        if (v > q.max_raw()) return q.max_raw();
        if (v < q.min_raw()) return q.min_raw();
        return static_cast<std::int64_t>(v);
    }

    QFormat fmt_{};
    std::int64_t raw_ = 0;
};

/// Saturating integer accumulator with a fixed word width — the model of one
/// BRAM-backed accumulation bin. Counts how many adds saturated so the
/// pipeline can report overflow pressure (the FPGA equivalent of an
/// overflow status register).
class SaturatingAccumulator {
public:
    explicit SaturatingAccumulator(int bits = 32) : bits_(bits) {
        if (bits < 2 || bits > 63) throw ConfigError("accumulator width must be in [2,63]");
        max_ = (std::int64_t{1} << (bits - 1)) - 1;
        min_ = -(std::int64_t{1} << (bits - 1));
    }

    void add(std::int64_t delta) {
        const __int128 sum = static_cast<__int128>(value_) + delta;
        if (sum > max_) {
            value_ = max_;
            ++saturations_;
        } else if (sum < min_) {
            value_ = min_;
            ++saturations_;
        } else {
            value_ = static_cast<std::int64_t>(sum);
        }
    }

    std::int64_t value() const { return value_; }
    std::uint64_t saturations() const { return saturations_; }
    int bits() const { return bits_; }

    void reset() {
        value_ = 0;
        saturations_ = 0;
    }

private:
    int bits_;
    std::int64_t max_ = 0;
    std::int64_t min_ = 0;
    std::int64_t value_ = 0;
    std::uint64_t saturations_ = 0;
};

}  // namespace htims
