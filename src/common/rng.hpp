// rng.hpp — deterministic, fast random number generation for simulation.
//
// The instrument models need reproducible noise streams that are cheap enough
// to draw per detector sample (GS/s-scale in simulated time). We implement
// xoshiro256** seeded via splitmix64 — the conventional pairing — plus the
// distribution helpers the signal models need (uniform, Gaussian, Poisson,
// exponential). std::mt19937_64 is deliberately avoided in inner loops: it is
// ~4x slower and its state is cache-hostile.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace htims {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush as a 64-bit mixer; see Vigna (2015).
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Period 2^256-1, jump-free use here;
/// independent streams are obtained by distinct seeds through splitmix64.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seed the generator; the same seed always yields the same stream.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
        // All-zero state is invalid for xoshiro; splitmix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() { return next_u64(); }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of resolution.
    double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection.
    std::uint64_t below(std::uint64_t n) {
        HTIMS_EXPECTS(n > 0);
        std::uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = (0 - n) % n;
            while (lo < threshold) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal deviate (Marsaglia polar; caches the spare value).
    double gaussian() {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double f = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * f;
        has_spare_ = true;
        return u * f;
    }

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

    /// Poisson deviate. Knuth's product method for small means, PTRS-like
    /// normal approximation with continuity correction above 30 (adequate
    /// for ion-counting statistics where lambda spans 0..1e6).
    std::uint64_t poisson(double lambda) {
        HTIMS_EXPECTS(lambda >= 0.0);
        if (lambda == 0.0) return 0;
        if (lambda < 30.0) {
            const double l = std::exp(-lambda);
            std::uint64_t k = 0;
            double p = 1.0;
            do {
                ++k;
                p *= uniform();
            } while (p > l);
            return k - 1;
        }
        // Normal approximation N(lambda, lambda), clamped at zero. The
        // relative error is < 1% for lambda > 30, well below the shot noise
        // the draw itself is modelling.
        const double x = gaussian(lambda, std::sqrt(lambda));
        return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }

    /// Binomial deviate: successes in n trials of probability p. Exact
    /// Bernoulli loop for small n, normal approximation with continuity
    /// correction for large n (adequate for accumulated counting detectors).
    std::uint64_t binomial(std::uint64_t n, double p) {
        HTIMS_EXPECTS(p >= 0.0 && p <= 1.0);
        if (n == 0 || p == 0.0) return 0;
        if (p == 1.0) return n;
        if (n <= 64) {
            std::uint64_t k = 0;
            for (std::uint64_t i = 0; i < n; ++i)
                if (bernoulli(p)) ++k;
            return k;
        }
        const double mean = static_cast<double>(n) * p;
        const double sigma = std::sqrt(mean * (1.0 - p));
        const double x = gaussian(mean, sigma);
        if (x <= 0.0) return 0;
        if (x >= static_cast<double>(n)) return n;
        return static_cast<std::uint64_t>(x + 0.5);
    }

    /// Exponential deviate with the given rate (events per unit).
    double exponential(double rate) {
        HTIMS_EXPECTS(rate > 0.0);
        double u;
        do {
            u = uniform();
        } while (u == 0.0);
        return -std::log(u) / rate;
    }

    /// Bernoulli draw with probability p of returning true.
    bool bernoulli(double p) { return uniform() < p; }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t s_[4]{};
    double spare_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace htims
