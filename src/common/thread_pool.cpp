#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace htims {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    HTIMS_EXPECTS(task != nullptr);
    auto& tel = telemetry::Registry::global();
    static auto& c_tasks = tel.counter("threadpool.tasks");
    static auto& g_depth = tel.gauge("threadpool.queue_depth");
    std::size_t depth;
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
        depth = tasks_.size();
    }
    c_tasks.increment();
    g_depth.set(static_cast<std::int64_t>(depth));
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for_impl(std::size_t n, std::size_t grain, RangeBody body) {
    if (n == 0) return;
    const std::size_t workers = size();
    const bool auto_grain = grain == 0;
    if (auto_grain) grain = 1;
    // ~4 chunks per worker for load balance, but never below the caller's
    // grain — an explicit grain marks the unit of work that is already
    // coarse enough to amortize one dispatch.
    const std::size_t chunk = std::max(grain, (n + 4 * workers - 1) / (4 * workers));
    const std::size_t chunks = (n + chunk - 1) / chunk;
    HTIMS_DCHECK(chunk >= 1 && chunk * chunks >= n, "chunking must cover [0, n)");
    if (workers <= 1 || chunks <= 1 || (auto_grain && n < 2 * workers)) {
        body(0, n);
        return;
    }
    // Shared loop state lives on this (joining) stack frame; each dispatched
    // task captures only its address, which fits std::function's small-buffer
    // storage — no per-chunk heap allocation.
    struct Shared {
        RangeBody body;
        std::size_t n;
        std::size_t chunk;
        std::atomic<std::size_t> cursor{0};
    } shared{body, n, chunk};
    const std::size_t tasks = std::min(workers, chunks);
    for (std::size_t i = 0; i < tasks; ++i) {
        submit([s = &shared] {
            for (;;) {
                const std::size_t begin =
                    s->cursor.fetch_add(s->chunk, std::memory_order_relaxed);
                if (begin >= s->n) return;
                s->body(begin, std::min(begin + s->chunk, s->n));
            }
        });
    }
    wait_idle();
}

void ThreadPool::worker_loop() {
    auto& tel = telemetry::Registry::global();
    static auto& h_task = tel.histogram("threadpool.task_ns");
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        if (telemetry::kCompiledIn && tel.enabled()) {
            const std::uint64_t t0 = telemetry::now_ns();
            task();
            h_task.observe(telemetry::now_ns() - t0);
        } else {
            task();
        }
        {
            std::lock_guard lock(mutex_);
            HTIMS_CHECK(in_flight_ > 0, "task completion without a matching submit");
            --in_flight_;
            if (in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

}  // namespace htims
