#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace htims {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    HTIMS_EXPECTS(task != nullptr);
    auto& tel = telemetry::Registry::global();
    static auto& c_tasks = tel.counter("threadpool.tasks");
    static auto& g_depth = tel.gauge("threadpool.queue_depth");
    std::size_t depth;
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
        depth = tasks_.size();
    }
    c_tasks.increment();
    g_depth.set(static_cast<std::int64_t>(depth));
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t workers = size();
    if (workers <= 1 || n < 2 * workers) {
        fn(0, n);
        return;
    }
    const std::size_t chunk = (n + workers - 1) / workers;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, n);
        submit([&fn, begin, end] { fn(begin, end); });
    }
    wait_idle();
}

void ThreadPool::worker_loop() {
    auto& tel = telemetry::Registry::global();
    static auto& h_task = tel.histogram("threadpool.task_ns");
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        if (telemetry::kCompiledIn && tel.enabled()) {
            const std::uint64_t t0 = telemetry::now_ns();
            task();
            h_task.observe(telemetry::now_ns() - t0);
        } else {
            task();
        }
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

}  // namespace htims
