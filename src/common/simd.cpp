#include "common/simd.hpp"

#include <cstdlib>
#include <string>

namespace htims {

namespace {

SimdTier detect() {
#if defined(__aarch64__)
    // NEON (ASIMD) is architecturally mandatory on aarch64.
    return SimdTier::kNeon;
#elif defined(__x86_64__) || defined(__i386__)
    // The batched FWHT uses only f/dq subsets of AVX-512; vl is required so
    // the compiler may mix 256-bit ops freely inside the same kernel.
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
        return SimdTier::kAvx512;
    if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
    return SimdTier::kGeneric;
#else
    return SimdTier::kGeneric;
#endif
}

// Rank used for the "downgrade only" rule: an env request is honored only if
// the detected tier is a superset of the requested one.
int tier_rank(SimdTier t) {
    switch (t) {
        case SimdTier::kGeneric: return 0;
        case SimdTier::kAvx2: return 1;
        case SimdTier::kAvx512: return 2;
        case SimdTier::kNeon: return 1;  // generic < neon; no x86 relation
    }
    return 0;
}

bool same_family(SimdTier a, SimdTier b) {
    const bool a_neon = a == SimdTier::kNeon;
    const bool b_neon = b == SimdTier::kNeon;
    return a == SimdTier::kGeneric || b == SimdTier::kGeneric || a_neon == b_neon;
}

SimdTier apply_env(SimdTier detected) {
    const char* env = std::getenv("HTIMS_SIMD");
    if (env == nullptr || *env == '\0') return detected;
    const std::string want(env);
    SimdTier requested = detected;
    if (want == "generic" || want == "scalar")
        requested = SimdTier::kGeneric;
    else if (want == "avx2")
        requested = SimdTier::kAvx2;
    else if (want == "avx512")
        requested = SimdTier::kAvx512;
    else if (want == "neon")
        requested = SimdTier::kNeon;
    else
        return detected;  // unknown value: ignore rather than crash mid-run
    if (!same_family(requested, detected) || tier_rank(requested) > tier_rank(detected))
        return detected;
    return requested;
}

}  // namespace

SimdTier simd_tier() {
    static const SimdTier tier = apply_env(detect());
    return tier;
}

const char* simd_tier_name(SimdTier tier) {
    switch (tier) {
        case SimdTier::kGeneric: return "generic";
        case SimdTier::kAvx2: return "avx2";
        case SimdTier::kAvx512: return "avx512";
        case SimdTier::kNeon: return "neon";
    }
    return "unknown";
}

std::size_t simd_register_lanes(SimdTier tier) {
    switch (tier) {
        case SimdTier::kGeneric: return 1;
        case SimdTier::kAvx2: return 4;
        case SimdTier::kAvx512: return 8;
        case SimdTier::kNeon: return 2;
    }
    return 1;
}

std::size_t batch_lanes() {
    return simd_tier() == SimdTier::kAvx512 ? 8 : 4;
}

}  // namespace htims
