#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace htims {

namespace {
std::string render_cell(const Cell& c, int precision) {
    if (const auto* s = std::get_if<std::string>(&c)) return *s;
    if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
    return format_double(std::get<double>(c), precision);
}
}  // namespace

std::string format_double(double v, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void Table::set_header(std::vector<std::string> header) {
    HTIMS_EXPECTS(rows_.empty());
    header_ = std::move(header);
}

void Table::add_row(std::vector<Cell> row) {
    HTIMS_EXPECTS(header_.empty() || row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (std::size_t i = 0; i < row.size(); ++i) {
            r.push_back(render_cell(row[i], precision_));
            if (widths.size() <= i) widths.resize(i + 1);
            widths[i] = std::max(widths[i], r.back().size());
        }
        rendered.push_back(std::move(r));
    }

    if (!title_.empty()) os << "== " << title_ << " ==\n";
    auto print_sep = [&] {
        for (std::size_t w : widths) os << '+' << std::string(w + 2, '-');
        os << "+\n";
    };
    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& s = i < cells.size() ? cells[i] : std::string{};
            os << "| " << s << std::string(widths[i] - s.size() + 1, ' ');
        }
        os << "|\n";
    };
    print_sep();
    if (!header_.empty()) {
        print_row(header_);
        print_sep();
    }
    for (const auto& r : rendered) print_row(r);
    print_sep();
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i) os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!header_.empty()) emit(header_);
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (const auto& c : row) r.push_back(render_cell(c, precision_));
        emit(r);
    }
}

}  // namespace htims
