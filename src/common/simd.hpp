// simd.hpp — runtime CPU-dispatch shim for the batched (multi-lane) kernels.
//
// The batched deconvolution path widens its butterflies to L contiguous
// doubles per node; how wide L should be, and which kernel variant runs, is
// a property of the machine the binary lands on, not of the build. This shim
// detects the instruction set once (process lifetime), exposes the selected
// tier, and lets kernels hang their function-pointer tables off it. The
// environment variable HTIMS_SIMD ("generic", "avx2", "avx512", "neon") can
// *downgrade* the selection — useful for A/B benchmarking and for forcing
// the portable kernel through the sanitizer builds — but never upgrades past
// what the CPU reports.
#pragma once

#include <cstddef>

namespace htims {

/// Instruction-set tier the batched kernels dispatch on. Order matters on
/// x86: higher enum values are strict supersets.
enum class SimdTier : int {
    kGeneric = 0,  ///< portable auto-vectorizable C++
    kAvx2 = 1,     ///< 256-bit: 4 doubles per register
    kAvx512 = 2,   ///< 512-bit: 8 doubles per register
    kNeon = 3,     ///< aarch64: 2 doubles per register (always present)
};

/// Detected (and possibly env-downgraded) tier. Detection runs once; the
/// result is cached for the process lifetime, so kernels may safely build
/// static dispatch tables from it.
SimdTier simd_tier();

/// Human-readable tier name ("generic", "avx2", "avx512", "neon").
const char* simd_tier_name(SimdTier tier);

/// Doubles per SIMD register at a tier (1 for generic — scalar registers).
std::size_t simd_register_lanes(SimdTier tier);

/// Default lane count L for the batched deconvolution path on this machine:
/// 8 under AVX-512, otherwise 4 (two NEON registers / one AVX2 register /
/// a comfortably unrollable width for the portable kernel).
std::size_t batch_lanes();

}  // namespace htims
