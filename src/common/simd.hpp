// simd.hpp — runtime CPU-dispatch shim for the batched (multi-lane) kernels.
//
// The batched deconvolution path widens its butterflies to L contiguous
// doubles per node; how wide L should be, and which kernel variant runs, is
// a property of the machine the binary lands on, not of the build. This shim
// detects the instruction set once (process lifetime), exposes the selected
// tier, and lets kernels hang their function-pointer tables off it. The
// environment variable HTIMS_SIMD ("generic", "avx2", "avx512", "neon") can
// *downgrade* the selection — useful for A/B benchmarking and for forcing
// the portable kernel through the sanitizer builds — but never upgrades past
// what the CPU reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace htims {

/// Instruction-set tier the batched kernels dispatch on. Order matters on
/// x86: higher enum values are strict supersets.
enum class SimdTier : int {
    kGeneric = 0,  ///< portable auto-vectorizable C++
    kAvx2 = 1,     ///< 256-bit: 4 doubles per register
    kAvx512 = 2,   ///< 512-bit: 8 doubles per register
    kNeon = 3,     ///< aarch64: 2 doubles per register (always present)
};

/// Detected (and possibly env-downgraded) tier. Detection runs once; the
/// result is cached for the process lifetime, so kernels may safely build
/// static dispatch tables from it.
SimdTier simd_tier();

/// Human-readable tier name ("generic", "avx2", "avx512", "neon").
const char* simd_tier_name(SimdTier tier);

/// Doubles per SIMD register at a tier (1 for generic — scalar registers).
std::size_t simd_register_lanes(SimdTier tier);

/// Default lane count L for the batched deconvolution path on this machine:
/// 8 under AVX-512, otherwise 4 (two NEON registers / one AVX2 register /
/// a comfortably unrollable width for the portable kernel).
std::size_t batch_lanes();

/// XOR-popcount (Hamming) distance between two `words`-long packed bit
/// vectors — the inner loop of the hyperdimensional analysis stage
/// (src/analysis/). Dispatched once per process through the same
/// function-pointer-table idiom as the batched FWHT: generic
/// (std::popcount), AVX2 (pshufb nibble LUT + psadbw), AVX-512
/// (VPOPCNTQ when the CPU has avx512vpopcntdq, else the AVX2 kernel), NEON
/// (vcnt + pairwise widening adds). Every tier computes the exact integer
/// count, so results are bit-identical across tiers by construction — the
/// parity tests in tests/test_analysis_hd.cpp pin that.
std::uint64_t hamming_distance(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words);

/// Scalar oracle: SWAR popcount with auto-vectorization disabled, so it
/// stays an honest one-word-at-a-time baseline for the kernel benches and
/// the tier-parity tests even at -O2/-march=native.
std::uint64_t hamming_distance_scalar(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t words);

/// The Hamming kernel of one specific tier, for parity tests and A/B
/// benches. Returns nullopt when the host cannot execute `tier` (wrong
/// architecture family, or AVX-512 requested without avx512vpopcntdq —
/// partial-AVX-512 hosts run that tier through the AVX2 kernel instead).
std::optional<std::uint64_t> hamming_distance_at_tier(SimdTier tier,
                                                      const std::uint64_t* a,
                                                      const std::uint64_t* b,
                                                      std::size_t words);

}  // namespace htims
