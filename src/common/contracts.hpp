// contracts.hpp — zero-cost contract/invariant macros for the hot paths.
//
// Three tiers, chosen by how much the check may cost at the call site:
//
//   HTIMS_CHECK(cond, "msg")   always on, in every build type. On failure
//                              prints `file:line: CHECK failed: cond — msg`
//                              to stderr and aborts. For cold-path invariants
//                              (constructors, frame boundaries, shutdown)
//                              whose cost is invisible and whose violation
//                              means memory corruption is next.
//
//   HTIMS_DCHECK(cond, "msg")  compiled only in debug and sanitizer builds
//                              (see HTIMS_DCHECK_ENABLED below); in release
//                              it expands to nothing — not even an odr-use of
//                              its operands. For per-element hot-loop checks
//                              (ring indices, tile bounds, butterfly strides)
//                              that would cost real throughput if always on.
//
//   HTIMS_ASSUME(cond)         checked like a DCHECK in debug/sanitizer
//                              builds; in release it becomes an optimizer
//                              hint (`__builtin_unreachable` on the false
//                              branch) so the compiler can drop the bounds
//                              re-derivation the invariant makes redundant.
//                              Only for conditions *proved* elsewhere — an
//                              ASSUME that can be false is instant UB.
//
// Relation to common/error.hpp: HTIMS_EXPECTS/HTIMS_ENSURES remain the
// *API-boundary* contract — they throw typed exceptions the test suite and
// callers can catch, which is right for validating caller-supplied
// configuration. The macros here are the *internal* contract: a failure is a
// library bug, there is no meaningful recovery, and the process should stop
// at the first corrupted index rather than throw through code that never
// expected it. abort() also cooperates with sanitizers and death tests.
//
// ODR note: everything here is macros plus one `inline` cold function, so
// mixing TUs compiled with different HTIMS_DCHECK_ENABLED settings is safe —
// the macros expand per-TU and nothing about the expansion participates in
// the ABI (tests/test_contracts.cpp pins this down with a two-TU build).
#pragma once

#include <cstdio>
#include <cstdlib>

// HTIMS_DCHECK_ENABLED: 1 in debug builds (no NDEBUG) and in any sanitizer
// build (ASan/TSan define their own markers), 0 otherwise. Overridable from
// the command line (-DHTIMS_DCHECK_ENABLED=1) to get checked release builds.
#ifndef HTIMS_DCHECK_ENABLED
#if !defined(NDEBUG) || defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HTIMS_DCHECK_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HTIMS_DCHECK_ENABLED 1
#else
#define HTIMS_DCHECK_ENABLED 0
#endif
#else
#define HTIMS_DCHECK_ENABLED 0
#endif
#endif

namespace htims::detail {

// Cold, out-of-line-by-attribute failure path: the call site keeps only a
// compare-and-branch; formatting lives behind it. fprintf (not iostreams) so
// the message survives heap corruption and never allocates.
[[noreturn]] __attribute__((cold, noinline)) inline void contract_fail(
    const char* kind, const char* cond, const char* file, int line,
    const char* msg) noexcept {
    std::fprintf(stderr, "%s:%d: %s failed: %s%s%s\n", file, line, kind, cond,
                 (msg != nullptr && msg[0] != '\0') ? " — " : "", msg ? msg : "");
    std::fflush(stderr);
    std::abort();
}

}  // namespace htims::detail

// The optional trailing argument must be a string literal; `"" __VA_ARGS__`
// concatenates it with an empty literal (and is "" when omitted).
#define HTIMS_CHECK(cond, ...)                                             \
    (__builtin_expect(static_cast<bool>(cond), 1)                          \
         ? void(0)                                                         \
         : ::htims::detail::contract_fail("HTIMS_CHECK", #cond, __FILE__,  \
                                          __LINE__, "" __VA_ARGS__))

#if HTIMS_DCHECK_ENABLED
#define HTIMS_DCHECK(cond, ...)                                            \
    (__builtin_expect(static_cast<bool>(cond), 1)                          \
         ? void(0)                                                         \
         : ::htims::detail::contract_fail("HTIMS_DCHECK", #cond, __FILE__, \
                                          __LINE__, "" __VA_ARGS__))
#define HTIMS_ASSUME(cond)                                                 \
    (__builtin_expect(static_cast<bool>(cond), 1)                          \
         ? void(0)                                                         \
         : ::htims::detail::contract_fail("HTIMS_ASSUME", #cond, __FILE__, \
                                          __LINE__, ""))
#else
#define HTIMS_DCHECK(cond, ...) static_cast<void>(0)
#define HTIMS_ASSUME(cond) ((cond) ? void(0) : __builtin_unreachable())
#endif
