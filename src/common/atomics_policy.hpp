// atomics_policy.hpp — the atomics policy the lock-free protocols are
// templatized over.
//
// Every hand-rolled lock-free structure in this repo (SpscRing, the ordered-
// emission turnstile, TraceBuffer's publish path) is a class template taking
// an `Atomics` policy that supplies three things:
//
//   * `atomic<T>`  — the atomic cell type (std::atomic<T> in production,
//     htims::check's model::atomic in the model-checking harness);
//   * `var<T>`     — the plain-data cell type for non-atomic shared slots
//     (a transparent zero-cost wrapper in production; a race-checked shadow
//     cell under the model checker);
//   * named memory orders — one constant per happens-before edge of each
//     protocol, documented in DESIGN.md ("Memory model"). The constants are
//     the model checker's mutation surface: each seeded mutant in
//     src/check/mutants.hpp demotes exactly one of them and the `model`
//     gate in scripts/check.sh proves the checker catches every demotion.
//
// The default policy below compiles to *exactly* the code the protocols had
// before templatization — std::atomic cells, direct member access through
// inlined accessors, the same memory_order constants at the same call sites
// — so the production path has zero codegen change (pinned by the digest
// matrix and the bench smoke stage).
#pragma once

#include <atomic>
#include <utility>

namespace htims::common {

/// Transparent wrapper for a plain (non-atomic) shared slot. The accessors
/// are trivially inlined; under the model-checking policy the same call
/// sites hit a vector-clock race detector instead.
///
/// Access discipline: `store_plain` and `take_plain` are *write* accesses
/// (take moves the value out, mutating the source), `load_plain` is a read.
template <typename T>
class PlainVar {
public:
    PlainVar() = default;
    explicit PlainVar(T v) : value_(std::move(v)) {}

    void store_plain(T v) { value_ = std::move(v); }
    const T& load_plain() const { return value_; }
    T take_plain() { return std::move(value_); }

private:
    T value_{};
};

/// The production policy: real std::atomic, transparent plain slots, and
/// the canonical memory orders of every protocol edge.
struct StdAtomics {
    template <typename T>
    using atomic = std::atomic<T>;
    template <typename T>
    using var = PlainVar<T>;

    // --- SpscRing ---------------------------------------------------------
    /// Publishing side of the ring index protocol: the producer's head store
    /// after filling slots, and the consumer's tail store after draining
    /// them. Release, so the peer's acquire load sees the slot contents.
    static constexpr std::memory_order ring_publish = std::memory_order_release;
    /// The cached-peer-index refresh: the producer re-reading tail, the
    /// consumer re-reading head. Acquire, pairing with ring_publish.
    static constexpr std::memory_order ring_peer_acquire = std::memory_order_acquire;

    // --- OrderTurnstile ---------------------------------------------------
    /// The emitting worker's turn hand-off (fetch_add on the turn counter).
    /// Release, so the next emitter's acquire observe sees every write the
    /// previous emission made to the shared report state.
    static constexpr std::memory_order turnstile_advance = std::memory_order_release;
    /// A worker observing the turn counter (the load in wait_turn and the
    /// wait re-check). Acquire, pairing with turnstile_advance.
    static constexpr std::memory_order turnstile_observe = std::memory_order_acquire;

    // --- MpmcQueue --------------------------------------------------------
    /// A producer publishing a filled dispatch slot (and a consumer
    /// recycling a drained one): the per-slot ticket store after the payload
    /// write. Release, so the next claimant's acquire load of the ticket
    /// sees the payload (producer→consumer) or the drained slot
    /// (consumer→producer).
    static constexpr std::memory_order mpmc_slot_publish = std::memory_order_release;
    /// A claimant reading a slot's ticket to decide whether the slot is
    /// ready for it. Acquire, pairing with mpmc_slot_publish in both
    /// directions of the slot's life cycle.
    static constexpr std::memory_order mpmc_slot_acquire = std::memory_order_acquire;

    // --- TraceBuffer ------------------------------------------------------
    /// A writer publishing a filled span slot (the per-slot ready flag
    /// store). Release, so a snapshot's acquire sees the whole SpanEvent.
    static constexpr std::memory_order trace_publish = std::memory_order_release;
    /// A snapshot reading a slot's ready flag. Acquire, pairing with
    /// trace_publish.
    static constexpr std::memory_order trace_acquire = std::memory_order_acquire;
};

}  // namespace htims::common
