// tsan.hpp — ThreadSanitizer detection and annotation helpers.
//
// The repo's policy is to *fix* races, not suppress them; this header exists
// for the narrow residue where a race is intentional and correct by design
// (e.g. telemetry's approximate cross-thread snapshot reads, where a torn or
// stale value is an accepted part of the metric's contract). Annotating the
// exact function in source — with a comment justifying it — beats an external
// suppression file: the justification lives next to the code it excuses and
// goes stale loudly when the code changes.
//
// Every macro here compiles to nothing outside TSan builds.
#pragma once

// HTIMS_TSAN_ENABLED: 1 when the TU is compiled with -fsanitize=thread.
#if defined(__SANITIZE_THREAD__)
#define HTIMS_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HTIMS_TSAN_ENABLED 1
#else
#define HTIMS_TSAN_ENABLED 0
#endif
#else
#define HTIMS_TSAN_ENABLED 0
#endif

#if HTIMS_TSAN_ENABLED

// Function attribute: TSan does not instrument the annotated function's
// memory accesses. Use only on functions whose *entire* contract is an
// approximate racy read, never to hide a race inside otherwise-synchronized
// logic — and always with a comment saying why the race is benign.
#define HTIMS_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))

// Manual happens-before edge for synchronization TSan cannot see through
// (e.g. handoffs proved by an external protocol rather than by an atomic it
// watches). Pair a RELEASE on the publishing side with an ACQUIRE on the
// observing side, keyed on the same address.
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define HTIMS_TSAN_ACQUIRE(addr) __tsan_acquire(const_cast<void*>(static_cast<const void*>(addr)))
#define HTIMS_TSAN_RELEASE(addr) __tsan_release(const_cast<void*>(static_cast<const void*>(addr)))

#else

#define HTIMS_NO_SANITIZE_THREAD
#define HTIMS_TSAN_ACQUIRE(addr) static_cast<void>(0)
#define HTIMS_TSAN_RELEASE(addr) static_cast<void>(0)

#endif
