// Hyperdimensional analysis tests: the SIMD Hamming kernel's cross-tier
// parity contract, the spectrum encoder's determinism and similarity
// geometry, library identification, and — the tentpole claim — that the
// streaming stage's cluster assignments are bit-identical whichever
// pipeline path delivers the frames (synchronous consumer, overlapped
// decode with 1 or 2 workers, fleet streams over a shared pool) and
// whichever SIMD tier computes the distances.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/encoder.hpp"
#include "analysis/hypervector.hpp"
#include "analysis/library.hpp"
#include "analysis/stage.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "instrument/peptide_library.hpp"
#include "pipeline/fleet.hpp"
#include "pipeline/frame.hpp"
#include "pipeline/hybrid.hpp"
#include "prs/oversampled.hpp"

namespace htims::analysis {
namespace {

// ------------------------------------------------------ Hamming kernels ----

/// One-bit-at-a-time reference, deliberately naive.
std::uint64_t bitloop_distance(const std::vector<std::uint64_t>& a,
                               const std::vector<std::uint64_t>& b) {
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < a.size(); ++w) {
        std::uint64_t x = a[w] ^ b[w];
        for (int bit = 0; bit < 64; ++bit) total += (x >> bit) & 1u;
    }
    return total;
}

std::vector<std::uint64_t> random_words(std::size_t n, Rng& rng) {
    std::vector<std::uint64_t> v(n);
    for (auto& w : v) w = rng.next_u64();
    return v;
}

constexpr SimdTier kAllTiers[] = {SimdTier::kGeneric, SimdTier::kAvx2,
                                  SimdTier::kAvx512, SimdTier::kNeon};

TEST(Hamming, AllTiersMatchBitLoopOnRaggedLengths) {
    Rng rng(2026);
    // Lengths straddling every kernel's vector width and tail path.
    for (const std::size_t words :
         {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u, 64u}) {
        const auto a = random_words(words, rng);
        const auto b = random_words(words, rng);
        const std::uint64_t expect = bitloop_distance(a, b);
        EXPECT_EQ(hamming_distance(a.data(), b.data(), words), expect)
            << "dispatched kernel, words=" << words;
        EXPECT_EQ(hamming_distance_scalar(a.data(), b.data(), words), expect)
            << "scalar oracle, words=" << words;
        for (const SimdTier tier : kAllTiers) {
            const auto got =
                hamming_distance_at_tier(tier, a.data(), b.data(), words);
            if (!got) continue;  // tier not executable on this host
            EXPECT_EQ(*got, expect) << "tier " << simd_tier_name(tier)
                                    << ", words=" << words;
        }
    }
}

TEST(Hamming, MetricAxioms) {
    Rng rng(7);
    const std::size_t words = 64;  // 4096 bits
    const auto a = random_words(words, rng);
    const auto b = random_words(words, rng);
    const auto c = random_words(words, rng);
    EXPECT_EQ(hamming_distance(a.data(), a.data(), words), 0u);
    EXPECT_EQ(hamming_distance(a.data(), b.data(), words),
              hamming_distance(b.data(), a.data(), words));
    EXPECT_LE(hamming_distance(a.data(), c.data(), words),
              hamming_distance(a.data(), b.data(), words) +
                  hamming_distance(b.data(), c.data(), words));
}

// -------------------------------------------------------------- Encoder ----

std::vector<double> random_spectrum(std::size_t bins, Rng& rng) {
    std::vector<double> s(bins, 0.0);
    for (auto& v : s)
        if (rng.uniform() < 0.3) v = rng.uniform(1.0, 1000.0);
    return s;
}

TEST(SpectrumEncoder, DeterministicAcrossInstancesAndDims) {
    for (const std::size_t dim : {64u, 192u, 320u, 4096u}) {
        SpectrumEncoderConfig cfg;
        cfg.dim = dim;
        cfg.mz_bins = 32;
        const SpectrumEncoder e1(cfg);
        const SpectrumEncoder e2(cfg);
        Rng rng(dim);
        for (int i = 0; i < 4; ++i) {
            const auto spectrum = random_spectrum(cfg.mz_bins, rng);
            const Hypervector h1 = e1.encode(spectrum);
            EXPECT_EQ(h1, e2.encode(spectrum)) << "dim=" << dim;
            EXPECT_EQ(h1.bits(), dim);
        }
        // A different basis seed must produce a different code.
        cfg.seed = 43;
        const SpectrumEncoder e3(cfg);
        const auto spectrum = random_spectrum(cfg.mz_bins, rng);
        EXPECT_NE(e1.encode(spectrum), e3.encode(spectrum));
    }
}

TEST(SpectrumEncoder, SimilarSpectraEncodeCloserThanUnrelated) {
    SpectrumEncoderConfig cfg;
    cfg.dim = 4096;
    cfg.mz_bins = 64;
    const SpectrumEncoder enc(cfg);
    Rng rng(11);
    const auto base = random_spectrum(cfg.mz_bins, rng);
    auto nudged = base;  // +-10% intensity jitter, same peak set
    for (auto& v : nudged)
        if (v > 0.0) v *= rng.uniform(0.9, 1.1);
    const auto unrelated = random_spectrum(cfg.mz_bins, rng);
    const Hypervector hb = enc.encode(base);
    EXPECT_EQ(distance(hb, enc.encode(base)), 0u);
    EXPECT_LT(distance(hb, enc.encode(nudged)),
              distance(hb, enc.encode(unrelated)));
}

TEST(SpectrumEncoder, AllZeroSpectrumEncodesToZeroVector) {
    SpectrumEncoderConfig cfg;
    cfg.dim = 128;
    cfg.mz_bins = 16;
    const SpectrumEncoder enc(cfg);
    const Hypervector hv = enc.encode(std::vector<double>(16, 0.0));
    EXPECT_EQ(distance(hv, Hypervector(128)), 0u);
}

TEST(SpectrumEncoder, RejectsMalformedConfig) {
    SpectrumEncoderConfig cfg;
    cfg.dim = 100;  // not a multiple of 64
    EXPECT_THROW(SpectrumEncoder{cfg}, ConfigError);
    cfg.dim = 0;
    EXPECT_THROW(SpectrumEncoder{cfg}, ConfigError);
    cfg = {};
    cfg.mz_bins = 0;
    EXPECT_THROW(SpectrumEncoder{cfg}, ConfigError);
    cfg = {};
    cfg.levels = 1;
    EXPECT_THROW(SpectrumEncoder{cfg}, ConfigError);
    cfg = {};
    cfg.top_peaks = 0;
    EXPECT_THROW(SpectrumEncoder{cfg}, ConfigError);
}

// -------------------------------------------------------------- Library ----

TEST(SpectralLibrary, NearestFindsEveryEntryExactly) {
    SpectrumEncoderConfig cfg;
    cfg.dim = 2048;
    cfg.mz_bins = 128;
    const SpectrumEncoder enc(cfg);
    instrument::PeptideLibraryConfig lib_cfg;
    lib_cfg.count = 32;
    const auto mixture = instrument::make_tryptic_digest(lib_cfg);
    const SpectralLibrary library(enc, mixture);
    ASSERT_EQ(library.size(), 32u);
    for (std::size_t i = 0; i < library.size(); ++i) {
        // Re-encoding the reference spectrum must land back on entry i.
        const Match m = library.nearest(enc.encode(library.reference_spectrum(i)));
        EXPECT_EQ(m.index, i);
        EXPECT_EQ(m.distance, 0u);
    }
}

// ---------------------------------------------- stage determinism matrix ----
//
// One spec: PRS order 5, 8 m/z bins, 3 frames, CPU backend, a 16-entry
// library. Every delivery path must produce the same verdict digest because
// (a) each orchestrator calls analyze() from its ordered emission section
// and (b) Hamming distances are exact integers on every SIMD tier.

const prs::OversampledPrs& hd_sequence() {
    static const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    return seq;
}

pipeline::FrameLayout hd_layout() {
    return pipeline::FrameLayout{.drift_bins = hd_sequence().length(),
                                 .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
}

constexpr std::size_t kHdFrames = 3;

std::vector<std::uint32_t> hd_period() {
    std::vector<std::uint32_t> period(hd_layout().cells());
    Rng rng(99);
    for (auto& s : period) s = static_cast<std::uint32_t>(rng.below(500));
    return period;
}

AnalysisConfig hd_analysis_config() {
    AnalysisConfig cfg;
    cfg.encoder.dim = 256;
    cfg.encoder.mz_bins = hd_layout().mz_bins;
    return cfg;
}

struct StageFixture {
    std::unique_ptr<AnalysisStage> stage;
    std::unique_ptr<SpectralLibrary> library;
};

StageFixture make_stage() {
    StageFixture f;
    f.stage = std::make_unique<AnalysisStage>(hd_analysis_config());
    instrument::PeptideLibraryConfig lib_cfg;
    lib_cfg.count = 16;
    f.library = std::make_unique<SpectralLibrary>(
        f.stage->encoder(), instrument::make_tryptic_digest(lib_cfg));
    f.stage->set_library(f.library.get());
    return f;
}

/// Reference digest: decode the stream synchronously and feed the stage by
/// hand, in frame order.
std::uint64_t reference_digest() {
    const StageFixture f = make_stage();
    pipeline::HybridConfig cfg;
    cfg.backend = pipeline::BackendKind::kCpu;
    cfg.frames = kHdFrames;
    cfg.averages = 2;
    cfg.cpu_threads = 1;
    cfg.frame_sink = [&](std::size_t index, const pipeline::Frame& frame) {
        f.stage->analyze(0, index, frame);
    };
    pipeline::HybridPipeline pipe(hd_sequence(), hd_layout(), hd_period(), cfg);
    (void)pipe.run();
    return f.stage->digest();
}

std::uint64_t hybrid_digest(bool overlap, std::size_t workers) {
    const StageFixture f = make_stage();
    pipeline::HybridConfig cfg;
    cfg.backend = pipeline::BackendKind::kCpu;
    cfg.frames = kHdFrames;
    cfg.averages = 2;
    cfg.cpu_threads = 1;
    cfg.overlap_decode = overlap;
    cfg.decode_workers = workers;
    cfg.analysis = f.stage.get();
    pipeline::HybridPipeline pipe(hd_sequence(), hd_layout(), hd_period(), cfg);
    (void)pipe.run();
    return f.stage->digest();
}

TEST(AnalysisStage, DigestIdenticalAcrossHybridDeliveryPaths) {
    const std::uint64_t expect = reference_digest();
    EXPECT_EQ(hybrid_digest(false, 1), expect) << "sync consumer";
    EXPECT_EQ(hybrid_digest(true, 1), expect) << "overlap, 1 worker";
    EXPECT_EQ(hybrid_digest(true, 2), expect) << "overlap, 2 workers";
}

TEST(AnalysisStage, DigestIdenticalAcrossFleetWorkerCounts) {
    // Two streams sharing one stage; the digest folds verdicts per stream,
    // so it is invariant to decode-pool size, not to stream mixup.
    std::vector<std::uint64_t> digests;
    for (const std::size_t workers : {1u, 2u}) {
        const StageFixture f = make_stage();
        std::vector<pipeline::FleetStream> streams;
        for (std::size_t si = 0; si < 2; ++si) {
            pipeline::HybridConfig cfg;
            cfg.backend = pipeline::BackendKind::kCpu;
            cfg.frames = kHdFrames;
            cfg.averages = 2;
            cfg.cpu_threads = 1;
            cfg.analysis = f.stage.get();
            streams.push_back(pipeline::FleetStream{hd_sequence(), hd_layout(),
                                                    std::move(cfg), hd_period(),
                                                    nullptr});
        }
        pipeline::FleetConfig fc;
        fc.decode_workers = workers;
        pipeline::FleetRunner runner(std::move(streams), fc);
        (void)runner.run();
        const auto report = f.stage->report();
        EXPECT_EQ(report.frames, 2 * kHdFrames);
        digests.push_back(f.stage->digest());
    }
    EXPECT_EQ(digests[0], digests[1]);
}

TEST(AnalysisStage, PinnedDigest) {
    // Hard-pins the full chain — decode, m/z profile, encoding basis,
    // clustering, library search — against silent drift. Deterministic
    // across SIMD tiers (exact integer distances) and worker counts
    // (ordered emission); recompute deliberately if the encoding scheme
    // changes.
    EXPECT_EQ(reference_digest(), 13469511143880016653ULL);
}

TEST(AnalysisStage, ClustersRepeatedAndDistinctSpectra) {
    const StageFixture f = make_stage();
    pipeline::Frame a(hd_layout());
    Rng rng(5);
    for (std::size_t d = 0; d < a.drift_bins(); ++d)
        for (auto& v : a.record(d)) v = rng.uniform(0.0, 100.0);
    // A single-peak spectrum: its hypervector is one bound ID+level pair,
    // far from frame a's 8-peak majority bundle.
    pipeline::Frame b(hd_layout());
    for (std::size_t d = 0; d < b.drift_bins(); ++d)
        b.record(d)[0] = 50.0 + static_cast<double>(d);
    f.stage->analyze(0, 0, a);
    f.stage->analyze(0, 1, a);  // identical frame joins cluster 0 at distance 0
    const FrameVerdict vb = f.stage->analyze(0, 2, b);
    const auto report = f.stage->report();
    EXPECT_EQ(report.frames, 3u);
    EXPECT_EQ(report.clusters, 2u);
    EXPECT_EQ(report.verdicts[1].cluster, 0u);
    EXPECT_EQ(report.verdicts[1].cluster_distance, 0u);
    EXPECT_EQ(vb.cluster, 1u);
    EXPECT_TRUE(vb.searched);
}

}  // namespace
}  // namespace htims::analysis
