// Tests for src/instrument: drift-cell physics, TOF model, ESI source,
// funnel trap with AGC, detector statistics, and peptide libraries.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "instrument/constants.hpp"
#include "instrument/detector.hpp"
#include "instrument/esi_source.hpp"
#include "instrument/ion_trap.hpp"
#include "instrument/mobility.hpp"
#include "instrument/peptide_library.hpp"
#include "instrument/tof.hpp"

namespace htims::instrument {
namespace {

IonSpecies test_ion(double k0 = 1.1, int charge = 2, double mz = 650.0) {
    IonSpecies ion;
    ion.name = "test";
    ion.mz = mz;
    ion.charge = charge;
    ion.reduced_mobility = k0;
    ion.intensity = 1e5;
    return ion;
}

// ---------------------------------------------------------- DriftCell ----

TEST(DriftCell, DriftTimeFormula) {
    DriftCellConfig cfg;
    cfg.length_m = 1.0;
    cfg.voltage_v = 5000.0;
    cfg.pressure_torr = 4.0;
    cfg.temperature_k = 300.0;
    const DriftCell cell(cfg);
    const double k0 = 1.0;
    const double k = cell.mobility(k0);
    // t_d = L^2 / (K V), with K scaled from STP to cell conditions.
    EXPECT_NEAR(cell.drift_time(k0), 1.0 / (k * 5000.0), 1e-12);
    const double k_expected = 1e-4 * (760.0 / 4.0) * (300.0 / 273.15);
    EXPECT_NEAR(k, k_expected, 1e-9);
}

TEST(DriftCell, HigherMobilityArrivesSooner) {
    const DriftCell cell(DriftCellConfig{});
    EXPECT_LT(cell.drift_time(1.3), cell.drift_time(0.9));
}

TEST(DriftCell, LowerPressureShortensDrift) {
    DriftCellConfig lo, hi;
    lo.pressure_torr = 2.0;
    hi.pressure_torr = 8.0;
    EXPECT_LT(DriftCell(lo).drift_time(1.0), DriftCell(hi).drift_time(1.0));
}

TEST(DriftCell, DiffusionLimitedResolvingPowerScalesWithSqrtVoltageAndCharge) {
    DriftCellConfig cfg;
    const DriftCell cell(cfg);
    const double r1 = cell.diffusion_limited_resolving_power(1);
    const double r2 = cell.diffusion_limited_resolving_power(2);
    EXPECT_NEAR(r2 / r1, std::sqrt(2.0), 1e-9);

    DriftCellConfig cfg4 = cfg;
    cfg4.voltage_v *= 4.0;
    EXPECT_NEAR(DriftCell(cfg4).diffusion_limited_resolving_power(1) / r1, 2.0, 1e-9);
}

TEST(DriftCell, RealisticDriftTimeMagnitude) {
    // A 0.9 m tube at 4 Torr / 4 kV puts typical peptides at ~5-20 ms.
    const DriftCell cell(DriftCellConfig{});
    const double t = cell.drift_time(1.1);
    EXPECT_GT(t, 2e-3);
    EXPECT_LT(t, 50e-3);
}

TEST(DriftCell, CoulombTermZeroWithoutCharge) {
    const DriftCell cell(DriftCellConfig{});
    const auto r = cell.transit(test_ion(), 0.0);
    EXPECT_DOUBLE_EQ(r.sigma_coulomb_s, 0.0);
    EXPECT_GT(r.sigma_diffusion_s, 0.0);
    EXPECT_GT(r.sigma_gate_s, 0.0);
}

TEST(DriftCell, CoulombOnsetNearTenThousandCharges) {
    // The space-charge term must be negligible at 1e2 charges and dominant
    // at 1e6 — the behaviour reported by Tolmachev et al. (2009).
    const DriftCell cell(DriftCellConfig{});
    const auto low = cell.transit(test_ion(), 1e2);
    const auto mid = cell.transit(test_ion(), 1e4);
    const auto high = cell.transit(test_ion(), 1e6);
    EXPECT_LT(low.sigma_coulomb_s, 0.2 * low.sigma_diffusion_s);
    EXPECT_GT(mid.sigma_coulomb_s, 0.1 * mid.sigma_diffusion_s);
    EXPECT_GT(high.sigma_coulomb_s, high.sigma_diffusion_s);
    // Resolving power degrades monotonically.
    EXPECT_GT(low.resolving_power(), mid.resolving_power());
    EXPECT_GT(mid.resolving_power(), 2.0 * high.resolving_power());
}

TEST(DriftCell, TotalSigmaIsQuadratureSum) {
    const DriftCell cell(DriftCellConfig{});
    const auto r = cell.transit(test_ion(), 1e5);
    const double expect = std::sqrt(r.sigma_gate_s * r.sigma_gate_s +
                                    r.sigma_diffusion_s * r.sigma_diffusion_s +
                                    r.sigma_coulomb_s * r.sigma_coulomb_s);
    EXPECT_NEAR(r.sigma_s, expect, 1e-15);
}

TEST(DriftCell, InvalidConfigRejected) {
    DriftCellConfig bad;
    bad.length_m = -1.0;
    EXPECT_THROW(DriftCell{bad}, ConfigError);
    bad = DriftCellConfig{};
    bad.pressure_torr = 0.0;
    EXPECT_THROW(DriftCell{bad}, ConfigError);
}

// ---------------------------------------------------------------- TOF ----

TEST(Tof, FlightTimeGrowsWithSqrtMz) {
    const TofAnalyzer tof(TofConfig{});
    const double t1 = tof.flight_time_s(400.0);
    const double t2 = tof.flight_time_s(1600.0);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(Tof, FlightTimeMagnitudeMicroseconds) {
    const TofAnalyzer tof(TofConfig{});
    const double t = tof.flight_time_s(1000.0);
    EXPECT_GT(t, 1e-6);
    EXPECT_LT(t, 1e-3);
}

TEST(Tof, BinMappingRoundTrips) {
    const TofAnalyzer tof(TofConfig{});
    for (std::size_t b : {std::size_t{0}, std::size_t{100}, tof.bins() - 1})
        EXPECT_EQ(tof.bin_of(tof.bin_center(b)), b);
}

TEST(Tof, BinOfClampsOutOfRange) {
    const TofAnalyzer tof(TofConfig{});
    EXPECT_EQ(tof.bin_of(1.0), 0u);
    EXPECT_EQ(tof.bin_of(1e9), tof.bins() - 1);
}

TEST(Tof, IsotopeEnvelopeNormalizedAndSpaced) {
    const TofAnalyzer tof(TofConfig{});
    const auto ion = test_ion(1.1, 2, 800.0);
    const auto peaks = tof.isotope_envelope(ion);
    ASSERT_GE(peaks.size(), 2u);
    double total = 0.0;
    for (const auto& p : peaks) total += p.relative_abundance;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(peaks[1].mz - peaks[0].mz, kIsotopeSpacingDa / 2.0, 1e-9);
}

TEST(Tof, HeavyPeptideShiftsEnvelopeToA1) {
    const TofAnalyzer tof(TofConfig{});
    // Light peptide: monoisotopic dominates. Heavy: A+1 exceeds A+0.
    const auto light = tof.isotope_envelope(test_ion(1.1, 2, 400.0));
    const auto heavy = tof.isotope_envelope(test_ion(1.1, 3, 1200.0));
    EXPECT_GT(light[0].relative_abundance, light[1].relative_abundance);
    EXPECT_GT(heavy[1].relative_abundance, heavy[0].relative_abundance);
}

TEST(Tof, DepositConservesIons) {
    const TofAnalyzer tof(TofConfig{});
    AlignedVector<double> spectrum(tof.bins(), 0.0);
    tof.deposit(test_ion(1.1, 2, 650.0), 1000.0, 0.0, spectrum);
    double total = 0.0;
    for (double v : spectrum) total += v;
    EXPECT_NEAR(total, 1000.0, 1.0);
}

TEST(Tof, DepositPeakAtExpectedBin) {
    const TofAnalyzer tof(TofConfig{});
    AlignedVector<double> spectrum(tof.bins(), 0.0);
    const auto ion = test_ion(1.1, 2, 650.0);
    tof.deposit(ion, 1000.0, 0.0, spectrum);
    std::size_t apex = 0;
    for (std::size_t b = 1; b < spectrum.size(); ++b)
        if (spectrum[b] > spectrum[apex]) apex = b;
    EXPECT_NEAR(static_cast<double>(apex), static_cast<double>(tof.bin_of(650.0)), 1.5);
}

TEST(Tof, MassOffsetShiftsPeak) {
    TofConfig cfg;
    cfg.bins = 32768;  // fine bins so 200 ppm moves the apex measurably.
    // (200 ppm, not 500: at z=2 a 500 ppm shift of m/z 1000 equals one
    // isotope spacing, which would land the shifted A peak on the A+1 bin.)
    const TofAnalyzer tof(cfg);
    AlignedVector<double> a(tof.bins(), 0.0), b(tof.bins(), 0.0);
    tof.deposit(test_ion(1.1, 2, 1000.0), 1000.0, 0.0, a);
    tof.deposit(test_ion(1.1, 2, 1000.0), 1000.0, 200.0, b);
    std::size_t apex_a = 0, apex_b = 0;
    for (std::size_t i = 1; i < a.size(); ++i) {
        if (a[i] > a[apex_a]) apex_a = i;
        if (b[i] > b[apex_b]) apex_b = i;
    }
    EXPECT_GT(apex_b, apex_a);
}

TEST(Tof, OutOfRangeSpeciesIgnored) {
    const TofAnalyzer tof(TofConfig{});
    AlignedVector<double> spectrum(tof.bins(), 0.0);
    tof.deposit(test_ion(1.1, 1, 50.0), 1000.0, 0.0, spectrum);  // below mz_min
    for (double v : spectrum) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------- EsiSource ----

TEST(EsiSource, ConstantWithoutLc) {
    SampleMixture mix;
    mix.species.push_back(test_ion());
    const EsiSource src(mix, false);
    EXPECT_DOUBLE_EQ(src.current(0, 0.0), 1e5);
    EXPECT_DOUBLE_EQ(src.current(0, 500.0), 1e5);
}

TEST(EsiSource, LcPeakShapesCurrent) {
    SampleMixture mix;
    auto ion = test_ion();
    ion.retention_time_s = 100.0;
    ion.lc_sigma_s = 10.0;
    mix.species.push_back(ion);
    const EsiSource src(mix, true);
    EXPECT_DOUBLE_EQ(src.current(0, 100.0), 1e5);
    EXPECT_NEAR(src.current(0, 110.0), 1e5 * std::exp(-0.5), 1.0);
    EXPECT_LT(src.current(0, 200.0), 1.0);
}

TEST(EsiSource, TotalCurrentSumsSpecies) {
    SampleMixture mix;
    mix.species.push_back(test_ion());
    mix.species.push_back(test_ion());
    const EsiSource src(mix, false);
    EXPECT_DOUBLE_EQ(src.total_current(0.0), 2e5);
}

// ------------------------------------------------------ IonFunnelTrap ----

TEST(Trap, LinearBelowCapacity) {
    const IonFunnelTrap trap(IonTrapConfig{});
    SampleMixture mix;
    mix.species.push_back(test_ion(1.1, 2));
    const double currents[] = {1e6};
    const auto fill = trap.accumulate(currents, mix.species, 1e-3);
    EXPECT_FALSE(fill.saturated);
    EXPECT_NEAR(fill.ions[0], 1e6 * 1e-3 * 0.9, 1.0);  // transmission 0.9
    EXPECT_NEAR(fill.total_charges, fill.ions[0] * 2.0, 1.0);
}

TEST(Trap, SaturatesAtCapacity) {
    IonTrapConfig cfg;
    cfg.capacity_charges = 1e4;
    cfg.transmission = 1.0;
    const IonFunnelTrap trap(cfg);
    SampleMixture mix;
    mix.species.push_back(test_ion(1.1, 2));
    const double currents[] = {1e8};
    const auto fill = trap.accumulate(currents, mix.species, 1e-3);  // 2e5 in
    EXPECT_TRUE(fill.saturated);
    EXPECT_NEAR(fill.total_charges, 1e4, 1.0);
}

TEST(Trap, AgcTargetsCapacityFraction) {
    IonTrapConfig cfg;
    cfg.capacity_charges = 1e6;
    cfg.agc_target_fraction = 0.5;
    const IonFunnelTrap trap(cfg);
    // 1e8 charges/s -> need 5e-3 s for half capacity.
    EXPECT_NEAR(trap.agc_fill_time(1e8), 5e-3, 1e-9);
}

TEST(Trap, AgcClampsToBounds) {
    const IonFunnelTrap trap(IonTrapConfig{});
    EXPECT_DOUBLE_EQ(trap.agc_fill_time(1e15), IonTrapConfig{}.min_fill_time_s);
    EXPECT_DOUBLE_EQ(trap.agc_fill_time(1e-3), IonTrapConfig{}.max_fill_time_s);
    EXPECT_DOUBLE_EQ(trap.agc_fill_time(0.0), IonTrapConfig{}.max_fill_time_s);
}

TEST(Trap, UtilizationCapsAtTransmission) {
    const IonFunnelTrap trap(IonTrapConfig{});
    EXPECT_NEAR(trap.utilization(10e-3, 10e-3), 0.9, 1e-12);
    EXPECT_NEAR(trap.utilization(20e-3, 10e-3), 0.9, 1e-12);
    EXPECT_NEAR(trap.utilization(1e-3, 10e-3), 0.09, 1e-12);
}

TEST(Trap, InvalidConfigRejected) {
    IonTrapConfig bad;
    bad.transmission = 1.5;
    EXPECT_THROW(IonFunnelTrap{bad}, ConfigError);
    bad = IonTrapConfig{};
    bad.capacity_charges = 0.0;
    EXPECT_THROW(IonFunnelTrap{bad}, ConfigError);
}

// ----------------------------------------------------------- Detector ----

TEST(Detector, MeanResponseTracksExpectedIons) {
    const Detector det(DetectorConfig{});
    Rng rng(21);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(det.analog_sample(5.0, rng));
    EXPECT_NEAR(stats.mean(), det.expected_response(5.0), 0.1);
}

TEST(Detector, ZeroSignalGivesNoiseAroundDark) {
    const Detector det(DetectorConfig{});
    Rng rng(22);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) stats.add(det.analog_sample(0.0, rng));
    EXPECT_NEAR(stats.mean(), det.expected_response(0.0), 0.05);
}

TEST(Detector, DigitizeClampsAndRounds) {
    DetectorConfig cfg;
    cfg.adc_bits = 8;
    const Detector det(cfg);
    EXPECT_EQ(det.digitize(-5.0), 0u);
    EXPECT_EQ(det.digitize(3.4), 3u);
    EXPECT_EQ(det.digitize(1e6), 255u);
}

TEST(Detector, NoClipModePassesLargeValues) {
    DetectorConfig cfg;
    cfg.clip = false;
    const Detector det(cfg);
    EXPECT_EQ(det.digitize(1e6), 1000000u);
}

TEST(Detector, AccumulatedMatchesSumStatistics) {
    const Detector det(DetectorConfig{});
    Rng rng1(23), rng2(24);
    const std::size_t periods = 64;
    AlignedVector<double> expected(1, 2.0);
    RunningStats direct, fast;
    for (int rep = 0; rep < 3000; ++rep) {
        double sum = 0.0;
        for (std::size_t p = 0; p < periods; ++p)
            sum += static_cast<double>(det.digitize(det.analog_sample(2.0, rng1)));
        direct.add(sum);
        AlignedVector<double> out(1);
        det.acquire_accumulated(expected, periods, out, rng2);
        fast.add(out[0]);
    }
    EXPECT_NEAR(fast.mean() / direct.mean(), 1.0, 0.05);
    EXPECT_NEAR(fast.stddev() / direct.stddev(), 1.0, 0.2);
}

TEST(Detector, PoissonVarianceVisible) {
    const Detector det(DetectorConfig{.gain = 1.0,
                                      .gain_spread = 0.0,
                                      .noise_sigma = 0.0,
                                      .dark_rate = 0.0,
                                      .adc_bits = 16,
                                      .clip = true});
    Rng rng(25);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(det.analog_sample(9.0, rng));
    EXPECT_NEAR(stats.mean(), 9.0, 0.1);
    EXPECT_NEAR(stats.variance(), 9.0, 0.3);
}

TEST(Detector, InvalidConfigRejected) {
    DetectorConfig bad;
    bad.adc_bits = 0;
    EXPECT_THROW(Detector{bad}, ConfigError);
    bad = DetectorConfig{};
    bad.gain = 0.0;
    EXPECT_THROW(Detector{bad}, ConfigError);
}

// ----------------------------------------------------- PeptideLibrary ----

TEST(PeptideLibrary, CalibrationMixHasNinePlausiblePeptides) {
    const auto mix = make_calibration_mix();
    ASSERT_EQ(mix.species.size(), 9u);
    for (const auto& sp : mix.species) {
        EXPECT_GT(sp.mz, 300.0);
        EXPECT_LT(sp.mz, 1500.0);
        EXPECT_GE(sp.charge, 2);
        EXPECT_GT(sp.reduced_mobility, 0.8);
        EXPECT_LT(sp.reduced_mobility, 1.6);
    }
}

TEST(PeptideLibrary, DigestIsDeterministic) {
    PeptideLibraryConfig cfg;
    cfg.count = 50;
    const auto a = make_tryptic_digest(cfg);
    const auto b = make_tryptic_digest(cfg);
    ASSERT_EQ(a.species.size(), b.species.size());
    for (std::size_t i = 0; i < a.species.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.species[i].mz, b.species[i].mz);
        EXPECT_DOUBLE_EQ(a.species[i].intensity, b.species[i].intensity);
    }
}

TEST(PeptideLibrary, DigestSeedChangesContent) {
    PeptideLibraryConfig a, b;
    a.count = b.count = 20;
    b.seed = 43;
    EXPECT_NE(make_tryptic_digest(a).species[0].mz,
              make_tryptic_digest(b).species[0].mz);
}

TEST(PeptideLibrary, DigestRespectsRanges) {
    PeptideLibraryConfig cfg;
    cfg.count = 300;
    const auto mix = make_tryptic_digest(cfg);
    ASSERT_EQ(mix.species.size(), 300u);
    for (const auto& sp : mix.species) {
        const double mass = sp.neutral_mass();
        EXPECT_GE(mass, cfg.mass_min_da * 0.99);
        EXPECT_LE(mass, cfg.mass_max_da * 1.01);
        EXPECT_GE(sp.intensity, cfg.abundance_min * 0.99);
        EXPECT_LE(sp.intensity, cfg.abundance_max * 1.01);
        EXPECT_GE(sp.retention_time_s, cfg.gradient_start_s);
        EXPECT_LE(sp.retention_time_s, cfg.gradient_end_s);
        EXPECT_TRUE(sp.charge == 2 || sp.charge == 3);
    }
}

TEST(PeptideLibrary, TrendlineCalibration) {
    EXPECT_NEAR(peptide_trendline_k0(1500.0, 2), 1.1, 0.05);
    // Higher charge means higher mobility at equal mass.
    EXPECT_GT(peptide_trendline_k0(1500.0, 3), peptide_trendline_k0(1500.0, 2));
}

TEST(PeptideLibrary, SpikedPeptideUsesTrendline) {
    const auto sp = make_spiked_peptide("spike", 750.0, 2, 1e4);
    EXPECT_DOUBLE_EQ(sp.mz, 750.0);
    EXPECT_NEAR(sp.reduced_mobility,
                peptide_trendline_k0((750.0 - kProtonMassDa) * 2.0, 2), 1e-12);
}

}  // namespace
}  // namespace htims::instrument
