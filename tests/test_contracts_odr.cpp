// test_contracts_odr.cpp — second translation unit for the ODR-safety test.
//
// This TU is compiled with HTIMS_DCHECK_ENABLED forced to 1 (see
// tests/CMakeLists.txt) while test_contracts.cpp uses the build type's
// default. Linking both into one binary proves the contract layer is
// ODR-safe under mixed settings: the macros expand per-TU and the only
// linkable entity (the inline cold contract_fail) has one identical
// definition everywhere.
#include "common/contracts.hpp"

namespace htims_test_odr {

bool odr_tu_dcheck_enabled() { return HTIMS_DCHECK_ENABLED != 0; }

// Executes one HTIMS_CHECK and one HTIMS_DCHECK with passing conditions in
// this TU's expansion; returns how many of the two conditions were evaluated.
int odr_tu_run_contracts() {
    int evaluated = 0;
    auto tick = [&evaluated] {
        ++evaluated;
        return true;
    };
    HTIMS_CHECK(tick(), "always evaluated");
    HTIMS_DCHECK(tick(), "evaluated only when this TU compiles DCHECKs in");
    return evaluated;
}

}  // namespace htims_test_odr
