// test_race.cpp — concurrency stress tests for the TSan gate.
//
// Each test drives one shared-state component hard enough that an ordering
// bug has a realistic chance of being interleaved into view, and asserts the
// sequential outcome so the suite is also meaningful without TSan. The
// check.sh `tsan` stage runs this binary (and the rest of the suite) under
// `-fsanitize=thread`, where any unsynchronized access aborts the run —
// these tests exist to give TSan the traffic patterns worth watching:
// capacity-boundary ring handoff (single-element and batch), grain-boundary
// parallel_for writes, exporters snapshotting metrics mid-flight, and
// orchestrator start/stop — synchronous, with one overlapped-decode worker,
// and with several workers emitting through the ordered turnstile.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "pipeline/fleet.hpp"
#include "pipeline/hybrid.hpp"
#include "pipeline/mpmc_queue.hpp"
#include "pipeline/spsc_ring.hpp"
#include "prs/oversampled.hpp"
#include "telemetry/registry.hpp"

namespace {

using htims::ThreadPool;
using htims::pipeline::SpscRing;

// ------------------------------------------------------------ SpscRing ----

// Push a known sequence through a ring at a given capacity while a consumer
// drains it; FIFO order and completeness prove neither side ever observed a
// slot out of turn. Tiny capacities keep the ring permanently at the
// full/empty boundaries where the acquire/release pairing actually matters.
void spsc_roundtrip(std::size_t capacity, int count) {
    SpscRing<int> ring(capacity);
    std::vector<int> received;
    received.reserve(static_cast<std::size_t>(count));

    std::thread consumer([&] {
        while (static_cast<int>(received.size()) < count) {
            if (auto v = ring.try_pop())
                received.push_back(*v);
            else
                std::this_thread::yield();
        }
    });
    for (int i = 0; i < count; ++i) {
        while (!ring.try_push(int{i})) std::this_thread::yield();
    }
    consumer.join();

    ASSERT_EQ(received.size(), static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
    EXPECT_TRUE(ring.empty());
}

TEST(RaceSpscRing, MinimalCapacityStaysFifoUnderContention) {
    spsc_roundtrip(2, 20000);
}

TEST(RaceSpscRing, NonPowerOfTwoCapacityStaysFifoUnderContention) {
    spsc_roundtrip(3, 20000);  // rounds up to 4
}

TEST(RaceSpscRing, LargeCapacityStaysFifoUnderContention) {
    spsc_roundtrip(256, 50000);
}

TEST(RaceSpscRing, BatchHandoffStaysFifoUnderContention) {
    // Same FIFO/completeness contract as spsc_roundtrip, but both sides move
    // whole batches, so TSan watches the one-release-store-per-batch publish
    // and the cached-peer-index refresh under real contention. The shallow
    // ring forces constant partial transfers at the full/empty boundaries.
    constexpr std::uint32_t kTotal = 100000;
    SpscRing<std::uint32_t> ring(8);
    std::thread producer([&] {
        std::vector<std::uint32_t> stage;
        std::uint32_t next = 0;
        std::size_t batch = 1;
        while (next < kTotal) {
            stage.clear();
            for (std::size_t i = 0; i < batch && next < kTotal; ++i)
                stage.push_back(next++);
            std::size_t off = 0;
            while (off < stage.size()) {
                const std::size_t n =
                    ring.push_batch(std::span(stage).subspan(off));
                if (n == 0) std::this_thread::yield();
                off += n;
            }
            batch = batch % 13 + 1;  // 1..13: straddles the capacity
        }
    });
    std::vector<std::uint32_t> out(6);
    std::uint32_t expect = 0;
    while (expect < kTotal) {
        const std::size_t got = ring.pop_batch(std::span(out));
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_EQ(out[i], expect);
            ++expect;
        }
        if (got == 0) std::this_thread::yield();
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(RaceSpscRing, MixedBatchAndSingleOpsStayFifoUnderContention) {
    // Alternating try_push/push_batch against pop_batch/try_pop keeps both
    // cached indices going stale and refreshing while the peer moves.
    constexpr int kTotal = 60000;
    SpscRing<int> ring(4);
    std::thread producer([&] {
        int next = 0;
        std::vector<int> stage(3);
        while (next < kTotal) {
            if (next % 2 == 0) {
                while (!ring.try_push(int{next})) std::this_thread::yield();
                ++next;
            } else {
                std::size_t n = 0;
                for (; n < stage.size() && next + static_cast<int>(n) < kTotal;
                     ++n)
                    stage[n] = next + static_cast<int>(n);
                std::size_t off = 0;
                while (off < n) {
                    const std::size_t pushed = ring.push_batch(
                        std::span(stage).subspan(off, n - off));
                    if (pushed == 0) std::this_thread::yield();
                    off += pushed;
                }
                next += static_cast<int>(n);
            }
        }
    });
    std::vector<int> out(5);
    int expect = 0;
    while (expect < kTotal) {
        if (expect % 3 == 0) {
            if (auto v = ring.try_pop()) {
                ASSERT_EQ(*v, expect);
                ++expect;
            } else {
                std::this_thread::yield();
            }
        } else {
            const std::size_t got = ring.pop_batch(std::span(out));
            for (std::size_t i = 0; i < got; ++i) {
                ASSERT_EQ(out[i], expect);
                ++expect;
            }
            if (got == 0) std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(RaceSpscRing, CapacityTwoMixedOpsWrapStaysFifoUnderContention) {
    // Full-speed mirror of the model-checked litmus units (src/check/
    // litmus.hpp ring_*): capacity 2 keeps every push/pop a wrap-boundary
    // event and every batch split across the wrap point, while alternating
    // single/batch ops on both sides churns the cached peer indices through
    // maximum staleness. The model checker proves every interleaving of the
    // small program; this runs the same protocol shape billions of ops deep
    // under TSan.
    constexpr int kTotal = 80000;
    SpscRing<int> ring(2);
    std::thread producer([&] {
        int next = 0;
        std::array<int, 2> stage{};
        while (next < kTotal) {
            if (next % 2 == 0) {
                while (!ring.try_push(int{next})) std::this_thread::yield();
                ++next;
            } else {
                std::size_t n = 0;
                for (; n < stage.size() && next + static_cast<int>(n) < kTotal;
                     ++n)
                    stage[n] = next + static_cast<int>(n);
                std::size_t off = 0;
                while (off < n) {
                    const std::size_t pushed = ring.push_batch(
                        std::span(stage).subspan(off, n - off));
                    if (pushed == 0) std::this_thread::yield();
                    off += pushed;
                }
                next += static_cast<int>(n);
            }
        }
    });
    std::array<int, 2> out{};
    int expect = 0;
    while (expect < kTotal) {
        if (expect % 3 == 0) {
            if (auto v = ring.try_pop()) {
                ASSERT_EQ(*v, expect);
                ++expect;
            } else {
                std::this_thread::yield();
            }
        } else {
            const std::size_t got = ring.pop_batch(std::span(out));
            for (std::size_t i = 0; i < got; ++i) {
                ASSERT_EQ(out[i], expect);
                ++expect;
            }
            if (got == 0) std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(RaceSpscRing, MoveOnlyPayloadHandsOffCleanly) {
    // unique_ptr payloads mean a duplicated or skipped slot shows up as a
    // leak/double-free under ASan and a race under TSan.
    SpscRing<std::unique_ptr<int>> ring(2);
    constexpr int kCount = 5000;
    std::int64_t sum = 0;
    std::thread consumer([&] {
        int seen = 0;
        while (seen < kCount) {
            if (auto v = ring.try_pop()) {
                sum += **v;
                ++seen;
            } else {
                std::this_thread::yield();
            }
        }
    });
    for (int i = 0; i < kCount; ++i) {
        auto p = std::make_unique<int>(i);
        while (!ring.try_push(std::move(p))) std::this_thread::yield();
    }
    consumer.join();
    EXPECT_EQ(sum, std::int64_t{kCount} * (kCount - 1) / 2);
}

// ---------------------------------------------------------- ThreadPool ----

TEST(RaceThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    // Grain choices: auto-balance, unit grain (maximum chunk churn through
    // the atomic cursor), and a grain that does not divide kN (exercises the
    // final short chunk).
    for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
        std::vector<int> hits(kN, 0);
        pool.parallel_for(
            kN,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) ++hits[i];
            },
            grain);
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i << " grain " << grain;
    }
}

TEST(RaceThreadPool, BackToBackParallelForsDoNotBleedAcrossJoins) {
    // parallel_for joins before returning, so iteration k's writes must be
    // visible to iteration k+1 without extra synchronization.
    ThreadPool pool(4);
    constexpr std::size_t kN = 4096;
    std::vector<std::uint64_t> v(kN, 0);
    for (int round = 0; round < 50; ++round) {
        pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) ++v[i];
        });
    }
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(v[i], 50u);
}

TEST(RaceThreadPool, SubmitStormThenWaitIdleObservesEveryTask) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    constexpr int kTasks = 2000;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), kTasks);
}

TEST(RaceThreadPool, DestructorDrainsPendingTasks) {
    // The documented shutdown rule: destruction runs every already-submitted
    // task, then joins. Repeated construct/submit/destroy cycles give TSan
    // the begin-shutdown vs. worker-wakeup interleavings.
    std::atomic<int> done{0};
    constexpr int kCycles = 50;
    constexpr int kTasksPerCycle = 64;
    for (int c = 0; c < kCycles; ++c) {
        ThreadPool pool(3);
        for (int i = 0; i < kTasksPerCycle; ++i)
            pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(done.load(), kCycles * kTasksPerCycle);
}

// ----------------------------------------------------------- Telemetry ----

TEST(RaceTelemetry, ExporterSnapshotsWhileWritersAreHot) {
    // Writers hammer one counter, one gauge, one histogram and the span
    // trace while an exporter thread snapshots in a loop — the mid-run
    // export pattern. Snapshots taken mid-flight may see partial totals but
    // must never tear; the final quiescent snapshot must be exact.
    htims::telemetry::Registry reg(4096);
    auto& counter = reg.counter("race.counter");
    auto& gauge = reg.gauge("race.gauge");
    auto& histogram = reg.histogram("race.histogram");
    const std::uint32_t stage = reg.intern("race.stage");

    constexpr int kWriters = 4;
    constexpr int kOpsPerWriter = 5000;
    std::atomic<bool> stop_exporter{false};
    std::atomic<std::uint64_t> snapshots_taken{0};

    std::thread exporter([&] {
        while (!stop_exporter.load(std::memory_order_relaxed)) {
            const auto snap = reg.snapshot();
            // Every span visible mid-run must already be fully published.
            for (const auto& s : snap.spans) {
                ASSERT_EQ(s.stage, "race.stage");
                ASSERT_GE(s.end_ns, s.start_ns);
            }
            snapshots_taken.fetch_add(1, std::memory_order_relaxed);
        }
    });

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (int i = 0; i < kOpsPerWriter; ++i) {
                auto span = reg.span(stage);
                counter.add(1);
                gauge.set(w);
                histogram.observe(static_cast<std::uint64_t>(i));
            }
        });
    }
    for (auto& t : writers) t.join();
    stop_exporter.store(true, std::memory_order_relaxed);
    exporter.join();

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, std::int64_t{kWriters} * kOpsPerWriter);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].summary.count,
              static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
    const std::uint64_t recorded = snap.spans.size() + snap.spans_dropped;
    EXPECT_EQ(recorded, static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
    EXPECT_GE(snapshots_taken.load(), 1u);
}

TEST(RaceTelemetry, InterningRacesResolveToStableIds) {
    htims::telemetry::Registry reg(64);
    constexpr int kThreads = 4;
    std::vector<std::uint32_t> ids(static_cast<std::size_t>(kThreads) * 2);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ids[static_cast<std::size_t>(t) * 2] = reg.intern("race.shared");
            ids[static_cast<std::size_t>(t) * 2 + 1] =
                reg.intern(t % 2 == 0 ? "race.even" : "race.odd");
        });
    }
    for (auto& t : threads) t.join();
    for (std::size_t t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t * 2], ids[0]) << "shared name must intern to one id";
    EXPECT_EQ(reg.span_name(ids[0]), "race.shared");
}

// ------------------------------------------------------------- Hybrid ----

// Orchestrator start/stop with a link so shallow that the producer is
// backpressured on nearly every record — the stall path and the shutdown
// join both run under load. Repeated runs exercise clean start/stop cycles.
TEST(RaceHybrid, BackpressuredFpgaRunsStartAndStopCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 2);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kFpga;
    cfg.frames = 3;
    cfg.averages = 2;
    cfg.ring_records = 2;  // minimal link depth: permanent backpressure
    for (int run = 0; run < 3; ++run) {
        htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
        const auto report = pipeline.run();
        EXPECT_EQ(report.frames, 3u);
        EXPECT_EQ(report.samples, 3u * 2u * layout.cells());
    }
}

TEST(RaceHybrid, BackpressuredCpuRunsStartAndStopCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 1);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kCpu;
    cfg.frames = 2;
    cfg.cpu_threads = 2;
    cfg.ring_records = 2;
    for (int run = 0; run < 2; ++run) {
        htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
        const auto report = pipeline.run();
        EXPECT_EQ(report.frames, 2u);
    }
}

// Overlapped decode adds a third thread (the decode worker) and a buffer
// handoff channel to the start/stop picture: producer → ring → consumer →
// channel → worker, with frames recycled back through the free list. The
// shallow ring keeps the producer backpressured while the channel cycles
// buffers at frame rate, so TSan watches every edge of the handoff under
// load, including worker join on shutdown.
TEST(RaceHybrid, OverlappedFpgaDecodeStartsAndStopsCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 2);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kFpga;
    cfg.frames = 3;
    cfg.averages = 2;
    cfg.ring_records = 2;
    cfg.overlap_decode = true;
    for (int run = 0; run < 3; ++run) {
        htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
        const auto report = pipeline.run();
        EXPECT_EQ(report.frames, 3u);
        EXPECT_EQ(report.samples, 3u * 2u * layout.cells());
    }
}

TEST(RaceHybrid, OverlappedCpuDecodeStartsAndStopsCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 1);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kCpu;
    cfg.frames = 3;
    cfg.cpu_threads = 2;
    cfg.ring_records = 2;
    cfg.overlap_decode = true;
    cfg.decode_buffers = 3;  // deeper free list: worker and consumer overlap
    for (int run = 0; run < 3; ++run) {
        htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
        const auto report = pipeline.run();
        EXPECT_EQ(report.frames, 3u);
    }
}

// Multiple decode workers add the ordered-emission turnstile and per-worker
// backend instances to the shutdown picture: consumer → work deque → N
// workers → turnstile → sink, buffers recycling through the free deque.
// Start/stop churn across runs gives TSan the spawn/join edges; the shallow
// ring plus a free list barely deeper than the worker count keeps every
// handoff contended.
TEST(RaceHybrid, MultiWorkerFpgaDecodeChurnsCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 2);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kFpga;
    cfg.frames = 4;
    cfg.averages = 2;
    cfg.ring_records = 2;
    cfg.overlap_decode = true;
    for (std::size_t workers : {std::size_t{2}, std::size_t{3}}) {
        cfg.decode_workers = workers;
        for (int run = 0; run < 3; ++run) {
            htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
            const auto report = pipeline.run();
            EXPECT_EQ(report.frames, 4u);
            EXPECT_EQ(report.samples, 4u * 2u * layout.cells());
        }
    }
}

// -------------------------------------------------------------- Fleet ----

// A fleet multiplies the thread census: per-stream producers and consumers,
// the shared MPMC dispatch queue, the worker pool, and per-stream turnstile
// and free-pool traffic all start and stop together. These tests keep every
// one of those edges contended (shallow rings, shallow dispatch) so the
// TSan stage watches the fleet's full protocol surface under load.

htims::pipeline::FleetStream race_fleet_stream(std::size_t si,
                                               std::size_t frames) {
    static const htims::prs::OversampledPrs seq(5, 1,
                                                htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    htims::pipeline::HybridConfig cfg;
    cfg.backend = (si % 2 == 0) ? htims::pipeline::BackendKind::kFpga
                                : htims::pipeline::BackendKind::kCpu;
    cfg.frames = frames;
    cfg.averages = 2;
    cfg.ring_records = 2;  // minimal link depth: permanent backpressure
    cfg.cpu_threads = 1;
    std::vector<std::uint32_t> period(
        layout.cells(), static_cast<std::uint32_t>(si + 1));
    return htims::pipeline::FleetStream{seq, layout, cfg, std::move(period),
                                        nullptr};
}

TEST(RaceFleet, StartStopChurnWithMixedBackends) {
    // Repeated whole-fleet start/stop cycles: every round spawns and joins
    // 2 threads per stream plus the shared pool, with all rings at minimal
    // depth so shutdown happens under live backpressure.
    for (int round = 0; round < 3; ++round) {
        std::vector<htims::pipeline::FleetStream> streams;
        for (std::size_t si = 0; si < 4; ++si)
            streams.push_back(race_fleet_stream(si, 3));
        htims::pipeline::FleetConfig fc;
        fc.decode_workers = 3;
        const auto report =
            htims::pipeline::FleetRunner(std::move(streams), fc).run();
        ASSERT_EQ(report.streams.size(), 4u);
        for (const auto& s : report.streams) EXPECT_EQ(s.report.frames, 3u);
    }
}

TEST(RaceFleet, DispatchQueueFullKeepsEveryStreamCompleting) {
    // dispatch_depth=1 makes the shared queue a single slot: consumers spin
    // on queue-full while workers race to drain, so the ticket recycle path
    // and the backpressure wait run constantly on every stream at once.
    for (int round = 0; round < 3; ++round) {
        std::vector<htims::pipeline::FleetStream> streams;
        for (std::size_t si = 0; si < 3; ++si)
            streams.push_back(race_fleet_stream(si, 4));
        htims::pipeline::FleetConfig fc;
        fc.decode_workers = 2;
        fc.dispatch_depth = 1;
        const auto report =
            htims::pipeline::FleetRunner(std::move(streams), fc).run();
        for (const auto& s : report.streams) EXPECT_EQ(s.report.frames, 4u);
    }
}

TEST(RaceFleet, SinkFailureShutsDownWithNonEmptyDispatchQueue) {
    // A frame sink that throws mid-run kills the decode pool while other
    // streams are still enqueuing: the abort must drain the dispatch queue,
    // release every blocked consumer, join every thread, and surface the
    // failure from run() — every round, without leaking a frame buffer.
    for (int round = 0; round < 3; ++round) {
        std::vector<htims::pipeline::FleetStream> streams;
        for (std::size_t si = 0; si < 3; ++si)
            streams.push_back(race_fleet_stream(si, 4));
        streams[1].config.frame_sink =
            [](std::size_t index, const htims::pipeline::Frame&) {
                if (index == 1) throw std::runtime_error("sink rejected frame");
            };
        htims::pipeline::FleetConfig fc;
        fc.decode_workers = 2;
        EXPECT_THROW(
            htims::pipeline::FleetRunner(std::move(streams), fc).run(),
            std::runtime_error)
            << "round " << round;
    }
}

// ---------------------------------------------------------- MpmcQueue ----

TEST(RaceMpmcQueue, ManyProducersManyConsumersDeliverExactlyOnce) {
    // 4 producers × 2 consumers through a 4-slot queue: every slot is
    // permanently contested, so ticket claims, payload publishes, and slot
    // recycles interleave at maximum density. Exactly-once delivery is
    // checked by total sum and per-producer item counts.
    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kConsumers = 2;
    constexpr std::uint64_t kPerProducer = 20000;
    htims::pipeline::MpmcQueue<std::uint64_t> queue(4);
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < kProducers; ++p) {
        threads.emplace_back([&queue, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                // Tag items with the producer id in the top bits.
                std::uint64_t item = (p << 60) | i;
                while (!queue.try_push(std::move(item)))
                    std::this_thread::yield();
            }
        });
    }
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    for (std::size_t c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (consumed.load(std::memory_order_relaxed) < kTotal) {
                if (auto v = queue.try_pop()) {
                    sum.fetch_add(*v & ~(std::uint64_t{0xF} << 60),
                                  std::memory_order_relaxed);
                    consumed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), kTotal);
    EXPECT_EQ(sum.load(),
              kProducers * (kPerProducer * (kPerProducer - 1) / 2));
    EXPECT_TRUE(queue.empty());
}

TEST(RaceMpmcQueue, DestructionWithQueuedItemsReleasesThem) {
    // Leftover payloads at destruction must be destroyed exactly once —
    // visible as a leak (ASan) or double-free if the slot accounting between
    // tickets and indices disagrees after heavy wrapping.
    for (int round = 0; round < 100; ++round) {
        htims::pipeline::MpmcQueue<std::shared_ptr<int>> queue(8);
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(queue.try_push(std::make_shared<int>(i)));
        (void)queue.try_pop();  // leave 4 queued across the wrap point
    }
}

TEST(RaceHybrid, MultiWorkerCpuDecodeChurnsCleanly) {
    const htims::prs::OversampledPrs seq(5, 1, htims::prs::GateMode::kPulsed);
    const htims::pipeline::FrameLayout layout{
        .drift_bins = seq.length(), .mz_bins = 8, .drift_bin_width_s = 1e-4};
    std::vector<std::uint32_t> period(layout.cells(), 1);
    htims::pipeline::HybridConfig cfg;
    cfg.backend = htims::pipeline::BackendKind::kCpu;
    cfg.frames = 4;
    cfg.cpu_threads = 2;
    cfg.ring_records = 2;
    cfg.overlap_decode = true;
    for (std::size_t workers : {std::size_t{2}, std::size_t{3}}) {
        cfg.decode_workers = workers;
        for (int run = 0; run < 3; ++run) {
            htims::pipeline::HybridPipeline pipeline(seq, layout, period, cfg);
            const auto report = pipeline.run();
            EXPECT_EQ(report.frames, 4u);
        }
    }
}

}  // namespace
