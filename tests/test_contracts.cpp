// test_contracts.cpp — behaviour of the zero-cost contract layer.
//
// Pins down the three contract tiers (common/contracts.hpp): HTIMS_CHECK
// always aborts with file:line + message, HTIMS_DCHECK is compiled out of
// release builds down to its operands' side effects, HTIMS_ASSUME is checked
// exactly when DCHECKs are. The second translation unit
// (test_contracts_odr.cpp, built with HTIMS_DCHECK_ENABLED forced to 1)
// proves the header is ODR-safe when TUs disagree about the setting.
#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace htims_test_odr {
bool odr_tu_dcheck_enabled();
int odr_tu_run_contracts();
}  // namespace htims_test_odr

namespace {

TEST(Contracts, CheckPassesSilently) {
    HTIMS_CHECK(2 + 2 == 4);
    HTIMS_CHECK(true, "with a message");
    SUCCEED();
}

TEST(Contracts, CheckEvaluatesConditionExactlyOnce) {
    int calls = 0;
    HTIMS_CHECK(++calls > 0, "side effect must run exactly once");
    EXPECT_EQ(calls, 1);
}

TEST(Contracts, CheckIsAnExpressionStatement) {
    // Must be usable unbraced in an if/else without dangling-else surprises.
    const bool take = true;
    if (take)
        HTIMS_CHECK(take);
    else
        HTIMS_CHECK(!take);
    SUCCEED();
}

TEST(ContractsDeathTest, CheckAbortsWithConditionTextAndMessage) {
    EXPECT_DEATH(HTIMS_CHECK(1 == 2, "one is not two"),
                 "HTIMS_CHECK failed: 1 == 2.*one is not two");
}

TEST(ContractsDeathTest, CheckAbortsWithFileAndLine) {
    EXPECT_DEATH(HTIMS_CHECK(false), "test_contracts\\.cpp:[0-9]+");
}

TEST(ContractsDeathTest, CheckMessageIsOptional) {
    EXPECT_DEATH(HTIMS_CHECK(false), "HTIMS_CHECK failed: false");
}

// The core zero-cost claim: in a release build HTIMS_DCHECK expands to
// `static_cast<void>(0)` — its operands are not evaluated, not odr-used, not
// even part of the expression. In debug/sanitizer builds it runs normally.
TEST(Contracts, DcheckEvaluatesOperandsOnlyWhenEnabled) {
    int calls = 0;
    auto tick = [&calls] {
        ++calls;
        return true;
    };
    HTIMS_DCHECK(tick(), "operand evaluation tracks HTIMS_DCHECK_ENABLED");
#if HTIMS_DCHECK_ENABLED
    EXPECT_EQ(calls, 1);
#else
    EXPECT_EQ(calls, 0);
#endif
    (void)tick;
}

#if HTIMS_DCHECK_ENABLED

TEST(ContractsDeathTest, DcheckAbortsWhenEnabled) {
    EXPECT_DEATH(HTIMS_DCHECK(false, "debug-only invariant"),
                 "HTIMS_DCHECK failed: false.*debug-only invariant");
}

TEST(ContractsDeathTest, AssumeIsCheckedWhenDchecksAre) {
    EXPECT_DEATH(HTIMS_ASSUME(2 + 2 == 5), "HTIMS_ASSUME failed");
}

#else

TEST(Contracts, DcheckFalseIsANoOpInRelease) {
    HTIMS_DCHECK(false, "never reached in release");
    SUCCEED();
}

#endif

TEST(Contracts, AssumeTrueIsTransparentInEveryBuild) {
    // In release HTIMS_ASSUME *does* evaluate its condition (it feeds the
    // optimizer hint), so a true condition must pass through silently.
    volatile bool flag = true;
    HTIMS_ASSUME(flag);
    SUCCEED();
}

// test_contracts_odr.cpp is compiled with -DHTIMS_DCHECK_ENABLED=1 while
// this TU takes the build type's default. Both link into this binary; each
// keeps its own per-TU expansion.
TEST(Contracts, OdrSafeAcrossMixedTranslationUnits) {
    EXPECT_TRUE(htims_test_odr::odr_tu_dcheck_enabled());
    // In the forced-on TU both the CHECK and the DCHECK evaluate.
    EXPECT_EQ(htims_test_odr::odr_tu_run_contracts(), 2);

    // Meanwhile this TU's DCHECK honours its own setting, proving the two
    // expansions coexist in one binary.
    int calls = 0;
    auto tick = [&calls] {
        ++calls;
        return true;
    };
    HTIMS_CHECK(tick());
    HTIMS_DCHECK(tick());
#if HTIMS_DCHECK_ENABLED
    EXPECT_EQ(calls, 2);
#else
    EXPECT_EQ(calls, 1);
#endif
    (void)tick;
}

}  // namespace
