// Tests for the downstream-analysis extensions: spectrum filters, 2-D
// feature finding with isotope grouping, mass calibration, frame
// serialization, the TDC detection mode, and the binomial sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "core/feature_finder.hpp"
#include "core/mass_calibration.hpp"
#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "instrument/peptide_library.hpp"
#include "pipeline/frame_io.hpp"
#include "transform/filters.hpp"

namespace htims {
namespace {

// ------------------------------------------------------------ Filters ----

AlignedVector<double> gaussian_peak(std::size_t n, double center, double sigma,
                                    double height) {
    AlignedVector<double> x(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double d = (static_cast<double>(i) - center) / sigma;
        x[i] = height * std::exp(-0.5 * d * d);
    }
    return x;
}

TEST(Filters, MovingAveragePreservesConstant) {
    AlignedVector<double> x(100, 3.5);
    const auto y = transform::moving_average(x, 7);
    for (double v : y) EXPECT_NEAR(v, 3.5, 1e-12);
}

TEST(Filters, MovingAverageIsCircular) {
    AlignedVector<double> x(10, 0.0);
    x[0] = 10.0;
    const auto y = transform::moving_average(x, 3);
    EXPECT_NEAR(y[9], 10.0 / 3.0, 1e-12);  // wraps around the end
    EXPECT_NEAR(y[1], 10.0 / 3.0, 1e-12);
    EXPECT_NEAR(y[5], 0.0, 1e-12);
}

TEST(Filters, SavitzkyGolayPreservesQuadratic) {
    // A quadratic signal is reproduced exactly by a quadratic SG filter
    // (away from wrap effects — use a periodic-safe segment).
    AlignedVector<double> x(64);
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double t = static_cast<double>(i);
        x[i] = 2.0 + 0.3 * t + 0.01 * t * t;
    }
    const auto y = transform::savitzky_golay(x, 7);
    for (std::size_t i = 4; i + 4 < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-9);
}

TEST(Filters, SavitzkyGolayBeatsBoxcarOnPeakHeight) {
    const auto x = gaussian_peak(128, 64.0, 2.5, 100.0);
    const auto sg = transform::savitzky_golay(x, 7);
    const auto box = transform::moving_average(x, 7);
    EXPECT_GT(sg[64], box[64]);        // less peak attenuation
    EXPECT_GT(sg[64], 0.9 * x[64]);    // and near-lossless
}

TEST(Filters, SavitzkyGolayImprovesSnr) {
    Rng rng(5);
    auto x = gaussian_peak(512, 256.0, 3.0, 20.0);
    for (auto& v : x) v += rng.gaussian(0.0, 2.0);
    const double before = region_snr(x, 246, 266);
    const auto y = transform::savitzky_golay(x, 9);
    const double after = region_snr(y, 246, 266);
    EXPECT_GT(after, before);
}

TEST(Filters, MedianRemovesSingleBinSpike) {
    auto x = gaussian_peak(128, 64.0, 3.0, 50.0);
    x[20] = 500.0;  // impulse artifact
    const auto y = transform::median_filter(x, 3);
    EXPECT_LT(y[20], 5.0);                // spike gone
    EXPECT_NEAR(y[64], x[64], x[64] * 0.1);  // broad peak kept
}

TEST(Filters, RollingBaselineFollowsDriftNotPeaks) {
    AlignedVector<double> x(256);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 10.0 + 5.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 256.0);
    const auto peak = gaussian_peak(256, 128.0, 2.0, 80.0);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += peak[i];
    const auto base = transform::rolling_baseline(x, 31);
    EXPECT_NEAR(base[40], x[40], 2.0);       // follows the slow sweep
    EXPECT_LT(base[128], 20.0);              // ignores the sharp peak
    const auto corrected = transform::baseline_corrected(x, 31);
    EXPECT_GT(corrected[128], 70.0);
    EXPECT_LT(corrected[40], 3.0);
}

TEST(Filters, InvalidWindowsRejected) {
    AlignedVector<double> x(32, 1.0);
    EXPECT_THROW(transform::moving_average(x, 4), ConfigError);
    EXPECT_THROW(transform::moving_average(x, 33), ConfigError);
    EXPECT_THROW(transform::savitzky_golay(x, 13), ConfigError);
}

// ------------------------------------------------------ FeatureFinder ----

TEST(FeatureFinder, FindsIsotopeClusterWithCharge) {
    // Build a frame with one synthetic 2+ isotope series plus noise. The
    // m/z axis must actually resolve the 0.5-Th isotope spacing, so use a
    // narrow range at fine binning (0.037 Th/bin).
    instrument::TofConfig tof_cfg;
    tof_cfg.mz_min = 400.0;
    tof_cfg.mz_max = 1000.0;
    tof_cfg.bins = 16384;
    const instrument::TofAnalyzer tof(tof_cfg);
    pipeline::FrameLayout layout{.drift_bins = 64, .mz_bins = tof_cfg.bins,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    Rng rng(9);
    for (double& v : frame.data()) v = std::max(0.0, rng.gaussian(0.0, 0.2));

    instrument::IonSpecies ion;
    ion.name = "pep";
    ion.mz = 650.0;
    ion.charge = 2;
    auto row = frame.record(30);
    tof.deposit(ion, 5000.0, 0.0, row);

    core::FeatureFindOptions opts;
    opts.min_snr = 8.0;
    opts.mz_tolerance = 0.1;
    const auto features = core::find_features(frame, tof, opts);
    ASSERT_FALSE(features.empty());
    const auto& top = features.front();
    EXPECT_EQ(top.charge, 2);
    EXPECT_GE(top.isotope_count, 2u);
    EXPECT_EQ(top.drift_bin, 30u);
    EXPECT_NEAR(top.monoisotopic_mz, 650.0, 1.0);
    EXPECT_NEAR(top.neutral_mass(), (650.0 - 1.00728) * 2.0, 2.0);
}

TEST(FeatureFinder, SeparatesTwoDriftAlignedSpecies) {
    instrument::TofConfig tof_cfg;
    tof_cfg.mz_min = 400.0;
    tof_cfg.mz_max = 1000.0;
    tof_cfg.bins = 16384;
    const instrument::TofAnalyzer tof(tof_cfg);
    pipeline::FrameLayout layout{.drift_bins = 64, .mz_bins = tof_cfg.bins,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    Rng rng(10);
    for (double& v : frame.data()) v = std::max(0.0, rng.gaussian(0.0, 0.1));

    instrument::IonSpecies a, b;
    a.name = "a";
    a.mz = 500.0;
    a.charge = 2;
    b.name = "b";
    b.mz = 900.0;
    b.charge = 3;
    auto row_a = frame.record(20);
    tof.deposit(a, 4000.0, 0.0, row_a);
    auto row_b = frame.record(45);
    tof.deposit(b, 4000.0, 0.0, row_b);

    core::FeatureFindOptions opts;
    opts.min_snr = 8.0;
    opts.mz_tolerance = 0.1;
    const auto features = core::find_features(frame, tof, opts);
    ASSERT_GE(features.size(), 2u);
    bool saw_a = false, saw_b = false;
    for (const auto& f : features) {
        if (f.charge == 2 && std::abs(f.monoisotopic_mz - 500.0) < 1.0 &&
            f.drift_bin == 20)
            saw_a = true;
        if (f.charge == 3 && std::abs(f.monoisotopic_mz - 900.0) < 1.0 &&
            f.drift_bin == 45)
            saw_b = true;
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

TEST(FeatureFinder, NoFeaturesOnFlatFrame) {
    instrument::TofConfig tof_cfg;
    tof_cfg.bins = 512;
    const instrument::TofAnalyzer tof(tof_cfg);
    pipeline::FrameLayout layout{.drift_bins = 32, .mz_bins = 512,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    Rng rng(11);
    for (double& v : frame.data()) v = std::max(0.0, rng.gaussian(1.0, 0.3));
    core::FeatureFindOptions opts;
    opts.min_snr = 8.0;
    EXPECT_TRUE(core::find_frame_peaks(frame, tof, opts).empty());
}

TEST(FeatureFinder, EndToEndOnSimulatedCalibrationMix) {
    core::SimulatorConfig cfg = core::default_config();
    cfg.tof.mz_min = 450.0;
    cfg.tof.mz_max = 850.0;
    cfg.tof.bins = 16384;
    cfg.tof.mass_error_ppm = 0.0;
    cfg.acquisition.averages = 32;
    // Fine binning dilutes per-cell counts ~8x vs the default axis; run a
    // brighter acquisition so isotope peaks clear the SNR gate.
    auto mix = instrument::make_calibration_mix();
    for (auto& sp : mix.species) sp.intensity *= 10.0;
    core::Simulator sim(cfg, mix);
    const auto run = sim.run();
    const instrument::TofAnalyzer tof(cfg.tof);
    core::FeatureFindOptions opts;
    opts.min_snr = 6.0;
    opts.min_intensity = 1.0;
    opts.mz_tolerance = 0.1;
    const auto features = core::find_features(run.deconvolved, tof, opts);
    // At least half of the 9 species should come back as charged features
    // with the correct charge state.
    std::size_t correct = 0;
    for (const auto& sp : sim.engine().source().mixture().species)
        for (const auto& f : features)
            if (f.charge == sp.charge && std::abs(f.monoisotopic_mz - sp.mz) < 1.0) {
                ++correct;
                break;
            }
    EXPECT_GE(correct, 5u);
}

// ---------------------------------------------------- MassCalibration ----

TEST(MassCalibration, RecoversSystematicOffset) {
    core::SimulatorConfig cfg = core::default_config();
    cfg.tof.bins = 32768;
    cfg.tof.mz_min = 400.0;
    cfg.tof.mz_max = 1600.0;
    cfg.tof.mass_error_ppm = 30.0;  // systematic miscalibration
    cfg.acquisition.averages = 16;
    core::Simulator sim(cfg, instrument::make_calibration_mix());
    const auto run = sim.run();
    const instrument::TofAnalyzer tof(cfg.tof);

    const auto measurements = core::measure_masses(
        run.deconvolved, tof, run.acquisition.traces,
        sim.engine().source().mixture().species);
    ASSERT_GE(measurements.size(), 6u);

    const auto raw = core::summarize_ppm(measurements);
    EXPECT_GT(raw.mean_abs, 15.0);  // the injected error is visible

    // Internal calibration from three calibrants, evaluated on the rest.
    std::vector<core::MassMeasurement> calibrants(measurements.begin(),
                                                  measurements.begin() + 3);
    std::vector<core::MassMeasurement> analytes(measurements.begin() + 3,
                                                measurements.end());
    const auto cal = core::fit_calibration(calibrants);
    const auto corrected = core::summarize_ppm(analytes, &cal);
    EXPECT_LT(corrected.mean_abs, raw.mean_abs / 2.0);
    EXPECT_LT(corrected.mean_abs, 10.0);
}

TEST(MassCalibration, SingleCalibrantFitsOffset) {
    std::vector<core::MassMeasurement> cal(1);
    cal[0].name = "c";
    cal[0].true_mz = 1000.0;
    cal[0].measured_mz = 1000.02;
    const auto fit = core::fit_calibration(cal);
    EXPECT_NEAR(fit.apply(1000.02), 1000.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit.slope, 1.0);
}

TEST(MassCalibration, PpmSummaryMath) {
    std::vector<core::MassMeasurement> ms(2);
    ms[0].true_mz = 1000.0;
    ms[0].measured_mz = 1000.001;  // +1 ppm
    ms[1].true_mz = 500.0;
    ms[1].measured_mz = 499.9995;  // -1 ppm
    const auto s = core::summarize_ppm(ms);
    EXPECT_NEAR(s.mean_abs, 1.0, 1e-6);
    EXPECT_NEAR(s.max_abs, 1.0, 1e-6);
    EXPECT_NEAR(s.rms, 1.0, 1e-6);
}

// ------------------------------------------------------------ FrameIO ----

TEST(FrameIO, RoundTripPreservesEverything) {
    pipeline::FrameLayout layout{.drift_bins = 62, .mz_bins = 33,
                                 .drift_bin_width_s = 2.5e-5};
    pipeline::Frame frame(layout);
    Rng rng(12);
    for (double& v : frame.data()) v = rng.uniform(0.0, 1e6);

    std::stringstream ss;
    pipeline::write_frame(ss, frame);
    const pipeline::Frame back = pipeline::read_frame(ss);
    EXPECT_EQ(back.layout(), layout);
    for (std::size_t i = 0; i < frame.data().size(); ++i)
        EXPECT_DOUBLE_EQ(back.data()[i], frame.data()[i]);
}

TEST(FrameIO, DetectsCorruption) {
    pipeline::FrameLayout layout{.drift_bins = 8, .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    frame.fill(1.0);
    std::stringstream ss;
    pipeline::write_frame(ss, frame);
    std::string buf = ss.str();
    buf[80] ^= 0x01;  // flip a payload bit
    std::stringstream corrupted(buf);
    EXPECT_THROW(pipeline::read_frame(corrupted), Error);
}

TEST(FrameIO, DetectsBadMagicAndTruncation) {
    pipeline::FrameLayout layout{.drift_bins = 8, .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    std::stringstream ss;
    pipeline::write_frame(ss, frame);
    std::string buf = ss.str();

    std::string bad_magic = buf;
    bad_magic[0] = 'X';
    std::stringstream s1(bad_magic);
    EXPECT_THROW(pipeline::read_frame(s1), Error);

    std::stringstream s2(buf.substr(0, buf.size() / 2));
    EXPECT_THROW(pipeline::read_frame(s2), Error);
}

TEST(FrameIO, CrcMismatchReportsCleanDecodeError) {
    // Payload corruption must surface as the specific CRC diagnostic — a
    // clean decode error, not a garbage frame or an unrelated failure.
    pipeline::FrameLayout layout{.drift_bins = 8, .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame frame(layout);
    Rng rng(5);
    for (double& v : frame.data()) v = rng.uniform(0.0, 100.0);
    std::stringstream ss;
    pipeline::write_frame(ss, frame);
    std::string buf = ss.str();
    buf[64 + 11] ^= 0x40;  // flip one byte past the 64-byte header
    std::stringstream corrupted(buf);
    try {
        (void)pipeline::read_frame(corrupted);
        FAIL() << "corrupted payload decoded without error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
            << e.what();
    }
}

TEST(FrameIO, Crc32KnownVector) {
    // CRC-32 of "123456789" is the classic check value 0xCBF43926.
    const char data[] = "123456789";
    EXPECT_EQ(pipeline::crc32(data, 9), 0xCBF43926u);
}

// ---------------------------------------------------------------- TDC ----

TEST(Tdc, SaturatesAtOneCountPerPeriod) {
    instrument::DetectorConfig cfg;
    cfg.mode = instrument::DetectionMode::kTdc;
    const instrument::Detector det(cfg);
    Rng rng(13);
    AlignedVector<double> expected(1, 100.0);  // very bright
    AlignedVector<double> out(1);
    det.acquire_accumulated(expected, 64, out, rng);
    EXPECT_LE(out[0], 64.0);
    EXPECT_GE(out[0], 60.0);  // fires essentially every period
}

TEST(Tdc, LinearAtLowFlux) {
    instrument::DetectorConfig cfg;
    cfg.mode = instrument::DetectionMode::kTdc;
    cfg.dark_rate = 0.0;
    const instrument::Detector det(cfg);
    Rng rng(14);
    const std::size_t periods = 4000;
    AlignedVector<double> expected(1, 0.05);
    AlignedVector<double> out(1);
    RunningStats stats;
    for (int rep = 0; rep < 200; ++rep) {
        det.acquire_accumulated(expected, periods, out, rng);
        stats.add(out[0] / static_cast<double>(periods));
    }
    EXPECT_NEAR(stats.mean(), 1.0 - std::exp(-0.05), 0.002);
}

TEST(Tdc, ExpectedResponseCurve) {
    instrument::DetectorConfig cfg;
    cfg.mode = instrument::DetectionMode::kTdc;
    cfg.dark_rate = 0.0;
    const instrument::Detector det(cfg);
    EXPECT_NEAR(det.expected_response(0.1), 1.0 - std::exp(-0.1), 1e-12);
    EXPECT_LT(det.expected_response(10.0), 1.0);  // hard ceiling
}

// ---------------------------------------------------------- Binomial ----

TEST(Rng, BinomialMoments) {
    Rng rng(15);
    RunningStats small, large;
    for (int i = 0; i < 50000; ++i)
        small.add(static_cast<double>(rng.binomial(20, 0.3)));
    for (int i = 0; i < 50000; ++i)
        large.add(static_cast<double>(rng.binomial(1000, 0.25)));
    EXPECT_NEAR(small.mean(), 6.0, 0.1);
    EXPECT_NEAR(small.variance(), 20.0 * 0.3 * 0.7, 0.2);
    EXPECT_NEAR(large.mean(), 250.0, 1.0);
    EXPECT_NEAR(large.stddev(), std::sqrt(1000.0 * 0.25 * 0.75), 0.3);
}

TEST(Rng, BinomialEdgeCases) {
    Rng rng(16);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

}  // namespace
}  // namespace htims
