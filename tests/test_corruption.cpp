// Exhaustive frame-corruption sweep.
//
// The container's integrity contract: a single-byte flip anywhere in a
// frame stream is either *detected* (the damaged frame is dropped by CRC /
// validation) or *recovered around* (resync re-locks on a later frame) —
// never undefined behaviour, never a silently accepted wrong payload. The
// sweep flips every byte of a three-frame stream with several masks and
// checks that every frame the reader does deliver is byte-identical to an
// original, and that the neighbours of the damaged frame survive. The suite
// runs under the ASan/UBSan stage of scripts/check.sh, so "no UB" is
// machine-checked, not assumed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pipeline/frame_io.hpp"
#include "prs/oversampled.hpp"
#include "store/frame_store.hpp"

namespace htims::pipeline {
namespace {

FrameLayout sweep_layout() {
    // Small on purpose: the sweep is O(stream bytes x masks x restream).
    return FrameLayout{.drift_bins = 8, .mz_bins = 8, .drift_bin_width_s = 1e-4};
}

std::vector<Frame> sweep_frames() {
    std::vector<Frame> frames;
    Rng rng(2026);
    for (int k = 0; k < 3; ++k) {
        Frame f(sweep_layout());
        for (auto& v : f.data()) v = static_cast<double>(rng.below(1000));
        frames.push_back(std::move(f));
    }
    return frames;
}

std::string serialize(const std::vector<Frame>& frames) {
    std::ostringstream os(std::ios::binary);
    for (const auto& f : frames) write_frame(os, f);
    return os.str();
}

bool frames_equal(const Frame& a, const Frame& b) {
    return a.layout() == b.layout() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

/// Index of `frame` among the originals, or -1 if it matches none — the
/// "silently accepted corruption" failure the sweep exists to rule out.
int match_original(const Frame& frame, const std::vector<Frame>& originals) {
    for (std::size_t i = 0; i < originals.size(); ++i)
        if (frames_equal(frame, originals[i])) return static_cast<int>(i);
    return -1;
}

TEST(CorruptionSweep, EverySingleByteFlipIsDetectedOrRecovered) {
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    const std::size_t frame_bytes = clean.size() / originals.size();
    ASSERT_EQ(clean.size() % originals.size(), 0u);

    for (const unsigned char mask : {0xFFu, 0x01u, 0x80u}) {
        for (std::size_t pos = 0; pos < clean.size(); ++pos) {
            std::string damaged = clean;
            damaged[pos] = static_cast<char>(
                static_cast<unsigned char>(damaged[pos]) ^ mask);
            const std::size_t damaged_frame = pos / frame_bytes;

            FrameStreamReader reader(std::move(damaged), RecoveryMode::kResync);
            std::vector<int> delivered;
            while (auto f = reader.next()) {
                const int which = match_original(*f, originals);
                // Every delivered frame is byte-identical to an original:
                // corruption is never silently accepted.
                ASSERT_GE(which, 0)
                    << "mask 0x" << std::hex << unsigned{mask} << std::dec
                    << " at byte " << pos << " delivered a corrupted frame";
                delivered.push_back(which);
            }
            EXPECT_TRUE(reader.exhausted());

            // The flip damages exactly one frame; the other two must
            // survive, in order. (A flip that lands in a header can at
            // worst take out that one frame — resync re-locks on the next.)
            std::vector<int> want;
            for (int i = 0; i < 3; ++i)
                if (static_cast<std::size_t>(i) != damaged_frame) want.push_back(i);
            if (delivered.size() == 3u) {
                // The flip was inside this frame yet every frame decoded:
                // only possible if the damaged frame still byte-matched an
                // original, i.e. the reader proved the flip harmless. CRC
                // coverage of header + payload makes this impossible.
                ADD_FAILURE() << "mask 0x" << std::hex << unsigned{mask}
                              << std::dec << " at byte " << pos
                              << " was silently accepted";
            } else {
                ASSERT_EQ(delivered, want)
                    << "mask 0x" << std::hex << unsigned{mask} << std::dec
                    << " at byte " << pos;
                EXPECT_EQ(reader.stats().frames_lost, 1u);
                EXPECT_EQ(reader.stats().frames_ok, 2u);
            }
        }
    }
}

TEST(CorruptionSweep, TruncationAtEveryLengthIsHandled) {
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    // Cut the stream at every possible length; the reader must deliver only
    // byte-identical prefixes of the original sequence and never throw.
    for (std::size_t keep = 0; keep < clean.size(); keep += 7) {
        FrameStreamReader reader(clean.substr(0, keep), RecoveryMode::kResync);
        int expect = 0;
        while (auto f = reader.next()) {
            ASSERT_EQ(match_original(*f, originals), expect)
                << "truncated to " << keep << " bytes";
            ++expect;
        }
        EXPECT_TRUE(reader.exhausted());
        EXPECT_LE(reader.stats().frames_ok, originals.size());
    }
}

TEST(CorruptionSweep, HeaderReservedBytesAreCovered) {
    // Regression guard for the v2 header CRC: flips in the reserved words
    // (bytes 40..63 of the header, after magic/version/layout/CRCs) must be
    // detected even though the payload CRC never sees them.
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    for (std::size_t pos = 40; pos < 64; ++pos) {
        std::string damaged = clean;
        damaged[pos] = static_cast<char>(
            static_cast<unsigned char>(damaged[pos]) ^ 0x01u);
        FrameStreamReader reader(std::move(damaged), RecoveryMode::kResync);
        std::size_t delivered = 0;
        while (auto f = reader.next()) {
            EXPECT_GE(match_original(*f, originals), 0);
            ++delivered;
        }
        EXPECT_EQ(delivered, 2u) << "reserved-byte flip at " << pos;
    }
}

// ---------------------------------------------------------------------------
// mmap frame store: the same integrity contract over the persistent arena.
// A store truncated at any page boundary, or with its index footer damaged
// or missing, must construct, serve exactly the frames that are fully
// intact, and count every loss — never UB (the suite runs under ASan).

namespace {

std::string store_bytes(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A finalized three-frame store plus the originals it holds. The path is
/// unique per test (ctest runs discovered tests concurrently).
struct StoreFixture {
    StoreFixture()
        : path(::testing::TempDir() + "corruption_store_" +
               ::testing::UnitTest::GetInstance()->current_test_info()->name() +
               ".htstore") {
        originals = sweep_frames();
        store::StoreMeta meta{sweep_layout(), 1};
        store::FrameStoreWriter writer(path, meta);
        for (std::size_t k = 0; k < originals.size(); ++k)
            writer.append(originals[k], k);
        writer.finalize();
        clean = store_bytes(path);
    }
    ~StoreFixture() { std::remove(path.c_str()); }

    std::string path;
    std::vector<Frame> originals;
    std::string clean;
};

}  // namespace

TEST(StoreCorruption, TruncationAtEveryPageBoundaryServesTheIntactPrefix) {
    StoreFixture fx;
    store::FrameStoreReader full(fx.path);
    ASSERT_TRUE(full.indexed());
    ASSERT_EQ(full.frames(), fx.originals.size());

    for (std::size_t cut = 0; cut <= fx.clean.size();
         cut += store::kStorePageBytes) {
        write_bytes(fx.path, fx.clean.substr(0, cut));
        if (cut < store::kStorePageBytes) {
            // Not even a superblock: a diagnosable error, not UB.
            EXPECT_THROW(store::FrameStoreReader{fx.path}, Error);
            continue;
        }
        store::FrameStoreReader reader(fx.path);
        // Frames whose whole container survived the cut, and only those.
        std::size_t expect = 0;
        for (std::size_t i = 0; i < full.frames(); ++i)
            if (full.entry(i).offset + full.entry(i).bytes <= cut) ++expect;
        ASSERT_EQ(reader.frames(), expect) << "cut at " << cut;
        for (std::size_t i = 0; i < reader.frames(); ++i) {
            const Frame f = reader.frame(i);
            EXPECT_TRUE(frames_equal(f, fx.originals[i])) << "cut at " << cut;
        }
        // The footer can only have survived an uncut file.
        EXPECT_EQ(reader.indexed(), cut == fx.clean.size());
    }
    write_bytes(fx.path, fx.clean);
}

TEST(StoreCorruption, EverySingleByteFlipInTheFooterFallsBackCleanly) {
    StoreFixture fx;
    // The footer is the last 64 bytes. Whatever bit dies there, the reader
    // must either still validate it (flip in a reserved zero it checks via
    // CRC — impossible to accept silently) or rebuild by resync and serve
    // every frame.
    for (std::size_t pos = fx.clean.size() - 64; pos < fx.clean.size(); ++pos) {
        for (const unsigned char mask : {0x01u, 0x80u, 0xFFu}) {
            std::string damaged = fx.clean;
            damaged[pos] = static_cast<char>(
                static_cast<unsigned char>(damaged[pos]) ^ mask);
            write_bytes(fx.path, damaged);
            store::FrameStoreReader reader(fx.path);
            EXPECT_FALSE(reader.indexed())
                << "footer flip at " << pos << " mask " << unsigned{mask}
                << " was accepted";
            ASSERT_EQ(reader.frames(), fx.originals.size());
            for (std::size_t i = 0; i < reader.frames(); ++i)
                EXPECT_TRUE(frames_equal(reader.frame(i), fx.originals[i]));
        }
    }
    write_bytes(fx.path, fx.clean);
}

TEST(StoreCorruption, PartialIndexFooterFallsBackToLinearResync)
{
    StoreFixture fx;
    // Cut the file at every length inside the index + footer region — the
    // partial-finalize shapes — and a few byte-granular cuts inside the
    // last frame's payload (frame loss + fallback in one file).
    store::FrameStoreReader full(fx.path);
    const std::size_t arena_end = static_cast<std::size_t>(
        full.entry(full.frames() - 1).offset + full.entry(full.frames() - 1).bytes);
    const std::size_t index_begin =
        (arena_end + store::kStorePageBytes - 1) / store::kStorePageBytes *
        store::kStorePageBytes;

    for (std::size_t cut = index_begin; cut < fx.clean.size(); cut += 13) {
        write_bytes(fx.path, fx.clean.substr(0, cut));
        store::FrameStoreReader reader(fx.path);
        EXPECT_FALSE(reader.indexed()) << "cut at " << cut;
        ASSERT_EQ(reader.frames(), fx.originals.size()) << "cut at " << cut;
        for (std::size_t i = 0; i < reader.frames(); ++i)
            EXPECT_TRUE(frames_equal(reader.frame(i), fx.originals[i]));
    }

    const std::size_t last_start =
        static_cast<std::size_t>(full.entry(full.frames() - 1).offset);
    for (std::size_t cut = last_start + 1; cut < arena_end; cut += 101) {
        write_bytes(fx.path, fx.clean.substr(0, cut));
        store::FrameStoreReader reader(fx.path);
        EXPECT_FALSE(reader.indexed());
        ASSERT_EQ(reader.frames(), fx.originals.size() - 1) << "cut at " << cut;
        EXPECT_GE(reader.recovery_stats().frames_lost, 0u);
        for (std::size_t i = 0; i < reader.frames(); ++i)
            EXPECT_TRUE(frames_equal(reader.frame(i), fx.originals[i]));
    }
    write_bytes(fx.path, fx.clean);
}

TEST(StoreCorruption, SuperblockDamageIsDiagnosedNotUndefined) {
    StoreFixture fx;
    for (const std::size_t pos : {0u, 5u, 17u, 60u, 63u}) {
        std::string damaged = fx.clean;
        damaged[pos] = static_cast<char>(
            static_cast<unsigned char>(damaged[pos]) ^ 0xFFu);
        write_bytes(fx.path, damaged);
        EXPECT_THROW(store::FrameStoreReader{fx.path}, Error)
            << "superblock flip at " << pos;
    }
    write_bytes(fx.path, fx.clean);
}

}  // namespace
}  // namespace htims::pipeline
