// Exhaustive frame-corruption sweep.
//
// The container's integrity contract: a single-byte flip anywhere in a
// frame stream is either *detected* (the damaged frame is dropped by CRC /
// validation) or *recovered around* (resync re-locks on a later frame) —
// never undefined behaviour, never a silently accepted wrong payload. The
// sweep flips every byte of a three-frame stream with several masks and
// checks that every frame the reader does deliver is byte-identical to an
// original, and that the neighbours of the damaged frame survive. The suite
// runs under the ASan/UBSan stage of scripts/check.sh, so "no UB" is
// machine-checked, not assumed.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "pipeline/frame_io.hpp"
#include "prs/oversampled.hpp"

namespace htims::pipeline {
namespace {

FrameLayout sweep_layout() {
    // Small on purpose: the sweep is O(stream bytes x masks x restream).
    return FrameLayout{.drift_bins = 8, .mz_bins = 8, .drift_bin_width_s = 1e-4};
}

std::vector<Frame> sweep_frames() {
    std::vector<Frame> frames;
    Rng rng(2026);
    for (int k = 0; k < 3; ++k) {
        Frame f(sweep_layout());
        for (auto& v : f.data()) v = static_cast<double>(rng.below(1000));
        frames.push_back(std::move(f));
    }
    return frames;
}

std::string serialize(const std::vector<Frame>& frames) {
    std::ostringstream os(std::ios::binary);
    for (const auto& f : frames) write_frame(os, f);
    return os.str();
}

bool frames_equal(const Frame& a, const Frame& b) {
    return a.layout() == b.layout() &&
           std::memcmp(a.data().data(), b.data().data(),
                       a.data().size() * sizeof(double)) == 0;
}

/// Index of `frame` among the originals, or -1 if it matches none — the
/// "silently accepted corruption" failure the sweep exists to rule out.
int match_original(const Frame& frame, const std::vector<Frame>& originals) {
    for (std::size_t i = 0; i < originals.size(); ++i)
        if (frames_equal(frame, originals[i])) return static_cast<int>(i);
    return -1;
}

TEST(CorruptionSweep, EverySingleByteFlipIsDetectedOrRecovered) {
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    const std::size_t frame_bytes = clean.size() / originals.size();
    ASSERT_EQ(clean.size() % originals.size(), 0u);

    for (const unsigned char mask : {0xFFu, 0x01u, 0x80u}) {
        for (std::size_t pos = 0; pos < clean.size(); ++pos) {
            std::string damaged = clean;
            damaged[pos] = static_cast<char>(
                static_cast<unsigned char>(damaged[pos]) ^ mask);
            const std::size_t damaged_frame = pos / frame_bytes;

            FrameStreamReader reader(std::move(damaged), RecoveryMode::kResync);
            std::vector<int> delivered;
            while (auto f = reader.next()) {
                const int which = match_original(*f, originals);
                // Every delivered frame is byte-identical to an original:
                // corruption is never silently accepted.
                ASSERT_GE(which, 0)
                    << "mask 0x" << std::hex << unsigned{mask} << std::dec
                    << " at byte " << pos << " delivered a corrupted frame";
                delivered.push_back(which);
            }
            EXPECT_TRUE(reader.exhausted());

            // The flip damages exactly one frame; the other two must
            // survive, in order. (A flip that lands in a header can at
            // worst take out that one frame — resync re-locks on the next.)
            std::vector<int> want;
            for (int i = 0; i < 3; ++i)
                if (static_cast<std::size_t>(i) != damaged_frame) want.push_back(i);
            if (delivered.size() == 3u) {
                // The flip was inside this frame yet every frame decoded:
                // only possible if the damaged frame still byte-matched an
                // original, i.e. the reader proved the flip harmless. CRC
                // coverage of header + payload makes this impossible.
                ADD_FAILURE() << "mask 0x" << std::hex << unsigned{mask}
                              << std::dec << " at byte " << pos
                              << " was silently accepted";
            } else {
                ASSERT_EQ(delivered, want)
                    << "mask 0x" << std::hex << unsigned{mask} << std::dec
                    << " at byte " << pos;
                EXPECT_EQ(reader.stats().frames_lost, 1u);
                EXPECT_EQ(reader.stats().frames_ok, 2u);
            }
        }
    }
}

TEST(CorruptionSweep, TruncationAtEveryLengthIsHandled) {
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    // Cut the stream at every possible length; the reader must deliver only
    // byte-identical prefixes of the original sequence and never throw.
    for (std::size_t keep = 0; keep < clean.size(); keep += 7) {
        FrameStreamReader reader(clean.substr(0, keep), RecoveryMode::kResync);
        int expect = 0;
        while (auto f = reader.next()) {
            ASSERT_EQ(match_original(*f, originals), expect)
                << "truncated to " << keep << " bytes";
            ++expect;
        }
        EXPECT_TRUE(reader.exhausted());
        EXPECT_LE(reader.stats().frames_ok, originals.size());
    }
}

TEST(CorruptionSweep, HeaderReservedBytesAreCovered) {
    // Regression guard for the v2 header CRC: flips in the reserved words
    // (bytes 40..63 of the header, after magic/version/layout/CRCs) must be
    // detected even though the payload CRC never sees them.
    const auto originals = sweep_frames();
    const std::string clean = serialize(originals);
    for (std::size_t pos = 40; pos < 64; ++pos) {
        std::string damaged = clean;
        damaged[pos] = static_cast<char>(
            static_cast<unsigned char>(damaged[pos]) ^ 0x01u);
        FrameStreamReader reader(std::move(damaged), RecoveryMode::kResync);
        std::size_t delivered = 0;
        while (auto f = reader.next()) {
            EXPECT_GE(match_original(*f, originals), 0);
            ++delivered;
        }
        EXPECT_EQ(delivered, 2u) << "reserved-byte flip at " << pos;
    }
}

}  // namespace
}  // namespace htims::pipeline
