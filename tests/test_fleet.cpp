// Fleet-mode tests: the fleet-parity digest matrix and its regressions.
//
// The tentpole claim, pinned end to end: every stream of an N-stream fleet
// produces frames bit-identical to the same configuration run solo through
// HybridPipeline — across mixed CPU/FPGA backends, mixed live/replay record
// sources, shared-pool worker counts {1, 2, 4}, dispatch backpressure, and
// per-stream fault plans (a faulted stream degrades exactly as its solo
// twin; its neighbours' digests and counters are untouched).
//
// Satellite regressions ride along: two ordered-emission turnstiles driven
// by one shared worker pool never cross-release frames, and the bounded
// MPMC dispatch queue honours its FIFO/full/empty contract single- and
// multi-threaded. (The exhaustive interleaving coverage for both lives in
// the model stage — src/check/litmus.hpp.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "pipeline/fleet.hpp"
#include "pipeline/frame_io.hpp"
#include "pipeline/hybrid.hpp"
#include "pipeline/mpmc_queue.hpp"
#include "pipeline/turnstile.hpp"
#include "prs/oversampled.hpp"
#include "store/frame_store.hpp"
#include "store/replay.hpp"

namespace htims::pipeline {
namespace {

// ------------------------------------------------ the stream spec family ----
//
// Stream si of a fleet gets a deterministic spec that varies along the
// matrix axes the issue names:
//   backend: even si -> FPGA, odd si -> CPU
//   source:  (si / 2) odd -> frame-store replay, else live period template
// plus a per-stream period template (seeded by si) so any cross-stream
// frame mixup changes digests instead of cancelling out.

constexpr std::size_t kFleetFrames = 3;
constexpr std::size_t kFleetAverages = 2;
constexpr std::size_t kMaxStreams = 8;

const prs::OversampledPrs& fleet_sequence() {
    static const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    return seq;
}

FrameLayout fleet_layout() {
    return FrameLayout{.drift_bins = fleet_sequence().length(),
                       .mz_bins = 8,
                       .drift_bin_width_s = 1e-4};
}

std::vector<std::uint32_t> fleet_period(std::size_t si) {
    std::vector<std::uint32_t> period(fleet_layout().cells());
    Rng rng(101 + si);
    for (auto& s : period) s = static_cast<std::uint32_t>(rng.below(500));
    return period;
}

HybridConfig fleet_stream_config(std::size_t si) {
    HybridConfig cfg;
    cfg.backend = (si % 2 == 0) ? BackendKind::kFpga : BackendKind::kCpu;
    cfg.frames = kFleetFrames;
    cfg.averages = kFleetAverages;
    cfg.ring_records = 64;
    cfg.cpu_threads = 1;
    return cfg;
}

bool is_replay_stream(std::size_t si) { return (si / 2) % 2 == 1; }

/// Unique-per-test scratch path (ctest runs tests in parallel); removed on
/// scope exit.
struct ScratchFile {
    explicit ScratchFile(const std::string& name) {
        const auto* ti = ::testing::UnitTest::GetInstance()->current_test_info();
        std::string tag =
            std::string(ti->test_suite_name()) + "_" + ti->name() + "_" + name;
        for (auto& c : tag)
            if (c == '/') c = '_';
        path = ::testing::TempDir() + tag;
    }
    ~ScratchFile() { std::remove(path.c_str()); }
    std::string path;
};

/// Owns the recorded stores + readers that replay-backed streams play from.
/// One store per replay spec index, recorded once; each run gets a fresh
/// ReplaySource (sources are single-producer state, readers are shared).
class ReplayFixture {
public:
    explicit ReplayFixture(std::size_t max_streams) {
        for (std::size_t si = 0; si < max_streams; ++si) {
            if (!is_replay_stream(si)) {
                scratch_.emplace_back();
                readers_.emplace_back();
                continue;
            }
            scratch_.push_back(std::make_unique<ScratchFile>(
                "fleet_s" + std::to_string(si) + ".htstore"));
            const auto layout = fleet_layout();
            store::StoreMeta meta{layout, kFleetAverages};
            store::FrameStoreWriter writer(scratch_.back()->path, meta);
            const Frame streamed =
                store::period_to_frame(layout, fleet_period(si));
            for (std::uint64_t f = 0; f < kFleetFrames; ++f)
                writer.append(streamed, f);
            writer.finalize();
            readers_.push_back(std::make_unique<store::FrameStoreReader>(
                scratch_.back()->path));
        }
    }

    std::unique_ptr<store::ReplaySource> open(std::size_t si) const {
        return std::make_unique<store::ReplaySource>(*readers_.at(si),
                                                     store::ReplayConfig{});
    }

private:
    std::vector<std::unique_ptr<ScratchFile>> scratch_;
    std::vector<std::unique_ptr<store::FrameStoreReader>> readers_;
};

/// Solo reference: the same spec run through HybridPipeline's synchronous
/// path, one digest per frame.
std::vector<std::uint64_t> solo_digests(std::size_t si,
                                        const ReplayFixture& replays) {
    std::vector<std::uint64_t> digests(kFleetFrames, 0);
    auto cfg = fleet_stream_config(si);
    cfg.frame_sink = [&digests](std::size_t index, const Frame& frame) {
        digests.at(index) = frame_digest(frame);
    };
    if (is_replay_stream(si)) {
        const auto source = replays.open(si);
        HybridPipeline solo(fleet_sequence(), fleet_layout(), *source, cfg);
        (void)solo.run();
    } else {
        HybridPipeline solo(fleet_sequence(), fleet_layout(), fleet_period(si),
                            cfg);
        (void)solo.run();
    }
    return digests;
}

/// One fleet run over specs [0, n): per-stream digests plus the report.
struct FleetRun {
    std::vector<std::vector<std::uint64_t>> digests;
    FleetReport report;
};

FleetRun run_fleet(std::size_t n, std::size_t workers,
                   const ReplayFixture& replays, std::size_t dispatch_depth = 0) {
    FleetRun run;
    run.digests.assign(n, std::vector<std::uint64_t>(kFleetFrames, 0));
    std::vector<std::unique_ptr<store::ReplaySource>> sources;
    std::vector<FleetStream> streams;
    for (std::size_t si = 0; si < n; ++si) {
        auto cfg = fleet_stream_config(si);
        auto* slot = &run.digests[si];
        cfg.frame_sink = [slot](std::size_t index, const Frame& frame) {
            slot->at(index) = frame_digest(frame);
        };
        RecordSource* source = nullptr;
        std::vector<std::uint32_t> period;
        if (is_replay_stream(si)) {
            sources.push_back(replays.open(si));
            source = sources.back().get();
        } else {
            period = fleet_period(si);
        }
        streams.push_back(FleetStream{fleet_sequence(), fleet_layout(),
                                      std::move(cfg), std::move(period),
                                      source});
    }
    FleetConfig fc;
    fc.decode_workers = workers;
    fc.dispatch_depth = dispatch_depth;
    FleetRunner runner(std::move(streams), fc);
    EXPECT_EQ(runner.stream_count(), n);
    run.report = runner.run();
    return run;
}

// ------------------------------------------------------ the parity matrix ----

TEST(FleetParity, DigestMatrixMatchesSoloRuns) {
    const ReplayFixture replays(kMaxStreams);
    std::vector<std::vector<std::uint64_t>> solo(kMaxStreams);
    for (std::size_t si = 0; si < kMaxStreams; ++si)
        solo[si] = solo_digests(si, replays);

    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                          std::size_t{8}}) {
        for (std::size_t workers :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            const auto run = run_fleet(n, workers, replays);
            ASSERT_EQ(run.report.streams.size(), n)
                << "n=" << n << " workers=" << workers;
            for (std::size_t si = 0; si < n; ++si) {
                EXPECT_EQ(run.digests[si], solo[si])
                    << "stream " << si << " of n=" << n
                    << " workers=" << workers;
                const auto& sr = run.report.streams[si];
                EXPECT_EQ(sr.report.frames, kFleetFrames);
                EXPECT_EQ(sr.report.records_dropped, 0u);
                EXPECT_EQ(sr.report.frames_degraded, 0u);
                EXPECT_EQ(frame_digest(sr.report.last_frame),
                          run.digests[si].back());
                EXPECT_EQ(sr.frame_latency.count, kFleetFrames);
            }
            EXPECT_EQ(run.report.frames, n * kFleetFrames);
        }
    }
}

TEST(FleetParity, DispatchBackpressureIsBitIdentical) {
    // dispatch_depth=1 forces every enqueue through the queue-full retry
    // path; backpressure is a perf event, never a correctness event.
    const ReplayFixture replays(4);
    for (std::size_t si = 0; si < 4; ++si) {
        const auto solo = solo_digests(si, replays);
        SCOPED_TRACE("stream " + std::to_string(si));
        const auto run = run_fleet(4, 2, replays, /*dispatch_depth=*/1);
        EXPECT_EQ(run.digests[si], solo);
    }
}

TEST(FleetParity, FaultedStreamDegradesAloneAndDeterministically) {
    // Stream 0 runs under a forced-overrun fault plan with a drop policy;
    // streams 1 and 2 are clean. The faulted stream must (a) actually
    // degrade, (b) match its solo twin bit for bit (fault draws are
    // per-stream deterministic), and neighbours must stay pristine.
    const std::string plan = "seed=21,link.overrun@0:3:7";
    const auto faulted_config = [&](std::vector<std::uint64_t>* digests,
                                    fault::FaultInjector* injector) {
        auto cfg = fleet_stream_config(1);  // CPU backend
        cfg.ring_records = 8;
        cfg.ring_policy = RingFullPolicy::kDropNewest;
        cfg.faults = injector;
        cfg.frame_sink = [digests](std::size_t index, const Frame& frame) {
            digests->at(index) = frame_digest(frame);
        };
        return cfg;
    };

    std::vector<std::uint64_t> solo(kFleetFrames, 0);
    HybridReport solo_report;
    {
        fault::FaultInjector injector(fault::FaultPlan::parse(plan));
        HybridPipeline pipeline(fleet_sequence(), fleet_layout(),
                                fleet_period(1), faulted_config(&solo, &injector));
        solo_report = pipeline.run();
    }
    ASSERT_GT(solo_report.records_dropped, 0u);
    ASSERT_GT(solo_report.frames_degraded, 0u);

    const ReplayFixture replays(0);
    std::vector<std::vector<std::uint64_t>> digests(
        3, std::vector<std::uint64_t>(kFleetFrames, 0));
    std::vector<std::uint64_t> clean1 = solo_digests(1, replays);
    fault::FaultInjector injector(fault::FaultPlan::parse(plan));
    std::vector<FleetStream> streams;
    streams.push_back(FleetStream{fleet_sequence(), fleet_layout(),
                                  faulted_config(&digests[0], &injector),
                                  fleet_period(1), nullptr});
    for (std::size_t k = 1; k < 3; ++k) {
        auto cfg = fleet_stream_config(1);
        auto* slot = &digests[k];
        cfg.frame_sink = [slot](std::size_t index, const Frame& frame) {
            slot->at(index) = frame_digest(frame);
        };
        streams.push_back(FleetStream{fleet_sequence(), fleet_layout(),
                                      std::move(cfg), fleet_period(1), nullptr});
    }
    const auto report = FleetRunner(std::move(streams), FleetConfig{2}).run();

    EXPECT_EQ(digests[0], solo);
    EXPECT_EQ(report.streams[0].report.records_dropped,
              solo_report.records_dropped);
    EXPECT_EQ(report.streams[0].report.frames_degraded,
              solo_report.frames_degraded);
    for (std::size_t k = 1; k < 3; ++k) {
        EXPECT_EQ(digests[k], clean1) << "clean stream " << k;
        EXPECT_EQ(report.streams[k].report.records_dropped, 0u);
        EXPECT_EQ(report.streams[k].report.frames_degraded, 0u);
    }
    EXPECT_EQ(report.records_dropped, solo_report.records_dropped);
    EXPECT_EQ(report.frames_degraded, solo_report.frames_degraded);
}

// ------------------------------------------------- report + config gates ----

TEST(FleetConfigCheck, BadStreamIsNamedInTheError) {
    std::vector<FleetStream> streams;
    for (std::size_t si = 0; si < 2; ++si)
        streams.push_back(FleetStream{fleet_sequence(), fleet_layout(),
                                      fleet_stream_config(si), fleet_period(si),
                                      nullptr});
    streams[1].config.frames = 0;
    try {
        FleetRunner runner(std::move(streams));
        FAIL() << "zero-frame stream accepted";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("fleet stream 1"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FleetConfigCheck, ZeroWorkersRejected) {
    std::vector<FleetStream> streams;
    streams.push_back(FleetStream{fleet_sequence(), fleet_layout(),
                                  fleet_stream_config(0), fleet_period(0),
                                  nullptr});
    EXPECT_THROW(FleetRunner(std::move(streams), FleetConfig{0}), ConfigError);
}

TEST(FleetReportJson, CarriesAggregateAndPerStreamLatency) {
    const ReplayFixture replays(2);
    const auto run = run_fleet(2, 2, replays);
    EXPECT_EQ(run.report.frame_latency.count, 2 * kFleetFrames);
    EXPECT_GT(run.report.sample_rate, 0.0);
    EXPECT_EQ(run.report.samples,
              2 * kFleetFrames * kFleetAverages * fleet_layout().cells());

    const std::string json = fleet_report_json(run.report);
    EXPECT_NE(json.find("htims.fleet.v1"), std::string::npos);
    EXPECT_NE(json.find("\"streams\""), std::string::npos);
    EXPECT_NE(json.find("p99"), std::string::npos);
    EXPECT_NE(json.find("frame_latency_ns"), std::string::npos);
}

// --------------------------------------------------- turnstile regression ----

TEST(TurnstileFleet, TwoTurnstilesOnSharedPoolNeverCrossRelease) {
    // Regression for the single-stream assumption: a pool of workers
    // serving two streams' jobs must release each stream's frames in that
    // stream's own order — stream B's progress can never unblock stream A.
    constexpr std::size_t kFramesPerStream = 64;
    constexpr std::size_t kWorkers = 4;
    for (int round = 0; round < 8; ++round) {
        OrderTurnstile<> turnstiles[2];
        std::atomic<std::size_t> emitted[2] = {{0}, {0}};
        // Interleaved job feed: (stream, index) pairs claimed by ticket.
        std::atomic<std::size_t> next{0};
        std::atomic<bool> ordered{true};
        std::vector<std::thread> pool;
        pool.reserve(kWorkers);
        for (std::size_t w = 0; w < kWorkers; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t ticket = next.fetch_add(1);
                    if (ticket >= 2 * kFramesPerStream) return;
                    const std::size_t stream = ticket % 2;
                    const std::size_t index = ticket / 2;
                    turnstiles[stream].wait_turn(index);
                    // Under the turnstile: exactly `index` prior emissions.
                    if (emitted[stream].load(std::memory_order_relaxed) != index)
                        ordered.store(false, std::memory_order_relaxed);
                    emitted[stream].store(index + 1, std::memory_order_relaxed);
                    turnstiles[stream].advance();
                }
            });
        }
        for (auto& t : pool) t.join();
        EXPECT_TRUE(ordered.load()) << "round " << round;
        EXPECT_EQ(emitted[0].load(), kFramesPerStream);
        EXPECT_EQ(emitted[1].load(), kFramesPerStream);
    }
}

// -------------------------------------------------------- MPMC unit gate ----

TEST(MpmcQueueUnit, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(9).capacity(), 16u);
}

TEST(MpmcQueueUnit, FifoFullAndEmptySingleThreaded) {
    MpmcQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.try_pop().has_value());
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(int{i}));
    EXPECT_FALSE(q.try_push(99));  // full: push fails, queue unchanged
    EXPECT_EQ(q.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        const auto v = q.try_pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);  // FIFO across the wrap
    }
    EXPECT_TRUE(q.empty());
    // The freed slots are reusable (ticket recycling across laps).
    EXPECT_TRUE(q.try_push(7));
    EXPECT_EQ(q.try_pop().value_or(-1), 7);
}

TEST(MpmcQueueUnit, MoveOnlyPayloadsSurviveTransit) {
    MpmcQueue<std::unique_ptr<int>> q(2);
    EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
    auto out = q.try_pop();
    ASSERT_TRUE(out.has_value());
    ASSERT_TRUE(*out != nullptr);
    EXPECT_EQ(**out, 42);
    // Destruction with a queued item must release it (no leak under ASan).
    q.try_push(std::make_unique<int>(7));
}

}  // namespace
}  // namespace htims::pipeline
