// Tests for the SPSC ring's batch transfer path: push_batch/pop_batch at
// wrap boundaries (partial push into a near-full ring, partial pop larger
// than the fill, batches split across the wrap point), move-only payloads,
// interleaving with the single-element ops (cached-index coherence), the
// capacity-overflow guard, and a concurrent batch handoff stress test.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "pipeline/spsc_ring.hpp"

namespace htims::pipeline {
namespace {

std::vector<int> iota_batch(int first, std::size_t n) {
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = first + static_cast<int>(i);
    return v;
}

TEST(SpscRingBatch, BatchRoundTripPreservesOrder) {
    SpscRing<int> ring(16);
    auto in = iota_batch(0, 10);
    EXPECT_EQ(ring.push_batch(std::span(in)), 10u);
    EXPECT_EQ(ring.size(), 10u);
    std::vector<int> out(10);
    EXPECT_EQ(ring.pop_batch(std::span(out)), 10u);
    EXPECT_EQ(out, iota_batch(0, 10));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRingBatch, PartialPushIntoNearFullRing) {
    SpscRing<int> ring(8);
    for (int i = 0; i < 6; ++i) EXPECT_TRUE(ring.try_push(int{i}));
    // 2 slots free: a batch of 5 transfers exactly 2, the rest untouched.
    auto in = iota_batch(100, 5);
    EXPECT_EQ(ring.push_batch(std::span(in)), 2u);
    EXPECT_EQ(ring.size(), 8u);
    // Full ring: further batch pushes transfer nothing.
    EXPECT_EQ(ring.push_batch(std::span(in)), 0u);
    std::vector<int> out(8);
    ASSERT_EQ(ring.pop_batch(std::span(out)), 8u);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(out[6], 100);
    EXPECT_EQ(out[7], 101);
}

TEST(SpscRingBatch, PartialPopLargerThanFill) {
    SpscRing<int> ring(16);
    auto in = iota_batch(7, 3);
    ASSERT_EQ(ring.push_batch(std::span(in)), 3u);
    std::vector<int> out(10, -1);
    EXPECT_EQ(ring.pop_batch(std::span(out)), 3u);
    EXPECT_EQ(out[0], 7);
    EXPECT_EQ(out[1], 8);
    EXPECT_EQ(out[2], 9);
    EXPECT_EQ(out[3], -1);  // untouched past the fill
    // Empty ring: batch pop transfers nothing.
    EXPECT_EQ(ring.pop_batch(std::span(out)), 0u);
}

TEST(SpscRingBatch, WraparoundSplitsBatchAcrossSegments) {
    SpscRing<int> ring(16);
    // Advance the indices so the next batch straddles the wrap point.
    auto warmup = iota_batch(0, 10);
    ASSERT_EQ(ring.push_batch(std::span(warmup)), 10u);
    std::vector<int> sink(10);
    ASSERT_EQ(ring.pop_batch(std::span(sink)), 10u);
    // Slots 10..15 then 0..1: an 8-element batch copies in two segments.
    auto in = iota_batch(100, 8);
    EXPECT_EQ(ring.push_batch(std::span(in)), 8u);
    std::vector<int> out(8);
    EXPECT_EQ(ring.pop_batch(std::span(out)), 8u);
    EXPECT_EQ(out, iota_batch(100, 8));
}

TEST(SpscRingBatch, EveryOffsetWrapsCorrectly) {
    // March the wrap point through every slot of a small ring; each round
    // trips a batch wide enough to straddle it.
    SpscRing<int> ring(8);
    int next = 0;
    std::vector<int> out(6);
    for (int round = 0; round < 33; ++round) {
        auto in = iota_batch(next, 6);
        ASSERT_EQ(ring.push_batch(std::span(in)), 6u);
        ASSERT_EQ(ring.pop_batch(std::span(out)), 6u);
        EXPECT_EQ(out, iota_batch(next, 6));
        next += 6;
    }
}

TEST(SpscRingBatch, MoveOnlyPayloadsTransferOwnership) {
    SpscRing<std::unique_ptr<int>> ring(8);
    std::vector<std::unique_ptr<int>> in;
    for (int i = 0; i < 5; ++i) in.push_back(std::make_unique<int>(i));
    ASSERT_EQ(ring.push_batch(std::span(in)), 5u);
    for (const auto& p : in) EXPECT_EQ(p, nullptr);  // moved from
    std::vector<std::unique_ptr<int>> out(5);
    ASSERT_EQ(ring.pop_batch(std::span(out)), 5u);
    for (int i = 0; i < 5; ++i) {
        ASSERT_NE(out[static_cast<std::size_t>(i)], nullptr);
        EXPECT_EQ(*out[static_cast<std::size_t>(i)], i);
    }
}

TEST(SpscRingBatch, MixedSingleAndBatchOpsStayFifo) {
    // The cached peer indices must stay coherent when single-element and
    // batch operations interleave on both sides.
    SpscRing<int> ring(8);
    int pushed = 0, popped = 0;
    const auto push_one = [&] { ASSERT_TRUE(ring.try_push(int{pushed++})); };
    const auto push_some = [&](std::size_t n) {
        auto in = iota_batch(pushed, n);
        ASSERT_EQ(ring.push_batch(std::span(in)), n);
        pushed += static_cast<int>(n);
    };
    const auto pop_one = [&] {
        auto v = ring.try_pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, popped++);
    };
    const auto pop_some = [&](std::size_t n) {
        std::vector<int> out(n);
        ASSERT_EQ(ring.pop_batch(std::span(out)), n);
        EXPECT_EQ(out, iota_batch(popped, n));
        popped += static_cast<int>(n);
    };
    for (int round = 0; round < 20; ++round) {
        push_one();
        push_some(3);
        pop_one();
        push_some(2);
        pop_some(3);
        push_one();
        pop_some(2);
        pop_one();
        EXPECT_TRUE(ring.empty());
    }
    EXPECT_EQ(pushed, popped);
}

TEST(SpscRingBatch, AbsurdCapacityRejectedBeforeRoundUpWraps) {
    using Ring = SpscRing<int>;
    // One past the largest power of two would wrap cap <<= 1 to zero.
    EXPECT_THROW(Ring(Ring::kMaxCapacity + 1), ConfigError);
    EXPECT_THROW(Ring(~std::size_t{0}), ConfigError);
    // Ordinary capacities still round up to the next power of two.
    EXPECT_EQ(Ring(5).capacity(), 8u);
    EXPECT_EQ(Ring(0).capacity(), 2u);
}

TEST(SpscRingBatch, ConcurrentBatchHandoffPreservesOrderAndCount) {
    // Producer publishes in varied batch sizes, consumer drains in batches
    // of a different size; the stream must arrive complete and in order.
    constexpr std::uint32_t kTotal = 200000;
    SpscRing<std::uint32_t> ring(64);
    std::thread producer([&] {
        std::uint32_t next = 0;
        std::size_t batch = 1;
        std::vector<std::uint32_t> stage;
        while (next < kTotal) {
            stage.clear();
            for (std::size_t i = 0; i < batch && next < kTotal; ++i)
                stage.push_back(next++);
            std::size_t off = 0;
            while (off < stage.size())
                off += ring.push_batch(std::span(stage).subspan(off));
            batch = batch % 7 + 1;  // 1..7, exercises partial pushes
        }
    });
    std::vector<std::uint32_t> out(5);
    std::uint32_t expect = 0;
    while (expect < kTotal) {
        const std::size_t got = ring.pop_batch(std::span(out));
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_EQ(out[i], expect);
            ++expect;
        }
        if (got == 0) std::this_thread::yield();
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace htims::pipeline
