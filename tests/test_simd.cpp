// Tests for the batched multi-lane SIMD deconvolution path: the runtime
// dispatch shim, fwht_batch vs per-lane scalar FWHT, Deconvolver /
// EnhancedDeconvolver decode_batch parity against the scalar oracle
// (including ragged lane counts), the Frame tile transpose, the grained
// ThreadPool::parallel_for, and the CpuBackend batched frame path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "pipeline/cpu_backend.hpp"
#include "pipeline/frame.hpp"
#include "prs/oversampled.hpp"
#include "prs/sequence.hpp"
#include "transform/deconvolver.hpp"
#include "transform/enhanced.hpp"
#include "transform/fwht.hpp"

namespace htims {
namespace {

using pipeline::Frame;
using pipeline::FrameLayout;
using prs::GateMode;
using prs::MSequence;
using prs::OversampledPrs;

// The batched path promises bit-identical per-lane results; 1e-12 is the
// acceptance bound, 0 the expectation.
constexpr double kParityTol = 1e-12;

// ------------------------------------------------------------ dispatch ----

TEST(Simd, TierIsCoherent) {
    const SimdTier tier = simd_tier();
    EXPECT_STRNE(simd_tier_name(tier), "unknown");
    EXPECT_GE(simd_register_lanes(tier), 1u);
    const std::size_t lanes = batch_lanes();
    EXPECT_TRUE(lanes == 4 || lanes == 8);
    // The default tile width always holds a whole number of registers.
    EXPECT_EQ(lanes % simd_register_lanes(tier), 0u);
}

TEST(Simd, TierNamesAreDistinct) {
    EXPECT_STREQ(simd_tier_name(SimdTier::kGeneric), "generic");
    EXPECT_STREQ(simd_tier_name(SimdTier::kAvx2), "avx2");
    EXPECT_STREQ(simd_tier_name(SimdTier::kAvx512), "avx512");
    EXPECT_STREQ(simd_tier_name(SimdTier::kNeon), "neon");
}

// ----------------------------------------------------------- fwht_batch ----

// Build a lane-interleaved buffer from `lanes` independent random vectors,
// transform both ways, and require exact agreement. Lane counts that are
// multiples of 8, of 4, of 2, and of nothing exercise every kernel the host
// dispatch table can reach (wide, narrow, fixed, ragged-any).
class FwhtBatchParity : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(FwhtBatchParity, MatchesScalarPerLane) {
    const auto [n, lanes] = GetParam();
    Rng rng(17 + static_cast<std::uint32_t>(n + lanes));
    std::vector<AlignedVector<double>> ref(lanes, AlignedVector<double>(n));
    AlignedVector<double> batch(n * lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t j = 0; j < n; ++j) {
            ref[l][j] = rng.uniform(-100.0, 100.0);
            batch[j * lanes + l] = ref[l][j];
        }
    }
    for (auto& r : ref) transform::fwht(r);
    transform::fwht_batch(batch, lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t j = 0; j < n; ++j)
            ASSERT_EQ(batch[j * lanes + l], ref[l][j]) << "lane=" << l << " node=" << j;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLanes, FwhtBatchParity,
    ::testing::Combine(::testing::Values<std::size_t>(8, 256, 2048),
                       ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 8, 16)));

TEST(FwhtBatch, RejectsNonPowerOfTwoNodeCount) {
    AlignedVector<double> bad(6 * 4, 1.0);
    EXPECT_THROW(transform::fwht_batch(bad, 4), PreconditionError);
}

TEST(FwhtBatch, RejectsSizeNotDivisibleByLanes) {
    AlignedVector<double> bad(10, 1.0);
    EXPECT_THROW(transform::fwht_batch(bad, 4), PreconditionError);
}

TEST(FwhtBatch, SingleNodeIsIdentity) {
    AlignedVector<double> one = {3.0, -1.0, 2.0, 0.5};
    transform::fwht_batch(one, 4);
    EXPECT_DOUBLE_EQ(one[0], 3.0);
    EXPECT_DOUBLE_EQ(one[3], 0.5);
}

// --------------------------------------------------- Deconvolver batch ----

class DecodeBatchParity : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(DecodeBatchParity, MatchesScalarDecode) {
    const auto [order, lanes] = GetParam();
    const MSequence seq(order);
    const transform::Deconvolver d(seq);
    const std::size_t n = seq.length();
    Rng rng(23 + static_cast<std::uint32_t>(order));
    std::vector<AlignedVector<double>> y(lanes, AlignedVector<double>(n));
    AlignedVector<double> yb(n * lanes), xb(n * lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t t = 0; t < n; ++t) {
            y[l][t] = rng.uniform(-5.0, 250.0);
            yb[t * lanes + l] = y[l][t];
        }
    auto ws = d.make_workspace();
    auto wsb = d.make_batch_workspace(lanes);
    d.decode_batch(yb, xb, wsb);
    AlignedVector<double> x(n);
    for (std::size_t l = 0; l < lanes; ++l) {
        d.decode(y[l], x, ws);
        for (std::size_t k = 0; k < n; ++k)
            ASSERT_NEAR(xb[k * lanes + l], x[k], kParityTol)
                << "lane=" << l << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(OrdersAndLanes, DecodeBatchParity,
                         ::testing::Combine(::testing::Values(6, 9, 11),
                                            ::testing::Values<std::size_t>(3, 4, 8)));

TEST(DecodeBatch, SizeMismatchRejected) {
    const MSequence seq(6);
    const transform::Deconvolver d(seq);
    auto ws = d.make_batch_workspace(4);
    AlignedVector<double> y(seq.length() * 4, 0.0);
    AlignedVector<double> bad(seq.length() * 3, 0.0);
    EXPECT_THROW(d.decode_batch(y, bad, ws), PreconditionError);
}

// ------------------------------------------- EnhancedDeconvolver batch ----

using EnhancedBatchParam = std::tuple<int, int, GateMode, std::size_t>;

class EnhancedBatchParity : public ::testing::TestWithParam<EnhancedBatchParam> {};

TEST_P(EnhancedBatchParity, MatchesScalarDecode) {
    const auto [order, factor, mode, lanes] = GetParam();
    const OversampledPrs prs(order, factor, mode);
    const transform::EnhancedDeconvolver d(prs);
    const std::size_t n = prs.length();
    Rng rng(31 + static_cast<std::uint32_t>(order * factor));
    std::vector<AlignedVector<double>> y(lanes, AlignedVector<double>(n));
    AlignedVector<double> yb(n * lanes), xb(n * lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t t = 0; t < n; ++t) {
            y[l][t] = rng.uniform(0.0, 200.0);
            yb[t * lanes + l] = y[l][t];
        }
    auto ws = d.make_workspace();
    auto wsb = d.make_batch_workspace(lanes);
    d.decode_batch(yb, xb, wsb);
    AlignedVector<double> x(n);
    for (std::size_t l = 0; l < lanes; ++l) {
        d.decode(y[l], x, ws);
        for (std::size_t k = 0; k < n; ++k)
            ASSERT_NEAR(xb[k * lanes + l], x[k], kParityTol)
                << "order=" << order << " factor=" << factor << " lane=" << l
                << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersFactorsModes, EnhancedBatchParity,
    ::testing::Combine(::testing::Values(6, 9, 11), ::testing::Values(1, 2, 4),
                       ::testing::Values(GateMode::kPulsed, GateMode::kStretched),
                       ::testing::Values<std::size_t>(4, 8)));

// Ragged lane count through the full enhanced decoder (generic kernel).
TEST(EnhancedBatch, RaggedLaneCountMatchesScalar) {
    const OversampledPrs prs(7, 2, GateMode::kStretched);
    const transform::EnhancedDeconvolver d(prs);
    const std::size_t lanes = 5;
    const std::size_t n = prs.length();
    Rng rng(37);
    AlignedVector<double> yb(n * lanes), xb(n * lanes);
    std::vector<AlignedVector<double>> y(lanes, AlignedVector<double>(n));
    for (std::size_t l = 0; l < lanes; ++l)
        for (std::size_t t = 0; t < n; ++t) {
            y[l][t] = rng.uniform(0.0, 50.0);
            yb[t * lanes + l] = y[l][t];
        }
    auto wsb = d.make_batch_workspace(lanes);
    d.decode_batch(yb, xb, wsb);
    auto ws = d.make_workspace();
    AlignedVector<double> x(n);
    for (std::size_t l = 0; l < lanes; ++l) {
        d.decode(y[l], x, ws);
        for (std::size_t k = 0; k < n; ++k)
            ASSERT_NEAR(xb[k * lanes + l], x[k], kParityTol);
    }
}

// ------------------------------------------------------- Frame tiles ----

TEST(FrameTiles, GatherMatchesDriftProfiles) {
    const FrameLayout layout{.drift_bins = 16, .mz_bins = 10, .drift_bin_width_s = 1e-4};
    Frame f(layout);
    Rng rng(41);
    for (double& v : f.data()) v = rng.uniform(0.0, 9.0);
    const std::size_t lanes = 4, mz0 = 3;
    AlignedVector<double> tile(layout.drift_bins * lanes);
    f.gather_tile(mz0, lanes, tile);
    AlignedVector<double> col(layout.drift_bins);
    for (std::size_t l = 0; l < lanes; ++l) {
        f.drift_profile(mz0 + l, col);
        for (std::size_t dd = 0; dd < layout.drift_bins; ++dd)
            EXPECT_DOUBLE_EQ(tile[dd * lanes + l], col[dd]);
    }
}

TEST(FrameTiles, ScatterRoundTrips) {
    const FrameLayout layout{.drift_bins = 8, .mz_bins = 12, .drift_bin_width_s = 1e-4};
    Frame src(layout), dst(layout);
    Rng rng(43);
    for (double& v : src.data()) v = rng.uniform(-1.0, 1.0);
    AlignedVector<double> tile(layout.drift_bins * 4);
    for (std::size_t mz0 : {std::size_t{0}, std::size_t{4}, std::size_t{8}}) {
        src.gather_tile(mz0, 4, tile);
        dst.scatter_tile(mz0, 4, tile);
    }
    for (std::size_t i = 0; i < src.data().size(); ++i)
        EXPECT_DOUBLE_EQ(dst.data()[i], src.data()[i]);
}

TEST(FrameTiles, OutOfRangeRejected) {
    const FrameLayout layout{.drift_bins = 4, .mz_bins = 6, .drift_bin_width_s = 1e-4};
    Frame f(layout);
    AlignedVector<double> tile(layout.drift_bins * 4);
    EXPECT_THROW(f.gather_tile(4, 4, tile), PreconditionError);
    EXPECT_THROW(f.scatter_tile(4, 4, tile), PreconditionError);
}

// -------------------------------------------------- parallel_for grain ----

TEST(ParallelForGrain, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                std::size_t{1000}}) {
        for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                                        std::size_t{2000}}) {
            std::vector<std::atomic<int>> hits(n);
            for (auto& h : hits) h.store(0);
            pool.parallel_for(
                n,
                [&](std::size_t lo, std::size_t hi) {
                    ASSERT_LE(lo, hi);
                    ASSERT_LE(hi, n);
                    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                },
                grain);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain;
        }
    }
}

TEST(ParallelForGrain, ExplicitGrainBoundsChunkSize) {
    ThreadPool pool(4);
    const std::size_t n = 100, grain = 30;
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    pool.parallel_for(
        n,
        [&](std::size_t lo, std::size_t hi) {
            std::lock_guard lock(mu);
            ranges.emplace_back(lo, hi);
        },
        grain);
    std::size_t covered = 0;
    for (const auto& [lo, hi] : ranges) {
        covered += hi - lo;
        // Every chunk except the last holds at least `grain` indices.
        if (hi != n) {
            EXPECT_GE(hi - lo, grain);
        }
    }
    EXPECT_EQ(covered, n);
}

TEST(ParallelForGrain, MutableStateCallableCompiles) {
    // The template front-end must accept non-const callables (the old
    // std::function signature silently copied them).
    ThreadPool pool(2);
    std::atomic<std::size_t> total{0};
    auto body = [&total, acc = std::size_t{0}](std::size_t lo, std::size_t hi) mutable {
        acc = hi - lo;
        total.fetch_add(acc);
    };
    pool.parallel_for(256, body, 16);
    EXPECT_EQ(total.load(), 256u);
}

// ------------------------------------------------- CpuBackend batched ----

class CpuBackendParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpuBackendParity, BatchedMatchesScalarIncludingRaggedTail) {
    const std::size_t mz_bins = GetParam();  // chosen to leave ragged tails
    const OversampledPrs seq(6, 2, GateMode::kPulsed);
    const FrameLayout layout{.drift_bins = seq.length(),
                             .mz_bins = mz_bins,
                             .drift_bin_width_s = 1e-4};
    Frame raw(layout);
    Rng rng(47);
    for (double& v : raw.data()) v = rng.uniform(0.0, 255.0);
    pipeline::CpuBackend cpu(seq, layout, 2);
    const Frame batched = cpu.deconvolve(raw);
    const Frame scalar = cpu.deconvolve_scalar(raw);
    for (std::size_t i = 0; i < batched.data().size(); ++i)
        ASSERT_NEAR(batched.data()[i], scalar.data()[i], kParityTol) << "i=" << i;
}

// 3: below any lane width (all tail); 19: 2 tiles of 8 + 3 or 4 tiles of
// 4 + 3; 32: exact multiple of both supported widths.
INSTANTIATE_TEST_SUITE_P(MzWidths, CpuBackendParity,
                         ::testing::Values<std::size_t>(3, 19, 32));

TEST(CpuBackend, StretchedModeBatchedMatchesScalar) {
    const OversampledPrs seq(6, 2, GateMode::kStretched);
    const FrameLayout layout{.drift_bins = seq.length(),
                             .mz_bins = 13,
                             .drift_bin_width_s = 1e-4};
    Frame raw(layout);
    Rng rng(53);
    for (double& v : raw.data()) v = rng.uniform(0.0, 100.0);
    pipeline::CpuBackend cpu(seq, layout, 2);
    const Frame batched = cpu.deconvolve(raw);
    const Frame scalar = cpu.deconvolve_scalar(raw);
    for (std::size_t i = 0; i < batched.data().size(); ++i)
        ASSERT_NEAR(batched.data()[i], scalar.data()[i], kParityTol);
}

TEST(CpuBackend, SetBatchLanesControlsPath) {
    const OversampledPrs seq(5, 1, GateMode::kPulsed);
    const FrameLayout layout{.drift_bins = seq.length(),
                             .mz_bins = 16,
                             .drift_bin_width_s = 1e-4};
    pipeline::CpuBackend cpu(seq, layout, 1);
    EXPECT_TRUE(cpu.batch_lanes() == 4 || cpu.batch_lanes() == 8);
    cpu.set_batch_lanes(1);
    EXPECT_EQ(cpu.batch_lanes(), 1u);
    cpu.set_batch_lanes(0);
    EXPECT_EQ(cpu.batch_lanes(), batch_lanes());
}

TEST(CpuBackend, SustainedRateAveragesOverAllFrames) {
    const OversampledPrs seq(5, 1, GateMode::kPulsed);
    const FrameLayout layout{.drift_bins = seq.length(),
                             .mz_bins = 8,
                             .drift_bin_width_s = 1e-4};
    Frame raw(layout);
    Rng rng(59);
    for (double& v : raw.data()) v = rng.uniform(0.0, 10.0);
    pipeline::CpuBackend cpu(seq, layout, 1);
    EXPECT_EQ(cpu.frames_decoded(), 0u);
    EXPECT_DOUBLE_EQ(cpu.sustained_sample_rate(4), 0.0);
    (void)cpu.deconvolve(raw);
    (void)cpu.deconvolve(raw);
    (void)cpu.deconvolve(raw);
    EXPECT_EQ(cpu.frames_decoded(), 3u);
    EXPECT_GE(cpu.total_seconds(), cpu.last_seconds());
    const std::size_t averages = 4;
    const double expected = static_cast<double>(averages) *
                            static_cast<double>(layout.cells()) * 3.0 /
                            cpu.total_seconds();
    EXPECT_NEAR(cpu.sustained_sample_rate(averages), expected, expected * 1e-9);
}

}  // namespace
}  // namespace htims
