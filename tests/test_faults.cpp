// Tests for the deterministic fault-injection layer (src/fault) and the
// degraded-mode behaviour it drives in frame_io, the hybrid orchestrator,
// the CPU backend, and the FPGA model.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include <string>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "pipeline/cpu_backend.hpp"
#include "pipeline/fpga.hpp"
#include "pipeline/frame_io.hpp"
#include "pipeline/hybrid.hpp"
#include "transform/enhanced.hpp"

namespace htims::fault {
namespace {

// ----------------------------------------------------------- FaultPlan ----

TEST(FaultPlan, DefaultIsEmpty) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    FaultInjector injector(plan);
    for (std::size_t s = 0; s < kSiteCount; ++s)
        EXPECT_FALSE(injector.should_fire(static_cast<Site>(s)));
}

TEST(FaultPlan, ParsesSeedProbabilitiesAndSchedules) {
    const auto plan = FaultPlan::parse(
        "seed=42, frame_io.corrupt=0.25, link.overrun=1, cpu.fail@3:17:3");
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_DOUBLE_EQ(plan.site(Site::kFrameCorrupt).probability, 0.25);
    EXPECT_DOUBLE_EQ(plan.site(Site::kLinkOverrun).probability, 1.0);
    // Schedules come back sorted and deduplicated.
    EXPECT_EQ(plan.site(Site::kCpuFault).schedule,
              (std::vector<std::uint64_t>{3, 17}));
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ToStringRoundTrips) {
    const auto plan = FaultPlan::parse(
        "seed=7,frame_io.truncate=0.125,fpga.overrun@0:9,link.jitter=0.5");
    const auto again = FaultPlan::parse(plan.to_string());
    EXPECT_EQ(again.seed, plan.seed);
    for (std::size_t s = 0; s < kSiteCount; ++s) {
        EXPECT_DOUBLE_EQ(again.sites[s].probability, plan.sites[s].probability);
        EXPECT_EQ(again.sites[s].schedule, plan.sites[s].schedule);
    }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
    EXPECT_THROW(FaultPlan::parse("bogus.site=0.5"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("cpu.fail=1.5"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("cpu.fail=-0.1"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("cpu.fail=abc"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("cpu.fail@x"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("justaword"), ConfigError);
    EXPECT_THROW(FaultPlan::parse("seed=notanumber"), ConfigError);
}

TEST(FaultPlan, SiteNamesRoundTrip) {
    for (std::size_t s = 0; s < kSiteCount; ++s) {
        const auto site = static_cast<Site>(s);
        EXPECT_EQ(site_from_name(site_name(site)), site);
    }
    EXPECT_THROW(site_from_name("not.a.site"), ConfigError);
}

// ------------------------------------------------------- FaultInjector ----

TEST(FaultInjector, ScheduledEventsFireExactly) {
    FaultInjector injector(FaultPlan::parse("cpu.fail@0:2"));
    EXPECT_TRUE(injector.should_fire(Site::kCpuFault));   // event 0
    EXPECT_FALSE(injector.should_fire(Site::kCpuFault));  // event 1
    EXPECT_TRUE(injector.should_fire(Site::kCpuFault));   // event 2
    EXPECT_FALSE(injector.should_fire(Site::kCpuFault));  // event 3
    EXPECT_EQ(injector.events(Site::kCpuFault), 4u);
    EXPECT_EQ(injector.injected(Site::kCpuFault), 2u);
}

TEST(FaultInjector, ProbabilityEndpointsAreExact) {
    FaultInjector always(FaultPlan::parse("link.overrun=1"));
    FaultInjector never(FaultPlan::parse("link.overrun=0"));
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(always.should_fire(Site::kLinkOverrun));
        EXPECT_FALSE(never.should_fire(Site::kLinkOverrun));
    }
}

TEST(FaultInjector, BernoulliRateIsRoughlyHonoured) {
    FaultInjector injector(FaultPlan::parse("seed=99,frame_io.corrupt=0.1"));
    const int n = 20000;
    for (int i = 0; i < n; ++i) injector.should_fire(Site::kFrameCorrupt);
    const auto hits = injector.injected(Site::kFrameCorrupt);
    // 6 sigma around np = 2000 (sigma ~ 42).
    EXPECT_GT(hits, 1700u);
    EXPECT_LT(hits, 2300u);
}

TEST(FaultInjector, DecisionsArePureFunctionsOfSeedSiteEvent) {
    const auto plan = FaultPlan::parse("seed=1234,link.jitter=0.3,cpu.fail=0.05");
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.should_fire(Site::kLinkJitter), b.fires_at(Site::kLinkJitter, i));
        b.should_fire(Site::kLinkJitter);
    }
    EXPECT_EQ(a.counts(), b.counts());

    // A different seed produces a different pattern.
    FaultInjector c(FaultPlan::parse("seed=1235,link.jitter=0.3"));
    int diffs = 0;
    for (int i = 0; i < 500; ++i)
        diffs += a.fires_at(Site::kLinkJitter, i) != c.fires_at(Site::kLinkJitter, i);
    EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, DrawBelowIsDeterministicAndInRange) {
    FaultInjector injector(FaultPlan::parse("seed=5"));
    for (std::uint64_t ev = 0; ev < 200; ++ev) {
        const auto v = injector.draw_below(Site::kFrameCorrupt, ev, 17);
        EXPECT_LT(v, 17u);
        EXPECT_EQ(v, injector.draw_below(Site::kFrameCorrupt, ev, 17));
        // Salted draws are independent streams.
        EXPECT_EQ(injector.draw_below(Site::kFrameCorrupt, ev, 1000, 1),
                  injector.draw_below(Site::kFrameCorrupt, ev, 1000, 1));
    }
}

TEST(FaultInjector, CountersAreThreadSafeAndResettable) {
    FaultInjector injector(FaultPlan::parse("seed=3,cpu.fail=0.5"));
    constexpr int kThreads = 4, kPerThread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i)
                injector.should_fire(Site::kCpuFault);
        });
    for (auto& w : workers) w.join();
    EXPECT_EQ(injector.events(Site::kCpuFault), kThreads * kPerThread);
    // The decision for event k is interleaving-independent, so the total
    // injected count matches a serial replay of the same event range.
    std::uint64_t serial = 0;
    for (std::uint64_t ev = 0; ev < kThreads * kPerThread; ++ev)
        serial += injector.fires_at(Site::kCpuFault, ev) ? 1 : 0;
    EXPECT_EQ(injector.injected(Site::kCpuFault), serial);

    injector.reset();
    EXPECT_EQ(injector.events(Site::kCpuFault), 0u);
    EXPECT_EQ(injector.counts().total_injected(), 0u);
}

}  // namespace
}  // namespace htims::fault

namespace htims::pipeline {
namespace {

FrameLayout small_layout(const prs::OversampledPrs& seq, std::size_t mz = 16) {
    return FrameLayout{.drift_bins = seq.length(), .mz_bins = mz,
                       .drift_bin_width_s = 1e-4};
}

// ------------------------------------------------- frame_io injection ----

Frame test_frame(const FrameLayout& layout, double scale = 1.0) {
    Frame frame(layout);
    for (std::size_t i = 0; i < frame.data().size(); ++i)
        frame.data()[i] = scale * static_cast<double>(i % 97);
    return frame;
}

TEST(FaultedFrameIo, CorruptedWriteIsDetectedOnRead) {
    const prs::OversampledPrs seq(4, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=11,frame_io.corrupt@0"));
    std::ostringstream os(std::ios::binary);
    write_frame(os, test_frame(layout), &faults);
    EXPECT_EQ(faults.injected(fault::Site::kFrameCorrupt), 1u);
    std::istringstream is(os.str(), std::ios::binary);
    EXPECT_THROW(read_frame(is), Error);
}

TEST(FaultedFrameIo, NullInjectorWritesIdenticalBytes) {
    const prs::OversampledPrs seq(4, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    const Frame frame = test_frame(layout);
    std::ostringstream plain(std::ios::binary), via_null(std::ios::binary);
    write_frame(plain, frame);
    write_frame(via_null, frame, nullptr);
    EXPECT_EQ(plain.str(), via_null.str());
}

TEST(FaultedFrameIo, StreamReaderResyncsPastCorruptFrame) {
    const prs::OversampledPrs seq(4, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    // [good][corrupt][good]: the middle frame is lost, both neighbours
    // decode, and the loss is counted.
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=2,frame_io.corrupt@1"));
    std::ostringstream os(std::ios::binary);
    write_frame(os, test_frame(layout, 1.0), &faults);
    write_frame(os, test_frame(layout, 2.0), &faults);
    write_frame(os, test_frame(layout, 3.0), &faults);

    FrameStreamReader reader(os.str(), RecoveryMode::kResync);
    std::vector<Frame> frames;
    while (auto f = reader.next()) frames.push_back(std::move(*f));
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].data()[1], 1.0);
    EXPECT_EQ(frames[1].data()[1], 3.0);
    EXPECT_EQ(reader.stats().frames_ok, 2u);
    EXPECT_EQ(reader.stats().frames_lost, 1u);
    EXPECT_EQ(reader.stats().resyncs, 1u);
    EXPECT_TRUE(reader.exhausted());
}

TEST(FaultedFrameIo, StreamReaderResyncsPastTruncatedFrame) {
    const prs::OversampledPrs seq(4, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=8,frame_io.truncate@0"));
    std::ostringstream os(std::ios::binary);
    write_frame(os, test_frame(layout, 1.0), &faults);  // truncated
    write_frame(os, test_frame(layout, 2.0), &faults);  // intact

    FrameStreamReader reader(os.str(), RecoveryMode::kResync);
    std::vector<Frame> frames;
    while (auto f = reader.next()) frames.push_back(std::move(*f));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].data()[1], 2.0);
    EXPECT_EQ(reader.stats().frames_lost, 1u);
    EXPECT_GT(reader.stats().bytes_skipped, 0u);
}

TEST(FaultedFrameIo, ThrowModePropagates) {
    const prs::OversampledPrs seq(4, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=2,frame_io.corrupt@0"));
    std::ostringstream os(std::ios::binary);
    write_frame(os, test_frame(layout), &faults);
    FrameStreamReader reader(os.str(), RecoveryMode::kThrow);
    EXPECT_THROW(reader.next(), Error);
}

// ------------------------------------------------------ backend faults ----

TEST(FaultedCpuBackend, TransientFailureRetriesThenSucceeds) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    const Frame raw = test_frame(layout);

    CpuBackend clean(seq, layout, 2);
    const Frame want = clean.deconvolve(raw);

    fault::FaultInjector faults(fault::FaultPlan::parse("cpu.fail@0"));
    CpuBackend cpu(seq, layout, 2);
    cpu.set_faults(&faults, /*max_retries=*/4, /*backoff_s=*/0.0);
    const Frame got = cpu.deconvolve(raw);
    EXPECT_EQ(cpu.task_retries(), 1u);
    for (std::size_t i = 0; i < got.data().size(); ++i)
        EXPECT_DOUBLE_EQ(got.data()[i], want.data()[i]);
}

TEST(FaultedCpuBackend, PersistentFailureExhaustsRetries) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    fault::FaultInjector faults(fault::FaultPlan::parse("cpu.fail=1"));
    CpuBackend cpu(seq, layout, 2);
    cpu.set_faults(&faults, /*max_retries=*/3, /*backoff_s=*/0.0);
    EXPECT_THROW(cpu.deconvolve(test_frame(layout)), Error);
    EXPECT_EQ(cpu.task_retries(), 3u);
}

TEST(FaultedFpga, BudgetOverrunYieldsPartialFrame) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 16);
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=6,fpga.overrun@0"));
    FpgaPipeline fpga(seq, layout, FpgaConfig{});
    fpga.set_faults(&faults);
    fpga.begin_frame();
    std::vector<std::uint32_t> period(layout.cells(), 2);
    fpga.push_samples(period);
    const Frame out = fpga.end_frame();

    const auto& report = fpga.report();
    EXPECT_TRUE(report.budget_overrun);
    EXPECT_LT(report.channels_decoded, layout.mz_bins);
    // Channels past the cut stayed zero; decoded channels carry signal.
    for (std::size_t mz = report.channels_decoded; mz < layout.mz_bins; ++mz)
        for (std::size_t d = 0; d < layout.drift_bins; ++d)
            EXPECT_EQ(out.at(d, mz), 0.0);
    EXPECT_EQ(faults.injected(fault::Site::kFpgaOverrun), 1u);
}

TEST(FaultedFpga, CleanRunReportsFullDecode) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 16);
    FpgaPipeline fpga(seq, layout, FpgaConfig{});
    fpga.begin_frame();
    std::vector<std::uint32_t> period(layout.cells(), 2);
    fpga.push_samples(period);
    fpga.end_frame();
    EXPECT_FALSE(fpga.report().budget_overrun);
    EXPECT_EQ(fpga.report().channels_decoded, layout.mz_bins);
}

// ------------------------------------------------------- hybrid faults ----

HybridConfig drill_config(BackendKind backend, fault::FaultInjector* faults,
                          RingFullPolicy policy, std::size_t ring_records) {
    HybridConfig cfg;
    cfg.backend = backend;
    cfg.frames = 3;
    cfg.averages = 2;
    cfg.ring_records = ring_records;
    cfg.cpu_threads = 2;
    cfg.ring_policy = policy;
    cfg.faults = faults;
    return cfg;
}

TEST(FaultedHybrid, ConfigValidation) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    HybridConfig cfg;
    cfg.ring_timeout_s = -1.0;
    EXPECT_THROW(HybridPipeline(seq, layout, period, cfg), ConfigError);
    cfg.ring_timeout_s = 0.0;
    cfg.cpu_max_retries = -1;
    EXPECT_THROW(HybridPipeline(seq, layout, period, cfg), ConfigError);
}

TEST(FaultedHybrid, BlockPolicyAbsorbsForcedOverrunsWithoutLoss) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=21,link.overrun@0:5:11"));
    const auto cfg = drill_config(BackendKind::kCpu, &faults,
                                  RingFullPolicy::kBlock, 256);
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    // Under Block with no timeout a forced overrun stalls, never drops.
    EXPECT_EQ(report.frames, cfg.frames);
    EXPECT_EQ(report.records_dropped, 0u);
    EXPECT_EQ(report.frames_degraded, 0u);
    EXPECT_EQ(report.faults.injected_at(fault::Site::kLinkOverrun), 3u);
}

TEST(FaultedHybrid, DropNewestDropsExactlyTheForcedRecords) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=22,link.overrun@0:7:31"));
    // Ring deeper than the stream: the only "full link" events are forced.
    const auto cfg = drill_config(BackendKind::kCpu, &faults,
                                  RingFullPolicy::kDropNewest, 1024);
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    EXPECT_EQ(report.frames, cfg.frames);
    EXPECT_EQ(report.records_dropped, 3u);
    EXPECT_GE(report.frames_degraded, 1u);
    EXPECT_EQ(report.records_dropped,
              report.faults.injected_at(fault::Site::kLinkOverrun));
}

TEST(FaultedHybrid, DropOldestDropsOnePerForcedOverrun) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=23,link.overrun@2:9"));
    const auto cfg = drill_config(BackendKind::kCpu, &faults,
                                  RingFullPolicy::kDropOldest, 1024);
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    EXPECT_EQ(report.frames, cfg.frames);
    EXPECT_EQ(report.records_dropped, 2u);
    EXPECT_EQ(report.records_dropped,
              report.faults.injected_at(fault::Site::kLinkOverrun));
}

TEST(FaultedHybrid, FpgaBackendSurvivesMixedFaults) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(fault::FaultPlan::parse(
        "seed=24,link.overrun@1:8,link.jitter@0,fpga.overrun@1"));
    const auto cfg = drill_config(BackendKind::kFpga, &faults,
                                  RingFullPolicy::kDropNewest, 1024);
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    EXPECT_EQ(report.frames, cfg.frames);
    EXPECT_EQ(report.records_dropped, 2u);
    EXPECT_EQ(report.faults.injected_at(fault::Site::kFpgaOverrun), 1u);
    EXPECT_EQ(report.faults.injected_at(fault::Site::kLinkJitter), 1u);
}

TEST(FaultedHybrid, CpuRetriesSurfaceInReport) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(fault::FaultPlan::parse("cpu.fail@0"));
    auto cfg = drill_config(BackendKind::kCpu, &faults,
                            RingFullPolicy::kBlock, 256);
    cfg.cpu_retry_backoff_s = 0.0;
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    EXPECT_EQ(report.frames, cfg.frames);
    EXPECT_EQ(report.cpu_task_retries, 1u);
    EXPECT_EQ(report.faults.injected_at(fault::Site::kCpuFault), 1u);
}

TEST(FaultedHybrid, SameSeedReproducesInjectionCountsExactly) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    const auto plan = fault::FaultPlan::parse(
        "seed=77,link.overrun=0.02,link.jitter=0.01,cpu.fail@1");
    // DropNewest drops exactly the forced records, so the *entire*
    // degradation outcome is a function of the seed. (Under DropOldest the
    // dropped record depends on what is queued at credit time — injection
    // counts still reproduce, but the degraded-frame set legitimately may
    // not.)
    HybridReport first, second;
    {
        fault::FaultInjector faults(plan);
        auto cfg = drill_config(BackendKind::kCpu, &faults,
                                RingFullPolicy::kDropNewest, 1024);
        cfg.cpu_retry_backoff_s = 0.0;
        first = HybridPipeline(seq, layout, period, cfg).run();
    }
    {
        fault::FaultInjector faults(plan);
        auto cfg = drill_config(BackendKind::kCpu, &faults,
                                RingFullPolicy::kDropNewest, 1024);
        cfg.cpu_retry_backoff_s = 0.0;
        second = HybridPipeline(seq, layout, period, cfg).run();
    }
    EXPECT_EQ(first.faults, second.faults);
    EXPECT_EQ(first.records_dropped, second.records_dropped);
    EXPECT_EQ(first.frames_degraded, second.frames_degraded);
    EXPECT_EQ(first.cpu_task_retries, second.cpu_task_retries);
    // The injected overruns are exactly the drops (ring never fills
    // naturally at this depth).
    EXPECT_EQ(first.records_dropped,
              first.faults.injected_at(fault::Site::kLinkOverrun));
}

TEST(FaultedHybrid, DropOldestTimeoutDropsEachDisplacedRecordExactlyOnce) {
    // Regression: kDropOldest with ring_timeout_s grants a drop credit and
    // then the bounded push itself can expire, dropping the same record a
    // second time via the seq gap — the stale credit later discards a live
    // record that displaced nothing. The credit must be revoked on expiry.
    //
    // Deterministic schedule: link jitter on every record paces the
    // producer (>= 10us/record) so the link stays shallow while the
    // consumer is live; the scheduled cpu.fail at frame 0's close then
    // stalls the consumer for cpu_retry_backoff_s. During the stall the
    // producer fills the 16-record link (seqs 32..47) and times out on each
    // of seqs 48..61 — exactly 14 records, all in frame 1, each dropped
    // exactly once. With the stale-credit bug the count doubles to 28.
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);  // 31 records
    const auto layout = small_layout(seq, 16);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=41,link.jitter=1,cpu.fail@0"));
    HybridConfig cfg;
    cfg.backend = BackendKind::kCpu;
    cfg.frames = 2;
    cfg.averages = 1;
    cfg.ring_records = 16;
    cfg.batch_records = 1;  // the schedule below counts on per-record
                            // transport granularity (pop-one, process-one)
    cfg.cpu_threads = 2;
    cfg.ring_policy = RingFullPolicy::kDropOldest;
    cfg.ring_timeout_s = 0.02;
    cfg.cpu_retry_backoff_s = 1.5;  // the deterministic consumer stall
    cfg.faults = &faults;
    const auto report = HybridPipeline(seq, layout, period, cfg).run();
    EXPECT_EQ(report.frames, 2u);
    EXPECT_EQ(report.cpu_task_retries, 1u);
    EXPECT_EQ(report.records_dropped, 14u);
    EXPECT_EQ(report.frames_degraded, 1u);
    // Every timed-out push is a real stall; the histogram must see them
    // too (the timeout exit used to skip hybrid.producer_stall_ns).
    EXPECT_GE(report.producer_stall_seconds, 14 * 0.02);
    for (const auto& h : report.telemetry.histograms) {
        if (h.name == "hybrid.producer_stall_ns") {
            EXPECT_GE(h.summary.count, 14u);
        }
    }
}

// --------------------------------------------- overlap under fault grid ----

struct FaultedDigestRun {
    HybridReport report;
    std::vector<std::uint64_t> digests;
};

FaultedDigestRun faulted_run(BackendKind backend, RingFullPolicy policy,
                             const std::string& plan, bool overlap,
                             std::size_t workers = 1) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    fault::FaultInjector faults(fault::FaultPlan::parse(plan));
    auto cfg = drill_config(backend, &faults, policy, 1024);
    cfg.cpu_retry_backoff_s = 0.0;
    cfg.overlap_decode = overlap;
    cfg.decode_workers = workers;
    FaultedDigestRun run;
    run.digests.assign(cfg.frames, 0);
    cfg.frame_sink = [&run](std::size_t index, const Frame& frame) {
        run.digests.at(index) = frame_digest(frame);
    };
    run.report = HybridPipeline(seq, layout, period, cfg).run();
    return run;
}

TEST(FaultedHybridOverlap, MatrixMatchesSynchronousDigests) {
    // {Block, DropNewest} x {CPU, FPGA} under link jitter + forced overruns
    // (+ an FPGA budget overrun): with the link deeper than the stream,
    // drops are exactly the forced records, so the whole degraded outcome
    // is a function of the seed — the overlap path must reproduce every
    // frame bit for bit.
    const std::string plan =
        "seed=31,link.overrun=0.02,link.jitter=0.01,fpga.overrun@1";
    for (auto backend : {BackendKind::kCpu, BackendKind::kFpga}) {
        for (auto policy :
             {RingFullPolicy::kBlock, RingFullPolicy::kDropNewest}) {
            const auto sync_run = faulted_run(backend, policy, plan, false);
            for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
                const auto overlap_run =
                    faulted_run(backend, policy, plan, true, workers);
                const auto tag =
                    std::string(backend == BackendKind::kCpu ? "cpu" : "fpga") +
                    "/" +
                    (policy == RingFullPolicy::kBlock ? "block"
                                                      : "drop_newest") +
                    "/w" + std::to_string(workers);
                EXPECT_EQ(overlap_run.digests, sync_run.digests) << tag;
                EXPECT_EQ(overlap_run.report.records_dropped,
                          sync_run.report.records_dropped)
                    << tag;
                EXPECT_EQ(overlap_run.report.frames_degraded,
                          sync_run.report.frames_degraded)
                    << tag;
                EXPECT_EQ(overlap_run.report.faults, sync_run.report.faults)
                    << tag;
            }
        }
    }
}

TEST(FaultedHybridOverlap, DropOldestReproducesCountsAndInjections) {
    // Under DropOldest the discarded record depends on what is queued at
    // credit time (deliberately a function of link state, not only of the
    // seed), so per-frame digest equality with the sync path is not defined
    // — but the drop totals and injection counts are.
    const std::string plan = "seed=32,link.overrun@2:9";
    for (auto backend : {BackendKind::kCpu, BackendKind::kFpga}) {
        const auto sync_run =
            faulted_run(backend, RingFullPolicy::kDropOldest, plan, false);
        const auto overlap_run =
            faulted_run(backend, RingFullPolicy::kDropOldest, plan, true);
        EXPECT_EQ(sync_run.report.records_dropped, 2u);
        EXPECT_EQ(overlap_run.report.records_dropped, 2u);
        EXPECT_EQ(overlap_run.report.frames, sync_run.report.frames);
        EXPECT_EQ(overlap_run.report.faults, sync_run.report.faults);
    }
}

TEST(FaultedHybridOverlap, CpuRetriesSurfaceIdentically) {
    const auto sync_run =
        faulted_run(BackendKind::kCpu, RingFullPolicy::kBlock, "cpu.fail@0", false);
    EXPECT_EQ(sync_run.report.cpu_task_retries, 1u);
    // The retry total is a function of the fault plan, not of which worker
    // happens to decode the faulted frame — per-worker backends sum.
    for (std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
        const auto overlap_run = faulted_run(
            BackendKind::kCpu, RingFullPolicy::kBlock, "cpu.fail@0", true,
            workers);
        EXPECT_EQ(overlap_run.digests, sync_run.digests) << workers;
        EXPECT_EQ(overlap_run.report.cpu_task_retries, 1u) << workers;
    }
}

TEST(FaultedHybridOverlap, PersistentCpuFaultPropagatesFromWorker) {
    // A decode failure on the worker must surface as the run's exception
    // after both threads joined — not a deadlock, not std::terminate.
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 1);
    struct Case {
        bool overlap;
        std::size_t workers;
    };
    for (const auto c : {Case{false, 1}, Case{true, 1}, Case{true, 2}}) {
        fault::FaultInjector faults(fault::FaultPlan::parse("cpu.fail=1"));
        auto cfg = drill_config(BackendKind::kCpu, &faults,
                                RingFullPolicy::kBlock, 256);
        cfg.cpu_retry_backoff_s = 0.0;
        cfg.overlap_decode = c.overlap;
        cfg.decode_workers = c.workers;
        EXPECT_THROW(HybridPipeline(seq, layout, period, cfg).run(), Error)
            << "overlap=" << c.overlap << " workers=" << c.workers;
    }
}

TEST(FaultedHybrid, BlockPolicyWithoutFaultsMatchesFaultFreeRun) {
    const prs::OversampledPrs seq(5, 1, prs::GateMode::kPulsed);
    const auto layout = small_layout(seq, 8);
    std::vector<std::uint32_t> period(layout.cells(), 0);
    for (std::size_t i = 0; i < period.size(); ++i)
        period[i] = static_cast<std::uint32_t>(i % 7);

    HybridConfig base;
    base.backend = BackendKind::kCpu;
    base.frames = 2;
    base.averages = 2;
    base.cpu_threads = 2;
    const auto want = HybridPipeline(seq, layout, period, base).run();

    auto cfg = base;
    cfg.ring_policy = RingFullPolicy::kBlock;  // explicit, same as default
    const auto got = HybridPipeline(seq, layout, period, cfg).run();
    ASSERT_EQ(want.last_frame.data().size(), got.last_frame.data().size());
    for (std::size_t i = 0; i < want.last_frame.data().size(); ++i)
        EXPECT_DOUBLE_EQ(got.last_frame.data()[i], want.last_frame.data()[i]);
    EXPECT_EQ(got.records_dropped, 0u);
    EXPECT_EQ(got.faults.total_injected(), 0u);
}

}  // namespace
}  // namespace htims::pipeline
