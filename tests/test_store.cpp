// Frame store + replay service tests.
//
// The store's two contracts, exercised end to end:
//
//  * Determinism — a run recorded into the store and replayed through the
//    hybrid pipeline produces bit-identical frame digests to the live run,
//    across both backends, sync and overlapped decode, and with write-side
//    faults tearing pages out of the recording (the surviving frames still
//    match their live counterparts 1:1 via the seq tags).
//  * Recoverability — a store with a destroyed or partial index (crash
//    before finalize, index_torn fault) still serves every intact frame
//    through the resync fallback, with losses counted, never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "pipeline/frame_io.hpp"
#include "pipeline/hybrid.hpp"
#include "prs/oversampled.hpp"
#include "store/frame_store.hpp"
#include "store/replay.hpp"

namespace htims::store {
namespace {

using pipeline::Frame;
using pipeline::FrameLayout;

/// Small sequence so a full hybrid run stays in unit-test time.
const prs::OversampledPrs& test_sequence() {
    static const prs::OversampledPrs seq(5, 2, prs::GateMode::kPulsed);
    return seq;
}

FrameLayout test_layout() {
    const auto& seq = test_sequence();
    return FrameLayout{.drift_bins = seq.length(),
                       .mz_bins = 16,
                       .drift_bin_width_s = 1e-4};
}

std::vector<std::uint32_t> test_period(const FrameLayout& layout,
                                       std::uint64_t seed = 77) {
    std::vector<std::uint32_t> period(layout.cells());
    Rng rng(seed);
    for (auto& s : period) s = static_cast<std::uint32_t>(rng.below(1000));
    return period;
}

/// Unique-per-test scratch path (ctest runs discovered tests in parallel,
/// so the running test's full name goes into the file name); removed on
/// scope exit.
struct ScratchFile {
    explicit ScratchFile(const std::string& name) {
        const auto* ti =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string tag =
            std::string(ti->test_suite_name()) + "_" + ti->name() + "_" + name;
        for (auto& c : tag)
            if (c == '/') c = '_';
        path = ::testing::TempDir() + tag;
    }
    ~ScratchFile() { std::remove(path.c_str()); }
    std::string path;
};

/// Record `frames` copies of the period template, seq-tagged by frame index.
void record_run(const std::string& path, const FrameLayout& layout,
                std::span<const std::uint32_t> period, std::uint64_t frames,
                std::uint64_t averages,
                fault::FaultInjector* faults = nullptr) {
    StoreMeta meta{layout, averages};
    FrameStoreWriter writer(path, meta, faults);
    const Frame streamed = period_to_frame(layout, period);
    for (std::uint64_t f = 0; f < frames; ++f) writer.append(streamed, f);
    writer.finalize();
}

pipeline::HybridConfig test_config(pipeline::BackendKind backend, bool overlap,
                                   std::vector<std::uint64_t>* digests,
                                   std::size_t workers = 1) {
    pipeline::HybridConfig hcfg;
    hcfg.backend = backend;
    hcfg.frames = 4;
    hcfg.averages = 2;
    hcfg.ring_records = 32;
    hcfg.overlap_decode = overlap;
    hcfg.decode_workers = workers;
    hcfg.frame_sink = [digests](std::size_t, const Frame& f) {
        digests->push_back(pipeline::frame_digest(f));
    };
    return hcfg;
}

struct RoundTripCase {
    pipeline::BackendKind backend;
    bool overlap;
    std::size_t workers = 1;
};

class StoreRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(StoreRoundTrip, ReplayDigestsAreBitIdenticalToLive) {
    const auto layout = test_layout();
    const auto period = test_period(layout);
    ScratchFile scratch("store_roundtrip.htstore");

    std::vector<std::uint64_t> live_digests;
    auto hcfg = test_config(GetParam().backend, GetParam().overlap,
                            &live_digests, GetParam().workers);
    record_run(scratch.path, layout, period, hcfg.frames, hcfg.averages);
    {
        pipeline::HybridPipeline live(test_sequence(), layout, period, hcfg);
        (void)live.run();
    }
    ASSERT_EQ(live_digests.size(), hcfg.frames);

    FrameStoreReader reader(scratch.path);
    EXPECT_TRUE(reader.indexed());
    EXPECT_EQ(reader.frames(), hcfg.frames);
    EXPECT_TRUE(reader.layout() == layout);
    EXPECT_EQ(reader.averages(), hcfg.averages);

    ReplaySource source(reader, ReplayConfig{});
    EXPECT_EQ(source.skipped(), 0u);
    std::vector<std::uint64_t> replay_digests;
    auto rcfg = test_config(GetParam().backend, GetParam().overlap,
                            &replay_digests, GetParam().workers);
    pipeline::HybridPipeline replay(test_sequence(), layout, source, rcfg);
    (void)replay.run();

    EXPECT_EQ(replay_digests, live_digests);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndDecodeModes, StoreRoundTrip,
    ::testing::Values(RoundTripCase{pipeline::BackendKind::kCpu, false},
                      RoundTripCase{pipeline::BackendKind::kCpu, true},
                      RoundTripCase{pipeline::BackendKind::kCpu, true, 2},
                      RoundTripCase{pipeline::BackendKind::kFpga, false},
                      RoundTripCase{pipeline::BackendKind::kFpga, true},
                      RoundTripCase{pipeline::BackendKind::kFpga, true, 4}),
    [](const auto& param_info) {
        return std::string(param_info.param.backend ==
                                   pipeline::BackendKind::kCpu
                               ? "cpu"
                               : "fpga") +
               (param_info.param.overlap ? "_overlap" : "_sync") + "_w" +
               std::to_string(param_info.param.workers);
    });

TEST(StoreWriteFaults, TornPagesLoseFramesButSurvivorsMatchLiveBySeq) {
    const auto layout = test_layout();
    const auto period = test_period(layout);
    ScratchFile scratch("store_torn.htstore");

    std::vector<std::uint64_t> live_digests;
    auto hcfg = test_config(pipeline::BackendKind::kCpu, false, &live_digests);
    {
        pipeline::HybridPipeline live(test_sequence(), layout, period, hcfg);
        (void)live.run();
    }

    // Tear a page out of the second appended frame, deterministically.
    fault::FaultInjector faults(fault::FaultPlan::parse("seed=3,store.torn_page@1"));
    record_run(scratch.path, layout, period, hcfg.frames, hcfg.averages, &faults);
    EXPECT_EQ(faults.injected(fault::Site::kStoreTornPage), 1u);

    FrameStoreReader reader(scratch.path);
    ASSERT_TRUE(reader.indexed());  // the index survives; the slot is damaged
    EXPECT_EQ(reader.frames(), hcfg.frames);
    auto scan = reader.scan();
    while (scan.next()) {
    }
    EXPECT_EQ(scan.stats().frames_lost, 1u);
    EXPECT_EQ(scan.stats().frames_ok, hcfg.frames - 1);

    ReplaySource source(reader, ReplayConfig{});
    ASSERT_EQ(source.skipped(), 1u);
    ASSERT_EQ(source.frames(), hcfg.frames - 1);

    std::vector<std::uint64_t> replay_digests;
    auto rcfg = test_config(pipeline::BackendKind::kCpu, false, &replay_digests);
    rcfg.frames = static_cast<std::size_t>(source.frames());
    pipeline::HybridPipeline replay(test_sequence(), layout, source, rcfg);
    (void)replay.run();

    ASSERT_EQ(replay_digests.size(), source.frames());
    for (std::size_t i = 0; i < replay_digests.size(); ++i)
        EXPECT_EQ(replay_digests[i],
                  live_digests[static_cast<std::size_t>(source.frame_seq(i))])
            << "replayed frame " << i << " (live frame " << source.frame_seq(i)
            << ")";
}

TEST(StoreWriteFaults, ProbabilisticTearGridStaysDeterministic) {
    // The PR 4 grid shape on the write side: a seeded Bernoulli plan tears
    // pages at plan-determined appends; two recordings of the same plan are
    // byte-identical and the survivors replay to matching digests.
    const auto layout = test_layout();
    const auto period = test_period(layout);
    std::vector<std::uint64_t> live_digests;
    auto hcfg = test_config(pipeline::BackendKind::kCpu, false, &live_digests);
    hcfg.frames = 8;
    {
        pipeline::HybridPipeline live(test_sequence(), layout, period, hcfg);
        (void)live.run();
    }

    const auto plan = fault::FaultPlan::parse("seed=11,store.torn_page=0.4");
    std::vector<std::uint64_t> first_seqs;
    for (int rep = 0; rep < 2; ++rep) {
        ScratchFile scratch("store_grid.htstore");
        fault::FaultInjector faults(plan);
        record_run(scratch.path, layout, period, hcfg.frames, hcfg.averages,
                   &faults);
        FrameStoreReader reader(scratch.path);
        ReplaySource source(reader, ReplayConfig{});
        ASSERT_LT(source.skipped(), hcfg.frames);  // seed=11 keeps some frames

        std::vector<std::uint64_t> seqs;
        for (std::size_t i = 0; i < source.frames(); ++i)
            seqs.push_back(source.frame_seq(i));
        if (rep == 0)
            first_seqs = seqs;
        else
            EXPECT_EQ(seqs, first_seqs);  // same plan -> same fault pattern

        std::vector<std::uint64_t> replay_digests;
        auto rcfg =
            test_config(pipeline::BackendKind::kCpu, false, &replay_digests);
        rcfg.frames = static_cast<std::size_t>(source.frames());
        rcfg.averages = hcfg.averages;
        pipeline::HybridPipeline replay(test_sequence(), layout, source, rcfg);
        (void)replay.run();
        for (std::size_t i = 0; i < replay_digests.size(); ++i)
            EXPECT_EQ(replay_digests[i],
                      live_digests[static_cast<std::size_t>(source.frame_seq(i))]);
    }
}

TEST(StoreIndex, SeekByIndexAndSequenceTag) {
    const auto layout = test_layout();
    ScratchFile scratch("store_seek.htstore");
    Frame frame(layout);
    {
        StoreMeta meta{layout, 1};
        FrameStoreWriter writer(scratch.path, meta);
        for (const std::uint64_t seq : {0u, 2u, 5u}) {
            frame.fill(static_cast<double>(seq + 1));
            writer.append(frame, seq);
        }
        writer.finalize();
        EXPECT_TRUE(writer.finalized());
        writer.finalize();  // idempotent
    }

    FrameStoreReader reader(scratch.path);
    ASSERT_TRUE(reader.indexed());
    ASSERT_EQ(reader.frames(), 3u);
    EXPECT_EQ(reader.entry(1).seq, 2u);

    // O(1) by index: parse exactly one frame, identity-checked.
    const Frame second = reader.frame(1);
    EXPECT_DOUBLE_EQ(second.data()[0], 3.0);

    // O(log n) by tag, including misses.
    EXPECT_EQ(reader.find_seq(0), std::optional<std::size_t>{0});
    EXPECT_EQ(reader.find_seq(2), std::optional<std::size_t>{1});
    EXPECT_EQ(reader.find_seq(5), std::optional<std::size_t>{2});
    EXPECT_EQ(reader.find_seq(3), std::nullopt);
    EXPECT_EQ(reader.find_seq(6), std::nullopt);

    // The zero-copy payload view serves the same cells frame() decodes.
    const auto payload = reader.payload(2);
    const Frame third = reader.frame(2);
    ASSERT_EQ(payload.size(), third.data().size());
    for (std::size_t i = 0; i < payload.size(); i += 97)
        EXPECT_EQ(payload[i], third.data()[i]);
}

TEST(StoreRecovery, IndexTornFinalizeFallsBackToResync) {
    const auto layout = test_layout();
    const auto period = test_period(layout);
    ScratchFile scratch("store_indextorn.htstore");
    fault::FaultInjector faults(
        fault::FaultPlan::parse("seed=5,store.index_torn@0"));
    record_run(scratch.path, layout, period, 4, 1, &faults);
    EXPECT_EQ(faults.injected(fault::Site::kStoreIndexTorn), 1u);

    FrameStoreReader reader(scratch.path);
    EXPECT_FALSE(reader.indexed());
    ASSERT_EQ(reader.frames(), 4u);  // the arena is intact; resync finds all
    EXPECT_EQ(reader.recovery_stats().frames_ok, 4u);
    for (std::size_t i = 0; i < reader.frames(); ++i)
        EXPECT_EQ(reader.entry(i).seq, i);

    // The rebuilt index serves frames just like a footer-backed one.
    ReplaySource source(reader, ReplayConfig{});
    EXPECT_EQ(source.frames(), 4u);
    EXPECT_EQ(source.skipped(), 0u);
}

TEST(StoreRecovery, CrashBeforeFinalizeLeavesRecoverablePrefix) {
    const auto layout = test_layout();
    const auto period = test_period(layout);
    ScratchFile scratch("store_crash.htstore");
    {
        StoreMeta meta{layout, 1};
        FrameStoreWriter writer(scratch.path, meta);
        const Frame streamed = period_to_frame(layout, period);
        for (std::uint64_t f = 0; f < 3; ++f) writer.append(streamed, f);
        // No finalize(): the mapping closes with the file still oversized
        // (growth padding) and indexless — the crash-mid-run shape.
    }

    FrameStoreReader reader(scratch.path);
    EXPECT_FALSE(reader.indexed());
    ASSERT_EQ(reader.frames(), 3u);
    EXPECT_EQ(reader.recovery_stats().frames_ok, 3u);
    for (std::size_t i = 0; i < reader.frames(); ++i) {
        EXPECT_EQ(reader.entry(i).seq, i);
        (void)reader.frame(i);  // parses clean
    }
}

TEST(StoreReplay, LineRatePacingStretchesTheRun) {
    const auto layout = test_layout();  // period_s = drift_bins * 1e-4
    const auto period = test_period(layout);
    ScratchFile scratch("store_paced.htstore");
    const std::uint64_t frames = 2, averages = 2;
    record_run(scratch.path, layout, period, frames, averages);

    FrameStoreReader reader(scratch.path);
    const double recorded_s =
        static_cast<double>(frames * averages) * layout.period_s();

    ReplaySource paced(reader, ReplayConfig{1.0});
    pipeline::HybridConfig hcfg;
    hcfg.backend = pipeline::BackendKind::kCpu;
    hcfg.frames = frames;
    hcfg.averages = averages;
    hcfg.ring_records = 32;
    pipeline::HybridPipeline replay(test_sequence(), layout, paced, hcfg);
    const auto report = replay.run();
    // Pacing releases record k no earlier than k * drift_bin_width_s, so a
    // rate-1.0 run can't finish much faster than the recorded duration
    // (generous floor: scheduling can only make it slower).
    EXPECT_GE(report.wall_seconds, 0.6 * recorded_s);
    EXPECT_EQ(report.records_dropped, 0u);
}

TEST(StoreReplay, ResidentAndWindowedModesServeIdenticalRecords) {
    const auto layout = test_layout();
    const auto period = test_period(layout);
    ScratchFile scratch("store_window.htstore");
    record_run(scratch.path, layout, period, 3, 2);

    FrameStoreReader reader(scratch.path);
    ReplaySource resident(reader, ReplayConfig{});
    ASSERT_TRUE(resident.resident());
    ReplayConfig wcfg;
    wcfg.resident_cap_bytes = 0;
    ReplaySource windowed(reader, wcfg);
    ASSERT_FALSE(windowed.resident());
    windowed.set_window(32);

    ASSERT_EQ(resident.total_records(), windowed.total_records());
    for (std::uint64_t seq = 0; seq < resident.total_records(); ++seq) {
        const auto a = resident.record(seq);
        const auto b = windowed.record(seq);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 a.size() * sizeof(std::uint32_t)))
            << "record " << seq;
    }
}

TEST(StoreWriter, RejectsMisuse) {
    const auto layout = test_layout();
    ScratchFile scratch("store_misuse.htstore");
    StoreMeta meta{layout, 1};
    FrameStoreWriter writer(scratch.path, meta);
    Frame frame(layout);
    writer.append(frame, 4);
    EXPECT_THROW(writer.append(frame, 3), ConfigError);  // seq going backwards
    Frame wrong(FrameLayout{.drift_bins = 4, .mz_bins = 4,
                            .drift_bin_width_s = 1e-4});
    EXPECT_THROW(writer.append(wrong, 5), ConfigError);  // layout mismatch
    writer.finalize();
}

TEST(FrameStreamReaderSpan, ZeroCopyViewTracksOffsetsAndSeqTags) {
    // The satellite API the store's recovery path is built on: a reader
    // over caller-owned bytes, with per-frame offsets and seq tags exposed.
    const auto layout = test_layout();
    Frame frame(layout);
    const std::size_t container = pipeline::frame_container_bytes(layout);
    std::vector<std::byte> stream(3 * container);
    for (std::uint64_t k = 0; k < 3; ++k) {
        frame.fill(static_cast<double>(k));
        const std::size_t n = pipeline::serialize_frame(
            frame, std::span(stream).subspan(k * container), 70 + k);
        ASSERT_EQ(n, container);
    }

    pipeline::FrameStreamReader reader{std::span<const std::byte>(stream)};
    for (std::uint64_t k = 0; k < 3; ++k) {
        auto f = reader.next();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(reader.last_seq(), 70 + k);
        // The container ends exactly at offset(); its start backs out from
        // the container size — the arithmetic index rebuilds rely on.
        EXPECT_EQ(reader.offset(), (k + 1) * container);
        EXPECT_EQ(reader.offset() - pipeline::frame_container_bytes(*f),
                  k * container);
    }
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.stats().frames_ok, 3u);
}

}  // namespace
}  // namespace htims::store
