// Tests for src/core: peak picking, metrics, the Simulator facade, and the
// experiment scaffolding.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/peaks.hpp"
#include "core/simulator.hpp"
#include "instrument/peptide_library.hpp"

namespace htims::core {
namespace {

std::vector<double> noisy_spectrum_with_peak(std::size_t n, std::size_t center,
                                             double height, double sigma_bins,
                                             double noise, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> s(n);
    for (auto& v : s) v = rng.gaussian(0.0, noise);
    for (std::size_t i = 0; i < n; ++i) {
        const double d = (static_cast<double>(i) - static_cast<double>(center)) / sigma_bins;
        s[i] += height * std::exp(-0.5 * d * d);
    }
    return s;
}

// -------------------------------------------------------------- Peaks ----

TEST(Peaks, FindsSinglePeak) {
    const auto s = noisy_spectrum_with_peak(512, 200, 50.0, 3.0, 1.0, 1);
    const auto peaks = pick_peaks(s);
    ASSERT_FALSE(peaks.empty());
    EXPECT_NEAR(static_cast<double>(peaks[0].apex_bin), 200.0, 2.0);
    EXPECT_NEAR(peaks[0].centroid, 200.0, 1.0);
    EXPECT_GT(peaks[0].snr, 20.0);
}

TEST(Peaks, FwhmMatchesGaussianWidth) {
    const auto s = noisy_spectrum_with_peak(512, 250, 100.0, 4.0, 0.01, 2);
    const auto peaks = pick_peaks(s);
    ASSERT_FALSE(peaks.empty());
    // Gaussian FWHM = 2.3548 sigma.
    EXPECT_NEAR(peaks[0].fwhm_bins, 2.3548 * 4.0, 0.8);
}

TEST(Peaks, NoFalsePositivesOnPureNoise) {
    Rng rng(3);
    std::vector<double> s(2048);
    for (auto& v : s) v = rng.gaussian(0.0, 1.0);
    PeakPickOptions opts;
    opts.min_snr = 6.0;  // 6 sigma on 2048 samples: expect none
    EXPECT_TRUE(pick_peaks(s, opts).empty());
}

TEST(Peaks, SortsByHeightAndSeparates) {
    auto s = noisy_spectrum_with_peak(512, 100, 30.0, 2.0, 0.5, 4);
    const auto s2 = noisy_spectrum_with_peak(512, 300, 80.0, 2.0, 0.0, 5);
    for (std::size_t i = 0; i < s.size(); ++i) s[i] += s2[i];
    const auto peaks = pick_peaks(s);
    ASSERT_GE(peaks.size(), 2u);
    EXPECT_NEAR(static_cast<double>(peaks[0].apex_bin), 300.0, 2.0);
    EXPECT_NEAR(static_cast<double>(peaks[1].apex_bin), 100.0, 2.0);
}

TEST(Peaks, BaselineOffsetHandled) {
    auto s = noisy_spectrum_with_peak(512, 256, 40.0, 3.0, 1.0, 6);
    for (auto& v : s) v += 100.0;  // constant baseline
    const auto peaks = pick_peaks(s);
    ASSERT_FALSE(peaks.empty());
    EXPECT_NEAR(peaks[0].height, 40.0, 8.0);
}

TEST(Peaks, DetectedNearUsesCircularDistance) {
    std::vector<Peak> peaks(1);
    peaks[0].apex_bin = 2;
    peaks[0].snr = 10.0;
    EXPECT_TRUE(detected_near(peaks, 98, 5.0, 3.0, 100));  // wraps: distance 4
    EXPECT_FALSE(detected_near(peaks, 50, 5.0, 3.0, 100));
    EXPECT_FALSE(detected_near(peaks, 98, 5.0, 20.0, 100));  // SNR gate
}

TEST(Peaks, EmptySpectrumYieldsNothing) {
    std::vector<double> s;
    EXPECT_TRUE(pick_peaks(s).empty());
}

// ------------------------------------------------------------ Metrics ----

TEST(Metrics, FidelityPerfectMatch) {
    pipeline::FrameLayout layout{.drift_bins = 32, .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame a(layout);
    a.at(5, 2) = 10.0;
    a.at(20, 6) = 4.0;
    const auto f = frame_fidelity(a, a);
    EXPECT_NEAR(f.rmse, 0.0, 1e-12);
    EXPECT_NEAR(f.correlation, 1.0, 1e-12);
    EXPECT_NEAR(f.artifact_level, 0.0, 1e-12);
}

TEST(Metrics, FidelityDetectsArtifacts) {
    pipeline::FrameLayout layout{.drift_bins = 32, .mz_bins = 8,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame truth(layout), decoded(layout);
    truth.at(5, 2) = 10.0;
    decoded.at(5, 2) = 10.0;
    decoded.at(25, 2) = 2.0;  // ghost peak
    const auto f = frame_fidelity(decoded, truth);
    EXPECT_GT(f.artifact_level, 0.05);
    EXPECT_LT(f.correlation, 1.0);
}

TEST(Metrics, ScaleInvariance) {
    pipeline::FrameLayout layout{.drift_bins = 16, .mz_bins = 4,
                                 .drift_bin_width_s = 1e-4};
    pipeline::Frame truth(layout), decoded(layout);
    truth.at(3, 1) = 5.0;
    decoded.at(3, 1) = 500.0;  // decoder works in different units
    const auto f = frame_fidelity(decoded, truth);
    EXPECT_NEAR(f.rmse, 0.0, 1e-12);
    EXPECT_NEAR(f.correlation, 1.0, 1e-12);
}

// ---------------------------------------------------------- Simulator ----

TEST(Simulator, EndToEndMultiplexedDetectsCalibrationMix) {
    SimulatorConfig cfg = default_config();
    cfg.tof.bins = 512;
    cfg.acquisition.averages = 8;
    Simulator sim(cfg, instrument::make_calibration_mix());
    const auto result = sim.run();
    const auto score = result.score(3.0);
    EXPECT_EQ(score.total, 9u);
    EXPECT_GE(score.detected, 8u);
    EXPECT_GT(mean_species_snr(result), 8.0);
}

TEST(Simulator, SignalAveragingModeSkipsDecode) {
    SimulatorConfig cfg = default_config();
    cfg.tof.bins = 256;
    cfg.acquisition.mode = pipeline::AcquisitionMode::kSignalAveraging;
    Simulator sim(cfg, instrument::make_calibration_mix());
    const auto result = sim.run();
    EXPECT_DOUBLE_EQ(result.decode_seconds, 0.0);
    for (std::size_t i = 0; i < result.deconvolved.data().size(); ++i)
        EXPECT_DOUBLE_EQ(result.deconvolved.data()[i], result.acquisition.raw.data()[i]);
}

TEST(Simulator, FpgaBackendReportsCycles) {
    SimulatorConfig cfg = default_config();
    cfg.tof.bins = 256;
    cfg.backend = pipeline::BackendKind::kFpga;
    Simulator sim(cfg, instrument::make_calibration_mix());
    const auto result = sim.run();
    ASSERT_TRUE(result.fpga.has_value());
    EXPECT_GT(result.fpga->total_cycles(), 0u);
}

TEST(Simulator, FpgaAndCpuBackendsAgree) {
    SimulatorConfig cpu_cfg = default_config();
    cpu_cfg.tof.bins = 256;
    cpu_cfg.acquisition.seed = 777;
    SimulatorConfig fpga_cfg = cpu_cfg;
    fpga_cfg.backend = pipeline::BackendKind::kFpga;
    fpga_cfg.fpga.output_format = QFormat{32, 10};

    Simulator cpu_sim(cpu_cfg, instrument::make_calibration_mix());
    Simulator fpga_sim(fpga_cfg, instrument::make_calibration_mix());
    const auto cpu_run = cpu_sim.run();
    const auto fpga_run = fpga_sim.run();
    // Same seed -> same raw frame; backends must agree to fixed-point
    // quantization (inputs also round to integers in the FPGA path).
    double max_raw = 0.0;
    for (double v : cpu_run.acquisition.raw.data()) max_raw = std::max(max_raw, v);
    for (std::size_t i = 0; i < cpu_run.deconvolved.data().size(); ++i)
        EXPECT_NEAR(fpga_run.deconvolved.data()[i], cpu_run.deconvolved.data()[i],
                    1.0 + 1e-3 * max_raw);
}

TEST(Simulator, SameSeedReproduces) {
    SimulatorConfig cfg = default_config();
    cfg.tof.bins = 256;
    Simulator a(cfg, instrument::make_calibration_mix());
    Simulator b(cfg, instrument::make_calibration_mix());
    const auto ra = a.run();
    const auto rb = b.run();
    for (std::size_t i = 0; i < ra.acquisition.raw.data().size(); ++i)
        EXPECT_DOUBLE_EQ(ra.acquisition.raw.data()[i], rb.acquisition.raw.data()[i]);
}

// --------------------------------------------------------- Experiment ----

TEST(Experiment, DefaultConfigIsValid) {
    const auto cfg = default_config();
    Simulator sim(cfg, instrument::make_calibration_mix());
    EXPECT_GT(sim.layout().drift_bins, 0u);
}

TEST(Experiment, ReplicateSnrAggregates) {
    SimulatorConfig cfg = default_config();
    cfg.tof.bins = 256;
    cfg.acquisition.sequence_order = 6;
    Simulator sim(cfg, instrument::make_calibration_mix());
    const auto summary = replicate_snr(sim, 3);
    EXPECT_EQ(summary.replicates, 3);
    EXPECT_GT(summary.mean, 0.0);
    EXPECT_GE(summary.stddev, 0.0);
}

}  // namespace
}  // namespace htims::core
