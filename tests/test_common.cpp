// Tests for src/common: RNG determinism and distribution moments, fixed
// point semantics, statistics, the thread pool, and the table emitter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace htims {
namespace {

// ---------------------------------------------------------------- RNG ----

TEST(Rng, SameSeedSameStream) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    double lo = 1.0, hi = 0.0, sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        lo = std::min(lo, u);
        hi = std::max(hi, u);
        sum += u;
    }
    EXPECT_GE(lo, 0.0);
    EXPECT_LT(hi, 1.0);
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, PoissonSmallMean) {
    Rng rng(5);
    const double lambda = 3.7;
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(rng.poisson(lambda)));
    EXPECT_NEAR(stats.mean(), lambda, 0.05);
    EXPECT_NEAR(stats.variance(), lambda, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalBranch) {
    Rng rng(6);
    const double lambda = 400.0;
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.poisson(lambda)));
    EXPECT_NEAR(stats.mean(), lambda, 1.0);
    EXPECT_NEAR(stats.stddev(), std::sqrt(lambda), 0.5);
}

TEST(Rng, PoissonZeroLambda) {
    Rng rng(1);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BelowIsUnbiasedAndInRange) {
    Rng rng(9);
    std::vector<int> counts(7, 0);
    const int n = 140000;
    for (int i = 0; i < n; ++i) ++counts[rng.below(7)];
    for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 10);
}

TEST(Rng, ExponentialMean) {
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonRejectsNegativeLambda) {
    Rng rng(1);
    EXPECT_THROW(rng.poisson(-1.0), PreconditionError);
}

// -------------------------------------------------------------- Fixed ----

TEST(FixedPoint, RoundTripExactValues) {
    const QFormat q{16, 8};
    EXPECT_DOUBLE_EQ(Fixed(1.5, q).to_double(), 1.5);
    EXPECT_DOUBLE_EQ(Fixed(-2.25, q).to_double(), -2.25);
    EXPECT_DOUBLE_EQ(Fixed(0.0, q).to_double(), 0.0);
}

TEST(FixedPoint, QuantizationStep) {
    const QFormat q{16, 8};
    EXPECT_DOUBLE_EQ(q.lsb(), 1.0 / 256.0);
    // A value between steps rounds to the nearest representable.
    EXPECT_NEAR(Fixed(0.001, q).to_double(), 0.0, q.lsb());
}

TEST(FixedPoint, SaturatesAtRails) {
    const QFormat q{8, 4};  // range [-8, 7.9375]
    EXPECT_DOUBLE_EQ(Fixed(100.0, q).to_double(), q.max_value());
    EXPECT_DOUBLE_EQ(Fixed(-100.0, q).to_double(), q.min_value());
    EXPECT_TRUE(Fixed(100.0, q).saturated());
}

TEST(FixedPoint, AdditionSaturates) {
    const QFormat q{8, 4};
    const Fixed a(7.0, q), b(5.0, q);
    EXPECT_DOUBLE_EQ((a + b).to_double(), q.max_value());
}

TEST(FixedPoint, MultiplicationMatchesDouble) {
    const QFormat q{32, 16};
    const Fixed a(3.125, q), b(-2.5, q);
    EXPECT_NEAR((a * b).to_double(), -7.8125, q.lsb());
}

TEST(FixedPoint, InvalidFormatRejected) {
    EXPECT_THROW(validate(QFormat{1, 0}), ConfigError);
    EXPECT_THROW(validate(QFormat{64, 8}), ConfigError);
    EXPECT_THROW(validate(QFormat{16, 16}), ConfigError);
}

TEST(SaturatingAccumulator, CountsSaturations) {
    SaturatingAccumulator acc(8);  // [-128, 127]
    for (int i = 0; i < 100; ++i) acc.add(2);
    EXPECT_EQ(acc.value(), 127);
    EXPECT_GT(acc.saturations(), 0u);
    acc.reset();
    EXPECT_EQ(acc.value(), 0);
    EXPECT_EQ(acc.saturations(), 0u);
}

TEST(SaturatingAccumulator, NegativeRail) {
    SaturatingAccumulator acc(8);
    acc.add(-1000);
    EXPECT_EQ(acc.value(), -128);
}

// --------------------------------------------------------- Statistics ----

TEST(Statistics, RunningStatsMatchesBatch) {
    Rng rng(3);
    RunningStats stats;
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.gaussian(5.0, 2.0);
        stats.add(x);
        xs.push_back(x);
    }
    EXPECT_NEAR(stats.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(stats.stddev(), stddev(xs), 1e-9);
}

TEST(Statistics, RunningStatsMerge) {
    Rng rng(4);
    RunningStats all, a, b;
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Statistics, PercentileEndpoints) {
    std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Statistics, MadSigmaGaussian) {
    Rng rng(8);
    std::vector<double> xs(50000);
    for (auto& x : xs) x = rng.gaussian(10.0, 3.0);
    EXPECT_NEAR(mad_sigma(xs), 3.0, 0.1);
}

TEST(Statistics, MadSigmaRobustToPeaks) {
    Rng rng(8);
    std::vector<double> xs(10000);
    for (auto& x : xs) x = rng.gaussian(0.0, 1.0);
    // Contaminate 1% with huge "peaks"; the robust sigma should not move much.
    for (int i = 0; i < 100; ++i) xs[static_cast<std::size_t>(i) * 100] = 1e6;
    EXPECT_NEAR(mad_sigma(xs), 1.0, 0.1);
}

TEST(Statistics, SpectrumSnr) {
    std::vector<double> s(1000, 0.0);
    Rng rng(2);
    for (auto& v : s) v = rng.gaussian(0.0, 1.0);
    s[500] = 50.0;
    const double snr = spectrum_snr(s);
    EXPECT_GT(snr, 30.0);
    EXPECT_LT(snr, 70.0);
}

TEST(Statistics, RegionSnrExcludesPeakFromNoise) {
    std::vector<double> s(1000);
    Rng rng(2);
    for (auto& v : s) v = rng.gaussian(0.0, 1.0);
    s[500] = 20.0;
    EXPECT_NEAR(region_snr(s, 495, 505), 20.0, 5.0);
}

TEST(Statistics, RmseAndCorrelation) {
    std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
    std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
    EXPECT_DOUBLE_EQ(correlation(a, b), 1.0);
    std::vector<double> c = {4.0, 3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(correlation(a, c), -1.0);
}

TEST(Statistics, LinearFitRecoversLine) {
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(i);
        y.push_back(3.0 + 2.0 * i);
    }
    const auto fit = linear_fit(x, y);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsAllSubmittedTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(10000);
    pool.parallel_for(hits.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
    ThreadPool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallel_for(5, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order.size(), 5u);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

// -------------------------------------------------------------- Table ----

TEST(Table, AlignedOutputContainsCells) {
    Table t("demo");
    t.set_header({"name", "value"});
    t.add_row({std::string("alpha"), std::int64_t{42}});
    t.add_row({std::string("beta"), 3.14159});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("3.142"), std::string::npos);
    EXPECT_NE(out.find("demo"), std::string::npos);
}

TEST(Table, CsvOutput) {
    Table t;
    t.set_header({"a", "b"});
    t.add_row({std::int64_t{1}, std::int64_t{2}});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchRejected) {
    Table t;
    t.set_header({"a", "b"});
    EXPECT_THROW(t.add_row({std::int64_t{1}}), PreconditionError);
}

// ------------------------------------------------------------ Aligned ----

TEST(AlignedVector, IsCacheAligned) {
    AlignedVector<double> v(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
}

}  // namespace
}  // namespace htims
