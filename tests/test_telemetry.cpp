// Tests for src/telemetry: striped counters under concurrency, gauge
// last/max tracking, log-histogram bucket math and quantiles, scoped-span
// tracing with nesting and bounded retention, the runtime disable switch,
// the JSON document model, and the v1 run-report schema round-trip.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace htims::telemetry {
namespace {

// Tests asserting recorded values only make sense when the instrumentation
// bodies are compiled in; under -DHTIMS_TELEMETRY=OFF they skip.
#define HTIMS_SKIP_IF_COMPILED_OUT()                          \
    do {                                                      \
        if (!kCompiledIn) GTEST_SKIP() << "HTIMS_TELEMETRY=0"; \
    } while (0)

// ------------------------------------------------------------- Counter ----

TEST(Counter, AggregatesAcrossThreads) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& c = reg.counter("t.count");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.increment();
        });
    for (auto& w : workers) w.join();
    EXPECT_EQ(c.value(), std::int64_t{kThreads} * kPerThread);
}

TEST(Counter, AddAndReset) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& c = reg.counter("t.count");
    c.add(5);
    c.add(37);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Counter, FindOrCreateReturnsSameInstance) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& a = reg.counter("same.name");
    auto& b = reg.counter("same.name");
    EXPECT_EQ(&a, &b);
    a.increment();
    EXPECT_EQ(b.value(), 1);
}

// --------------------------------------------------------------- Gauge ----

TEST(Gauge, TracksLastAndMax) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& g = reg.gauge("t.depth");
    g.set(3);
    g.set(17);
    g.set(5);
    EXPECT_EQ(g.value(), 5);
    EXPECT_EQ(g.max(), 17);
    g.reset();
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.max(), 0);
}

// ----------------------------------------------------------- Histogram ----

TEST(LogHistogram, UnitBucketsAreExact) {
    // Values below 2^kSubBits get one bucket each.
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::size_t i = LogHistogram::bucket_index(v);
        EXPECT_EQ(LogHistogram::bucket_lo(i), v);
        EXPECT_EQ(LogHistogram::bucket_hi(i), v + 1);
    }
}

TEST(LogHistogram, BucketBoundsContainValue) {
    for (std::uint64_t v :
         {std::uint64_t{8}, std::uint64_t{9}, std::uint64_t{15},
          std::uint64_t{16}, std::uint64_t{1000}, std::uint64_t{123456789},
          std::uint64_t{1} << 39}) {
        const std::size_t i = LogHistogram::bucket_index(v);
        EXPECT_LE(LogHistogram::bucket_lo(i), v) << v;
        EXPECT_LT(v, LogHistogram::bucket_hi(i)) << v;
        // Relative bucket width <= 12.5% above the unit range.
        const double lo = static_cast<double>(LogHistogram::bucket_lo(i));
        const double hi = static_cast<double>(LogHistogram::bucket_hi(i));
        EXPECT_LE((hi - lo) / lo, 0.125 + 1e-12) << v;
    }
}

TEST(LogHistogram, BucketIndexIsMonotone) {
    std::size_t prev = 0;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        const std::size_t i = LogHistogram::bucket_index(v);
        EXPECT_GE(i, prev) << v;
        prev = i;
    }
}

TEST(LogHistogram, SummaryOfUniformRamp) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& h = reg.histogram("t.lat");
    for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
    const auto s = h.summarize();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_NEAR(s.mean, 500.5, 1e-9);  // sum is tracked exactly
    // Quantiles come from log buckets: within the 12.5% bucket resolution.
    EXPECT_NEAR(s.p50, 500.0, 0.125 * 500.0);
    EXPECT_NEAR(s.p95, 950.0, 0.125 * 950.0);
    EXPECT_NEAR(s.p99, 990.0, 0.125 * 990.0);
}

TEST(LogHistogram, SingleValueQuantiles) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& h = reg.histogram("t.lat");
    for (int i = 0; i < 100; ++i) h.observe(7777);
    EXPECT_NEAR(h.quantile(0.5), 7777.0, 0.125 * 7777.0);
    EXPECT_NEAR(h.quantile(0.99), 7777.0, 0.125 * 7777.0);
}

// Regression: quantile() interpolates inside log buckets, and a bucket's
// upper edge can exceed every sample in it (1000 lands in [960, 1024), and
// p99 of a single observation interpolated to 1024 — above the max). The
// fix clamps quantiles to the observed [min, max].
TEST(LogHistogram, QuantileClampedToObservedRange) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& h = reg.histogram("t.lat");
    h.observe(1000);
    const auto s = h.summarize();
    EXPECT_EQ(s.min, 1000u);
    EXPECT_EQ(s.max, 1000u);
    EXPECT_DOUBLE_EQ(s.p50, 1000.0);
    EXPECT_DOUBLE_EQ(s.p95, 1000.0);
    EXPECT_DOUBLE_EQ(s.p99, 1000.0);  // was 1024.0: past the only sample
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1000.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);

    h.observe(1020);  // same bucket: quantiles stay inside [1000, 1020]
    for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
        EXPECT_GE(h.quantile(q), 1000.0) << "q=" << q;
        EXPECT_LE(h.quantile(q), 1020.0) << "q=" << q;
    }
}

TEST(LogHistogram, EmptySummarizesToZero) {
    Registry reg;
    const auto s = reg.histogram("t.lat").summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, 0u);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(LogHistogram, HugeValueClampsToLastBucket) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& h = reg.histogram("t.lat");
    h.observe(~std::uint64_t{0});
    const auto s = h.summarize();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.max, ~std::uint64_t{0});  // min/max track raw values
    EXPECT_GT(s.p50, 0.0);
}

// ----------------------------------------------------------------- Trace ----

TEST(Trace, ScopedSpansNestWithDepth) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    const auto outer_id = reg.intern("outer.stage");
    const auto inner_id = reg.intern("inner.stage");
    EXPECT_EQ(reg.span_name(outer_id), "outer.stage");
    {
        auto outer = reg.span(outer_id);
        auto inner = reg.span(inner_id);
    }
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.spans.size(), 2u);
    // Spans record on close: inner first.
    EXPECT_EQ(snap.spans[0].stage, "inner.stage");
    EXPECT_EQ(snap.spans[0].depth, 1u);
    EXPECT_EQ(snap.spans[1].stage, "outer.stage");
    EXPECT_EQ(snap.spans[1].depth, 0u);
    EXPECT_LE(snap.spans[1].start_ns, snap.spans[0].start_ns);
    EXPECT_LE(snap.spans[0].end_ns, snap.spans[1].end_ns);
    EXPECT_EQ(snap.spans_dropped, 0u);
}

TEST(Trace, BufferBoundsRetentionAndCountsDrops) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg(/*trace_capacity=*/4);
    const auto id = reg.intern("s");
    for (int i = 0; i < 10; ++i) {
        auto span = reg.span(id);
    }
    EXPECT_EQ(reg.trace().events().size(), 4u);
    EXPECT_EQ(reg.trace().dropped(), 6u);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.spans.size(), 4u);
    EXPECT_EQ(snap.spans_dropped, 6u);
    reg.reset();
    EXPECT_EQ(reg.trace().events().size(), 0u);
    EXPECT_EQ(reg.trace().dropped(), 0u);
}

TEST(Trace, NowNsIsMonotonic) {
    const auto a = now_ns();
    const auto b = now_ns();
    EXPECT_LE(a, b);
}

// -------------------------------------------------------------- Registry ----

TEST(Registry, RuntimeDisableMakesMutatorsNoOps) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& c = reg.counter("t.count");
    auto& g = reg.gauge("t.gauge");
    auto& h = reg.histogram("t.hist");
    const auto id = reg.intern("t.stage");
    reg.set_enabled(false);
    EXPECT_FALSE(reg.enabled());
    c.increment();
    g.set(9);
    h.observe(100);
    {
        auto span = reg.span(id);
    }
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(reg.trace().events().empty());
    reg.set_enabled(true);
    c.increment();
    EXPECT_EQ(c.value(), 1);
}

TEST(Registry, SpanOpenedWhileDisabledNeverRecords) {
    // The enable check happens at span open, so a disable->enable flip mid
    // scope must not produce a half-timed event.
    Registry reg;
    const auto id = reg.intern("t.stage");
    reg.set_enabled(false);
    {
        auto span = reg.span(id);
        reg.set_enabled(true);
    }
    EXPECT_TRUE(reg.trace().events().empty());
}

TEST(Registry, SnapshotSortsByName) {
    Registry reg;
    reg.counter("zebra").increment();
    reg.counter("alpha").increment();
    reg.counter("mid").increment();
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].name, "alpha");
    EXPECT_EQ(snap.counters[1].name, "mid");
    EXPECT_EQ(snap.counters[2].name, "zebra");
}

TEST(Registry, ResetZeroesButKeepsReferences) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    auto& c = reg.counter("t.count");
    auto& g = reg.gauge("t.gauge");
    auto& h = reg.histogram("t.hist");
    c.add(3);
    g.set(4);
    h.observe(5);
    reg.reset();
    EXPECT_EQ(c.value(), 0);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    c.increment();  // the cached reference is still live
    EXPECT_EQ(reg.snapshot().counters[0].value, 1);
}

TEST(Registry, GlobalIsSingleton) {
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

// ------------------------------------------------------------------ JSON ----

TEST(Json, DumpParseRoundTrip) {
    JsonValue::Object obj;
    obj.emplace_back("name", JsonValue("hybrid.ring"));
    obj.emplace_back("value", JsonValue(42));
    obj.emplace_back("ratio", JsonValue(0.5));
    obj.emplace_back("ok", JsonValue(true));
    obj.emplace_back("none", JsonValue(nullptr));
    JsonValue::Array arr;
    arr.emplace_back(JsonValue(1));
    arr.emplace_back(JsonValue("two"));
    obj.emplace_back("list", JsonValue(std::move(arr)));
    const JsonValue doc{std::move(obj)};

    const JsonValue back = parse_json(doc.dump(2));
    EXPECT_EQ(back.at("name").as_string(), "hybrid.ring");
    EXPECT_DOUBLE_EQ(back.at("value").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(back.at("ratio").as_number(), 0.5);
    EXPECT_TRUE(back.at("ok").as_bool());
    EXPECT_TRUE(back.at("none").is_null());
    ASSERT_EQ(back.at("list").as_array().size(), 2u);
    EXPECT_EQ(back.at("list").as_array()[1].as_string(), "two");
}

TEST(Json, StringEscapesRoundTrip) {
    const JsonValue v(std::string("a\"b\\c\n\t\x01z"));
    const JsonValue back = parse_json(v.dump());
    EXPECT_EQ(back.as_string(), "a\"b\\c\n\t\x01z");
}

TEST(Json, ParsesUnicodeEscape) {
    const JsonValue v = parse_json("\"\\u00e9\"");
    EXPECT_EQ(v.as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, ObjectPreservesInsertionOrder) {
    const JsonValue v = parse_json(R"({"z": 1, "a": 2})");
    const auto& fields = v.as_object();
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[0].first, "z");
    EXPECT_EQ(fields[1].first, "a");
}

TEST(Json, MalformedInputThrows) {
    EXPECT_THROW(parse_json("{"), Error);
    EXPECT_THROW(parse_json("[1, ]"), Error);
    EXPECT_THROW(parse_json("tru"), Error);
    EXPECT_THROW(parse_json("{} extra"), Error);
    EXPECT_THROW(parse_json(""), Error);
}

TEST(Json, TypeMismatchThrows) {
    const JsonValue v = parse_json("[1]");
    EXPECT_THROW((void)v.as_object(), Error);
    EXPECT_THROW((void)v.at("x"), Error);
    EXPECT_THROW((void)v.as_array()[0].as_string(), Error);
}

// ---------------------------------------------------------------- Report ----

Registry& populated_registry(Registry& reg) {
    reg.counter("hybrid.records").add(1234);
    reg.counter("cpu.frames").add(5);
    reg.gauge("hybrid.ring_occupancy").set(17);
    reg.gauge("hybrid.ring_occupancy").set(9);
    auto& h = reg.histogram("cpu.decode_ns");
    for (std::uint64_t v = 100; v <= 10000; v += 100) h.observe(v);
    const auto id = reg.intern("cpu.deconvolve");
    {
        auto span = reg.span(id);
    }
    return reg;
}

TEST(Report, JsonSchemaRoundTrip) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    const auto snap = populated_registry(reg).snapshot();
    RunMeta meta;
    meta.bench = "unit";
    meta.scalars.emplace_back("speedup", 3.5);
    meta.labels.emplace_back("experiment", "E4");

    const JsonValue doc = to_json(snap, meta);
    EXPECT_EQ(doc.at("schema").as_string(), kSchemaV1);
    EXPECT_EQ(doc.at("bench").as_string(), "unit");
    EXPECT_DOUBLE_EQ(doc.at("scalars").at("speedup").as_number(), 3.5);
    EXPECT_EQ(doc.at("labels").at("experiment").as_string(), "E4");

    // Serialize, reparse, reconstruct — every metric survives.
    const Snapshot back = snapshot_from_json(parse_json(doc.dump(2)));
    ASSERT_EQ(back.counters.size(), snap.counters.size());
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        EXPECT_EQ(back.counters[i].name, snap.counters[i].name);
        EXPECT_EQ(back.counters[i].value, snap.counters[i].value);
    }
    ASSERT_EQ(back.gauges.size(), 1u);
    EXPECT_EQ(back.gauges[0].value, 9);
    EXPECT_EQ(back.gauges[0].max, 17);
    ASSERT_EQ(back.histograms.size(), 1u);
    EXPECT_EQ(back.histograms[0].summary.count, snap.histograms[0].summary.count);
    EXPECT_DOUBLE_EQ(back.histograms[0].summary.p95, snap.histograms[0].summary.p95);
    ASSERT_EQ(back.spans.size(), 1u);
    EXPECT_EQ(back.spans[0].stage, "cpu.deconvolve");
    EXPECT_EQ(back.spans[0].start_ns, snap.spans[0].start_ns);
    EXPECT_EQ(back.spans_dropped, snap.spans_dropped);
}

TEST(Report, RejectsWrongSchemaTag) {
    EXPECT_THROW(snapshot_from_json(parse_json(R"({"schema": "bogus.v9"})")),
                 Error);
    EXPECT_THROW(snapshot_from_json(parse_json("{}")), Error);
}

TEST(Report, CsvListsEveryMetricKind) {
    HTIMS_SKIP_IF_COMPILED_OUT();
    Registry reg;
    const auto snap = populated_registry(reg).snapshot();
    std::ostringstream os;
    write_csv(os, snap);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("counter,hybrid.records,1234"), std::string::npos) << csv;
    EXPECT_NE(csv.find("gauge,hybrid.ring_occupancy,9,17"), std::string::npos)
        << csv;
    EXPECT_NE(csv.find("histogram,cpu.decode_ns"), std::string::npos) << csv;
}

TEST(Report, TablesRenderWithoutThrowing) {
    Registry reg;
    const auto snap = populated_registry(reg).snapshot();
    std::ostringstream os;
    print_report(os, snap);
    EXPECT_NE(os.str().find("hybrid.records"), std::string::npos);
    EXPECT_NE(os.str().find("cpu.decode_ns"), std::string::npos);
}

}  // namespace
}  // namespace htims::telemetry
