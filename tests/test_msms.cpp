// Tests for src/msms: synthetic fragmentation ladders and the multiplexed
// IMS-CID-MS/MS assignment pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "instrument/peptide_library.hpp"
#include "msms/fragmentation.hpp"
#include "msms/msms.hpp"

namespace htims::msms {
namespace {

instrument::IonSpecies precursor(double mz = 650.0, int z = 2,
                                 const std::string& name = "pep") {
    instrument::IonSpecies sp = instrument::make_spiked_peptide(name, mz, z, 1e5);
    return sp;
}

// ------------------------------------------------------ Fragmentation ----

TEST(Fragmentation, LaddersAreMassConsistent) {
    const auto f = fragment_peptide(precursor(), 100.0, 3200.0);
    ASSERT_GE(f.residues.size(), 3u);
    double total = 0.0;
    for (double r : f.residues) total += r;
    // Residues sum to the neutral mass minus water.
    EXPECT_NEAR(total, f.precursor.neutral_mass() - 18.010565, 1e-6);

    // Complementary b/y pairs sum to precursor neutral mass + 2 protons
    // (the water lost from the b fragment reappears in the y fragment).
    const auto ladder = ladder_mzs(f.residues);
    for (std::size_t cut = 0; cut + 1 < f.residues.size(); ++cut) {
        const double b = ladder[2 * cut];
        const double y = ladder[2 * cut + 1];
        EXPECT_NEAR(b + y, f.precursor.neutral_mass() + 2.0 * 1.007276466, 1e-6);
    }
}

TEST(Fragmentation, DeterministicPerNameAndSeed) {
    const auto a = fragment_peptide(precursor(650.0, 2, "x"), 100.0, 3200.0, 7);
    const auto b = fragment_peptide(precursor(650.0, 2, "x"), 100.0, 3200.0, 7);
    ASSERT_EQ(a.fragments.size(), b.fragments.size());
    for (std::size_t i = 0; i < a.fragments.size(); ++i)
        EXPECT_DOUBLE_EQ(a.fragments[i].mz, b.fragments[i].mz);
    const auto c = fragment_peptide(precursor(650.0, 2, "y"), 100.0, 3200.0, 7);
    EXPECT_NE(a.residues.size() == c.residues.size() &&
                  a.fragments.size() == c.fragments.size() &&
                  (a.fragments.empty() ||
                   a.fragments[0].mz == c.fragments[0].mz),
              true);
}

TEST(Fragmentation, FractionsNormalizedAndInRange) {
    const auto f = fragment_peptide(precursor(800.0, 2, "p2"), 100.0, 3200.0);
    ASSERT_FALSE(f.fragments.empty());
    double total = 0.0;
    for (const auto& frag : f.fragments) {
        EXPECT_GT(frag.fraction, 0.0);
        EXPECT_GE(frag.mz, 100.0);
        EXPECT_LT(frag.mz, 3200.0);
        total += frag.fraction;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Fragmentation, RangeCutRemovesFragments) {
    const auto wide = fragment_peptide(precursor(900.0, 2, "w"), 100.0, 3200.0);
    const auto narrow = fragment_peptide(precursor(900.0, 2, "w"), 400.0, 900.0);
    EXPECT_LT(narrow.fragments.size(), wide.fragments.size());
    for (const auto& frag : narrow.fragments) {
        EXPECT_GE(frag.mz, 400.0);
        EXPECT_LT(frag.mz, 900.0);
    }
}

TEST(Fragmentation, DecoyLadderShifted) {
    const std::vector<double> ladder = {200.0, 300.0};
    const auto decoy = decoy_ladder(ladder, 7.77);
    EXPECT_DOUBLE_EQ(decoy[0], 207.77);
    EXPECT_DOUBLE_EQ(decoy[1], 307.77);
}

TEST(Fragmentation, TooLightPrecursorRejected) {
    EXPECT_THROW(fragment_peptide(precursor(60.0, 1, "tiny"), 100.0, 3200.0),
                 ConfigError);
}

// ----------------------------------------------------- MsmsExperiment ----

core::SimulatorConfig msms_sim_config() {
    core::SimulatorConfig cfg = core::default_config();
    cfg.tof.bins = 2048;
    cfg.acquisition.sequence_order = 7;
    cfg.acquisition.averages = 16;
    return cfg;
}

TEST(Msms, IdentifiesWellSeparatedPrecursors) {
    instrument::SampleMixture mix;
    mix.species.push_back(instrument::make_spiked_peptide("pepA", 520.0, 2, 1e6));
    mix.species.push_back(instrument::make_spiked_peptide("pepB", 840.0, 2, 1e6));
    // Distinct mobilities -> distinct drift profiles.
    mix.species[0].reduced_mobility = 1.25;
    mix.species[1].reduced_mobility = 0.95;

    MsmsConfig msms;
    msms.min_fragments = 3;
    MsmsExperiment experiment(msms_sim_config(), mix, msms);
    const auto result = experiment.run();

    EXPECT_EQ(result.identified, 2u);
    EXPECT_LT(result.fdr_estimate, 0.1);
    for (const auto& ev : result.evidence) {
        EXPECT_TRUE(ev.identified) << ev.name;
        EXPECT_GE(ev.matched_fragments, 3u) << ev.name;
    }
}

TEST(Msms, AssignmentsPointToCorrectPrecursor) {
    instrument::SampleMixture mix;
    mix.species.push_back(instrument::make_spiked_peptide("pepA", 520.0, 2, 1e6));
    mix.species.push_back(instrument::make_spiked_peptide("pepB", 840.0, 2, 1e6));
    mix.species[0].reduced_mobility = 1.25;
    mix.species[1].reduced_mobility = 0.95;

    MsmsExperiment experiment(msms_sim_config(), mix, MsmsConfig{});
    const auto result = experiment.run();
    const auto& fragmented = experiment.precursors();

    // Every mass-matched assignment must match the ladder of the precursor
    // it was profile-assigned to (cross-talk would show up as matches to
    // the other precursor's ladder).
    std::size_t checked = 0;
    for (const auto& a : result.assignments) {
        if (a.precursor < 0 || !a.mass_matched) continue;
        const auto& own =
            ladder_mzs(fragmented[static_cast<std::size_t>(a.precursor)].residues);
        double best = 1e9;
        for (double mz : own) best = std::min(best, std::abs(a.peak.mz - mz));
        EXPECT_LE(best, 2.0);  // bounded by the m/z bin width
        ++checked;
    }
    EXPECT_GE(checked, 6u);
}

TEST(Msms, CoDriftingPrecursorsShareAssignments) {
    // Identical mobility -> indistinguishable drift profiles. The profile
    // correlation cannot separate them; identifications then rely purely on
    // ladder masses, and the pipeline must not crash or mis-assign to a
    // *non*-overlapping precursor.
    instrument::SampleMixture mix;
    mix.species.push_back(instrument::make_spiked_peptide("pepA", 520.0, 2, 1e6));
    mix.species.push_back(instrument::make_spiked_peptide("pepB", 524.0, 2, 1e6));
    mix.species[0].reduced_mobility = 1.1;
    mix.species[1].reduced_mobility = 1.1;
    MsmsExperiment experiment(msms_sim_config(), mix, MsmsConfig{});
    const auto result = experiment.run();
    SUCCEED();  // structural: completes with plausible bookkeeping
    EXPECT_LE(result.identified, 2u);
}

TEST(Msms, NoFragmentationMeansNoIds) {
    instrument::SampleMixture mix;
    mix.species.push_back(instrument::make_spiked_peptide("pepA", 520.0, 2, 1e6));
    MsmsConfig msms;
    msms.cid_efficiency = 0.0;  // collision cell off
    MsmsExperiment experiment(msms_sim_config(), mix, msms);
    const auto result = experiment.run();
    EXPECT_EQ(result.identified, 0u);
}

TEST(Msms, InvalidEfficiencyRejected) {
    instrument::SampleMixture mix;
    mix.species.push_back(instrument::make_spiked_peptide("pepA", 520.0, 2, 1e6));
    MsmsConfig msms;
    msms.cid_efficiency = 1.5;
    EXPECT_THROW(MsmsExperiment(msms_sim_config(), mix, msms), ConfigError);
}

}  // namespace
}  // namespace htims::msms
